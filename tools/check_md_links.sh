#!/usr/bin/env bash
# Fails (exit 1) on Markdown links whose repo-relative target does not
# exist. External links (http/https/mailto) and pure #anchors are skipped;
# a target's own "#section" suffix is stripped before the existence check.
# Run from anywhere; scans every *.md in the repo except build trees.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

while IFS= read -r -d '' md; do
  dir="$(dirname "$md")"
  # Inline links: capture the (target) of every [text](target).
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    path="${target%%#*}"   # drop any #anchor suffix
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in ${md#"$root"/}: ($target)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" \
             | sed -E 's/^\]\((.*)\)$/\1/' \
             | grep -vE '^(https?:|mailto:|#)' || true)
done < <(find "$root" -name '*.md' \
           -not -path '*/build*/*' -not -path '*/.git/*' -print0)

if [ "$fail" -eq 0 ]; then
  echo "all relative Markdown links resolve"
fi
exit "$fail"
