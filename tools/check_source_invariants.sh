#!/usr/bin/env bash
# Project invariant linter — structural rules the compiler cannot enforce.
# Run from anywhere; CI runs it in the static-analysis job and it must
# exit 0 on a healthy tree. Each rule prints every violation it finds (not
# just the first) so one run shows the full repair list.
#
#   R1  ISA hygiene: <immintrin.h> only in src/ppr/diffusion_avx2.cpp —
#       the one TU built with -mavx2 behind runtime CPUID dispatch. Any
#       other include could emit AVX2 in a TU that runs unguarded.
#   R2  Lock discipline: no naked std::mutex / std::shared_mutex in src/
#       outside util/thread_annotations.hpp. Everything locks through the
#       annotated util::Mutex/SharedMutex wrappers so Clang's thread-
#       safety analysis sees every acquire.
#   R3  No hidden sleeps: sleep_for appears in src/ only inside
#       util/sleep.hpp (pause_for_seconds). Sleeping with a lock held, or
#       as ad-hoc backoff, has to go through the one audited choke point.
#   R4  Smoke coverage: every bench/bench_*.cpp that implements a --smoke
#       gate is actually run with --smoke in ci.yml. A gate nobody runs
#       rots silently.
#   R5  Suite hygiene: every test suite named in CMakeLists.txt's
#       sanitizer lists and in ci.yml exists as tests/<name>.cpp, and
#       every bench_* invoked by ci.yml exists in bench/.
set -u

cd "$(dirname "$0")/.." || exit 1

failures=0
fail() {
  echo "INVARIANT VIOLATION: $*" >&2
  failures=$((failures + 1))
}

# --- R1: immintrin.h only in the AVX2 kernel TU ---------------------------
while IFS= read -r f; do
  [ "$f" = "src/ppr/diffusion_avx2.cpp" ] && continue
  fail "R1: $f includes <immintrin.h>; only src/ppr/diffusion_avx2.cpp (the -mavx2 TU behind runtime dispatch) may"
done < <(grep -rl 'immintrin' src/ 2>/dev/null)

# --- R2: no naked standard mutexes outside the annotated wrappers ---------
while IFS= read -r line; do
  f=${line%%:*}
  [ "$f" = "src/util/thread_annotations.hpp" ] && continue
  fail "R2: naked std::mutex/std::shared_mutex at $line — use util::Mutex/util::SharedMutex (util/thread_annotations.hpp) so the thread-safety analysis sees the lock"
done < <(grep -rn 'std::mutex\|std::shared_mutex' src/ 2>/dev/null)

# --- R3: sleep_for only inside the audited sleep helper -------------------
while IFS= read -r line; do
  f=${line%%:*}
  [ "$f" = "src/util/sleep.hpp" ] && continue
  fail "R3: sleep_for at $line — call util::pause_for_seconds (util/sleep.hpp) instead; src/ must not sleep ad hoc"
done < <(grep -rn 'sleep_for' src/ 2>/dev/null)

# --- R4: every --smoke bench is exercised by CI ---------------------------
ci=.github/workflows/ci.yml
for bench_src in bench/bench_*.cpp; do
  [ -e "$bench_src" ] || continue
  grep -q -- '--smoke' "$bench_src" || continue
  name=$(basename "$bench_src" .cpp)
  if ! grep -Eq "\./$name +--smoke" "$ci"; then
    fail "R4: $name implements --smoke but $ci never runs './$name --smoke'"
  fi
done

# --- R5: suite lists and CI references point at real files ----------------
# CMake sanitizer suite lists (the single source CI's -L labels draw from).
while IFS= read -r suite; do
  if [ ! -e "tests/${suite}.cpp" ]; then
    fail "R5: CMakeLists.txt sanitizer suite '$suite' has no tests/${suite}.cpp"
  fi
done < <(sed -n '/^set(MELOPPR_\(TSAN\|ASAN\)_SUITES/,/)$/p' CMakeLists.txt |
         grep -o '[a-z0-9_]*_test' | sort -u)

# Anything ci.yml itself names as <word>_test must exist too.
while IFS= read -r suite; do
  if [ ! -e "tests/${suite}.cpp" ]; then
    fail "R5: $ci references suite '$suite' but tests/${suite}.cpp does not exist"
  fi
done < <(grep -o '[a-z0-9][a-z0-9_]*_test\b' "$ci" | sort -u)

# Benches ci.yml invokes must exist in bench/.
while IFS= read -r bench; do
  if [ ! -e "bench/${bench}.cpp" ]; then
    fail "R5: $ci runs './$bench' but bench/${bench}.cpp does not exist"
  fi
done < <(grep -o '\./bench_[a-z0-9_]*' "$ci" | sed 's|^\./||' | sort -u)

if [ "$failures" -ne 0 ]; then
  echo "check_source_invariants: $failures violation(s)" >&2
  exit 1
fi
echo "check_source_invariants: OK"
