// Compressed-sparse-row (CSR) undirected graph — the storage format the
// paper uses for matrix storage and matrix-vector products (Sec. VI: "The
// matrix storage and matrix-vector multiplications are in compressed sparse
// row (CSR) format").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace meloppr::graph {

/// Node identifier. 32 bits covers the paper's largest graph (com-youtube,
/// 1.13 M nodes) with room to spare.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable simple undirected graph in CSR form. Each undirected edge
/// {u, v} is stored twice (u→v and v→u); num_edges() reports the number of
/// *undirected* edges, matching how the paper reports |E|.
///
/// Construction goes through GraphBuilder (builder.hpp), which deduplicates,
/// rejects self-loops, and sorts adjacency lists; Graph itself only holds
/// validated data.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of validated CSR arrays. offsets.size() must equal
  /// n + 1, offsets.front() == 0, offsets.back() == targets.size(), and each
  /// adjacency range must be sorted and self-loop-free. Verified with
  /// MELO_CHECK (cheap fields) plus a full validate() pass in debug.
  Graph(std::vector<std::uint64_t> offsets, std::vector<NodeId> targets);

  [[nodiscard]] std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges (each stored twice internally).
  [[nodiscard]] std::size_t num_edges() const { return targets_.size() / 2; }

  /// Number of directed arcs, i.e. 2·num_edges().
  [[nodiscard]] std::size_t num_arcs() const { return targets_.size(); }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted adjacency list of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// True iff {u, v} is an edge (binary search over v's adjacency list).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t max_degree() const { return max_degree_; }
  [[nodiscard]] double average_degree() const;

  /// |V| + |E| — the paper's definition of graph size (Sec. II).
  [[nodiscard]] std::size_t size() const { return num_nodes() + num_edges(); }

  /// CSR payload bytes (offsets + targets arrays). This is what the memory
  /// meter charges for holding a graph in memory.
  [[nodiscard]] std::size_t bytes() const;

  /// Full structural validation: monotone offsets, sorted adjacency, no
  /// self-loops, no duplicate edges, symmetric (u∈adj(v) ⇔ v∈adj(u)).
  /// Throws InvariantViolation on the first failure.
  void validate() const;

  /// Count of nodes with degree zero (generators can leave a few; PPR seeds
  /// must avoid them).
  [[nodiscard]] std::size_t isolated_count() const;

  /// One-line summary, e.g. "|V|=3327 |E|=4676 davg=2.81 dmax=99".
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<std::uint64_t>& offsets() const {
    return offsets_;
  }
  [[nodiscard]] const std::vector<NodeId>& targets() const {
    return targets_;
  }

 private:
  std::vector<std::uint64_t> offsets_;  ///< size n+1, offsets_[n] == arcs
  std::vector<NodeId> targets_;         ///< concatenated adjacency lists
  std::size_t max_degree_ = 0;
};

}  // namespace meloppr::graph
