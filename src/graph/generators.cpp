#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace meloppr::graph {

namespace {

/// Packs an undirected edge into one 64-bit key for dedup sets.
std::uint64_t edge_key(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

Graph erdos_renyi(std::size_t n, std::size_t m, Rng& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  const std::size_t max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("erdos_renyi: m exceeds simple-graph max");
  }
  GraphBuilder builder(n);
  builder.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph barabasi_albert(std::size_t n, std::size_t m_min, std::size_t m_max,
                      Rng& rng) {
  if (n < 2) throw std::invalid_argument("barabasi_albert: need n >= 2");
  if (m_min == 0 || m_min > m_max) {
    throw std::invalid_argument("barabasi_albert: need 1 <= m_min <= m_max");
  }
  GraphBuilder builder(n);
  // `endpoints` holds one entry per arc endpoint; sampling uniformly from it
  // is sampling nodes proportionally to degree (the classic BA trick).
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * ((m_min + m_max) / 2 + 1));

  // Seed clique over the first m_max+1 nodes so early attachments have
  // enough distinct candidates.
  const std::size_t seed_n = std::min(n, m_max + 1);
  for (NodeId u = 0; u < seed_n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < seed_n; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<NodeId> picked;
  for (std::size_t u = seed_n; u < n; ++u) {
    const std::size_t m =
        m_min + static_cast<std::size_t>(rng.below(m_max - m_min + 1));
    picked.clear();
    std::size_t attempts = 0;
    while (picked.size() < std::min(m, u) && attempts < 16 * m + 64) {
      ++attempts;
      const NodeId target = endpoints[rng.below(endpoints.size())];
      if (target != u) picked.insert(target);
    }
    for (NodeId target : picked) {
      builder.add_edge(static_cast<NodeId>(u), target);
      endpoints.push_back(static_cast<NodeId>(u));
      endpoints.push_back(target);
    }
  }
  return builder.build();
}

Graph barabasi_albert(std::size_t n, double m_avg, Rng& rng) {
  if (m_avg < 1.0) {
    throw std::invalid_argument("barabasi_albert: need m_avg >= 1");
  }
  const auto m_floor = static_cast<std::size_t>(std::floor(m_avg));
  const double frac = m_avg - static_cast<double>(m_floor);
  const std::size_t m_ceil = frac > 0.0 ? m_floor + 1 : m_floor;
  if (n < 2) throw std::invalid_argument("barabasi_albert: need n >= 2");

  GraphBuilder builder(n);
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(
      2.0 * m_avg * static_cast<double>(n) + 16.0));
  const std::size_t seed_n = std::min(n, m_ceil + 1);
  for (NodeId u = 0; u < seed_n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < seed_n; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<NodeId> picked;
  for (std::size_t u = seed_n; u < n; ++u) {
    const std::size_t m = m_floor + (rng.chance(frac) ? 1 : 0);
    picked.clear();
    std::size_t attempts = 0;
    while (picked.size() < std::min(m, u) && attempts < 16 * m + 64) {
      ++attempts;
      const NodeId target = endpoints[rng.below(endpoints.size())];
      if (target != u) picked.insert(target);
    }
    for (NodeId target : picked) {
      builder.add_edge(static_cast<NodeId>(u), target);
      endpoints.push_back(static_cast<NodeId>(u));
      endpoints.push_back(target);
    }
  }
  return builder.build();
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  if (n < 3) throw std::invalid_argument("watts_strogatz: need n >= 3");
  if (k % 2 != 0 || k == 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: need even 0 < k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta in [0,1]");
  }
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(n * k);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      edges.insert(edge_key(static_cast<NodeId>(u), v));
    }
  }
  // Rewire: each original ring edge moves its far endpoint with prob beta.
  std::vector<std::uint64_t> ring(edges.begin(), edges.end());
  for (std::uint64_t key : ring) {
    if (!rng.chance(beta)) continue;
    const auto u = static_cast<NodeId>(key >> 32);
    edges.erase(key);
    NodeId w;
    std::size_t guard = 0;
    do {
      w = static_cast<NodeId>(rng.below(n));
      if (++guard > 64) break;  // dense corner case: give up rewiring
    } while (w == u || edges.count(edge_key(u, w)) != 0);
    if (w != u && edges.count(edge_key(u, w)) == 0) {
      edges.insert(edge_key(u, w));
    } else {
      edges.insert(key);  // keep the original edge
    }
  }
  GraphBuilder builder(n);
  builder.reserve(edges.size());
  for (std::uint64_t key : edges) {
    builder.add_edge(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffULL));
  }
  return builder.build();
}

Graph rmat(unsigned scale, std::size_t num_edges, double a, double b,
           double c, Rng& rng) {
  if (scale == 0 || scale > 30) {
    throw std::invalid_argument("rmat: scale must be in [1,30]");
  }
  const double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) {
    throw std::invalid_argument("rmat: probabilities must be a+b+c <= 1");
  }
  const std::size_t n = std::size_t{1} << scale;
  GraphBuilder builder(n);
  builder.reserve(num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::size_t produced = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = num_edges * 8 + 1024;
  while (produced < num_edges && attempts < max_attempts) {
    ++attempts;
    std::size_t row = 0;
    std::size_t col = 0;
    for (unsigned level = 0; level < scale; ++level) {
      // Add ±10% noise per level so the degree sequence is not lattice-like.
      const double noise = 0.9 + 0.2 * rng.uniform();
      const double r = rng.uniform();
      const double an = a * noise;
      const double bn = b * noise;
      const double cn = c * noise;
      const double total = an + bn + cn + d * noise;
      const double x = r * total;
      row <<= 1;
      col <<= 1;
      if (x < an) {
        // top-left quadrant: nothing to add
      } else if (x < an + bn) {
        col |= 1;
      } else if (x < an + bn + cn) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row == col) continue;
    const auto u = static_cast<NodeId>(row);
    const auto v = static_cast<NodeId>(col);
    if (seen.insert(edge_key(u, v)).second) {
      builder.add_edge(u, v);
      ++produced;
    }
  }
  return builder.build();
}

Graph community_graph(std::size_t n, std::size_t communities,
                      double intra_avg_degree, double inter_avg_degree,
                      Rng& rng) {
  if (n < 4 || communities == 0 || communities > n) {
    throw std::invalid_argument("community_graph: bad n/communities");
  }
  // Power-law-ish community sizes: size_i ∝ (i+1)^-0.8, normalized to n.
  std::vector<double> weight(communities);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < communities; ++i) {
    weight[i] = std::pow(static_cast<double>(i + 1), -0.8);
    weight_sum += weight[i];
  }
  std::vector<std::size_t> size(communities);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < communities; ++i) {
    size[i] = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::floor(
               weight[i] / weight_sum * static_cast<double>(n))));
    assigned += size[i];
  }
  // Distribute the rounding remainder (or trim overshoot) over communities.
  std::size_t i = 0;
  while (assigned < n) {
    ++size[i % communities];
    ++assigned;
    ++i;
  }
  while (assigned > n) {
    if (size[i % communities] > 2) {
      --size[i % communities];
      --assigned;
    }
    ++i;
  }

  std::vector<NodeId> community_start(communities + 1, 0);
  for (std::size_t ci = 0; ci < communities; ++ci) {
    community_start[ci + 1] =
        community_start[ci] + static_cast<NodeId>(size[ci]);
  }
  MELO_CHECK(community_start.back() == n);

  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;

  // Intra-community edges: random within the block, plus a Hamiltonian
  // path through the block so every community is connected.
  for (std::size_t ci = 0; ci < communities; ++ci) {
    const NodeId lo = community_start[ci];
    const NodeId hi = community_start[ci + 1];
    const std::size_t block = hi - lo;
    for (NodeId v = lo; v + 1 < hi; ++v) {
      if (seen.insert(edge_key(v, v + 1)).second) builder.add_edge(v, v + 1);
    }
    const auto want = static_cast<std::size_t>(
        intra_avg_degree / 2.0 * static_cast<double>(block));
    const std::size_t cap = block * (block - 1) / 2;
    std::size_t made = block > 0 ? block - 1 : 0;
    std::size_t guard = 0;
    while (made < std::min(want, cap) && guard < want * 8 + 64) {
      ++guard;
      const auto u = static_cast<NodeId>(lo + rng.below(block));
      const auto v = static_cast<NodeId>(lo + rng.below(block));
      if (u == v) continue;
      if (seen.insert(edge_key(u, v)).second) {
        builder.add_edge(u, v);
        ++made;
      }
    }
  }

  // Inter-community edges: endpoints drawn by preferential attachment over
  // a growing endpoint pool (heavy-tailed hub structure across communities).
  std::vector<NodeId> endpoints;
  endpoints.reserve(n);
  for (NodeId v = 0; v < n; ++v) endpoints.push_back(v);
  const auto want_inter = static_cast<std::size_t>(
      inter_avg_degree / 2.0 * static_cast<double>(n));
  std::size_t made = 0;
  std::size_t guard = 0;
  while (made < want_inter && guard < want_inter * 8 + 64) {
    ++guard;
    const NodeId u = endpoints[rng.below(endpoints.size())];
    const NodeId v = endpoints[rng.below(endpoints.size())];
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
      ++made;
    }
  }
  return builder.build();
}

namespace fixtures {

Graph fig1_graph() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  return b.build();
}

Graph path(std::size_t n) {
  MELO_CHECK(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(std::size_t n) {
  MELO_CHECK(n >= 3);
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return b.build();
}

Graph star(std::size_t n) {
  MELO_CHECK(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph complete(std::size_t n) {
  MELO_CHECK(n >= 2);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph binary_tree(std::size_t n) {
  MELO_CHECK(n >= 2);
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>((v - 1) / 2));
  }
  return b.build();
}

Graph barbell(std::size_t half) {
  MELO_CHECK(half >= 2);
  GraphBuilder b(2 * half);
  for (NodeId u = 0; u < half; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < half; ++v) {
      b.add_edge(u, v);
      b.add_edge(static_cast<NodeId>(half + u), static_cast<NodeId>(half + v));
    }
  }
  b.add_edge(static_cast<NodeId>(half - 1), static_cast<NodeId>(half));
  return b.build();
}

}  // namespace fixtures

}  // namespace meloppr::graph
