// Streaming edge updates over the immutable CSR graph.
//
// Everything below the serving layer was built against a frozen Graph, but
// the workloads the paper's ball decomposition targets — recommender churn,
// citation growth — mutate continuously. DynamicGraph keeps the CSR base
// untouched and layers a per-vertex delta overlay (sorted added/removed
// adjacency) on top, so:
//
//   * apply(EdgeUpdate) is O(degree) under a writer lock, not an O(|E|)
//     CSR rebuild;
//   * extract_ball() runs the SAME BFS as graph::extract_ball over the
//     merged adjacency (base − removed + added, kept sorted), so a ball
//     extracted incrementally is byte-identical to one extracted from a
//     from-scratch rebuild at the same version — the property the
//     equivalence suite asserts across every generator family;
//   * a monotonically increasing version() stamps every state: queries
//     record it at admission, cached balls record it at extraction, and
//     the cache compares the two to decide staleness.
//
// Concurrency contract: apply() takes the unique lock; extraction,
// materialize(), and the touched-since probe take the shared lock for
// their whole traversal. An in-flight extraction therefore serializes
// against updates and owns an exact version stamp — there is no state in
// which a ball is "half a version". Update listeners (the cache's
// invalidation hook) run inside apply() under the unique lock BEFORE the
// version counter is bumped, which yields the serving invariant:
//
//   any thread that observes version() >= V also observes a cache already
//   purged of every ball invalidated by updates <= V.
//
// Listeners must not call back into this DynamicGraph (self-deadlock) and
// must order any locks they take strictly AFTER this graph's lock.
//
// Compaction folds the overlay back into the CSR base once it exceeds
// compaction_fraction of the base arcs. It happens in place, under the
// writer lock, and does NOT change the version: the logical graph is
// unchanged, only its representation. The Graph object's address is stable
// for the DynamicGraph's lifetime.
//
// The node universe is fixed at construction (CSR cannot grow rows);
// updates may only rewire edges among existing nodes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr::graph {

/// One streaming mutation: insert or delete the undirected edge {u, v}.
struct EdgeUpdate {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  /// true = insert (edge must be absent), false = delete (must be present).
  bool insert = true;
};

struct DynamicGraphConfig {
  /// Fold the overlay into the CSR base once delta half-edges exceed this
  /// fraction of the base arc count (checked after each apply). 0 disables
  /// automatic compaction.
  double compaction_fraction = 0.25;
  /// Applied updates kept for touched_since() staleness probes. Probes
  /// reaching past the window answer conservatively ("touched").
  std::size_t history_capacity = 4096;
};

/// CSR base + delta overlay with a version counter and update listeners.
class DynamicGraph {
 public:
  explicit DynamicGraph(Graph base, DynamicGraphConfig config = {});

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// Applies one update and returns the new version. Throws
  /// std::invalid_argument on self-loops, out-of-range endpoints,
  /// inserting a present edge, or deleting an absent one — updates are
  /// all-or-nothing, an invalid one changes neither state nor version.
  std::uint64_t apply(const EdgeUpdate& update);

  /// Number of updates applied so far; monotone, never reused. Reading it
  /// is a single acquire load — safe from any thread.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t num_nodes() const;
  /// Current logical undirected edge count (base ± overlay).
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] std::size_t degree(NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Delta half-edges currently in the overlay (0 right after compaction).
  [[nodiscard]] std::size_t delta_edges() const;
  [[nodiscard]] std::size_t compactions() const;

  /// BFS ball over the merged adjacency. Bit-identical to
  /// graph::extract_ball(materialize(), root, radius) — same discovery
  /// order, same induced CSR, same throws (out-of-range / isolated seed).
  /// If `version_out` is non-null it receives the version the extraction
  /// observed, captured under the same shared lock as the traversal.
  [[nodiscard]] Subgraph extract_ball(NodeId root, unsigned radius,
                                      std::uint64_t* version_out = nullptr) const;

  /// Full CSR rebuild of the current logical graph (the reference the
  /// equivalence tests compare against).
  [[nodiscard]] Graph materialize() const;

  /// True if any update with version in (since_version, version()] touched
  /// a vertex of `ball` — i.e. whether a ball extracted at since_version
  /// may now be stale. Conservative: answers true when the history window
  /// no longer reaches back to since_version. `checked_version_out`, if
  /// non-null, receives the version the answer is valid for (captured
  /// under the same shared lock).
  [[nodiscard]] bool touched_since(const Subgraph& ball,
                                   std::uint64_t since_version,
                                   std::uint64_t* checked_version_out =
                                       nullptr) const;

  /// Listener invoked inside apply() under the writer lock, before the
  /// version bump becomes visible. Receives the update and the version it
  /// will be published as. Returns an id for remove_listener(). Register
  /// before concurrent use; removal must not race apply().
  using UpdateListener =
      std::function<void(const EdgeUpdate&, std::uint64_t version)>;
  std::size_t add_update_listener(UpdateListener listener);
  void remove_listener(std::size_t id);

 private:
  struct VertexDelta {
    std::vector<NodeId> added;    ///< sorted, disjoint from base adjacency
    std::vector<NodeId> removed;  ///< sorted, subset of base adjacency
  };

  // The _locked helpers require mu_ held (shared suffices unless noted).
  [[nodiscard]] bool has_edge_locked(NodeId u, NodeId v) const
      MELOPPR_REQUIRES_SHARED(mu_);
  [[nodiscard]] std::size_t degree_locked(NodeId v) const
      MELOPPR_REQUIRES_SHARED(mu_);
  /// Merged sorted adjacency of v into `out` (cleared first).
  void merged_neighbors_locked(NodeId v, std::vector<NodeId>& out) const
      MELOPPR_REQUIRES_SHARED(mu_);
  void compact_locked() MELOPPR_REQUIRES(mu_);
  [[nodiscard]] Graph materialize_locked() const
      MELOPPR_REQUIRES_SHARED(mu_);

  mutable util::SharedMutex mu_;
  /// by value: address stable across compactions. Guarded — compaction
  /// swaps in a folded CSR under the writer lock; the fixed quantities
  /// (node count) are cached unguarded below.
  Graph base_ MELOPPR_GUARDED_BY(mu_);
  DynamicGraphConfig config_;
  /// Node universe size, fixed at construction — the one base_ property
  /// compaction can never change, so it is readable without the lock.
  std::size_t num_nodes_ = 0;
  std::unordered_map<NodeId, VertexDelta> deltas_ MELOPPR_GUARDED_BY(mu_);
  /// Σ (added.size() + removed.size())
  std::size_t delta_half_edges_ MELOPPR_GUARDED_BY(mu_) = 0;
  /// current logical undirected edges
  std::size_t num_edges_ MELOPPR_GUARDED_BY(mu_) = 0;
  std::size_t compactions_ MELOPPR_GUARDED_BY(mu_) = 0;

  struct HistoryEntry {
    EdgeUpdate update;
    std::uint64_t version = 0;
  };
  /// versions ascending, bounded window
  std::deque<HistoryEntry> history_ MELOPPR_GUARDED_BY(mu_);

  struct ListenerSlot {
    std::size_t id = 0;
    UpdateListener fn;
  };
  std::vector<ListenerSlot> listeners_ MELOPPR_GUARDED_BY(mu_);
  std::size_t next_listener_id_ MELOPPR_GUARDED_BY(mu_) = 1;

  std::atomic<std::uint64_t> version_{0};
};

}  // namespace meloppr::graph
