#include "graph/paper_graphs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace meloppr::graph {

const std::vector<PaperGraphSpec>& paper_graph_specs() {
  static const std::vector<PaperGraphSpec> specs = {
      {PaperGraphId::kG1Citeseer, "G1", "citeseer", 3327, 4676,
       GraphFamily::kCitation},
      {PaperGraphId::kG2Cora, "G2", "cora", 2708, 5278,
       GraphFamily::kCitation},
      {PaperGraphId::kG3Pubmed, "G3", "pubmed", 19717, 44327,
       GraphFamily::kCitation},
      {PaperGraphId::kG4Amazon, "G4", "com-amazon", 334863, 925872,
       GraphFamily::kCommunity},
      {PaperGraphId::kG5Dblp, "G5", "com-dblp", 317080, 1049866,
       GraphFamily::kCommunity},
      {PaperGraphId::kG6Youtube, "G6", "com-youtube", 1134890, 2987624,
       GraphFamily::kSocial},
  };
  return specs;
}

const PaperGraphSpec& spec_for(PaperGraphId id) {
  for (const auto& spec : paper_graph_specs()) {
    if (spec.id == id) return spec;
  }
  throw std::invalid_argument("spec_for: unknown PaperGraphId");
}

std::vector<PaperGraphId> small_paper_graphs() {
  return {PaperGraphId::kG1Citeseer, PaperGraphId::kG2Cora,
          PaperGraphId::kG3Pubmed};
}

std::vector<PaperGraphId> all_paper_graphs() {
  std::vector<PaperGraphId> ids;
  ids.reserve(paper_graph_specs().size());
  for (const auto& spec : paper_graph_specs()) ids.push_back(spec.id);
  return ids;
}

Graph make_paper_graph(PaperGraphId id, Rng& rng, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("make_paper_graph: scale must be in (0,1]");
  }
  const PaperGraphSpec& spec = spec_for(id);
  const auto n = std::max<std::size_t>(
      64, static_cast<std::size_t>(
              std::llround(static_cast<double>(spec.vertices) * scale)));
  const double m_avg = spec.edge_density();

  switch (spec.family) {
    case GraphFamily::kCitation:
    case GraphFamily::kSocial:
      // Preferential attachment matches the heavy-tailed degree sequences
      // of citation crawls and social graphs; m̄ = |E|/|V| matches density.
      return barabasi_albert(n, m_avg, rng);
    case GraphFamily::kCommunity: {
      // Co-purchase / co-author graphs: strong locality. Roughly 80% of a
      // node's degree is intra-community, 20% bridges communities. Average
      // community size ~20 nodes matches SNAP's published ground-truth
      // community scale for com-amazon/com-dblp.
      const std::size_t communities = std::max<std::size_t>(2, n / 20);
      const double total_degree = 2.0 * m_avg;
      return community_graph(n, communities, 0.8 * total_degree,
                             0.2 * total_degree, rng);
    }
  }
  throw std::invalid_argument("make_paper_graph: unhandled family");
}

NodeId random_seed_node(const Graph& g, Rng& rng) {
  MELO_CHECK(g.num_nodes() > 0);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (g.degree(v) > 0) return v;
  }
  throw std::runtime_error(
      "random_seed_node: could not find a non-isolated node");
}

}  // namespace meloppr::graph
