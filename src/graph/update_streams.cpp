#include "graph/update_streams.hpp"

#include <cstdint>
#include <unordered_set>
#include <utility>

namespace meloppr::graph {
namespace {

std::uint64_t pack_edge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Evolving edge state: membership set + dense list for uniform delete
/// sampling + live degrees for the no-isolation guarantee.
struct EdgeState {
  explicit EdgeState(const Graph& base)
      : degrees(base.num_nodes()) {
    const std::size_t n = base.num_nodes();
    edges.reserve(base.num_edges() * 2);
    list.reserve(base.num_edges());
    for (NodeId u = 0; u < n; ++u) {
      degrees[u] = static_cast<std::uint32_t>(base.degree(u));
      for (NodeId w : base.neighbors(u)) {
        if (w > u) {
          edges.insert(pack_edge(u, w));
          list.emplace_back(u, w);
        }
      }
    }
  }

  [[nodiscard]] bool has(NodeId u, NodeId v) const {
    return edges.count(pack_edge(u, v)) != 0;
  }

  void insert(NodeId u, NodeId v) {
    edges.insert(pack_edge(u, v));
    list.emplace_back(u, v);
    ++degrees[u];
    ++degrees[v];
  }

  void erase_at(std::size_t index) {
    const auto [u, v] = list[index];
    edges.erase(pack_edge(u, v));
    list[index] = list.back();
    list.pop_back();
    --degrees[u];
    --degrees[v];
  }

  std::unordered_set<std::uint64_t> edges;
  std::vector<std::pair<NodeId, NodeId>> list;
  std::vector<std::uint32_t> degrees;
};

constexpr std::size_t kAttempts = 64;

}  // namespace

std::vector<EdgeUpdate> make_update_stream(const Graph& base,
                                           UpdateWorkload workload,
                                           const UpdateStreamConfig& cfg,
                                           Rng& rng) {
  const std::size_t n = base.num_nodes();
  std::vector<EdgeUpdate> stream;
  if (n < 2 || cfg.count == 0) return stream;
  stream.reserve(cfg.count);
  EdgeState state(base);

  // Degree-biased endpoint: either end of a uniform base arc. Falls back to
  // uniform when the base has no arcs at all.
  const std::vector<NodeId>& arcs = base.targets();
  const auto biased_node = [&]() -> NodeId {
    if (arcs.empty() || !rng.chance(cfg.hub_bias)) {
      return static_cast<NodeId>(rng.below(n));
    }
    return arcs[rng.below(arcs.size())];
  };

  const auto try_insert = [&](bool prefer_uniform_u) -> bool {
    for (std::size_t attempt = 0; attempt < kAttempts; ++attempt) {
      const NodeId u = prefer_uniform_u ? static_cast<NodeId>(rng.below(n))
                                        : biased_node();
      const NodeId v = biased_node();
      if (u == v || state.has(u, v)) continue;
      state.insert(u, v);
      stream.push_back({u, v, true});
      return true;
    }
    return false;
  };

  const auto try_delete = [&]() -> bool {
    for (std::size_t attempt = 0; attempt < kAttempts; ++attempt) {
      if (state.list.empty()) return false;
      const std::size_t index = rng.below(state.list.size());
      const auto [u, v] = state.list[index];
      // Never isolate: every prefix of the stream keeps originally
      // connected vertices connected, so queries racing the stream cannot
      // land on an edgeless root.
      if (state.degrees[u] <= 1 || state.degrees[v] <= 1) continue;
      state.erase_at(index);
      stream.push_back({u, v, false});
      return true;
    }
    return false;
  };

  while (stream.size() < cfg.count) {
    bool produced = false;
    switch (workload) {
      case UpdateWorkload::kRecommenderChurn:
        if (rng.chance(cfg.delete_fraction)) {
          produced = try_delete() || try_insert(false);
        } else {
          produced = try_insert(false) || try_delete();
        }
        break;
      case UpdateWorkload::kCitationGrowth:
        produced = try_insert(true);
        break;
    }
    if (!produced) break;  // out of legal moves (dense/tiny corner case)
  }
  return stream;
}

}  // namespace meloppr::graph
