#include "graph/components.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace meloppr::graph {

std::size_t ComponentInfo::largest() const {
  std::size_t best = 0;
  for (std::size_t s : size) best = std::max(best, s);
  return best;
}

NodeId ComponentInfo::largest_id() const {
  MELO_CHECK(!size.empty());
  NodeId best = 0;
  for (NodeId c = 1; c < size.size(); ++c) {
    if (size[c] > size[best]) best = c;
  }
  return best;
}

ComponentInfo connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  ComponentInfo info;
  info.label.assign(n, kInvalidNode);

  std::vector<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (info.label[start] != kInvalidNode) continue;
    const auto component = static_cast<NodeId>(info.count++);
    info.size.push_back(0);
    queue.clear();
    queue.push_back(start);
    info.label[start] = component;
    for (std::size_t cursor = 0; cursor < queue.size(); ++cursor) {
      const NodeId u = queue[cursor];
      ++info.size[component];
      for (NodeId w : g.neighbors(u)) {
        if (info.label[w] == kInvalidNode) {
          info.label[w] = component;
          queue.push_back(w);
        }
      }
    }
  }
  return info;
}

std::vector<NodeId> largest_component_nodes(const Graph& g) {
  const ComponentInfo info = connected_components(g);
  const NodeId target = info.largest_id();
  std::vector<NodeId> nodes;
  nodes.reserve(info.size[target]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (info.label[v] == target) nodes.push_back(v);
  }
  return nodes;
}

}  // namespace meloppr::graph
