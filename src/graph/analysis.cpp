#include "graph/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/paper_graphs.hpp"
#include "util/assert.hpp"

namespace meloppr::graph {

DegreeStats degree_stats(const Graph& g) {
  MELO_CHECK(g.num_nodes() > 0);
  std::vector<std::size_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());

  auto pct = [&](double p) {
    const double rank = p * static_cast<double>(degrees.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, degrees.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(degrees[lo]) * (1.0 - frac) +
           static_cast<double>(degrees[hi]) * frac;
  };

  DegreeStats stats;
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = g.average_degree();
  stats.p50 = pct(0.50);
  stats.p90 = pct(0.90);
  stats.p99 = pct(0.99);
  return stats;
}

double sampled_clustering_coefficient(const Graph& g, std::size_t samples,
                                      Rng& rng) {
  MELO_CHECK(samples > 0);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < samples * 4 && counted < samples; ++i) {
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
    const auto adj = g.neighbors(v);
    if (adj.size() < 2) continue;
    std::size_t triangles = 0;
    for (std::size_t a = 0; a < adj.size(); ++a) {
      for (std::size_t b = a + 1; b < adj.size(); ++b) {
        if (g.has_edge(adj[a], adj[b])) ++triangles;
      }
    }
    const double pairs =
        static_cast<double>(adj.size()) *
        static_cast<double>(adj.size() - 1) / 2.0;
    total += static_cast<double>(triangles) / pairs;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double mean_ball_size(const Graph& g, unsigned radius, std::size_t samples,
                      Rng& rng) {
  MELO_CHECK(samples > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const NodeId seed = random_seed_node(g, rng);
    total += static_cast<double>(bfs_nodes(g, seed, radius).size());
  }
  return total / static_cast<double>(samples);
}

double ball_growth_factor(const Graph& g, unsigned radius,
                          std::size_t samples, Rng& rng) {
  MELO_CHECK(radius > 0);
  const double small = mean_ball_size(g, radius, samples, rng);
  const double big = mean_ball_size(g, 2 * radius, samples, rng);
  return small > 0.0 ? big / small : 0.0;
}

std::string structural_summary(const Graph& g, Rng& rng) {
  const DegreeStats deg = degree_stats(g);
  const ComponentInfo comps = connected_components(g);
  std::ostringstream os;
  os << g.summary() << " components=" << comps.count
     << " lcc=" << comps.largest()
     << " deg[p50=" << deg.p50 << " p99=" << deg.p99 << " skew="
     << deg.skew() << "]"
     << " clustering=" << sampled_clustering_coefficient(g, 200, rng)
     << " ball3->6 growth=" << ball_growth_factor(g, 3, 10, rng);
  return os.str();
}

}  // namespace meloppr::graph
