// Connected components — the global graph algorithm the paper's related
// work contrasts PPR against (Sec. III), and a practical necessity here:
// real SNAP citation graphs are fragmented, PPR queries only make sense
// within a component, and generator validation wants component statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace meloppr::graph {

struct ComponentInfo {
  /// Component id per node, in [0, count); ids are assigned in order of
  /// first appearance by node id, so component 0 contains node 0.
  std::vector<NodeId> label;
  std::size_t count = 0;
  /// Node count per component id.
  std::vector<std::size_t> size;

  [[nodiscard]] std::size_t largest() const;
  /// Id of the largest component (ties: smallest id).
  [[nodiscard]] NodeId largest_id() const;
  [[nodiscard]] bool same_component(NodeId u, NodeId v) const {
    return label[u] == label[v];
  }
};

/// Label propagation over an explicit BFS; O(|V| + |E|).
ComponentInfo connected_components(const Graph& g);

/// All nodes of the largest component, ascending.
std::vector<NodeId> largest_component_nodes(const Graph& g);

}  // namespace meloppr::graph
