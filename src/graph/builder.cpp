#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace meloppr::graph {

GraphBuilder::GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("GraphBuilder: num_nodes must be positive");
  }
  if (num_nodes > static_cast<std::size_t>(kInvalidNode)) {
    throw std::invalid_argument("GraphBuilder: num_nodes exceeds NodeId range");
  }
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::invalid_argument("GraphBuilder::add_edge: node id " +
                                std::to_string(std::max(u, v)) +
                                " out of range (n=" +
                                std::to_string(num_nodes_) + ")");
  }
  if (u == v) return;  // simple graph: ignore self-loops
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void GraphBuilder::add_edges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (auto [u, v] : edges) add_edge(u, v);
}

void GraphBuilder::reserve(std::size_t n) { edges_.reserve(n); }

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<std::uint64_t> offsets(num_nodes_ + 1, 0);
  for (auto [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(offsets[num_nodes_]);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (auto [u, v] : edges_) {
    targets[cursor[u]++] = v;
    targets[cursor[v]++] = u;
  }
  // Adjacency lists are filled in sorted order already, because edges_ is
  // sorted by (min, max): for a fixed u, neighbors v > u arrive sorted, but
  // neighbors v < u arrive via the (v, u) entries sorted by v. The two runs
  // interleave, so a per-node sort is still required.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace meloppr::graph
