// Structural graph statistics used to validate that the synthetic
// stand-ins actually have the family properties the substitution argument
// (DESIGN.md §2) relies on: degree skew for preferential-attachment graphs,
// clustering for community graphs, ball-growth rates for all of them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {

/// Degree-distribution summary.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// max/mean — a quick heavy-tail indicator (≫1 for BA/social graphs).
  [[nodiscard]] double skew() const {
    return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
  }
};

DegreeStats degree_stats(const Graph& g);

/// Average local clustering coefficient over `samples` random nodes with
/// degree ≥ 2 (exact triangle counting per sampled node). Community graphs
/// score high; BA/ER score near zero.
double sampled_clustering_coefficient(const Graph& g, std::size_t samples,
                                      Rng& rng);

/// Mean BFS-ball node count at the given radius over `samples` random
/// seeds — the quantity that decides MeLoPPR's memory footprint.
double mean_ball_size(const Graph& g, unsigned radius, std::size_t samples,
                      Rng& rng);

/// Exponential ball-growth factor: mean |ball(2r)| / |ball(r)|.
double ball_growth_factor(const Graph& g, unsigned radius,
                          std::size_t samples, Rng& rng);

/// One-line structural fingerprint for logs/docs.
std::string structural_summary(const Graph& g, Rng& rng);

}  // namespace meloppr::graph
