#include "graph/subgraph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/assert.hpp"

namespace meloppr::graph {

Subgraph::Subgraph(std::vector<std::uint64_t> offsets,
                   std::vector<NodeId> targets,
                   std::vector<NodeId> local_to_global,
                   std::vector<std::uint32_t> global_degree,
                   std::vector<std::uint16_t> depth, unsigned radius)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      local_to_global_(std::move(local_to_global)),
      global_degree_(std::move(global_degree)),
      depth_(std::move(depth)),
      radius_(radius) {
  const std::size_t n = local_to_global_.size();
  MELO_CHECK(offsets_.size() == n + 1);
  MELO_CHECK(global_degree_.size() == n);
  MELO_CHECK(depth_.size() == n);
  MELO_CHECK(offsets_.front() == 0);
  MELO_CHECK(offsets_.back() == targets_.size());
  MELO_CHECK(n > 0);
  MELO_CHECK(depth_[0] == 0);

  // Build the sorted membership index.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return local_to_global_[a] < local_to_global_[b];
  });
  sorted_globals_.resize(n);
  sorted_locals_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_globals_[i] = local_to_global_[order[i]];
    sorted_locals_[i] = order[i];
  }
  for (std::size_t i = 1; i < n; ++i) {
    MELO_CHECK_MSG(sorted_globals_[i - 1] < sorted_globals_[i],
                   "duplicate global id in sub-graph");
  }

  // Depth-prefix table: local ids are assigned in BFS discovery order, so
  // depth is nondecreasing in local id and each depth class is a contiguous
  // id range. The diffusion kernels bound every per-iteration pass with
  // these prefixes; precomputing them here (once per extraction) removes an
  // O(n) pass from every diffuse call.
  depth_prefix_.assign(radius_ + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    MELO_CHECK_MSG(v == 0 || depth_[v] >= depth_[v - 1],
                   "local ids not in BFS depth order");
    MELO_CHECK(depth_[v] <= radius_);
    ++depth_prefix_[depth_[v]];
  }
  std::uint32_t running = 0;
  for (std::uint32_t& p : depth_prefix_) {
    running += p;
    p = running;
  }
}

NodeId Subgraph::to_local(NodeId global) const {
  const auto it = std::lower_bound(sorted_globals_.begin(),
                                   sorted_globals_.end(), global);
  if (it == sorted_globals_.end() || *it != global) return kInvalidNode;
  return sorted_locals_[static_cast<std::size_t>(
      it - sorted_globals_.begin())];
}

std::size_t Subgraph::frontier_count() const {
  std::size_t count = 0;
  for (auto d : depth_) {
    if (d == radius_) ++count;
  }
  return count;
}

std::size_t Subgraph::bytes() const {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         targets_.capacity() * sizeof(NodeId) +
         local_to_global_.capacity() * sizeof(NodeId) +
         global_degree_.capacity() * sizeof(std::uint32_t) +
         depth_.capacity() * sizeof(std::uint16_t) +
         sorted_globals_.capacity() * sizeof(NodeId) +
         sorted_locals_.capacity() * sizeof(NodeId) +
         depth_prefix_.capacity() * sizeof(std::uint32_t);
}

void Subgraph::validate() const {
  const std::size_t n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      MELO_CHECK(adj[i] < n);
      MELO_CHECK(adj[i] != v);
      if (i > 0) MELO_CHECK(adj[i - 1] < adj[i]);
    }
    MELO_CHECK_MSG(local_degree(v) <= global_degree(v),
                   "in-ball degree exceeds global degree at local " << v);
    // Interior nodes must keep their complete adjacency (exactness).
    if (depth_[v] < radius_) {
      MELO_CHECK_MSG(local_degree(v) == global_degree(v),
                     "interior node " << v << " (depth " << depth_[v]
                                      << ") lost neighbors");
    }
    // Depth consistency: neighbors differ by at most one BFS level.
    for (NodeId w : adj) {
      const int dv = depth_[v];
      const int dw = depth_[w];
      MELO_CHECK_MSG(std::abs(dv - dw) <= 1,
                     "BFS depth jump between locals " << v << " and " << w);
    }
  }
  // Symmetry of arcs.
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : neighbors(v)) {
      const auto adj = neighbors(w);
      MELO_CHECK(std::binary_search(adj.begin(), adj.end(), v));
    }
  }
  // Membership index round-trips.
  for (NodeId v = 0; v < n; ++v) {
    MELO_CHECK(to_local(to_global(v)) == v);
  }
}

std::string Subgraph::summary() const {
  std::ostringstream os;
  os << "ball(root=" << root_global() << ", r=" << radius_
     << "): |V|=" << num_nodes() << " |E|=" << num_edges()
     << " frontier=" << frontier_count();
  return os.str();
}

}  // namespace meloppr::graph
