// Synthetic graph generators.
//
// The paper evaluates on six SNAP datasets that are not redistributable in
// this offline environment (see DESIGN.md §2). These generators produce
// graphs of matching |V|, ≈|E| and family: preferential attachment for the
// citation graphs (heavy-tailed degrees, tree-like periphery), a planted
// community model for the co-purchase/co-author graphs (high clustering,
// dense balls), and R-MAT for the heavy-tailed social graph. MeLoPPR's
// reported behaviour depends on exactly these structural properties — ball
// growth rate, degree skew, locality — not on node identities.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {

/// G(n, m): n nodes, m uniformly random distinct edges.
/// Throws std::invalid_argument if m exceeds the simple-graph maximum.
Graph erdos_renyi(std::size_t n, std::size_t m, Rng& rng);

/// Barabási–Albert preferential attachment. Each arriving node attaches to
/// `m` existing nodes chosen proportionally to degree; `m` is drawn per node
/// uniformly from [m_min, m_max] so fractional average degrees (e.g.
/// citeseer's |E|/|V| ≈ 1.4) are reachable. Produces one connected
/// component.
Graph barabasi_albert(std::size_t n, std::size_t m_min, std::size_t m_max,
                      Rng& rng);

/// Fractional-m Barabási–Albert: each node attaches to ⌊m_avg⌋ or ⌈m_avg⌉
/// targets (Bernoulli on the fractional part) so that E[|E|] ≈ m_avg·n.
/// This is how the paper-graph factory hits a dataset's exact |E|/|V|.
Graph barabasi_albert(std::size_t n, double m_avg, Rng& rng);

/// Watts–Strogatz small world: ring of n nodes, each wired to k nearest
/// neighbors (k even), every edge rewired with probability beta.
Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// R-MAT / Kronecker-style generator (Chakrabarti et al.). Samples
/// `num_edges` arcs by recursively descending a 2^scale × 2^scale adjacency
/// matrix with quadrant probabilities (a, b, c, d); duplicates and
/// self-loops are dropped, so the final edge count is slightly below the
/// request. Node count is 2^scale (isolated tail nodes possible, as in real
/// social crawls).
Graph rmat(unsigned scale, std::size_t num_edges, double a, double b,
           double c, Rng& rng);

/// Planted-community graph: `communities` groups with power-law-ish sizes;
/// `intra_avg_degree` expected within-community edges per node (clique-ish
/// locality) and `inter_avg_degree` expected cross-community edges per node
/// wired by preferential attachment. Models com-amazon / com-dblp locality.
Graph community_graph(std::size_t n, std::size_t communities,
                      double intra_avg_degree, double inter_avg_degree,
                      Rng& rng);

/// Deterministic tiny fixtures used across tests.
namespace fixtures {

/// The 4-node example of Fig. 1: v1–v2, v1–v3, v1–v4, v2–v3, v2–v4, v3–v4
/// minus edges so that v1 has degree 3 and the square v2-v3-v4 closes —
/// concretely: edges {0,1},{0,2},{0,3},{1,3},{2,3}. Node 0 is the seed of
/// the worked example.
Graph fig1_graph();

/// Path 0-1-2-...-(n-1).
Graph path(std::size_t n);

/// Cycle of length n.
Graph cycle(std::size_t n);

/// Star: center 0 connected to 1..n-1.
Graph star(std::size_t n);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Balanced binary tree with n nodes (node i has children 2i+1, 2i+2).
Graph binary_tree(std::size_t n);

/// Two K_{n/2} cliques joined by a single bridge edge — the classic
/// locality stress case for PPR.
Graph barbell(std::size_t half);

}  // namespace fixtures

}  // namespace meloppr::graph
