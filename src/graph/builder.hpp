// Mutable edge accumulator that produces a validated CSR Graph.
//
// Generators and file loaders feed edges in arbitrary order with possible
// duplicates; the builder normalizes (dedup, drop self-loops, sort adjacency)
// so that Graph's invariants hold by construction.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace meloppr::graph {

class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id universe [0, num_nodes).
  explicit GraphBuilder(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  /// Queues an undirected edge {u, v}. Self-loops are silently dropped
  /// (simple graph); duplicates are removed at build() time. Ids must be in
  /// range — out-of-range ids throw std::invalid_argument.
  void add_edge(NodeId u, NodeId v);

  /// Bulk variant of add_edge.
  void add_edges(const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Edges queued so far (pre-dedup, self-loops already dropped).
  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Reserves space for `n` pending edges.
  void reserve(std::size_t n);

  /// Produces the CSR graph and leaves the builder empty. Complexity
  /// O(E log E) for the dedup sort.
  [[nodiscard]] Graph build();

 private:
  std::size_t num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  ///< canonical (min,max)
};

}  // namespace meloppr::graph
