#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace meloppr::graph {

Graph::Graph(std::vector<std::uint64_t> offsets, std::vector<NodeId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  MELO_CHECK(!offsets_.empty());
  MELO_CHECK(offsets_.front() == 0);
  MELO_CHECK(offsets_.back() == targets_.size());
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    MELO_CHECK_MSG(offsets_[v] <= offsets_[v + 1],
                   "non-monotone CSR offsets at node " << v);
    max_degree_ = std::max(
        max_degree_, static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]));
  }
#ifndef NDEBUG
  validate();
#endif
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  MELO_CHECK(u < num_nodes() && v < num_nodes());
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(num_arcs()) / static_cast<double>(num_nodes());
}

std::size_t Graph::bytes() const {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         targets_.capacity() * sizeof(NodeId);
}

void Graph::validate() const {
  const std::size_t n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      MELO_CHECK_MSG(adj[i] < n, "edge target out of range at node " << v);
      MELO_CHECK_MSG(adj[i] != v, "self-loop at node " << v);
      if (i > 0) {
        MELO_CHECK_MSG(adj[i - 1] < adj[i],
                       "adjacency of node " << v
                                            << " not strictly sorted");
      }
    }
  }
  // Symmetry: u in adj(v) implies v in adj(u).
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : neighbors(v)) {
      MELO_CHECK_MSG(has_edge(u, v),
                     "asymmetric edge " << v << "→" << u);
    }
  }
}

std::size_t Graph::isolated_count() const {
  std::size_t count = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (degree(v) == 0) ++count;
  }
  return count;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "|V|=" << num_nodes() << " |E|=" << num_edges()
     << " davg=" << average_degree() << " dmax=" << max_degree();
  return os.str();
}

}  // namespace meloppr::graph
