// Update-stream workload generators for the dynamic-graph path.
//
// A DynamicGraph is only as testable as the update sequences thrown at it,
// so these generators produce *valid* streams against the evolving edge
// state (inserts only of absent edges, deletes only of present ones — the
// sequences apply cleanly in order) across any base graph the generator
// suite produces (ER/BA/WS/RMAT/community alike):
//
//   * recommender churn — mixed insert/delete traffic with degree-biased
//     endpoints: hot items gain and lose edges constantly, the workload
//     that stresses invalidation precision (hub updates touch many cached
//     balls, cold-pair updates touch few). Deletes never isolate a vertex
//     (both endpoints keep degree >= 1), so concurrent queries racing the
//     stream can never pick up a child root with no edges.
//   * citation growth — insert-only preferential attachment: a "young"
//     vertex (uniform) cites established hubs (degree-biased), the
//     append-mostly regime where surgical invalidation should shine.
//
// Degree bias samples an endpoint of a uniform BASE arc — proportional to
// base-graph degree, cheap, and stable as the stream evolves.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {

enum class UpdateWorkload {
  kRecommenderChurn,
  kCitationGrowth,
};

struct UpdateStreamConfig {
  /// Updates to generate.
  std::size_t count = 0;
  /// Fraction of churn steps that attempt a delete (ignored by citation
  /// growth, which is insert-only).
  double delete_fraction = 0.3;
  /// Probability an insert endpoint is degree-biased rather than uniform.
  double hub_bias = 0.75;
};

/// Generates a stream valid against `base` evolved by its own prefix:
/// applying the result to DynamicGraph(base) in order never throws, and no
/// prefix isolates a vertex that had degree >= 1. May return fewer than
/// `count` updates only if the graph runs out of legal moves (dense or
/// edgeless corner cases).
[[nodiscard]] std::vector<EdgeUpdate> make_update_stream(
    const Graph& base, UpdateWorkload workload, const UpdateStreamConfig& cfg,
    Rng& rng);

}  // namespace meloppr::graph
