#include "graph/dynamic_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace meloppr::graph {
namespace {

/// Inserts `v` into a sorted vector if absent; returns true when inserted.
bool sorted_insert(std::vector<NodeId>& vec, NodeId v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

/// Removes `v` from a sorted vector if present; returns true when removed.
bool sorted_erase(std::vector<NodeId>& vec, NodeId v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool sorted_contains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base, DynamicGraphConfig config)
    : base_(std::move(base)),
      config_(config),
      num_nodes_(base_.num_nodes()),
      num_edges_(base_.num_edges()) {
  if (config_.compaction_fraction < 0.0) {
    throw std::invalid_argument(
        "DynamicGraph: compaction_fraction must be >= 0");
  }
}

std::uint64_t DynamicGraph::apply(const EdgeUpdate& update) {
  util::WriterLock lock(mu_);
  const std::size_t n = num_nodes_;
  if (update.u >= n || update.v >= n) {
    throw std::invalid_argument("DynamicGraph::apply: endpoint out of range");
  }
  if (update.u == update.v) {
    throw std::invalid_argument("DynamicGraph::apply: self-loop");
  }
  const bool present = has_edge_locked(update.u, update.v);
  if (update.insert && present) {
    throw std::invalid_argument(
        "DynamicGraph::apply: insert of edge already present {" +
        std::to_string(update.u) + ", " + std::to_string(update.v) + "}");
  }
  if (!update.insert && !present) {
    throw std::invalid_argument(
        "DynamicGraph::apply: delete of absent edge {" +
        std::to_string(update.u) + ", " + std::to_string(update.v) + "}");
  }

  // Mutate both half-edges. An insert that undoes a prior delete shrinks
  // the overlay instead of growing it, and vice versa.
  const auto apply_half = [&](NodeId from, NodeId to) {
    VertexDelta& delta = deltas_[from];
    if (update.insert) {
      if (sorted_erase(delta.removed, to)) {
        --delta_half_edges_;
      } else {
        sorted_insert(delta.added, to);
        ++delta_half_edges_;
      }
    } else {
      if (sorted_erase(delta.added, to)) {
        --delta_half_edges_;
      } else {
        sorted_insert(delta.removed, to);
        ++delta_half_edges_;
      }
    }
    if (delta.added.empty() && delta.removed.empty()) deltas_.erase(from);
  };
  apply_half(update.u, update.v);
  apply_half(update.v, update.u);
  num_edges_ += update.insert ? 1 : static_cast<std::size_t>(-1);

  const std::uint64_t next = version_.load(std::memory_order_relaxed) + 1;
  history_.push_back({update, next});
  while (history_.size() > config_.history_capacity) history_.pop_front();

  // Listeners (cache invalidation) run BEFORE the version bump publishes:
  // a thread observing version >= next also observes the purged cache.
  for (const ListenerSlot& slot : listeners_) slot.fn(update, next);
  version_.store(next, std::memory_order_release);

  if (config_.compaction_fraction > 0.0) {
    const std::size_t threshold = std::max<std::size_t>(
        64, static_cast<std::size_t>(config_.compaction_fraction *
                                     static_cast<double>(base_.num_arcs())));
    if (delta_half_edges_ >= threshold) compact_locked();
  }
  return next;
}

std::size_t DynamicGraph::num_nodes() const {
  // The node universe is fixed at construction; no lock needed.
  return num_nodes_;
}

std::size_t DynamicGraph::num_edges() const {
  util::ReaderLock lock(mu_);
  return num_edges_;
}

std::size_t DynamicGraph::degree(NodeId v) const {
  util::ReaderLock lock(mu_);
  if (v >= num_nodes_) {
    throw std::invalid_argument("DynamicGraph::degree: node out of range");
  }
  return degree_locked(v);
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  util::ReaderLock lock(mu_);
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  return has_edge_locked(u, v);
}

std::size_t DynamicGraph::delta_edges() const {
  util::ReaderLock lock(mu_);
  return delta_half_edges_;
}

std::size_t DynamicGraph::compactions() const {
  util::ReaderLock lock(mu_);
  return compactions_;
}

bool DynamicGraph::has_edge_locked(NodeId u, NodeId v) const {
  const auto it = deltas_.find(u);
  if (it != deltas_.end()) {
    if (sorted_contains(it->second.added, v)) return true;
    if (sorted_contains(it->second.removed, v)) return false;
  }
  return base_.has_edge(u, v);
}

std::size_t DynamicGraph::degree_locked(NodeId v) const {
  std::size_t d = base_.degree(v);
  const auto it = deltas_.find(v);
  if (it != deltas_.end()) {
    d += it->second.added.size();
    d -= it->second.removed.size();
  }
  return d;
}

void DynamicGraph::merged_neighbors_locked(NodeId v,
                                           std::vector<NodeId>& out) const {
  out.clear();
  const std::span<const NodeId> base = base_.neighbors(v);
  const auto it = deltas_.find(v);
  if (it == deltas_.end()) {
    out.assign(base.begin(), base.end());
    return;
  }
  const std::vector<NodeId>& added = it->second.added;
  const std::vector<NodeId>& removed = it->second.removed;
  out.reserve(base.size() + added.size());
  // One sorted pass: base minus removed, merged with added. `removed` is a
  // subset of base and `added` is disjoint from it, so plain merge keeps
  // the output sorted and duplicate-free — the GraphBuilder invariant a
  // from-scratch rebuild would produce, which is what makes incremental
  // BFS discovery order identical to the rebuilt graph's.
  std::size_t bi = 0;
  std::size_t ai = 0;
  std::size_t ri = 0;
  while (bi < base.size() || ai < added.size()) {
    if (bi < base.size() && ri < removed.size() && base[bi] == removed[ri]) {
      ++bi;
      ++ri;
      continue;
    }
    if (ai >= added.size() || (bi < base.size() && base[bi] < added[ai])) {
      out.push_back(base[bi++]);
    } else {
      out.push_back(added[ai++]);
    }
  }
}

Subgraph DynamicGraph::extract_ball(NodeId root, unsigned radius,
                                    std::uint64_t* version_out) const {
  util::ReaderLock lock(mu_);
  if (version_out != nullptr) {
    *version_out = version_.load(std::memory_order_relaxed);
  }
  if (root >= num_nodes_) {
    throw std::invalid_argument("DynamicGraph::extract_ball: seed " +
                                std::to_string(root) + " out of range");
  }
  if (degree_locked(root) == 0) {
    throw std::invalid_argument("DynamicGraph::extract_ball: seed " +
                                std::to_string(root) + " is isolated");
  }

  // The same BFS as graph::extract_ball, over merged adjacency. Each
  // member's merged row is computed once and kept — the count and fill
  // passes below reuse it.
  std::unordered_map<NodeId, NodeId> global_to_local;
  std::vector<NodeId> locals;
  std::vector<std::uint16_t> depth;
  std::vector<std::vector<NodeId>> rows;  // local -> merged adjacency
  global_to_local.emplace(root, 0);
  locals.push_back(root);
  depth.push_back(0);

  for (std::size_t cursor = 0; cursor < locals.size(); ++cursor) {
    const std::uint16_t d = depth[cursor];
    if (d >= radius) continue;
    rows.resize(locals.size());
    merged_neighbors_locked(locals[cursor], rows[cursor]);
    for (NodeId w : rows[cursor]) {
      if (global_to_local.emplace(w, static_cast<NodeId>(locals.size()))
              .second) {
        locals.push_back(w);
        depth.push_back(static_cast<std::uint16_t>(d + 1));
      }
    }
  }
  const std::size_t n = locals.size();
  rows.resize(n);
  for (NodeId lu = 0; lu < n; ++lu) {
    // Frontier nodes (depth == radius) were never expanded; fill their rows
    // now so the induced passes see every member's adjacency.
    if (rows[lu].empty()) merged_neighbors_locked(locals[lu], rows[lu]);
  }

  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> global_degree(n);
  for (NodeId lu = 0; lu < n; ++lu) {
    global_degree[lu] = static_cast<std::uint32_t>(rows[lu].size());
    std::uint64_t kept = 0;
    for (NodeId gw : rows[lu]) {
      if (global_to_local.count(gw) != 0) ++kept;
    }
    offsets[lu + 1] = offsets[lu] + kept;
  }
  std::vector<NodeId> targets(offsets[n]);
  for (NodeId lu = 0; lu < n; ++lu) {
    std::uint64_t pos = offsets[lu];
    for (NodeId gw : rows[lu]) {
      const auto it = global_to_local.find(gw);
      if (it != global_to_local.end()) targets[pos++] = it->second;
    }
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[lu]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[lu + 1]));
  }
  return Subgraph(std::move(offsets), std::move(targets), std::move(locals),
                  std::move(global_degree), std::move(depth), radius);
}

Graph DynamicGraph::materialize() const {
  util::ReaderLock lock(mu_);
  return materialize_locked();
}

Graph DynamicGraph::materialize_locked() const {
  GraphBuilder builder(num_nodes_);
  builder.reserve(num_edges_);
  const std::size_t n = num_nodes_;
  for (NodeId u = 0; u < n; ++u) {
    const auto it = deltas_.find(u);
    const std::vector<NodeId>* removed =
        it != deltas_.end() ? &it->second.removed : nullptr;
    for (NodeId w : base_.neighbors(u)) {
      if (w <= u) continue;  // each undirected edge once
      if (removed != nullptr && sorted_contains(*removed, w)) continue;
      builder.add_edge(u, w);
    }
  }
  for (const auto& [u, delta] : deltas_) {
    for (NodeId w : delta.added) {
      if (w > u) builder.add_edge(u, w);
    }
  }
  return builder.build();
}

bool DynamicGraph::touched_since(const Subgraph& ball,
                                 std::uint64_t since_version,
                                 std::uint64_t* checked_version_out) const {
  util::ReaderLock lock(mu_);
  const std::uint64_t now = version_.load(std::memory_order_relaxed);
  if (checked_version_out != nullptr) *checked_version_out = now;
  if (since_version >= now) return false;
  // The window must reach back to since_version + 1, else be conservative.
  if (history_.empty() || history_.front().version > since_version + 1) {
    return true;
  }
  for (auto it = history_.rbegin();
       it != history_.rend() && it->version > since_version; ++it) {
    if (ball.contains(it->update.u) || ball.contains(it->update.v)) {
      return true;
    }
  }
  return false;
}

std::size_t DynamicGraph::add_update_listener(UpdateListener listener) {
  util::WriterLock lock(mu_);
  const std::size_t id = next_listener_id_++;
  listeners_.push_back({id, std::move(listener)});
  return id;
}

void DynamicGraph::remove_listener(std::size_t id) {
  util::WriterLock lock(mu_);
  std::erase_if(listeners_,
                [id](const ListenerSlot& slot) { return slot.id == id; });
}

void DynamicGraph::compact_locked() {
  base_ = materialize_locked();
  deltas_.clear();
  delta_half_edges_ = 0;
  ++compactions_;
}

}  // namespace meloppr::graph
