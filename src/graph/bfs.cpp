#include "graph/bfs.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/assert.hpp"

namespace meloppr::graph {

Subgraph extract_ball(const Graph& g, NodeId seed, unsigned radius,
                      BfsStats* stats) {
  if (seed >= g.num_nodes()) {
    throw std::invalid_argument("extract_ball: seed " + std::to_string(seed) +
                                " out of range");
  }
  if (g.degree(seed) == 0) {
    throw std::invalid_argument("extract_ball: seed " + std::to_string(seed) +
                                " is isolated");
  }

  // BFS with ball-proportional state. `locals` doubles as the BFS queue:
  // nodes are appended in discovery order and scanned with a cursor.
  std::unordered_map<NodeId, NodeId> global_to_local;
  std::vector<NodeId> locals;           // local -> global
  std::vector<std::uint16_t> depth;     // local -> BFS depth
  global_to_local.emplace(seed, 0);
  locals.push_back(seed);
  depth.push_back(0);

  std::size_t arcs_scanned = 0;
  for (std::size_t cursor = 0; cursor < locals.size(); ++cursor) {
    const std::uint16_t d = depth[cursor];
    if (d >= radius) continue;  // frontier: do not expand further
    const NodeId u_global = locals[cursor];
    for (NodeId w : g.neighbors(u_global)) {
      ++arcs_scanned;
      if (global_to_local.emplace(w, static_cast<NodeId>(locals.size()))
              .second) {
        locals.push_back(w);
        depth.push_back(static_cast<std::uint16_t>(d + 1));
      }
    }
  }

  const std::size_t n = locals.size();

  // Induced arcs: for each member, keep the neighbors that are members.
  // Interior nodes keep everything (all their neighbors are in the ball);
  // frontier nodes get truncated, which diffusion never observes.
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> global_degree(n);
  for (NodeId lu = 0; lu < n; ++lu) {
    const NodeId gu = locals[lu];
    global_degree[lu] = static_cast<std::uint32_t>(g.degree(gu));
    std::uint64_t kept = 0;
    for (NodeId gw : g.neighbors(gu)) {
      if (global_to_local.count(gw) != 0) ++kept;
    }
    offsets[lu + 1] = offsets[lu] + kept;
  }
  std::vector<NodeId> targets(offsets[n]);
  for (NodeId lu = 0; lu < n; ++lu) {
    std::uint64_t pos = offsets[lu];
    for (NodeId gw : g.neighbors(locals[lu])) {
      const auto it = global_to_local.find(gw);
      if (it != global_to_local.end()) targets[pos++] = it->second;
    }
    // Local ids are assigned in BFS order, not global order, so the induced
    // adjacency must be re-sorted to satisfy the Subgraph invariant.
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[lu]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[lu + 1]));
  }

  if (stats != nullptr) {
    stats->nodes_visited = n;
    stats->arcs_scanned = arcs_scanned;
  }
  return Subgraph(std::move(offsets), std::move(targets), std::move(locals),
                  std::move(global_degree), std::move(depth), radius);
}

std::vector<NodeId> bfs_nodes(const Graph& g, NodeId seed, unsigned radius) {
  MELO_CHECK(seed < g.num_nodes());
  std::unordered_map<NodeId, std::uint16_t> dist;
  std::vector<NodeId> order;
  dist.emplace(seed, 0);
  order.push_back(seed);
  for (std::size_t cursor = 0; cursor < order.size(); ++cursor) {
    const NodeId u = order[cursor];
    const std::uint16_t d = dist.at(u);
    if (d >= radius) continue;
    for (NodeId w : g.neighbors(u)) {
      if (dist.emplace(w, static_cast<std::uint16_t>(d + 1)).second) {
        order.push_back(w);
      }
    }
  }
  return order;
}

int bounded_distance(const Graph& g, NodeId from, NodeId to,
                     unsigned max_radius) {
  MELO_CHECK(from < g.num_nodes() && to < g.num_nodes());
  if (from == to) return 0;
  std::unordered_map<NodeId, std::uint16_t> dist;
  std::vector<NodeId> queue;
  dist.emplace(from, 0);
  queue.push_back(from);
  for (std::size_t cursor = 0; cursor < queue.size(); ++cursor) {
    const NodeId u = queue[cursor];
    const std::uint16_t d = dist.at(u);
    if (d >= max_radius) continue;
    for (NodeId w : g.neighbors(u)) {
      if (dist.emplace(w, static_cast<std::uint16_t>(d + 1)).second) {
        if (w == to) return d + 1;
        queue.push_back(w);
      }
    }
  }
  return -1;
}

}  // namespace meloppr::graph
