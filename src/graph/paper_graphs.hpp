// Factory for the six evaluation graphs of Table II.
//
// The paper uses SNAP datasets; this repository substitutes calibrated
// synthetic graphs (DESIGN.md §2). Each spec records the dataset's published
// |V| and |E| and the generator family chosen to match its structure:
//
//   G1 citeseer     |V|=3,327     |E|=4,676     citation   → BA, m̄=1.406
//   G2 cora         |V|=2,708     |E|=5,278     citation   → BA, m̄=1.949
//   G3 pubmed       |V|=19,717    |E|=44,327    citation   → BA, m̄=2.248
//   G4 com-amazon   |V|=334,863   |E|=925,872   co-purchase→ communities
//   G5 com-dblp     |V|=317,080   |E|=1,049,866 co-author  → communities
//   G6 com-youtube  |V|=1,134,890 |E|=2,987,624 social     → BA (heavy tail)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {

enum class PaperGraphId {
  kG1Citeseer,
  kG2Cora,
  kG3Pubmed,
  kG4Amazon,
  kG5Dblp,
  kG6Youtube,
};

enum class GraphFamily {
  kCitation,    ///< preferential attachment, sparse, tree-like periphery
  kCommunity,   ///< planted communities, high clustering
  kSocial,      ///< heavy-tailed preferential attachment
};

struct PaperGraphSpec {
  PaperGraphId id;
  std::string label;          ///< "G1" … "G6"
  std::string name;           ///< dataset name, e.g. "citeseer"
  std::size_t vertices;       ///< paper-reported |V|
  std::size_t edges;          ///< paper-reported |E|
  GraphFamily family;

  [[nodiscard]] double edge_density() const {
    return static_cast<double>(edges) / static_cast<double>(vertices);
  }
};

/// All six specs in paper order.
const std::vector<PaperGraphSpec>& paper_graph_specs();

/// Spec lookup by id.
const PaperGraphSpec& spec_for(PaperGraphId id);

/// The three small graphs (G1–G3) used by Fig. 6 and the ablations.
std::vector<PaperGraphId> small_paper_graphs();

/// All six ids in paper order.
std::vector<PaperGraphId> all_paper_graphs();

/// Generates the calibrated stand-in. `scale` ∈ (0, 1] shrinks |V| (and |E|
/// proportionally) for quick runs: scale=1 reproduces the dataset's size,
/// scale=0.01 gives a sanity-check miniature. |V| is floored at 64.
Graph make_paper_graph(PaperGraphId id, Rng& rng, double scale = 1.0);

/// Samples a random seed node that has at least one neighbor (PPR from an
/// isolated seed is undefined).
NodeId random_seed_node(const Graph& g, Rng& rng);

}  // namespace meloppr::graph
