#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/builder.hpp"

namespace meloppr::graph {

Graph load_edge_list(std::istream& in) {
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("load_edge_list: parse error at line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    // Two statements: argument evaluation order is unspecified, and the
    // first-appearance id assignment must see u before v.
    const NodeId iu = intern(u);
    const NodeId iv = intern(v);
    edges.emplace_back(iu, iv);
  }
  if (remap.empty()) {
    throw std::runtime_error("load_edge_list: no edges in input");
  }
  GraphBuilder builder(remap.size());
  builder.add_edges(edges);
  return builder.build();
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_edge_list_file: cannot open " + path);
  }
  return load_edge_list(in);
}

void save_edge_list(const Graph& g, std::ostream& out) {
  out << "# meloppr edge list: |V|=" << g.num_nodes()
      << " |E|=" << g.num_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) out << u << '\t' << v << '\n';
    }
  }
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_edge_list_file: cannot open " + path);
  }
  save_edge_list(g, out);
  if (!out) {
    throw std::runtime_error("save_edge_list_file: write failed for " + path);
  }
}

namespace {
constexpr char kMagic[4] = {'M', 'E', 'L', 'O'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_binary: truncated input");
  return value;
}
}  // namespace

void save_binary(const Graph& g, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kBinaryVersion);
  write_pod(out, static_cast<std::uint64_t>(g.num_nodes()));
  write_pod(out, static_cast<std::uint64_t>(g.num_arcs()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(g.targets().size() *
                                         sizeof(NodeId)));
  if (!out) throw std::runtime_error("save_binary: write failed");
}

Graph load_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_binary: not a MELO binary graph");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kBinaryVersion) {
    throw std::runtime_error("load_binary: unsupported version " +
                             std::to_string(version));
  }
  const auto nodes = read_pod<std::uint64_t>(in);
  const auto arcs = read_pod<std::uint64_t>(in);
  std::vector<std::uint64_t> offsets(nodes + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() *
                                       sizeof(std::uint64_t)));
  std::vector<NodeId> targets(arcs);
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(NodeId)));
  if (!in) throw std::runtime_error("load_binary: truncated arrays");
  // Graph's constructor re-validates the CSR invariants, so a corrupted
  // file fails loudly instead of producing a bad graph.
  return Graph(std::move(offsets), std::move(targets));
}

void save_binary_file(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_binary_file: cannot open " + path);
  }
  save_binary(g, out);
}

Graph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_binary_file: cannot open " + path);
  }
  return load_binary(in);
}

}  // namespace meloppr::graph
