// BFS-ball sub-graph with local↔global relabeling.
//
// MeLoPPR never materializes state over the whole graph: every diffusion runs
// on the induced sub-graph of a depth-l BFS ball, with node ids relabeled to
// a dense local range [0, n). Two properties make the in-ball diffusion
// *exact* (DESIGN.md invariant 2):
//
//   1. Every node at depth < l keeps its complete adjacency list inside the
//      ball (all its neighbors are at depth ≤ l).
//   2. The random-walk matrix W = A·D⁻¹ divides by each node's **global**
//      degree, which the sub-graph stores per member node. Frontier nodes
//      (depth == l) have truncated adjacency, but a walk of length ≤ l never
//      steps out of them, so the truncation is unobservable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace meloppr::graph {

/// Immutable relabeled BFS ball. Local node 0 is always the BFS root.
class Subgraph {
 public:
  Subgraph() = default;

  /// Assembled by extract_ball(); all arrays are indexed by local id.
  Subgraph(std::vector<std::uint64_t> offsets, std::vector<NodeId> targets,
           std::vector<NodeId> local_to_global,
           std::vector<std::uint32_t> global_degree,
           std::vector<std::uint16_t> depth, unsigned radius);

  [[nodiscard]] std::size_t num_nodes() const {
    return local_to_global_.size();
  }

  /// Undirected edges inside the ball (arcs / 2).
  [[nodiscard]] std::size_t num_edges() const { return targets_.size() / 2; }
  [[nodiscard]] std::size_t num_arcs() const { return targets_.size(); }

  /// In-ball adjacency (local ids), sorted.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId local) const {
    return {targets_.data() + offsets_[local],
            targets_.data() + offsets_[local + 1]};
  }

  /// In-ball degree (may be smaller than global_degree for frontier nodes).
  [[nodiscard]] std::size_t local_degree(NodeId local) const {
    return static_cast<std::size_t>(offsets_[local + 1] - offsets_[local]);
  }

  /// Degree of the node in the *full* graph — the denominator of W.
  [[nodiscard]] std::uint32_t global_degree(NodeId local) const {
    return global_degree_[local];
  }

  /// Contiguous global-degree array (one entry per local id) — the SIMD
  /// diffusion kernels stream it lane-wise instead of calling
  /// global_degree() per element.
  [[nodiscard]] const std::uint32_t* global_degrees() const {
    return global_degree_.data();
  }

  [[nodiscard]] NodeId to_global(NodeId local) const {
    return local_to_global_[local];
  }

  /// Local id of a global node, or kInvalidNode if outside the ball.
  /// O(log n) via the sorted membership index.
  [[nodiscard]] NodeId to_local(NodeId global) const;

  [[nodiscard]] bool contains(NodeId global) const {
    return to_local(global) != kInvalidNode;
  }

  /// BFS depth of a member node (root has depth 0).
  [[nodiscard]] std::uint16_t depth(NodeId local) const {
    return depth_[local];
  }

  /// depth_prefix()[d] = number of nodes with depth ≤ d, for d ∈ [0, radius].
  /// Valid because local ids follow BFS discovery order (checked at
  /// construction), so each depth class is a contiguous prefix of the id
  /// range — the property every bounded diffusion pass relies on.
  [[nodiscard]] std::span<const std::uint32_t> depth_prefix() const {
    return depth_prefix_;
  }

  /// The radius the ball was extracted with (≥ max depth present).
  [[nodiscard]] unsigned radius() const { return radius_; }

  /// Global id of the BFS root.
  [[nodiscard]] NodeId root_global() const { return local_to_global_[0]; }

  /// Nodes at depth == radius (candidates whose adjacency is truncated).
  [[nodiscard]] std::size_t frontier_count() const;

  /// Payload bytes of the sub-graph representation: CSR arrays, relabeling
  /// table, global-degree table, depth table and the membership index.
  /// This is the quantity MeLoPPR-CPU's memory meter charges per ball.
  [[nodiscard]] std::size_t bytes() const;

  /// Structural validation (sorted adjacency, symmetric arcs, depth
  /// consistency, membership index coherent). Throws InvariantViolation.
  void validate() const;

  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<NodeId>& local_to_global() const {
    return local_to_global_;
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<NodeId> local_to_global_;
  std::vector<std::uint32_t> global_degree_;
  std::vector<std::uint16_t> depth_;
  /// Membership index: global ids sorted, parallel local ids.
  std::vector<NodeId> sorted_globals_;
  std::vector<NodeId> sorted_locals_;
  /// depth_prefix_[d] = count of nodes with depth ≤ d (see depth_prefix()).
  std::vector<std::uint32_t> depth_prefix_;
  unsigned radius_ = 0;
};

}  // namespace meloppr::graph
