// Depth-limited BFS and ball extraction — the CPU-side "sub-graph
// preparation" step of the paper's co-design (Fig. 4: "BFS from seed",
// "BFS from v_i1", ...). Its wall-clock share of a query is the light-blue
// "BFS time percentage" bar in Fig. 7.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace meloppr::graph {

/// Statistics of one extraction, fed to latency/memory accounting.
struct BfsStats {
  std::size_t nodes_visited = 0;
  std::size_t arcs_scanned = 0;  ///< adjacency entries touched by the BFS
};

/// Extracts the induced sub-graph of the depth-`radius` BFS ball around
/// `seed`. Allocation is proportional to the ball (hash-based visited set),
/// never to the full graph — the whole point of MeLoPPR is that queries must
/// not touch O(|V|) state.
///
/// Throws std::invalid_argument for an out-of-range or isolated seed.
Subgraph extract_ball(const Graph& g, NodeId seed, unsigned radius,
                      BfsStats* stats = nullptr);

/// Plain depth-limited BFS returning the global ids reachable within
/// `radius` (including the seed), in BFS order. Used by tests as an oracle
/// and by callers that only need reachability.
std::vector<NodeId> bfs_nodes(const Graph& g, NodeId seed, unsigned radius);

/// Eccentricity-bounded distance: hops from `from` to `to`, or -1 if `to`
/// is farther than `max_radius`. Reference implementation for tests.
int bounded_distance(const Graph& g, NodeId from, NodeId to,
                     unsigned max_radius);

}  // namespace meloppr::graph
