// Edge-list file IO in the SNAP text format ("u<TAB>v" per line, '#'
// comments), so users with the real datasets can load them and reproduce the
// paper's tables on the original graphs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace meloppr::graph {

/// Parses an edge-list stream. Node ids may be arbitrary non-negative
/// integers; they are compacted to a dense [0, n) range in first-appearance
/// order. Lines starting with '#' or '%' are comments; blank lines are
/// skipped. Throws std::runtime_error with a line number on parse failure.
Graph load_edge_list(std::istream& in);

/// Loads from a file path. Throws std::runtime_error if unreadable.
Graph load_edge_list_file(const std::string& path);

/// Writes "u\tv" per undirected edge (u < v) with a header comment.
void save_edge_list(const Graph& g, std::ostream& out);

/// Saves to a file path. Throws std::runtime_error if unwritable.
void save_edge_list_file(const Graph& g, const std::string& path);

/// Compact binary CSR format ("MELO" magic + version + counts + raw
/// offset/target arrays, little-endian). Loads the million-node evaluation
/// graphs orders of magnitude faster than text parsing; intended for
/// caching generated/converted graphs between bench runs.
void save_binary(const Graph& g, std::ostream& out);
Graph load_binary(std::istream& in);
void save_binary_file(const Graph& g, const std::string& path);
Graph load_binary_file(const std::string& path);

}  // namespace meloppr::graph
