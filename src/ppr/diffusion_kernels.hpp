// Runtime-dispatched diffusion kernel family (the SIMD rework of diffuse()).
//
// The original kernel chased a sparse active list through an `in_active`
// byte map — branchy, pointer-heavy, and invisible to the vector units.
// This family restructures GD_l into a CSR-blocked form that exploits a
// property of extract_ball(): local ids are assigned in BFS discovery order,
// so depth is nondecreasing in local id and the set of nodes reachable in k
// steps from mass seeded at depth d is a contiguous PREFIX
// [0, depth_prefix()[d+k]) of the id range.
//
// Two drivers sit behind one dispatch point:
//
//   * the SCALAR tier is the portable reference — dense full-ball element
//     passes (scale, share) plus a prefix-bounded row gather, written to be
//     obviously equivalent to Eq. 1 and to diffuse_dense_reference;
//   * the AVX2 tier is the optimized datapath — every pass clipped to its
//     depth-prefix support bound and run 4 lanes wide, with ADAPTIVE
//     propagation: while the frontier is still growing (the normal MeLoPPR
//     call, mass seeded at the root) it pushes from the nonzero sources,
//     folding the edge_ops count in for free; at steady support it switches
//     to a row-gather pass (hardware vgatherdpd on dense balls, scalar row
//     sums on the low-degree paper graphs where gathers lose).
//
// Both tiers produce BIT-IDENTICAL doubles, equal to diffuse_dense_reference.
// The pinned order is: each destination row sums its sorted neighbor terms
// strictly left-to-right (the dense matvec adds the same products in the
// same column order; its non-neighbor terms are exact +0.0). The push form
// preserves that order because pushing from sources in ascending id hits
// each destination's terms in ascending neighbor order too, and skipping
// zero-mass sources is exact: seed masses are checked nonnegative, sums of
// nonnegative doubles never produce −0.0, and x + (+0.0) == x bit-for-bit.
// Support bounding is exact for the same reason — everything beyond a bound
// is +0.0 and stays +0.0.
//
// Tier selection is a runtime decision: CPUID picks AVX2 where available,
// MELOPPR_FORCE_SCALAR=1 forces the fallback (CI runs the whole suite once
// this way), and set_kernel_tier_override() lets tests/benches A/B the
// tiers explicitly. Only diffusion_avx2.cpp is compiled with -mavx2; no
// other translation unit changes ISA.
//
// The same two-driver skeleton hosts the fixed-point path
// (Numerics::kFixedPoint): hw::Quantizer's α_p-multiply + q-bit shift and
// truncating degree division on uint64 lanes. Integer addition commutes, so
// bounding and zero-skipping are unconditionally exact and both tiers
// reproduce hw::Accelerator::diffuse node-for-node — the host
// cross-validates the simulated FPGA at zero tolerance.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ppr/diffusion.hpp"

namespace meloppr::ppr {

/// Which implementation executes the blocked kernels.
enum class KernelTier {
  kScalar,  ///< portable C++ — always available, the dispatch fallback
  kAvx2,    ///< 4-lane AVX2 (vgatherdpd row-per-lane), x86-64 only
};

const char* to_string(KernelTier tier);

/// The tier diffuse() dispatches to: the override if set, else scalar when
/// MELOPPR_FORCE_SCALAR is truthy, else the best tier this CPU supports
/// (detected once via CPUID). Safe from any thread.
[[nodiscard]] KernelTier active_kernel_tier();

/// True when `tier` can execute on this machine (kScalar always; kAvx2
/// needs both the AVX2-compiled translation unit and CPUID support).
[[nodiscard]] bool kernel_tier_available(KernelTier tier);

/// Test/bench hook: pin dispatch to one tier (std::nullopt restores the
/// automatic choice). Checks availability. Process-global.
void set_kernel_tier_override(std::optional<KernelTier> tier);

/// Reusable scratch for the blocked kernels, so per-ball calls stop paying
/// allocation for the dense lanes. Buffers grow to the largest ball seen.
struct DiffusionWorkspace {
  // float lanes
  std::vector<double> t, next, share, recip;
  // fixed-point lanes
  std::vector<std::uint64_t> fx_u, fx_next, fx_acc, fx_contrib;
};

/// Per-thread workspace — CpuBackend::run() is concurrently callable, so
/// the scratch must not be shared across threads.
[[nodiscard]] DiffusionWorkspace& thread_workspace();

/// Float-mode blocked kernel. Same contract and MELO_CHECKs as diffuse();
/// seed masses must be nonnegative (checked — the optimized tier's
/// zero-skipping push relies on it). Results (scores, residual, edge_ops)
/// are bit-identical across tiers and to diffuse_dense_reference.
DiffusionResult diffuse_blocked(const Subgraph& ball,
                                std::span<const double> s0, double alpha,
                                unsigned length, DiffusionWorkspace& ws,
                                KernelTier tier);

/// Integer scores of one fixed-point diffusion — the exact shape of
/// hw::AcceleratorRun minus the cycle model.
struct FixedPointDiffusion {
  std::vector<std::uint32_t> accumulated;  ///< clamped 32-bit π_a
  std::vector<std::uint32_t> residual;     ///< u_l = α^l·W^l·S0 (α-scaled)
  std::uint64_t edge_ops = 0;
  unsigned iterations = 0;
  bool saturated = false;  ///< some score clamped at 2^32−1
};

/// Fixed-point blocked kernel: `seed_mass` integer mass at local 0 (the
/// accelerator's calling convention). Node-for-node identical to
/// hw::Accelerator::diffuse with the same Quantizer — scores, residual,
/// edge_ops and the saturation flag all match exactly.
FixedPointDiffusion diffuse_fixed_point(const Subgraph& ball,
                                        std::uint32_t seed_mass,
                                        unsigned length,
                                        const hw::Quantizer& quant,
                                        DiffusionWorkspace& ws,
                                        KernelTier tier);

namespace detail {

// AVX2 pass implementations, defined in diffusion_avx2.cpp (the only file
// compiled with -mavx2). On builds without AVX2 support they forward to the
// scalar passes and avx2_kernels_compiled() reports false, so dispatch
// never selects them.
[[nodiscard]] bool avx2_kernels_compiled();

/// acc[v] += coef · t[v] for v ∈ [0, n) — no FMA (bit-compat with scalar).
void scale_accumulate_avx2(double coef, const double* t, double* acc,
                           std::size_t n);
/// share[v] = recip[v] · t[v] for v ∈ [0, n).
void hadamard_avx2(const double* recip, const double* t, double* share,
                   std::size_t n);
/// recip[v] = 1.0 / deg[v] for v ∈ [0, n). vdivpd is correctly rounded, so
/// the lanes are bit-identical to the scalar divisions.
void recip_avx2(const std::uint32_t* deg, double* recip, std::size_t n);
/// Row-gather pass over rows [0, rows): 4 rows advance in lock-step, one
/// per lane, each lane summing its own sorted neighbor list strictly
/// left-to-right (ragged tails finish scalar per lane) — the within-row
/// order is what bit-identity pins; rows are independent.
void gather_rows_avx2(const Subgraph& ball, const double* share, double* next,
                      std::size_t rows);
/// acc[v] += (u[v]·coef) >> q for v ∈ [0, n) (64×32-bit multiply emulated
/// with 32-bit lane products — exact uint64 wraparound semantics).
void fx_scale_accumulate_avx2(std::uint64_t coef, unsigned q,
                              const std::uint64_t* u, std::uint64_t* acc,
                              std::size_t n);
/// contrib[v] = ((u[v]·alpha_p) >> q) / global_degree(v) for v ∈ [0, n);
/// the α-multiply is vectorized, the truncating division stays scalar
/// (no integer-divide lanes in AVX2).
void fx_contrib_avx2(const Subgraph& ball, std::uint64_t alpha_p, unsigned q,
                     const std::uint64_t* u, std::uint64_t* contrib,
                     std::size_t n);
/// Fixed-point analogue of gather_rows_avx2.
void fx_gather_rows_avx2(const Subgraph& ball, const std::uint64_t* contrib,
                         std::uint64_t* next, std::size_t rows);

}  // namespace detail

}  // namespace meloppr::ppr
