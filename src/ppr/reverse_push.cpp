#include "ppr/reverse_push.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace meloppr::ppr {

ReversePushResult reverse_push_ppr(const graph::Graph& g,
                                   graph::NodeId target,
                                   const ReversePushParams& params) {
  if (target >= g.num_nodes() || g.degree(target) == 0) {
    throw std::invalid_argument("reverse_push_ppr: bad target");
  }
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK(params.epsilon > 0.0);

  std::unordered_map<graph::NodeId, double> p;
  std::unordered_map<graph::NodeId, double> r;
  std::vector<graph::NodeId> queue;
  std::unordered_map<graph::NodeId, char> queued;

  r[target] = 1.0;
  queue.push_back(target);
  queued[target] = 1;

  ReversePushResult out;
  std::size_t head = 0;
  while (head < queue.size() && out.pushes < params.max_pushes) {
    const graph::NodeId v = queue[head++];
    queued[v] = 0;
    const double rv = r[v];
    if (rv <= params.epsilon) continue;

    p[v] += (1.0 - params.alpha) * rv;
    r[v] = 0.0;
    ++out.pushes;
    const auto adj = g.neighbors(v);
    out.edge_ops += adj.size();
    for (graph::NodeId u : adj) {
      // Reverse update: the walk leaves u with probability α/deg(u) toward
      // v, so v's residual flows back scaled by deg(u).
      r[u] += params.alpha * rv / static_cast<double>(g.degree(u));
      if (r[u] > params.epsilon && queued[u] == 0) {
        queued[u] = 1;
        queue.push_back(u);
      }
    }
  }

  for (const auto& [node, residual] : r) out.residual_mass += residual;
  out.contributions.reserve(p.size());
  for (const auto& [node, estimate] : p) {
    if (estimate > 0.0) out.contributions.push_back({node, estimate});
  }
  std::size_t touched = p.size();
  for (const auto& [node, residual] : r) {
    if (residual > 0.0 && p.count(node) == 0) ++touched;
  }
  out.touched_nodes = touched;
  return out;
}

}  // namespace meloppr::ppr
