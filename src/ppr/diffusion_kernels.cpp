#include "ppr/diffusion_kernels.hpp"

#include <algorithm>
#include <atomic>

#include "hw/quantizer.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace meloppr::ppr {

const char* to_string(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "?";
}

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelTier detect_tier() {
  if (env_flag("MELOPPR_FORCE_SCALAR")) return KernelTier::kScalar;
  if (detail::avx2_kernels_compiled() && cpu_has_avx2()) {
    return KernelTier::kAvx2;
  }
  return KernelTier::kScalar;
}

/// −1 = no override, else the forced tier. Benches/tests flip it between
/// A/B phases; dispatch reads it on every kernel call.
std::atomic<int> g_tier_override{-1};

}  // namespace

bool kernel_tier_available(KernelTier tier) {
  if (tier == KernelTier::kScalar) return true;
  return detail::avx2_kernels_compiled() && cpu_has_avx2();
}

KernelTier active_kernel_tier() {
  const int forced = g_tier_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  // Detection (CPUID + MELOPPR_FORCE_SCALAR) is stable for the process
  // lifetime; resolve it once.
  static const KernelTier detected = detect_tier();
  return detected;
}

void set_kernel_tier_override(std::optional<KernelTier> tier) {
  if (!tier.has_value()) {
    g_tier_override.store(-1, std::memory_order_relaxed);
    return;
  }
  MELO_CHECK_MSG(kernel_tier_available(*tier),
                 "kernel tier " << to_string(*tier)
                                << " is not available on this machine");
  g_tier_override.store(static_cast<int>(*tier), std::memory_order_relaxed);
}

DiffusionWorkspace& thread_workspace() {
  static thread_local DiffusionWorkspace ws;
  return ws;
}

namespace {

std::size_t prefix_at(std::span<const std::uint32_t> prefix, unsigned radius,
                      unsigned d) {
  return prefix[std::min(radius, d)];
}

/// Validates the seed contract (masses are nonnegative — what lets the
/// optimized tier skip zero-mass terms bit-exactly, since sums of
/// nonnegative doubles never produce −0.0) and returns the depth of the
/// deepest seeded node. Depth is nondecreasing in local id, so the last
/// nonzero entry carries it.
unsigned checked_seed_depth(const Subgraph& ball, std::span<const double> s0) {
  unsigned start_depth = 0;
  for (std::size_t v = 0; v < s0.size(); ++v) {
    MELO_CHECK_MSG(s0[v] >= 0.0,
                   "diffusion seed masses must be nonnegative (local "
                       << v << " = " << s0[v] << ")");
    if (s0[v] != 0.0) start_depth = ball.depth(static_cast<NodeId>(v));
  }
  return start_depth;
}

/// The optimized tier's row pass uses hardware gathers only where they can
/// win: measured on this kernel family, vgatherdpd loses to scalar row sums
/// below ~6 in-ball arcs per node (row-per-lane groups spend more on setup
/// and ragged tails than the 4-wide adds save).
bool prefer_hw_gather(const Subgraph& ball) {
  return ball.num_arcs() >= 6 * ball.num_nodes();
}

// --- scalar float passes -------------------------------------------------
// Plain element-wise loops: independent per element, so the compiler may
// vectorize them freely without changing any rounding. The gather is the
// one pass with an ordered reduction — each row sums its sorted neighbor
// list strictly left-to-right, the same order diffuse_dense_reference's
// matvec adds the same products in (its extra non-neighbor terms are exact
// +0.0 and never flip a bit).

void scale_accumulate_scalar(double coef, const double* t, double* acc,
                             std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) acc[v] += coef * t[v];
}

void hadamard_scalar(const double* recip, const double* t, double* share,
                     std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) share[v] = recip[v] * t[v];
}

void gather_rows_scalar(const Subgraph& ball, const double* share,
                        double* next, std::size_t rows) {
  for (std::size_t w = 0; w < rows; ++w) {
    double sum = 0.0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += share[v];
    }
    next[w] = sum;
  }
}

// --- scalar fixed-point passes (hw::Quantizer ops on uint64 lanes) -------

void fx_scale_accumulate_scalar(std::uint64_t coef, unsigned q,
                                const std::uint64_t* u, std::uint64_t* acc,
                                std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) acc[v] += (u[v] * coef) >> q;
}

void fx_contrib_scalar(const Subgraph& ball, const hw::Quantizer& quant,
                       const std::uint64_t* u, std::uint64_t* contrib,
                       std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    contrib[v] = hw::Quantizer::div_degree(
        quant.mul_alpha(u[v]), ball.global_degree(static_cast<NodeId>(v)));
  }
}

void fx_gather_rows_scalar(const Subgraph& ball, const std::uint64_t* contrib,
                           std::uint64_t* next, std::size_t rows) {
  for (std::size_t w = 0; w < rows; ++w) {
    std::uint64_t sum = 0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += contrib[v];
    }
    next[w] = sum;
  }
}

// --- float drivers -------------------------------------------------------

/// Reference form of the blocked kernel: dense full-ball element passes and
/// a bounded row gather, written to be obviously equivalent to Eq. 1. This
/// is the portable fallback AND the anchor the property tests compare the
/// optimized tier against, so it deliberately takes no shortcuts.
DiffusionResult diffuse_float_reference(const Subgraph& ball,
                                        std::span<const double> s0,
                                        double alpha, unsigned length,
                                        DiffusionWorkspace& ws,
                                        unsigned start_depth) {
  const std::size_t n = ball.num_nodes();
  const unsigned radius = ball.radius();
  const std::span<const std::uint32_t> prefix = ball.depth_prefix();

  DiffusionResult out;
  out.accumulated.assign(n, 0.0);
  out.iterations = length;

  ws.t.assign(s0.begin(), s0.end());
  ws.next.assign(n, 0.0);
  ws.share.resize(n);
  ws.recip.resize(n);
  // Reciprocal once per node: the dense reference materializes the same
  // 1/deg double into W, so multiplying by it (not dividing by deg) is
  // what keeps the two bit-identical.
  for (std::size_t v = 0; v < n; ++v) {
    ws.recip[v] =
        1.0 / static_cast<double>(ball.global_degree(static_cast<NodeId>(v)));
  }

  double* t = ws.t.data();
  double* nx = ws.next.data();
  double* acc = out.accumulated.data();
  double alpha_pow = 1.0;  // α^k
  for (unsigned k = 0; k < length; ++k) {
    scale_accumulate_scalar((1.0 - alpha) * alpha_pow, t, acc, n);
    // edge_ops: in-ball degrees of nodes carrying mass this iteration —
    // the same "propagation work" measure the sparse kernel reported.
    const std::size_t src_bound =
        prefix_at(prefix, radius, start_depth + k);
    for (std::size_t v = 0; v < src_bound; ++v) {
      if (t[v] != 0.0) {
        out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
      }
    }
    // Mass seeded at depth d reaches at most depth d+k+1 after this step,
    // and depth classes are id-prefixes — rows beyond stay exactly +0.0.
    const std::size_t rows =
        prefix_at(prefix, radius, start_depth + k + 1);
    hadamard_scalar(ws.recip.data(), t, ws.share.data(), n);
    gather_rows_scalar(ball, ws.share.data(), nx, rows);
    std::swap(t, nx);
    alpha_pow *= alpha;
  }
  // Final term: acc += α^l · t_l; residual is t_l itself.
  scale_accumulate_scalar(alpha_pow, t, acc, n);
  out.residual.assign(t, t + n);
  return out;
}

/// Optimized datapath, dispatched as the AVX2 tier: the element passes run
/// 4-wide, and every pass is clipped to the depth-prefix support bound —
/// mass seeded at depth d cannot have reached local ids ≥ prefix[d+k], so
/// everything beyond is exact +0.0 and the reference's work there writes
/// the same +0.0 back. Propagation is adaptive:
///  * while the frontier is still growing (src < rows), a push over the
///    nonzero sources (bit-identical to the gather: destination w receives
///    its terms in ascending source order either way, and skipped terms
///    are exact +0.0 — sums of nonnegative masses never round to −0.0);
///  * at steady support, a row-gather pass — hardware vgatherdpd on dense
///    balls, scalar row sums below ~6 arcs/node where gathers lose.
DiffusionResult diffuse_float_optimized(const Subgraph& ball,
                                        std::span<const double> s0,
                                        double alpha, unsigned length,
                                        DiffusionWorkspace& ws,
                                        unsigned start_depth) {
  const std::size_t n = ball.num_nodes();
  const unsigned radius = ball.radius();
  const std::span<const std::uint32_t> prefix = ball.depth_prefix();

  DiffusionResult out;
  out.accumulated.assign(n, 0.0);
  out.iterations = length;

  ws.t.assign(s0.begin(), s0.end());
  ws.next.assign(n, 0.0);
  ws.share.resize(n);
  ws.recip.resize(n);
  if (length > 0) {
    // Reciprocals are only read for source nodes, and sources never extend
    // past the last iteration's source bound.
    detail::recip_avx2(ball.global_degrees(), ws.recip.data(),
                       prefix_at(prefix, radius, start_depth + length - 1));
  }
  const bool hw_gather = prefer_hw_gather(ball);

  double* t = ws.t.data();
  double* nx = ws.next.data();
  double* acc = out.accumulated.data();
  double alpha_pow = 1.0;
  for (unsigned k = 0; k < length; ++k) {
    const std::size_t src = prefix_at(prefix, radius, start_depth + k);
    detail::scale_accumulate_avx2((1.0 - alpha) * alpha_pow, t, acc, src);
    const std::size_t rows =
        prefix_at(prefix, radius, start_depth + k + 1);
    if (src < rows) {
      // Growing frontier: push from the nonzero sources only. edge_ops
      // counts exactly the sources the push visits, so it folds in free.
      std::fill(nx, nx + rows, 0.0);
      for (std::size_t v = 0; v < src; ++v) {
        if (t[v] == 0.0) continue;
        out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
        const double share = ws.recip[v] * t[v];
        for (const NodeId w : ball.neighbors(static_cast<NodeId>(v))) {
          nx[w] += share;
        }
      }
    } else {
      // Steady support (src == rows; the prefix table is monotone): every
      // row is rewritten, and row neighbors stay below the bound.
      detail::hadamard_avx2(ws.recip.data(), t, ws.share.data(), src);
      for (std::size_t v = 0; v < src; ++v) {
        if (t[v] != 0.0) {
          out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
        }
      }
      if (hw_gather) {
        detail::gather_rows_avx2(ball, ws.share.data(), nx, rows);
      } else {
        gather_rows_scalar(ball, ws.share.data(), nx, rows);
      }
    }
    std::swap(t, nx);
    alpha_pow *= alpha;
  }
  detail::scale_accumulate_avx2(alpha_pow, t, acc,
                                prefix_at(prefix, radius,
                                          start_depth + length));
  out.residual.assign(t, t + n);
  return out;
}

// --- fixed-point drivers -------------------------------------------------

FixedPointDiffusion fx_diffuse_reference(const Subgraph& ball,
                                         std::uint32_t seed_mass,
                                         unsigned length,
                                         const hw::Quantizer& quant,
                                         DiffusionWorkspace& ws) {
  const std::size_t n = ball.num_nodes();
  const unsigned radius = ball.radius();
  const std::span<const std::uint32_t> prefix = ball.depth_prefix();
  const std::uint64_t one_minus_coef =
      (std::uint64_t{1} << quant.q()) - quant.alpha_p();

  FixedPointDiffusion out;
  out.iterations = length;

  ws.fx_u.assign(n, 0);
  ws.fx_next.assign(n, 0);
  ws.fx_acc.assign(n, 0);
  ws.fx_contrib.assign(n, 0);
  ws.fx_u[0] = seed_mass;

  std::uint64_t* u = ws.fx_u.data();
  std::uint64_t* nx = ws.fx_next.data();
  std::uint64_t* acc = ws.fx_acc.data();
  for (unsigned k = 0; k < length; ++k) {
    fx_scale_accumulate_scalar(one_minus_coef, quant.q(), u, acc, n);
    fx_contrib_scalar(ball, quant, u, ws.fx_contrib.data(), n);
    const std::size_t src_bound = prefix_at(prefix, radius, k);
    for (std::size_t v = 0; v < src_bound; ++v) {
      if (u[v] != 0) {
        out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
      }
    }
    const std::size_t rows = prefix_at(prefix, radius, k + 1);
    fx_gather_rows_scalar(ball, ws.fx_contrib.data(), nx, rows);
    std::swap(u, nx);
  }
  return out;
}

FixedPointDiffusion fx_diffuse_optimized(const Subgraph& ball,
                                         std::uint32_t seed_mass,
                                         unsigned length,
                                         const hw::Quantizer& quant,
                                         DiffusionWorkspace& ws) {
  const std::size_t n = ball.num_nodes();
  const unsigned radius = ball.radius();
  const std::span<const std::uint32_t> prefix = ball.depth_prefix();
  const std::uint64_t one_minus_coef =
      (std::uint64_t{1} << quant.q()) - quant.alpha_p();

  FixedPointDiffusion out;
  out.iterations = length;

  ws.fx_u.assign(n, 0);
  ws.fx_next.assign(n, 0);
  ws.fx_acc.assign(n, 0);
  ws.fx_contrib.resize(n);
  ws.fx_u[0] = seed_mass;
  const bool hw_gather = prefer_hw_gather(ball);

  std::uint64_t* u = ws.fx_u.data();
  std::uint64_t* nx = ws.fx_next.data();
  std::uint64_t* acc = ws.fx_acc.data();
  for (unsigned k = 0; k < length; ++k) {
    // Integer addition commutes, so bounding and zero-skipping are exact
    // unconditionally; the bounds themselves mirror the float driver.
    const std::size_t src = prefix_at(prefix, radius, k);
    detail::fx_scale_accumulate_avx2(one_minus_coef, quant.q(), u, acc, src);
    const std::size_t rows = prefix_at(prefix, radius, k + 1);
    if (src < rows) {
      std::fill(nx, nx + rows, std::uint64_t{0});
      for (std::size_t v = 0; v < src; ++v) {
        if (u[v] == 0) continue;
        out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
        // Truncating degree division only for sources that carry mass —
        // the one integer op AVX2 has no lanes for.
        const std::uint64_t c = hw::Quantizer::div_degree(
            quant.mul_alpha(u[v]),
            ball.global_degree(static_cast<NodeId>(v)));
        for (const NodeId w : ball.neighbors(static_cast<NodeId>(v))) {
          nx[w] += c;
        }
      }
    } else {
      detail::fx_contrib_avx2(ball, quant.alpha_p(), quant.q(), u,
                              ws.fx_contrib.data(), src);
      for (std::size_t v = 0; v < src; ++v) {
        if (u[v] != 0) {
          out.edge_ops += ball.local_degree(static_cast<NodeId>(v));
        }
      }
      if (hw_gather) {
        detail::fx_gather_rows_avx2(ball, ws.fx_contrib.data(), nx, rows);
      } else {
        fx_gather_rows_scalar(ball, ws.fx_contrib.data(), nx, rows);
      }
    }
    std::swap(u, nx);
  }
  return out;
}

}  // namespace

DiffusionResult diffuse_blocked(const Subgraph& ball,
                                std::span<const double> s0, double alpha,
                                unsigned length, DiffusionWorkspace& ws,
                                KernelTier tier) {
  MELO_CHECK(s0.size() == ball.num_nodes());
  MELO_CHECK(alpha > 0.0 && alpha < 1.0);
  MELO_CHECK_MSG(length <= ball.radius(),
                 "diffusion length " << length << " exceeds ball radius "
                                     << ball.radius()
                                     << " — result would be inexact");
  const unsigned start_depth = checked_seed_depth(ball, s0);
  if (tier == KernelTier::kAvx2) {
    return diffuse_float_optimized(ball, s0, alpha, length, ws, start_depth);
  }
  return diffuse_float_reference(ball, s0, alpha, length, ws, start_depth);
}

FixedPointDiffusion diffuse_fixed_point(const Subgraph& ball,
                                        std::uint32_t seed_mass,
                                        unsigned length,
                                        const hw::Quantizer& quant,
                                        DiffusionWorkspace& ws,
                                        KernelTier tier) {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(n > 0);
  MELO_CHECK_MSG(length <= ball.radius(),
                 "diffusion length exceeds ball radius");

  FixedPointDiffusion out = tier == KernelTier::kAvx2
                                ? fx_diffuse_optimized(ball, seed_mass,
                                                       length, quant, ws)
                                : fx_diffuse_reference(ball, seed_mass,
                                                       length, quant, ws);
  // Final α^l·W^l·S0 term folds into the accumulated score (Eq. 1), then
  // clamp to the 32-bit BRAM word exactly as the accelerator does. Both
  // drivers ping-pong fx_u/fx_next exactly `length` times, so parity says
  // which buffer holds the final residual vector.
  const std::uint64_t* u =
      length % 2 == 0 ? ws.fx_u.data() : ws.fx_next.data();
  const std::uint64_t* acc = ws.fx_acc.data();
  out.accumulated.assign(n, 0);
  out.residual.assign(n, 0);
  constexpr std::uint64_t kCeiling = 0xffffffffULL;
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t a = acc[v] + u[v];
    std::uint64_t r = u[v];
    if (a > kCeiling) {
      out.saturated = true;
      a = kCeiling;
    }
    if (r > kCeiling) {
      out.saturated = true;
      r = kCeiling;
    }
    out.accumulated[v] = static_cast<std::uint32_t>(a);
    out.residual[v] = static_cast<std::uint32_t>(r);
  }
  return out;
}

}  // namespace meloppr::ppr
