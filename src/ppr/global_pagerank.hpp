// Global PageRank by power iteration — the workload the hardware systems
// the paper contrasts against (GraphH, Blogel, Giraph++) are built for
// (Sec. III). Included both as that contrast and as a library feature: the
// global ranking is the natural prior when no personalization seed exists.
//
// Solves π = (1−α)/n · 1 + α·W·π on the whole graph, treating dangling
// (degree-0) nodes as teleporting uniformly, iterating until the L1 change
// drops below `tolerance` or `max_iterations` is hit.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "ppr/topk.hpp"

namespace meloppr::ppr {

struct GlobalPageRankParams {
  double alpha = 0.85;
  double tolerance = 1e-10;       ///< L1 convergence threshold
  std::size_t max_iterations = 200;
  std::size_t k = 100;            ///< top-k returned
};

struct GlobalPageRankResult {
  std::vector<double> scores;     ///< dense over all nodes, sums to 1
  std::vector<ScoredNode> top;
  std::size_t iterations = 0;
  double final_delta = 0.0;       ///< L1 change of the last iteration
  bool converged = false;
};

GlobalPageRankResult global_pagerank(const graph::Graph& g,
                                     const GlobalPageRankParams& params);

}  // namespace meloppr::ppr
