// Monte-Carlo α-decay random walk PPR — the "low space, high accesses"
// strawman of Fig. 2(a).
//
// Each walk starts at the seed and, per step, terminates with probability
// 1−α or moves to a uniformly random neighbor. The termination-node
// frequencies estimate π(v). On-chip state is O(walks' support); the cost is
// one off-chip neighbor-list access per step — which the result records so
// benches can contrast the access pattern with MeLoPPR, exactly the
// trade-off Fig. 2 illustrates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ppr/topk.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {

struct MonteCarloParams {
  double alpha = 0.85;
  unsigned max_length = 6;        ///< walk length cap L (matches GD_L horizon)
  std::size_t num_walks = 10000;  ///< number of independent walks
  std::size_t k = 200;
};

struct MonteCarloResult {
  std::vector<ScoredNode> top;     ///< estimated top-k
  std::vector<ScoredNode> scores;  ///< all visited terminal frequencies
  std::uint64_t steps_taken = 0;   ///< Σ walk lengths = off-chip accesses
  std::size_t support_size = 0;    ///< distinct terminal nodes
};

/// Runs `num_walks` α-RWs of at most `max_length` steps from `seed`.
/// A walk that survives all L steps terminates at its current node, matching
/// the α^L·W^L·S0 tail term of Eq. 1, so the estimator is unbiased for the
/// L-truncated PPR that GD_L computes.
MonteCarloResult monte_carlo_ppr(const graph::Graph& g, graph::NodeId seed,
                                 const MonteCarloParams& params, Rng& rng);

}  // namespace meloppr::ppr
