#include "ppr/diffusion.hpp"

#include <cmath>

#include "hw/quantizer.hpp"
#include "ppr/diffusion_kernels.hpp"
#include "util/assert.hpp"

namespace meloppr::ppr {

DiffusionResult diffuse(const Subgraph& ball, std::span<const double> s0,
                        const DiffusionParams& params) {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(s0.size() == n);
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK_MSG(params.length <= ball.radius(),
                 "diffusion length " << params.length
                                     << " exceeds ball radius "
                                     << ball.radius()
                                     << " — result would be inexact");

  if (params.numerics == Numerics::kFixedPoint) {
    MELO_CHECK_MSG(params.quantizer != nullptr,
                   "Numerics::kFixedPoint requires DiffusionParams::quantizer");
    MELO_CHECK(n > 0);
    // The integer datapath (like the accelerator it mirrors) takes its seed
    // mass at local id 0 — the ball root.
    for (std::size_t v = 1; v < n; ++v) {
      MELO_CHECK_MSG(s0[v] == 0.0,
                     "fixed-point diffusion seeds mass at local 0 only");
    }
    DiffusionResult out;
    out.accumulated.assign(n, 0.0);
    out.residual.assign(n, 0.0);
    out.iterations = params.length;
    const hw::Quantizer& quant = *params.quantizer;
    const std::uint32_t seed = quant.to_fixed(s0[0]);
    if (seed == 0) return out;  // FpgaBackend's zero-mass envelope
    const FixedPointDiffusion fx =
        diffuse_fixed_point(ball, seed, params.length, quant,
                            thread_workspace(), active_kernel_tier());
    for (std::size_t v = 0; v < n; ++v) {
      out.accumulated[v] = quant.to_real(fx.accumulated[v]);
      // NOTE: α-scaled (u_l = α^l·W^l·S0), per the DiffusionParams contract.
      out.residual[v] = quant.to_real(fx.residual[v]);
    }
    out.edge_ops = fx.edge_ops;
    return out;
  }

  return diffuse_blocked(ball, s0, params.alpha, params.length,
                         thread_workspace(), active_kernel_tier());
}

DiffusionResult diffuse_from(const Subgraph& ball, NodeId local_seed,
                             double mass, const DiffusionParams& params) {
  MELO_CHECK(local_seed < ball.num_nodes());
  // Thread-local seed scratch: MeLoPPR issues one diffuse_from per ball per
  // stage-2 node, so a fresh heap vector here is measurable against the
  // kernel itself on small balls.
  static thread_local std::vector<double> s0;
  s0.assign(ball.num_nodes(), 0.0);
  s0[local_seed] = mass;
  return diffuse(ball, s0, params);
}

DiffusionResult diffuse_dense_reference(const Subgraph& ball,
                                        std::span<const double> s0,
                                        const DiffusionParams& params) {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(s0.size() == n);

  // W[w][v] = 1/deg_global(v) if {v,w} in ball. Column-stochastic up to
  // frontier truncation (which exact usage never exercises).
  std::vector<std::vector<double>> w_mat(n, std::vector<double>(n, 0.0));
  for (NodeId v = 0; v < n; ++v) {
    const double share = 1.0 / static_cast<double>(ball.global_degree(v));
    for (NodeId w : ball.neighbors(v)) w_mat[w][v] = share;
  }
  auto matvec = [&](const std::vector<double>& x) {
    std::vector<double> y(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) y[r] += w_mat[r][c] * x[c];
    }
    return y;
  };

  std::vector<double> t(s0.begin(), s0.end());
  std::vector<double> acc(n, 0.0);
  double alpha_pow = 1.0;
  for (unsigned k = 0; k < params.length; ++k) {
    for (std::size_t v = 0; v < n; ++v) {
      acc[v] += (1.0 - params.alpha) * alpha_pow * t[v];
    }
    t = matvec(t);
    alpha_pow *= params.alpha;
  }
  for (std::size_t v = 0; v < n; ++v) acc[v] += alpha_pow * t[v];

  DiffusionResult out;
  out.accumulated = std::move(acc);
  out.residual = std::move(t);
  out.iterations = params.length;
  return out;
}

}  // namespace meloppr::ppr
