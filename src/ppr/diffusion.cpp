#include "ppr/diffusion.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace meloppr::ppr {

DiffusionResult diffuse(const Subgraph& ball, std::span<const double> s0,
                        const DiffusionParams& params) {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(s0.size() == n);
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK_MSG(params.length <= ball.radius(),
                 "diffusion length " << params.length
                                     << " exceeds ball radius "
                                     << ball.radius()
                                     << " — result would be inexact");

  DiffusionResult out;
  out.accumulated.assign(n, 0.0);
  out.residual.assign(s0.begin(), s0.end());
  out.iterations = params.length;

  // Active set: local ids with non-zero current mass. Grows monotonically
  // (mass never leaves a node entirely once it has been reached — the
  // accumulated term keeps it — but for the *propagating* vector t_k it can;
  // we still keep ids active to avoid per-iteration compaction).
  std::vector<NodeId> active;
  std::vector<char> in_active(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (s0[v] != 0.0) {
      active.push_back(v);
      in_active[v] = 1;
    }
  }

  // acc += (1-α)·α^k · t_k  for k = 0..l-1, then acc += α^l · t_l.
  const double alpha = params.alpha;
  double alpha_pow = 1.0;  // α^k
  std::vector<double>& t = out.residual;  // t_k, updated in place
  std::vector<double> next(n, 0.0);

  for (unsigned k = 0; k < params.length; ++k) {
    for (NodeId v : active) {
      out.accumulated[v] += (1.0 - alpha) * alpha_pow * t[v];
    }
    // next = W · t  (push along in-ball edges, divide by *global* degree).
    std::size_t old_active = active.size();
    for (std::size_t i = 0; i < old_active; ++i) {
      const NodeId v = active[i];
      if (t[v] == 0.0) continue;
      const double share =
          t[v] / static_cast<double>(ball.global_degree(v));
      const auto adj = ball.neighbors(v);
      out.edge_ops += adj.size();
      for (NodeId w : adj) {
        if (!in_active[w]) {
          in_active[w] = 1;
          active.push_back(w);
        }
        next[w] += share;
      }
    }
    for (NodeId v : active) {
      t[v] = next[v];
      next[v] = 0.0;
    }
    alpha_pow *= alpha;
  }
  // Final term: acc += α^l · t_l; residual is t_l itself.
  for (NodeId v : active) {
    out.accumulated[v] += alpha_pow * t[v];
  }
  return out;
}

DiffusionResult diffuse_from(const Subgraph& ball, NodeId local_seed,
                             double mass, const DiffusionParams& params) {
  MELO_CHECK(local_seed < ball.num_nodes());
  std::vector<double> s0(ball.num_nodes(), 0.0);
  s0[local_seed] = mass;
  return diffuse(ball, s0, params);
}

DiffusionResult diffuse_dense_reference(const Subgraph& ball,
                                        std::span<const double> s0,
                                        const DiffusionParams& params) {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(s0.size() == n);

  // W[w][v] = 1/deg_global(v) if {v,w} in ball. Column-stochastic up to
  // frontier truncation (which exact usage never exercises).
  std::vector<std::vector<double>> w_mat(n, std::vector<double>(n, 0.0));
  for (NodeId v = 0; v < n; ++v) {
    const double share = 1.0 / static_cast<double>(ball.global_degree(v));
    for (NodeId w : ball.neighbors(v)) w_mat[w][v] = share;
  }
  auto matvec = [&](const std::vector<double>& x) {
    std::vector<double> y(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) y[r] += w_mat[r][c] * x[c];
    }
    return y;
  };

  std::vector<double> t(s0.begin(), s0.end());
  std::vector<double> acc(n, 0.0);
  double alpha_pow = 1.0;
  for (unsigned k = 0; k < params.length; ++k) {
    for (std::size_t v = 0; v < n; ++v) {
      acc[v] += (1.0 - params.alpha) * alpha_pow * t[v];
    }
    t = matvec(t);
    alpha_pow *= params.alpha;
  }
  for (std::size_t v = 0; v < n; ++v) acc[v] += alpha_pow * t[v];

  DiffusionResult out;
  out.accumulated = std::move(acc);
  out.residual = std::move(t);
  out.iterations = params.length;
  return out;
}

}  // namespace meloppr::ppr
