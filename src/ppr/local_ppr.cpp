#include "ppr/local_ppr.hpp"

#include "graph/bfs.hpp"
#include "util/timer.hpp"

namespace meloppr::ppr {

LocalPprResult local_ppr(const graph::Graph& g, graph::NodeId seed,
                         const LocalPprParams& params, MemoryMeter* meter) {
  LocalPprResult out;

  Timer bfs_timer;
  const graph::Subgraph ball = graph::extract_ball(g, seed, params.length);
  out.bfs_seconds = bfs_timer.elapsed_seconds();
  out.ball_nodes = ball.num_nodes();
  out.ball_edges = ball.num_edges();

  // Memory story: the ball CSR plus the two diffusion vectors (t_k and the
  // accumulator) live simultaneously — that is the O(G_L) the paper charges
  // the baseline for.
  const std::size_t ball_bytes = ball.bytes();
  const std::size_t score_bytes = 3 * ball.num_nodes() * sizeof(double);
  out.peak_bytes = ball_bytes + score_bytes;
  if (meter != nullptr) {
    meter->allocate("baseline/ball", ball_bytes);
    meter->allocate("baseline/scores", score_bytes);
  }

  Timer diff_timer;
  const DiffusionResult diff =
      diffuse_from(ball, /*local_seed=*/0, /*mass=*/1.0,
                   DiffusionParams{params.alpha, params.length});
  out.diffusion_seconds = diff_timer.elapsed_seconds();
  out.edge_ops = diff.edge_ops;

  out.scores.reserve(ball.num_nodes());
  for (graph::NodeId local = 0; local < ball.num_nodes(); ++local) {
    if (diff.accumulated[local] > 0.0) {
      out.scores.push_back({ball.to_global(local), diff.accumulated[local]});
    }
  }
  out.top = top_k(out.scores, params.k);

  if (meter != nullptr) {
    meter->release("baseline/ball", ball_bytes);
    meter->release("baseline/scores", score_bytes);
  }
  return out;
}

}  // namespace meloppr::ppr
