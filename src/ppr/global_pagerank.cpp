#include "ppr/global_pagerank.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::ppr {

GlobalPageRankResult global_pagerank(const graph::Graph& g,
                                     const GlobalPageRankParams& params) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("global_pagerank: empty graph");
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK(params.tolerance > 0.0);

  GlobalPageRankResult out;
  const double uniform = 1.0 / static_cast<double>(n);
  out.scores.assign(n, uniform);
  std::vector<double> next(n, 0.0);

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    // Dangling mass teleports uniformly so the vector stays stochastic.
    double dangling = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling += out.scores[v];
    }
    const double base =
        (1.0 - params.alpha) * uniform +
        params.alpha * dangling * uniform;
    std::fill(next.begin(), next.end(), base);
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::size_t deg = g.degree(v);
      if (deg == 0 || out.scores[v] == 0.0) continue;
      const double share =
          params.alpha * out.scores[v] / static_cast<double>(deg);
      for (graph::NodeId w : g.neighbors(v)) next[w] += share;
    }

    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      delta += std::abs(next[v] - out.scores[v]);
    }
    out.scores.swap(next);
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (delta < params.tolerance) {
      out.converged = true;
      break;
    }
  }

  std::vector<ScoredNode> all;
  all.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    all.push_back({v, out.scores[v]});
  }
  out.top = top_k(std::move(all), params.k);
  return out;
}

}  // namespace meloppr::ppr
