// The graph-diffusion kernel GD_l (Eq. 1) — the computational heart of both
// the baseline and MeLoPPR.
//
//   S_l = (1−α) Σ_{k=0}^{l−1} α^k W^k S_0  +  α^l W^l S_0,   W = A·D⁻¹
//
// One call produces both outputs of Fig. 3(b):
//   accumulated π_a  — the PPR contribution S_l, aggregated into the global
//                      score table;
//   residual    π_r  — W^l S_0, the mass still "in flight", which seeds the
//                      next stage's per-node diffusions (Eq. 6–8).
//
// The kernel runs on a Subgraph (depth-l BFS ball) and divides by *global*
// degrees, which makes it bit-identical to running on the whole graph as
// long as l ≤ ball radius (DESIGN.md invariant 2). diffuse() dispatches to
// the CSR-blocked kernel family in diffusion_kernels.hpp (scalar or AVX2,
// chosen at runtime), which bounds each iteration to the BFS depth-prefix
// the mass can have reached — early iterations stay cheap without any
// sparse active-list chasing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/subgraph.hpp"

namespace meloppr::hw {
class Quantizer;
}

namespace meloppr::ppr {

using graph::NodeId;
using graph::Subgraph;

/// Numeric domain the kernel computes in.
enum class Numerics {
  /// IEEE double precision — the default, bit-identical to
  /// diffuse_dense_reference on every kernel tier.
  kFloat64,
  /// The accelerator's integer datapath (hw::Quantizer: α_p-multiply +
  /// q-bit shift, truncating degree division) on uint64 host lanes —
  /// node-for-node identical to hw::Accelerator::diffuse.
  kFixedPoint,
};

struct DiffusionResult {
  /// π_a over local ids: the l-step PPR scores S_l (Eq. 1).
  std::vector<double> accumulated;
  /// π_r over local ids: the residual W^l S_0.
  std::vector<double> residual;
  /// Edge traversals performed (Σ over iterations of active in-ball
  /// degrees). The CPU-latency and FPGA-cycle models both consume this.
  std::uint64_t edge_ops = 0;
  unsigned iterations = 0;
};

struct DiffusionParams {
  double alpha = 0.85;  ///< α-RW continuation probability
  unsigned length = 3;  ///< l, number of diffusion iterations
  /// Numeric domain. kFixedPoint requires `quantizer` and makes diffuse()
  /// return dequantized hardware scores; `residual` is then the α-scaled
  /// in-flight table u_l = α^l·W^l·S0 (the hardware convention — the
  /// integer datapath applies α per step), NOT the raw W^l·S0 of float
  /// mode. CpuBackend handles the difference; direct callers must too.
  Numerics numerics = Numerics::kFloat64;
  /// Fixed-point parameters; required (non-null, outliving the call) when
  /// numerics == kFixedPoint, ignored in float mode.
  const hw::Quantizer* quantizer = nullptr;
};

/// Runs GD_length on the ball with an arbitrary initial vector s0 (local
/// indexing, s0.size() == ball nodes). Requires length ≤ ball radius; this
/// is what guarantees exactness and is enforced with MELO_CHECK. Seed
/// masses must be nonnegative (also checked): PPR seeds always are, and
/// the optimized kernel tier skips zero-mass terms, which is bit-exact
/// only when partial sums cannot produce −0.0.
DiffusionResult diffuse(const Subgraph& ball, std::span<const double> s0,
                        const DiffusionParams& params);

/// Convenience: initial vector = `mass` at `local_seed`, zero elsewhere —
/// the form every MeLoPPR stage uses (stage 1: mass=1 at the query seed;
/// stage 2: mass=residual at each next-stage node).
DiffusionResult diffuse_from(const Subgraph& ball, NodeId local_seed,
                             double mass, const DiffusionParams& params);

/// Reference implementation: materializes W as a dense matrix and evaluates
/// Eq. 1 literally with matrix-vector products. O(n²) — tests only.
DiffusionResult diffuse_dense_reference(const Subgraph& ball,
                                        std::span<const double> s0,
                                        const DiffusionParams& params);

}  // namespace meloppr::ppr
