// The graph-diffusion kernel GD_l (Eq. 1) — the computational heart of both
// the baseline and MeLoPPR.
//
//   S_l = (1−α) Σ_{k=0}^{l−1} α^k W^k S_0  +  α^l W^l S_0,   W = A·D⁻¹
//
// One call produces both outputs of Fig. 3(b):
//   accumulated π_a  — the PPR contribution S_l, aggregated into the global
//                      score table;
//   residual    π_r  — W^l S_0, the mass still "in flight", which seeds the
//                      next stage's per-node diffusions (Eq. 6–8).
//
// The kernel runs on a Subgraph (depth-l BFS ball) and divides by *global*
// degrees, which makes it bit-identical to running on the whole graph as
// long as l ≤ ball radius (DESIGN.md invariant 2). The iteration maintains
// the active frontier sparsely, so early iterations cost O(frontier edges),
// not O(ball).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/subgraph.hpp"

namespace meloppr::ppr {

using graph::NodeId;
using graph::Subgraph;

struct DiffusionResult {
  /// π_a over local ids: the l-step PPR scores S_l (Eq. 1).
  std::vector<double> accumulated;
  /// π_r over local ids: the residual W^l S_0.
  std::vector<double> residual;
  /// Edge traversals performed (Σ over iterations of active in-ball
  /// degrees). The CPU-latency and FPGA-cycle models both consume this.
  std::uint64_t edge_ops = 0;
  unsigned iterations = 0;
};

struct DiffusionParams {
  double alpha = 0.85;  ///< α-RW continuation probability
  unsigned length = 3;  ///< l, number of diffusion iterations
};

/// Runs GD_length on the ball with an arbitrary initial vector s0 (local
/// indexing, s0.size() == ball nodes). Requires length ≤ ball radius; this
/// is what guarantees exactness and is enforced with MELO_CHECK.
DiffusionResult diffuse(const Subgraph& ball, std::span<const double> s0,
                        const DiffusionParams& params);

/// Convenience: initial vector = `mass` at `local_seed`, zero elsewhere —
/// the form every MeLoPPR stage uses (stage 1: mass=1 at the query seed;
/// stage 2: mass=residual at each next-stage node).
DiffusionResult diffuse_from(const Subgraph& ball, NodeId local_seed,
                             double mass, const DiffusionParams& params);

/// Reference implementation: materializes W as a dense matrix and evaluates
/// Eq. 1 literally with matrix-vector products. O(n²) — tests only.
DiffusionResult diffuse_dense_reference(const Subgraph& ball,
                                        std::span<const double> s0,
                                        const DiffusionParams& params);

}  // namespace meloppr::ppr
