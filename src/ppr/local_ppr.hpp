// Single-stage local PPR — the paper's CPU baseline (Fig. 2(b)) and the
// ground-truth oracle for precision measurements.
//
// The method is exact for the L-step-truncated PPR: extract the depth-L BFS
// ball G_L(s), run GD_L on it, rank. Its cost is the problem MeLoPPR solves:
// memory grows with O(G_L(s)), which for L=6 on real graphs approaches the
// whole graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ppr/diffusion.hpp"
#include "ppr/topk.hpp"
#include "util/memory_meter.hpp"

namespace meloppr::ppr {

struct LocalPprParams {
  double alpha = 0.85;
  unsigned length = 6;   ///< L, diffusion depth (paper: L=6)
  std::size_t k = 200;   ///< top-k size (paper: k=200)
};

struct LocalPprResult {
  std::vector<ScoredNode> top;      ///< top-k (global ids), ranked
  std::vector<ScoredNode> scores;   ///< all non-zero PPR scores (global ids)

  // Workload accounting, consumed by Table II / Fig. 7 harnesses.
  std::size_t ball_nodes = 0;
  std::size_t ball_edges = 0;
  std::size_t peak_bytes = 0;       ///< ball CSR + score vectors
  double bfs_seconds = 0.0;
  double diffusion_seconds = 0.0;
  std::uint64_t edge_ops = 0;
};

/// Runs the baseline. If `meter` is non-null the ball and score-vector
/// footprints are also charged to it (categories "baseline/ball" and
/// "baseline/scores") so callers can track peaks across phases.
LocalPprResult local_ppr(const graph::Graph& g, graph::NodeId seed,
                         const LocalPprParams& params,
                         MemoryMeter* meter = nullptr);

}  // namespace meloppr::ppr
