#include "ppr/topk.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace meloppr::ppr {

std::vector<ScoredNode> to_scored_nodes(const ScoreMap& scores) {
  std::vector<ScoredNode> out;
  out.reserve(scores.size());
  for (const auto& [node, score] : scores) out.push_back({node, score});
  return out;
}

std::vector<ScoredNode> top_k(std::vector<ScoredNode> scores, std::size_t k) {
  const auto better = [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  };
  if (scores.size() > k) {
    std::nth_element(scores.begin(),
                     scores.begin() + static_cast<std::ptrdiff_t>(k),
                     scores.end(), better);
    scores.resize(k);
  }
  std::sort(scores.begin(), scores.end(), better);
  return scores;
}

std::vector<ScoredNode> top_k(const ScoreMap& scores, std::size_t k) {
  return top_k(to_scored_nodes(scores), k);
}

double precision_at_k(const std::vector<ScoredNode>& truth,
                      const std::vector<ScoredNode>& approx, std::size_t k) {
  MELO_CHECK(k > 0);
  std::unordered_set<NodeId> truth_set;
  truth_set.reserve(truth.size());
  for (const auto& sn : truth) truth_set.insert(sn.node);
  std::size_t hits = 0;
  for (const auto& sn : approx) {
    if (truth_set.count(sn.node) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace meloppr::ppr
