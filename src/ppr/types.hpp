// Shared score types for PPR computations.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace meloppr::ppr {

using graph::NodeId;

/// A (global node, PPR score) pair.
struct ScoredNode {
  NodeId node = graph::kInvalidNode;
  double score = 0.0;

  friend bool operator==(const ScoredNode&, const ScoredNode&) = default;
};

/// Sparse global score map (only nodes with non-zero mass).
using ScoreMap = std::unordered_map<NodeId, double>;

/// Flattens a ScoreMap into a vector of ScoredNode (unordered).
std::vector<ScoredNode> to_scored_nodes(const ScoreMap& scores);

}  // namespace meloppr::ppr
