// Top-k selection R(S, k) and the precision metric Prec(s, k) of Sec. II.
//
// Ties are broken deterministically by ascending node id so that every
// method (CPU float, FPGA integer, baselines) ranks identically-scored nodes
// the same way — without this, precision comparisons would be noisy.
#pragma once

#include <cstddef>
#include <vector>

#include "ppr/types.hpp"

namespace meloppr::ppr {

/// Returns the k highest-scored nodes in descending score order (ties by
/// ascending id). If fewer than k nodes are present, returns all of them.
std::vector<ScoredNode> top_k(std::vector<ScoredNode> scores, std::size_t k);

/// Convenience overload for a sparse map.
std::vector<ScoredNode> top_k(const ScoreMap& scores, std::size_t k);

/// Prec(s,k) = |approx ∩ truth| / k  (Sec. II "Measurement"). `truth` and
/// `approx` are top-k lists; only node identities matter. The divisor is
/// `k`, not |truth|, matching the paper.
double precision_at_k(const std::vector<ScoredNode>& truth,
                      const std::vector<ScoredNode>& approx, std::size_t k);

}  // namespace meloppr::ppr
