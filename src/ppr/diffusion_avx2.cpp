// AVX2 lane implementations of the blocked diffusion passes. This is the
// ONLY translation unit compiled with -mavx2 (see CMakeLists.txt); every
// entry point is reached through runtime dispatch in diffusion_kernels.cpp,
// which checks CPUID before ever selecting this tier.
//
// Bit-compat rules (float passes must match the scalar tier exactly):
//   * no FMA — -mavx2 does not imply -mfma and the multiplies/adds here must
//     round separately, like the scalar code;
//   * the row gather keeps each row's additions strictly left-to-right by
//     giving each of the 4 lanes its OWN row (row-per-lane), never splitting
//     one row across lanes;
//   * ragged row tails finish in scalar per lane rather than with masked
//     vector adds, so no +0.0 is ever folded into a lane that the scalar
//     code would not also add.
//
// The fixed-point passes emulate the 64×32-bit multiply with two
// _mm256_mul_epu32 half-products (exact uint64 wraparound); the truncating
// degree division stays scalar — AVX2 has no integer-divide lanes.
#include "ppr/diffusion_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace meloppr::ppr::detail {

#if defined(__AVX2__)

bool avx2_kernels_compiled() { return true; }

void scale_accumulate_avx2(double coef, const double* t, double* acc,
                           std::size_t n) {
  const __m256d c = _mm256_set1_pd(coef);
  std::size_t v = 0;
  for (; v + 4 <= n; v += 4) {
    const __m256d x = _mm256_loadu_pd(t + v);
    const __m256d a = _mm256_loadu_pd(acc + v);
    _mm256_storeu_pd(acc + v, _mm256_add_pd(a, _mm256_mul_pd(c, x)));
  }
  for (; v < n; ++v) acc[v] += coef * t[v];
}

void hadamard_avx2(const double* recip, const double* t, double* share,
                   std::size_t n) {
  std::size_t v = 0;
  for (; v + 4 <= n; v += 4) {
    const __m256d r = _mm256_loadu_pd(recip + v);
    const __m256d x = _mm256_loadu_pd(t + v);
    _mm256_storeu_pd(share + v, _mm256_mul_pd(r, x));
  }
  for (; v < n; ++v) share[v] = recip[v] * t[v];
}

void recip_avx2(const std::uint32_t* deg, double* recip, std::size_t n) {
  // vcvtdq2pd is exact for any uint32 degree (< 2^32 ≤ 2^53) and vdivpd is
  // correctly rounded, so every lane equals the scalar 1.0 / deg[v].
  const __m256d ones = _mm256_set1_pd(1.0);
  std::size_t v = 0;
  for (; v + 4 <= n; v += 4) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(deg + v));
    _mm256_storeu_pd(recip + v, _mm256_div_pd(ones, _mm256_cvtepi32_pd(d)));
  }
  for (; v < n; ++v) recip[v] = 1.0 / static_cast<double>(deg[v]);
}

void gather_rows_avx2(const Subgraph& ball, const double* share, double* next,
                      std::size_t rows) {
  // Row-per-lane: 4 consecutive rows advance in lock-step through their
  // common length prefix, each lane summing its OWN sorted neighbor list
  // strictly left-to-right; the ragged tails finish scalar per lane,
  // continuing the lane's in-order add chain. Any per-call preprocessing
  // (degree sorting, index interleaving) costs more than it saves at the
  // paper's diffusion lengths of 2-3, so the groups are taken in natural
  // order straight off the CSR.
  std::size_t w = 0;
  for (; w + 4 <= rows; w += 4) {
    std::span<const NodeId> row[4];
    std::size_t min_len = ~std::size_t{0};
    for (std::size_t j = 0; j < 4; ++j) {
      row[j] = ball.neighbors(static_cast<NodeId>(w + j));
      min_len = std::min(min_len, row[j].size());
    }
    __m256d sum = _mm256_setzero_pd();
    for (std::size_t s = 0; s < min_len; ++s) {
      const __m128i idx = _mm_setr_epi32(static_cast<int>(row[0][s]),
                                         static_cast<int>(row[1][s]),
                                         static_cast<int>(row[2][s]),
                                         static_cast<int>(row[3][s]));
      sum = _mm256_add_pd(sum, _mm256_i32gather_pd(share, idx, 8));
    }
    alignas(32) double lane[4];
    _mm256_store_pd(lane, sum);
    for (std::size_t j = 0; j < 4; ++j) {
      double acc = lane[j];
      for (std::size_t k = min_len; k < row[j].size(); ++k) {
        acc += share[row[j][k]];
      }
      next[w + j] = acc;
    }
  }
  for (; w < rows; ++w) {
    double sum = 0.0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += share[v];
    }
    next[w] = sum;
  }
}

namespace {

/// Low 64 bits of x·c per lane, c < 2^32 — two 32×32 half-products, exactly
/// the uint64 wraparound the scalar Quantizer ops produce.
inline __m256i mul_u64_u32(__m256i x, __m256i c) {
  const __m256i lo = _mm256_mul_epu32(x, c);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), c);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

}  // namespace

void fx_scale_accumulate_avx2(std::uint64_t coef, unsigned q,
                              const std::uint64_t* u, std::uint64_t* acc,
                              std::size_t n) {
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(coef));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(q));
  std::size_t v = 0;
  for (; v + 4 <= n; v += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u + v));
    const __m256i scaled = _mm256_srl_epi64(mul_u64_u32(x, c), shift);
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + v),
                        _mm256_add_epi64(a, scaled));
  }
  for (; v < n; ++v) acc[v] += (u[v] * coef) >> q;
}

void fx_contrib_avx2(const Subgraph& ball, std::uint64_t alpha_p, unsigned q,
                     const std::uint64_t* u, std::uint64_t* contrib,
                     std::size_t n) {
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(alpha_p));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(q));
  std::size_t v = 0;
  for (; v + 4 <= n; v += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u + v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(contrib + v),
                        _mm256_srl_epi64(mul_u64_u32(x, c), shift));
  }
  for (; v < n; ++v) contrib[v] = (u[v] * alpha_p) >> q;
  for (std::size_t i = 0; i < n; ++i) {
    contrib[i] /= ball.global_degree(static_cast<NodeId>(i));
  }
}

void fx_gather_rows_avx2(const Subgraph& ball, const std::uint64_t* contrib,
                         std::uint64_t* next, std::size_t rows) {
  // Integer twin of gather_rows_avx2 (integer adds commute, so this pass
  // could reorder freely — it keeps the same shape for simplicity).
  const auto* base = reinterpret_cast<const long long*>(contrib);
  std::size_t w = 0;
  for (; w + 4 <= rows; w += 4) {
    std::span<const NodeId> row[4];
    std::size_t min_len = ~std::size_t{0};
    for (std::size_t j = 0; j < 4; ++j) {
      row[j] = ball.neighbors(static_cast<NodeId>(w + j));
      min_len = std::min(min_len, row[j].size());
    }
    __m256i sum = _mm256_setzero_si256();
    for (std::size_t s = 0; s < min_len; ++s) {
      const __m128i idx = _mm_setr_epi32(static_cast<int>(row[0][s]),
                                         static_cast<int>(row[1][s]),
                                         static_cast<int>(row[2][s]),
                                         static_cast<int>(row[3][s]));
      sum = _mm256_add_epi64(sum, _mm256_i32gather_epi64(base, idx, 8));
    }
    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), sum);
    for (std::size_t j = 0; j < 4; ++j) {
      std::uint64_t acc = lane[j];
      for (std::size_t k = min_len; k < row[j].size(); ++k) {
        acc += contrib[row[j][k]];
      }
      next[w + j] = acc;
    }
  }
  for (; w < rows; ++w) {
    std::uint64_t sum = 0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += contrib[v];
    }
    next[w] = sum;
  }
}

#else  // !defined(__AVX2__)

// Link-satisfying fallbacks for builds without AVX2 (non-x86 targets, or a
// toolchain where the per-source -mavx2 flag was not applied). Dispatch
// never selects the kAvx2 tier here because avx2_kernels_compiled() is
// false, so these bodies only need to exist, but they are kept correct
// (plain scalar) rather than trapping, out of caution.

bool avx2_kernels_compiled() { return false; }

void scale_accumulate_avx2(double coef, const double* t, double* acc,
                           std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) acc[v] += coef * t[v];
}

void hadamard_avx2(const double* recip, const double* t, double* share,
                   std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) share[v] = recip[v] * t[v];
}

void recip_avx2(const std::uint32_t* deg, double* recip, std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    recip[v] = 1.0 / static_cast<double>(deg[v]);
  }
}

void gather_rows_avx2(const Subgraph& ball, const double* share, double* next,
                      std::size_t rows) {
  for (std::size_t w = 0; w < rows; ++w) {
    double sum = 0.0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += share[v];
    }
    next[w] = sum;
  }
}

void fx_scale_accumulate_avx2(std::uint64_t coef, unsigned q,
                              const std::uint64_t* u, std::uint64_t* acc,
                              std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) acc[v] += (u[v] * coef) >> q;
}

void fx_contrib_avx2(const Subgraph& ball, std::uint64_t alpha_p, unsigned q,
                     const std::uint64_t* u, std::uint64_t* contrib,
                     std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    contrib[v] =
        ((u[v] * alpha_p) >> q) / ball.global_degree(static_cast<NodeId>(v));
  }
}

void fx_gather_rows_avx2(const Subgraph& ball, const std::uint64_t* contrib,
                         std::uint64_t* next, std::size_t rows) {
  for (std::size_t w = 0; w < rows; ++w) {
    std::uint64_t sum = 0;
    for (const NodeId v : ball.neighbors(static_cast<NodeId>(w))) {
      sum += contrib[v];
    }
    next[w] = sum;
  }
}

#endif  // defined(__AVX2__)

}  // namespace meloppr::ppr::detail
