#include "ppr/forward_push.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace meloppr::ppr {

ForwardPushResult forward_push_ppr(const graph::Graph& g, graph::NodeId seed,
                                   const ForwardPushParams& params) {
  if (seed >= g.num_nodes() || g.degree(seed) == 0) {
    throw std::invalid_argument("forward_push_ppr: bad seed");
  }
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK(params.epsilon > 0.0);

  std::unordered_map<graph::NodeId, double> p;
  std::unordered_map<graph::NodeId, double> r;
  std::vector<graph::NodeId> queue;  // nodes possibly above threshold
  std::unordered_map<graph::NodeId, char> queued;

  r[seed] = 1.0;
  queue.push_back(seed);
  queued[seed] = 1;

  ForwardPushResult out;
  std::size_t head = 0;
  while (head < queue.size() && out.pushes < params.max_pushes) {
    const graph::NodeId v = queue[head++];
    queued[v] = 0;
    const double rv = r[v];
    const auto deg = static_cast<double>(g.degree(v));
    if (rv <= params.epsilon * deg) continue;

    p[v] += (1.0 - params.alpha) * rv;
    r[v] = 0.0;
    ++out.pushes;
    const double share = params.alpha * rv / deg;
    const auto adj = g.neighbors(v);
    out.edge_ops += adj.size();
    for (graph::NodeId w : adj) {
      r[w] += share;
      if (r[w] > params.epsilon * static_cast<double>(g.degree(w)) &&
          queued[w] == 0) {
        queued[w] = 1;
        queue.push_back(w);
      }
    }
  }

  for (const auto& [node, residual] : r) out.residual_mass += residual;
  out.scores.reserve(p.size());
  for (const auto& [node, estimate] : p) {
    if (estimate > 0.0) out.scores.push_back({node, estimate});
  }
  out.top = top_k(out.scores, params.k);

  // Support: anything with estimate or residual mass.
  std::size_t touched = p.size();
  for (const auto& [node, residual] : r) {
    if (residual > 0.0 && p.count(node) == 0) ++touched;
  }
  out.touched_nodes = touched;
  return out;
}

}  // namespace meloppr::ppr
