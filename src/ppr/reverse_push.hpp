// Reverse (backward) push — the single-target dual of forward push
// (Andersen et al. 2007; the backward phase of FAST-PPR, which the paper
// cites in Sec. III). Estimates π_s(t) for *all* sources s at once, for one
// fixed target t:
//
//   invariant:  π_s(t) = p(s) + Σ_v r(v)·π_s(v)  for every s
//   push rule:  while r(v) > ε:  p(v) += (1−α)·r(v);
//               r(u) += α·r(v)/deg(u)  for each in-neighbor u;  r(v) = 0.
//
// On undirected graphs in-neighbors are just neighbors; note the division
// is by deg(u) (the pushing *source's* out-degree in the walk), which is
// what distinguishes the reverse update from the forward one.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/graph.hpp"
#include "ppr/topk.hpp"

namespace meloppr::ppr {

struct ReversePushParams {
  double alpha = 0.85;
  double epsilon = 1e-6;   ///< push threshold on the raw residual
  std::uint64_t max_pushes = 100'000'000;
};

struct ReversePushResult {
  /// Estimated contribution p(s) ≈ π_s(t) for every touched source s.
  std::vector<ScoredNode> contributions;
  std::uint64_t pushes = 0;
  std::uint64_t edge_ops = 0;
  double residual_mass = 0.0;
  std::size_t touched_nodes = 0;
};

/// Runs reverse push toward `target`. The result answers "who considers
/// `target` important?" — the dual query of forward PPR.
ReversePushResult reverse_push_ppr(const graph::Graph& g,
                                   graph::NodeId target,
                                   const ReversePushParams& params);

}  // namespace meloppr::ppr
