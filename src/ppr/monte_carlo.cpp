#include "ppr/monte_carlo.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/assert.hpp"

namespace meloppr::ppr {

MonteCarloResult monte_carlo_ppr(const graph::Graph& g, graph::NodeId seed,
                                 const MonteCarloParams& params, Rng& rng) {
  if (seed >= g.num_nodes() || g.degree(seed) == 0) {
    throw std::invalid_argument("monte_carlo_ppr: bad seed");
  }
  MELO_CHECK(params.alpha > 0.0 && params.alpha < 1.0);
  MELO_CHECK(params.num_walks > 0);

  MonteCarloResult out;
  std::unordered_map<graph::NodeId, std::size_t> hits;
  for (std::size_t w = 0; w < params.num_walks; ++w) {
    graph::NodeId cur = seed;
    for (unsigned step = 0; step < params.max_length; ++step) {
      if (!rng.chance(params.alpha)) break;  // terminate with prob 1-α
      const auto adj = g.neighbors(cur);
      if (adj.empty()) break;  // dangling: nowhere to go
      cur = adj[rng.below(adj.size())];
      ++out.steps_taken;
    }
    ++hits[cur];
  }

  out.support_size = hits.size();
  out.scores.reserve(hits.size());
  const double inv = 1.0 / static_cast<double>(params.num_walks);
  for (const auto& [node, count] : hits) {
    out.scores.push_back({node, static_cast<double>(count) * inv});
  }
  out.top = top_k(out.scores, params.k);
  return out;
}

}  // namespace meloppr::ppr
