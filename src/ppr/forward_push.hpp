// Forward push (local-update) PPR — the algorithmic core of FORA and the
// classic Andersen–Chung–Lang scheme, included as the software-side
// comparison family the paper cites (Sec. III).
//
// Maintains estimates p(v) and residuals r(v) with the invariant
//   π(s) = p + Σ_v r(v)·π_v   (π_v = PPR vector of v)
// and repeatedly "pushes" any node whose residual exceeds eps·deg(v):
//   p(v) += (1−α)·r(v);   r(w) += α·r(v)/deg(v) for each neighbor w.
// Unlike GD_L this approximates the *untruncated* PPR; with eps→0 it
// converges to the L=∞ fixed point.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/graph.hpp"
#include "ppr/topk.hpp"

namespace meloppr::ppr {

struct ForwardPushParams {
  double alpha = 0.85;
  double epsilon = 1e-6;  ///< push threshold: push while r(v) > ε·deg(v)
  std::size_t k = 200;
  std::uint64_t max_pushes = 100'000'000;  ///< safety cap
};

struct ForwardPushResult {
  std::vector<ScoredNode> top;
  std::vector<ScoredNode> scores;      ///< estimates p(v), non-zero only
  std::uint64_t pushes = 0;            ///< push operations performed
  std::uint64_t edge_ops = 0;          ///< edges traversed
  double residual_mass = 0.0;          ///< Σ r(v) at termination (error bound)
  std::size_t touched_nodes = 0;       ///< support of p ∪ r
};

ForwardPushResult forward_push_ppr(const graph::Graph& g, graph::NodeId seed,
                                   const ForwardPushParams& params);

}  // namespace meloppr::ppr
