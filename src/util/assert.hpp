// Checked assertions for MeLoPPR.
//
// MELO_CHECK is active in all build types: graph algorithms fail in ways that
// silently corrupt rankings, so internal invariants stay loud in release
// builds too. MELO_DCHECK compiles out in NDEBUG builds and is reserved for
// hot inner loops where the check itself is measurable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace meloppr {

/// Thrown when an internal invariant fails. Distinct from
/// std::invalid_argument (caller error) so tests can tell the two apart.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MELO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace meloppr

/// Always-on invariant check. Throws meloppr::InvariantViolation on failure.
#define MELO_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::meloppr::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                      \
  } while (false)

/// Always-on invariant check with a streamed message:
///   MELO_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define MELO_CHECK_MSG(expr, msg_stream)                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream melo_check_os_;                                   \
      melo_check_os_ << msg_stream;                                        \
      ::meloppr::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                      melo_check_os_.str());               \
    }                                                                      \
  } while (false)

/// Debug-only check for hot loops; compiles to nothing under NDEBUG.
#ifdef NDEBUG
#define MELO_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define MELO_DCHECK(expr) MELO_CHECK(expr)
#endif
