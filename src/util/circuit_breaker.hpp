// Per-device circuit breaker for the resilient dispatch layer (farm.hpp).
//
// A device that keeps failing should stop receiving traffic: every failed
// dispatch costs a retry-backoff round trip, and a hard-down device would
// otherwise eat one timeout per dispatch forever. The breaker is the
// classic three-state machine:
//
//   kClosed   — healthy; dispatches flow freely. `failure_threshold`
//               consecutive failures trip it open.
//   kOpen     — removed from rotation. After `probe_interval_seconds` one
//               dispatch may be claimed as a half-open probe.
//   kHalfOpen — exactly one probe in flight. Success re-closes the breaker
//               (the device rejoins rotation); failure re-opens it and
//               re-arms the probe timer.
//
// kill() is the terminal state for sticky device death (a device that
// reports RunStatus::kDeviceDead): no probe ever re-admits it.
//
// The breaker is deliberately clock-free: `now` is passed in by the caller
// (the farm feeds its uptime timer), the same convention as
// AdaptiveWindowController — so the state machine unit-tests exhaustively
// with a synthetic clock, no sleeps. Not internally synchronized; the farm
// mutates it under its dispatch mutex.
#pragma once

#include <cstddef>

namespace meloppr {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen, kDead };

  /// `failure_threshold` consecutive failures trip the breaker; 0 disables
  /// tripping entirely (the breaker stays closed unless kill()ed).
  /// `probe_interval_seconds` is the open→half-open maturation time.
  CircuitBreaker(std::size_t failure_threshold, double probe_interval_seconds)
      : threshold_(failure_threshold),
        probe_interval_(probe_interval_seconds) {}

  /// Healthy: dispatches may flow without claiming a probe.
  [[nodiscard]] bool closed() const { return !dead_ && !open_; }

  [[nodiscard]] bool dead() const { return dead_; }

  /// Open, probe timer matured, and no probe already in flight: the caller
  /// may claim the half-open probe with begin_probe().
  [[nodiscard]] bool probe_ready(double now) const {
    return !dead_ && open_ && !probe_in_flight_ && now >= probe_at_;
  }

  /// Claims the single half-open probe slot (caller must have checked
  /// probe_ready). The next record_success/record_failure settles it.
  void begin_probe() {
    probe_in_flight_ = true;
    ++probes_;
  }

  [[nodiscard]] State state(double now) const {
    if (dead_) return State::kDead;
    if (!open_) return State::kClosed;
    return (probe_in_flight_ || now >= probe_at_) ? State::kHalfOpen
                                                  : State::kOpen;
  }

  /// A dispatch on this device succeeded: re-close (probe or not) and
  /// forget the failure streak.
  void record_success() {
    if (dead_) return;
    probe_in_flight_ = false;
    open_ = false;
    consecutive_failures_ = 0;
  }

  /// A dispatch on this device failed at `now`. A failed probe re-opens
  /// and re-arms the timer; a failed closed-state dispatch counts toward
  /// the consecutive-failure trip.
  void record_failure(double now) {
    if (dead_) return;
    if (probe_in_flight_) {
      probe_in_flight_ = false;
      probe_at_ = now + probe_interval_;
      return;  // already open; the probe just didn't pay off
    }
    ++consecutive_failures_;
    if (open_) {
      // Failure while open without a probe claim (e.g. a dispatch that
      // checked out before the trip): just push the probe horizon.
      probe_at_ = now + probe_interval_;
      return;
    }
    if (threshold_ > 0 && consecutive_failures_ >= threshold_) {
      open_ = true;
      ++trips_;
      probe_at_ = now + probe_interval_;
    }
  }

  /// Terminal: the device reported sticky death; no probe re-admits it.
  void kill() {
    dead_ = true;
    open_ = true;
    probe_in_flight_ = false;
  }

  /// Times the breaker transitioned closed→open (kill() not included).
  [[nodiscard]] std::size_t trips() const { return trips_; }
  /// Half-open probes claimed so far.
  [[nodiscard]] std::size_t probes() const { return probes_; }
  [[nodiscard]] std::size_t consecutive_failures() const {
    return consecutive_failures_;
  }

 private:
  std::size_t threshold_;
  double probe_interval_;
  bool open_ = false;
  bool dead_ = false;
  bool probe_in_flight_ = false;
  double probe_at_ = 0.0;
  std::size_t consecutive_failures_ = 0;
  std::size_t trips_ = 0;
  std::size_t probes_ = 0;
};

}  // namespace meloppr
