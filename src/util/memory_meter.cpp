#include "util/memory_meter.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace meloppr {

void MemoryMeter::allocate(const std::string& category, std::size_t bytes) {
  Entry& e = entries_[category];
  e.current += bytes;
  e.peak = std::max(e.peak, e.current);
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryMeter::release(const std::string& category, std::size_t bytes) {
  auto it = entries_.find(category);
  MELO_CHECK_MSG(it != entries_.end(),
                 "release of unknown category '" << category << "'");
  MELO_CHECK_MSG(it->second.current >= bytes,
                 "release of " << bytes << "B exceeds live "
                               << it->second.current << "B in '" << category
                               << "'");
  it->second.current -= bytes;
  current_ -= bytes;
}

void MemoryMeter::set(const std::string& category, std::size_t bytes) {
  const std::size_t live = entries_[category].current;
  if (bytes >= live) {
    allocate(category, bytes - live);
  } else {
    release(category, live - bytes);
  }
}

std::size_t MemoryMeter::current_bytes(const std::string& category) const {
  auto it = entries_.find(category);
  return it == entries_.end() ? 0 : it->second.current;
}

std::size_t MemoryMeter::peak_bytes(const std::string& category) const {
  auto it = entries_.find(category);
  return it == entries_.end() ? 0 : it->second.peak;
}

std::vector<std::string> MemoryMeter::categories() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void MemoryMeter::merge_peak(const MemoryMeter& other) {
  for (const auto& [name, entry] : other.entries_) {
    Entry& e = entries_[name];
    e.current += entry.current;
    e.peak += entry.peak;
  }
  current_ += other.current_;
  peak_ += other.peak_;
}

void MemoryMeter::reset() {
  entries_.clear();
  current_ = 0;
  peak_ = 0;
}

std::string MemoryMeter::report() const {
  std::ostringstream os;
  os << "memory meter: total current=" << format_mb(current_)
     << " peak=" << format_mb(peak_) << '\n';
  for (const auto& [name, entry] : entries_) {
    os << "  " << name << ": current=" << format_mb(entry.current)
       << " peak=" << format_mb(entry.peak) << '\n';
  }
  return os.str();
}

ScopedAllocation::ScopedAllocation(MemoryMeter& meter, std::string category,
                                   std::size_t bytes)
    : meter_(meter), category_(std::move(category)), bytes_(bytes) {
  meter_.allocate(category_, bytes_);
}

ScopedAllocation::~ScopedAllocation() { meter_.release(category_, bytes_); }

void ScopedAllocation::grow(std::size_t extra_bytes) {
  meter_.allocate(category_, extra_bytes);
  bytes_ += extra_bytes;
}

std::string format_mb(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(bytes) / (1024.0 * 1024.0) << " MB";
  return os.str();
}

}  // namespace meloppr
