// Clang thread-safety-analysis vocabulary for the whole repo.
//
// Every mutex-owning class in src/ declares, per field, which lock guards
// it (MELOPPR_GUARDED_BY) and, per method, what it requires or must not
// hold (MELOPPR_REQUIRES / MELOPPR_EXCLUDES). Under Clang with
// -Wthread-safety the declarations become compile-time checks: touching a
// guarded field without its lock, or calling a REQUIRES method unlocked,
// is a build error in the static-analysis CI job (and the negative-compile
// tests in tests/negative/ prove the gate actually fires). Under GCC the
// macros expand to nothing, so the tree builds identically everywhere.
//
// The std lock types carry no capability attributes, so this header also
// provides annotated drop-ins: Mutex / SharedMutex (CAPABILITY wrappers
// over the std types) and the RAII guards MutexLock / ReaderLock /
// WriterLock (SCOPED_CAPABILITY wrappers over std::unique_lock /
// std::shared_lock). They are the ONLY place in src/ allowed to name
// std::mutex or std::shared_mutex — tools/check_source_invariants.sh
// enforces that, which is what keeps every new lock annotated.
//
// Condition variables: std::condition_variable::wait needs the underlying
// std::unique_lock, exposed as MutexLock::native(). The analysis treats
// the capability as held across the wait (the standard convention — the
// lock is re-acquired before wait returns), but it cannot see into lambda
// bodies, so wait predicates that read guarded fields must be written as
// explicit `while (!cond) cv.wait(lock.native());` loops, never as
// `cv.wait(lock, [&]{ ... })`.
#pragma once

#include <mutex>
#include <shared_mutex>

// -- attribute spellings ----------------------------------------------------

#if defined(__clang__) && !defined(MELOPPR_NO_THREAD_SAFETY_ANALYSIS_BUILD)
#define MELOPPR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MELOPPR_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define MELOPPR_CAPABILITY(x) MELOPPR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MELOPPR_SCOPED_CAPABILITY MELOPPR_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define MELOPPR_GUARDED_BY(x) MELOPPR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee may only be touched while holding `x` (the pointer itself is free).
#define MELOPPR_PT_GUARDED_BY(x) MELOPPR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold `...` exclusively before calling.
#define MELOPPR_REQUIRES(...) \
  MELOPPR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold `...` at least shared before calling.
#define MELOPPR_REQUIRES_SHARED(...) \
  MELOPPR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and does not release it.
#define MELOPPR_ACQUIRE(...) \
  MELOPPR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires `...` shared and does not release it.
#define MELOPPR_ACQUIRE_SHARED(...) \
  MELOPPR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases `...` (exclusive, or generic when empty — scoped
/// destructors use the empty form so one spelling covers shared holders).
#define MELOPPR_RELEASE(...) \
  MELOPPR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases the shared hold of `...`.
#define MELOPPR_RELEASE_SHARED(...) \
  MELOPPR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire `...`; first argument is the success value.
#define MELOPPR_TRY_ACQUIRE(...) \
  MELOPPR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Shared-mode try-acquire; first argument is the success value.
#define MELOPPR_TRY_ACQUIRE_SHARED(...) \
  MELOPPR_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold `...` (deadlock guard for self-calling APIs).
#define MELOPPR_EXCLUDES(...) \
  MELOPPR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, by contract) that `...` is held — for callbacks
/// invoked under a lock the analysis cannot see.
#define MELOPPR_ASSERT_CAPABILITY(x) \
  MELOPPR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define MELOPPR_RETURN_CAPABILITY(x) \
  MELOPPR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment saying why the analysis cannot express the pattern.
#define MELOPPR_NO_THREAD_SAFETY_ANALYSIS \
  MELOPPR_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace meloppr::util {

class MutexLock;

/// Annotated drop-in for std::mutex. Same semantics, same footprint; the
/// CAPABILITY attribute is what lets GUARDED_BY/REQUIRES name it.
class MELOPPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MELOPPR_ACQUIRE() { mu_.lock(); }
  void unlock() MELOPPR_RELEASE() { mu_.unlock(); }
  bool try_lock() MELOPPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Annotated drop-in for std::shared_mutex.
class MELOPPR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MELOPPR_ACQUIRE() { mu_.lock(); }
  void unlock() MELOPPR_RELEASE() { mu_.unlock(); }
  bool try_lock() MELOPPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() MELOPPR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MELOPPR_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() MELOPPR_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex — replaces both std::lock_guard and
/// std::unique_lock (it wraps a std::unique_lock, so defer/adopt/try and
/// mid-scope unlock()/lock() all work, and native() feeds
/// std::condition_variable::wait).
class MELOPPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MELOPPR_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(Mutex& mu, std::defer_lock_t tag) noexcept MELOPPR_EXCLUDES(mu)
      : lock_(mu.mu_, tag) {}
  MutexLock(Mutex& mu, std::adopt_lock_t tag) MELOPPR_REQUIRES(mu)
      : lock_(mu.mu_, tag) {}
  MutexLock(Mutex& mu, std::try_to_lock_t tag) MELOPPR_TRY_ACQUIRE(true, mu)
      : lock_(mu.mu_, tag) {}
  ~MutexLock() MELOPPR_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() MELOPPR_ACQUIRE() { lock_.lock(); }
  void unlock() MELOPPR_RELEASE() { lock_.unlock(); }
  bool try_lock() MELOPPR_TRY_ACQUIRE(true) { return lock_.try_lock(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lock_.owns_lock(); }

  /// The underlying std lock, for std::condition_variable::wait. The wait
  /// releases and re-acquires the mutex internally; the analysis treats
  /// the capability as held throughout, which matches the caller's view.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock over SharedMutex.
class MELOPPR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MELOPPR_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderLock() MELOPPR_RELEASE() {}

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class MELOPPR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MELOPPR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterLock() MELOPPR_RELEASE() {}

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

}  // namespace meloppr::util
