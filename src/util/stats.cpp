#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace meloppr {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MELO_CHECK(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  MELO_CHECK(count_ > 0);
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MELO_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  MELO_CHECK(count_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  MELO_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

double Samples::stddev() const {
  MELO_CHECK(!values_.empty());
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  MELO_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  MELO_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::geomean() const {
  MELO_CHECK(!values_.empty());
  double log_sum = 0.0;
  for (double v : values_) {
    MELO_CHECK_MSG(v > 0.0, "geomean requires positive samples, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values_.size()));
}

double Samples::percentile(double p) const {
  MELO_CHECK(!values_.empty());
  MELO_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bin_count)
    : log10_lo(lo), log10_hi(hi), bins(bin_count, 0) {
  MELO_CHECK(bin_count > 0);
  MELO_CHECK(lo < hi);
}

void LogHistogram::add(double x) {
  double lg = (x <= 0.0) ? log10_lo : std::log10(x);
  lg = std::clamp(lg, log10_lo, log10_hi);
  const double t = (lg - log10_lo) / (log10_hi - log10_lo);
  auto idx = static_cast<std::size_t>(t * static_cast<double>(bins.size()));
  if (idx >= bins.size()) idx = bins.size() - 1;
  ++bins[idx];
}

std::size_t LogHistogram::total() const {
  std::size_t n = 0;
  for (auto b : bins) n += b;
  return n;
}

double LogHistogram::fraction_below(double log10_threshold) const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t acc = 0;
  const double bin_width =
      (log10_hi - log10_lo) / static_cast<double>(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double upper = log10_lo + bin_width * static_cast<double>(i + 1);
    if (upper <= log10_threshold) acc += bins[i];
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

std::string LogHistogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto b : bins) peak = std::max(peak, b);
  std::ostringstream os;
  const double bin_width =
      (log10_hi - log10_lo) / static_cast<double>(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double lo = log10_lo + bin_width * static_cast<double>(i);
    const std::size_t bar =
        peak == 0 ? 0 : bins[i] * width / peak;
    os << "  1e" << lo << "\t|";
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << bins[i] << '\n';
  }
  return os.str();
}

}  // namespace meloppr
