// Wall-clock timing helpers used by the benchmark harnesses and the hybrid
// host runner (CPU-side BFS time in Fig. 7 is measured with these).
#pragma once

#include <chrono>
#include <cstdint>

namespace meloppr {

/// Monotonic stopwatch. Construction starts it; elapsed_*() reads it without
/// stopping, restart() re-arms it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple measured regions, e.g. "total BFS time
/// over all stage-2 sub-graphs in one query".
class AccumulatingTimer {
 public:
  /// RAII scope: adds the scope's lifetime to the accumulator.
  class Scope {
   public:
    explicit Scope(AccumulatingTimer& owner) : owner_(owner) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_.total_seconds_ += timer_.elapsed_seconds(); }

   private:
    AccumulatingTimer& owner_;
    Timer timer_;
  };

  [[nodiscard]] Scope measure() { return Scope(*this); }

  void add_seconds(double s) { total_seconds_ += s; }
  void reset() { total_seconds_ = 0.0; }

  [[nodiscard]] double total_seconds() const { return total_seconds_; }
  [[nodiscard]] double total_ms() const { return total_seconds_ * 1e3; }

 private:
  double total_seconds_ = 0.0;
};

}  // namespace meloppr
