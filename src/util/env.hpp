// Environment-variable knobs for the benchmark harnesses.
//
// The paper averages over 500–1000 random seeds per graph; on a small
// container that is hours of work, so the benches default to fewer seeds and
// honor MELOPPR_SEEDS / MELOPPR_SCALE overrides for full-fidelity runs.
#pragma once

#include <cstdint>
#include <string>

namespace meloppr {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparseable. Never throws: benches must run in any environment.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a double environment variable with the same fallback contract.
double env_double(const std::string& name, double fallback);

/// Reads a flag-style variable: unset/"0"/"false"/"off" → false, else true.
bool env_flag(const std::string& name, bool fallback = false);

/// Number of random PPR queries a bench should average over. Honors
/// MELOPPR_SEEDS; `dflt` is the scaled-down default for this container.
std::size_t bench_seed_count(std::size_t dflt);

/// Global RNG seed for benches (MELOPPR_RNG_SEED, default 42).
std::uint64_t bench_rng_seed();

/// Process-wide override for bench_rng_seed() — the `--seed N` flag of the
/// bench harnesses. Wins over MELOPPR_RNG_SEED so a printed seed replays
/// exactly with one copy-pasted flag.
void set_bench_rng_seed(std::uint64_t seed);

}  // namespace meloppr
