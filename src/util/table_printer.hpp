// Console table rendering for the benchmark harnesses. Every bench binary
// prints the same rows the paper's tables/figures report, and this class
// keeps the columns aligned and additionally emits machine-readable CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace meloppr {

/// Column-aligned ASCII table with an optional title and CSV export.
///
///   TablePrinter t({"Graph", "Memory (MB)", "Reduction"});
///   t.add_row({"G1", "0.005~1.262", "13.06x"});
///   std::cout << t.ascii();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line at this position.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const;

  /// Renders the aligned ASCII table (always ends with '\n').
  [[nodiscard]] std::string ascii() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string csv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt_fixed(double v, int precision);

/// Formats a ratio like the paper: "13.06x".
std::string fmt_ratio(double v, int precision = 2);

/// Formats a fraction as a percentage: "73.8%".
std::string fmt_percent(double fraction, int precision = 1);

/// Formats "lo ~ hi" ranges as used in Table II.
std::string fmt_range(double lo, double hi, int precision = 3);

}  // namespace meloppr
