// Deterministic fault injection for the resilient dispatch layer.
//
// Production fault tolerance is only trustworthy if every failure mode can
// be replayed byte-for-byte in a test: "device 3 died after 40 runs and
// 7% of dispatches flaked" must be a seed, not an anecdote. A FaultPlan is
// that seed — a small parsed spec of which environmental failures to
// inject — and FaultyBackend is the decorator that acts it out against any
// DiffusionBackend. The farm wraps each simulated device in one (when a
// plan is active), so retries, breaker trips, sticky death, and failover
// all exercise the exact same code paths real hardware faults would.
//
// Plan format (MELOPPR_FAULT_PLAN or FaultPlan::parse), comma-separated
// key=value pairs; unknown keys are ignored so plans stay forward
// compatible:
//
//   transient=P    probability in [0,1] that a run fails transiently
//   spike=P:S      probability P of a latency spike of S seconds (real
//                  sleep, so wall-clock deadlines genuinely trip)
//   death=N@D      device instance D dies stickily after N successful runs
//                  (D is the per-farm wrap index; omit `@D` for instance 0)
//   extractor=P    probability that a faulty ball extractor throws
//   seed=N         base RNG seed (default 1; tests pass test_seed())
//
// Example: MELOPPR_FAULT_PLAN="transient=0.05,spike=0.01:0.002,death=40@1"
//
// Determinism: each FaultyBackend derives its stream from
// plan.seed ^ instance, so a fixed plan and fixed per-device run order
// replays exactly. Under a concurrent farm the interleaving across devices
// varies, but each device's decision sequence is still a pure function of
// its own run count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr {

/// Parsed, seeded fault-injection spec. Value-type; default is the empty
/// plan (inject nothing).
struct FaultPlan {
  /// Probability a run fails with RunStatus::kTransientFault.
  double transient_probability = 0.0;
  /// Probability a run stalls for `spike_seconds` of real wall time.
  double spike_probability = 0.0;
  double spike_seconds = 0.0;
  /// After this many successful runs, instance `death_instance` reports
  /// sticky death forever (0 = no death scheduled).
  std::uint64_t death_after_runs = 0;
  std::uint64_t death_instance = 0;
  bool death_scheduled = false;
  /// Probability make_flaky_extractor throws instead of extracting.
  double extractor_probability = 0.0;
  /// Base seed; each consumer forks its stream from this.
  std::uint64_t seed = 1;

  /// True when the plan injects nothing (all probabilities zero, no death
  /// scheduled) — the farm then skips wrapping devices entirely.
  [[nodiscard]] bool empty() const;

  /// Parses the comma-separated key=value spec above. Unknown keys are
  /// ignored; malformed values throw std::invalid_argument (a bad plan is
  /// a caller error, not weather).
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Plan from MELOPPR_FAULT_PLAN, or the empty plan when unset/empty.
  [[nodiscard]] static FaultPlan from_env();

  /// One-line human-readable summary for bench banners and the server.
  [[nodiscard]] std::string summary() const;
};

namespace core {

/// Decorator that injects the plan's failures into an inner backend.
/// Injection order per run: sticky death (if scheduled and matured) →
/// latency spike (real sleep, charged to compute_seconds) → transient
/// fault. A transiently-failed run never touches the inner backend, so
/// fault-free replays of the surviving runs are bit-identical.
///
/// Thread-safe when the inner backend is: the RNG and counters are guarded
/// by a per-instance mutex (held only for the cheap decision, not the run).
class FaultyBackend final : public DiffusionBackend {
 public:
  /// Non-owning wrap; `inner` must outlive this decorator. `instance` is
  /// the per-farm device index, folded into the RNG seed.
  FaultyBackend(DiffusionBackend& inner, const FaultPlan& plan,
                std::uint64_t instance);
  /// Owning wrap (used by clone() and the farm's device wrapping).
  FaultyBackend(std::unique_ptr<DiffusionBackend> inner, const FaultPlan& plan,
                std::uint64_t instance);

  BackendResult run(const graph::Subgraph& ball, double mass,
                    unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override {
    return inner_->working_bytes(ball_nodes, ball_edges);
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DiffusionBackend> clone() const override;
  [[nodiscard]] bool thread_safe() const override {
    return inner_->thread_safe();
  }
  [[nodiscard]] std::size_t max_concurrent_runs() const override {
    return inner_->max_concurrent_runs();
  }
  [[nodiscard]] bool offloads_compute() const override {
    return inner_->offloads_compute();
  }
  [[nodiscard]] std::size_t active_dispatches() const override {
    return inner_->active_dispatches();
  }
  [[nodiscard]] DispatchHealth dispatch_health() const override {
    return inner_->dispatch_health();
  }

  /// Injection counters (for tests and bench reporting).
  [[nodiscard]] std::size_t injected_transients() const;
  [[nodiscard]] std::size_t injected_spikes() const;
  [[nodiscard]] bool device_dead() const;
  [[nodiscard]] std::size_t runs() const;

 private:
  DiffusionBackend* inner_;
  std::unique_ptr<DiffusionBackend> owned_inner_;
  FaultPlan plan_;
  std::uint64_t instance_;

  mutable util::Mutex mutex_;
  Rng rng_ MELOPPR_GUARDED_BY(mutex_);
  std::uint64_t successful_runs_ MELOPPR_GUARDED_BY(mutex_) = 0;
  std::size_t injected_transients_ MELOPPR_GUARDED_BY(mutex_) = 0;
  std::size_t injected_spikes_ MELOPPR_GUARDED_BY(mutex_) = 0;
  bool dead_ MELOPPR_GUARDED_BY(mutex_) = false;
};

}  // namespace core

/// Ball extractor that throws std::runtime_error with probability
/// plan.extractor_probability (deterministic in call order for a fixed
/// seed), else delegates to graph::extract_ball. Plugs into
/// ShardedBallCache::set_extractor and the engine's extraction-retry path.
/// The returned closure owns its RNG behind a mutex, so it is safe to call
/// from multiple threads (prefetch workers).
[[nodiscard]] std::function<graph::Subgraph(const graph::Graph&,
                                            graph::NodeId, unsigned)>
make_flaky_extractor(const FaultPlan& plan, std::uint64_t tag = 0);

}  // namespace meloppr
