// The one permitted real-sleep site in src/.
//
// The clock-free-test discipline (PRs 5/7) bans sleeps from production
// code: polling loops must be event-driven (condition variables, the
// prefetcher's pause gate) and tests must never depend on wall time. The
// three legitimate exceptions — injected latency spikes (FaultPlan), the
// farm's jittered retry backoff, and the prefetcher's bounded pause-gate
// poll — all route through this header, and
// tools/check_source_invariants.sh rejects any other `sleep_for` token in
// src/. A new caller showing up here is a review event, not an accident.
#pragma once

#include <chrono>
#include <thread>

namespace meloppr::util {

/// Blocks the calling thread for `seconds` of real wall time. Zero and
/// negative durations return immediately.
inline void pause_for_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace meloppr::util
