// Deterministic, fast random number generation.
//
// All randomness in the library (generators, seed sampling, Monte-Carlo
// walks) flows through Rng so that every experiment is reproducible from a
// single printed 64-bit seed. The engine is xoshiro256++, seeded via
// SplitMix64 per the reference implementation (Blackman & Vigna, 2019).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace meloppr {

/// xoshiro256++ pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state with SplitMix64 as recommended by the
  /// xoshiro authors (never produces the all-zero state).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    MELO_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased for any bound.
  std::uint64_t below(std::uint64_t bound) {
    MELO_CHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    MELO_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Forks an independent child stream; children with distinct tags do not
  /// overlap with the parent or each other in practice.
  Rng fork(std::uint64_t tag) {
    return Rng((*this)() ^ (tag * 0x9e3779b97f4a7c15ULL) ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace meloppr
