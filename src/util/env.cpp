#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace meloppr {

namespace {
const char* get_env(const std::string& name) {
  return std::getenv(name.c_str());
}
}  // namespace

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = get_env(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const char* raw = get_env(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return v;
}

bool env_flag(const std::string& name, bool fallback) {
  const char* raw = get_env(name);
  if (raw == nullptr) return fallback;
  std::string v = raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v.empty() || v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  return true;
}

std::size_t bench_seed_count(std::size_t dflt) {
  const std::int64_t v =
      env_int("MELOPPR_SEEDS", static_cast<std::int64_t>(dflt));
  return v <= 0 ? dflt : static_cast<std::size_t>(v);
}

namespace {
bool seed_overridden = false;
std::uint64_t seed_override = 0;
}  // namespace

std::uint64_t bench_rng_seed() {
  if (seed_overridden) return seed_override;
  return static_cast<std::uint64_t>(env_int("MELOPPR_RNG_SEED", 42));
}

void set_bench_rng_seed(std::uint64_t seed) {
  seed_overridden = true;
  seed_override = seed;
}

}  // namespace meloppr
