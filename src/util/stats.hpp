// Descriptive statistics used throughout the benchmark harnesses: the paper
// reports min~max ranges, averages of reduction factors, and precision
// averaged over many random seeds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace meloppr {

/// Online accumulator (Welford) for mean/variance plus min/max. Suitable for
/// streaming one value per PPR query without storing all samples.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1 divisor).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch statistics over a stored sample vector; supports percentiles and
/// the geometric mean (used for averaging speedup/reduction factors, which
/// is the correct mean for ratios).
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values) : values_(std::move(values)) {}

  void add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;

  /// Geometric mean; requires all samples > 0.
  [[nodiscard]] double geomean() const;

  /// Linear-interpolation percentile, p in [0,100]. The sorted order is
  /// cached across calls and invalidated by add(), so reading p50/p99/p999
  /// off the same sample set sorts once instead of once per quantile. The
  /// cache makes this const method non-thread-safe: guard concurrent
  /// readers externally (every user in this repo already does).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // percentile() cache
  mutable bool sorted_valid_ = false;
};

/// Builds a fixed-width histogram over log10(x) — used to reproduce the
/// bottom panel of Fig. 6 (normalized PPR score distribution in log scale).
struct LogHistogram {
  double log10_lo = -10.0;  ///< Scores below 10^lo land in the first bin.
  double log10_hi = 0.0;    ///< Scores above 10^hi land in the last bin.
  std::vector<std::size_t> bins;

  LogHistogram(double lo, double hi, std::size_t bin_count);
  void add(double x);
  [[nodiscard]] std::size_t total() const;
  /// Fraction of mass in bins at or below the given log10 threshold.
  [[nodiscard]] double fraction_below(double log10_threshold) const;
  /// Render as an ASCII bar chart (one line per bin).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;
};

}  // namespace meloppr
