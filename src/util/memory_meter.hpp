// Byte-accounting memory meter — the C++ counterpart of Python's
// `tracemalloc` used by the paper (Sec. VI-B) to report Table II.
//
// Instead of hooking the global allocator (which would count build noise and
// allocator slack), every PPR method reports the bytes of each live data
// structure it holds through a MemoryMeter. The meter tracks the current and
// peak footprint of named categories, so a method's "memory requirement" is
// the peak of the sum over its categories — exactly what tracemalloc's
// peak-traced-memory reports for the Python baseline, minus interpreter
// overhead. Because baseline and MeLoPPR are measured by the same accounting,
// the reduction *ratios* in Table II are directly comparable.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace meloppr {

/// Tracks current/peak byte footprints of named allocation categories.
class MemoryMeter {
 public:
  /// Registers `bytes` live bytes under `category`.
  void allocate(const std::string& category, std::size_t bytes);

  /// Releases `bytes` from `category`. Releasing more than is live is an
  /// invariant violation (it would silently deflate the peak of a later
  /// phase).
  void release(const std::string& category, std::size_t bytes);

  /// Convenience: report a container's current payload bytes as the entire
  /// live footprint of `category` (replaces the previous figure).
  void set(const std::string& category, std::size_t bytes);

  [[nodiscard]] std::size_t current_bytes() const { return current_; }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }
  [[nodiscard]] std::size_t current_bytes(const std::string& category) const;
  [[nodiscard]] std::size_t peak_bytes(const std::string& category) const;

  /// All categories ever seen, sorted by name.
  [[nodiscard]] std::vector<std::string> categories() const;

  /// Folds another meter into this one, category-wise: currents add and
  /// *peaks add*. Summing the per-worker peaks of concurrent threads is an
  /// upper bound on the true simultaneous peak (workers need not peak at the
  /// same instant), so merged accounting is honest in the sense of never
  /// under-reporting — the convention the QueryPipeline uses to report one
  /// peak across its per-thread meters.
  void merge_peak(const MemoryMeter& other);

  /// Forgets everything (footprints and peaks).
  void reset();

  /// Human-readable dump ("category: current / peak").
  [[nodiscard]] std::string report() const;

 private:
  struct Entry {
    std::size_t current = 0;
    std::size_t peak = 0;
  };
  std::map<std::string, Entry> entries_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII registration: accounts `bytes` in `category` for the scope lifetime.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryMeter& meter, std::string category,
                   std::size_t bytes);
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;
  ~ScopedAllocation();

  /// Grows the registered footprint (e.g. a table that expanded).
  void grow(std::size_t extra_bytes);

 private:
  MemoryMeter& meter_;
  std::string category_;
  std::size_t bytes_;
};

/// Payload bytes of a std::vector<T> (capacity-based: what the process
/// actually reserved).
template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Formats a byte count as the paper does (MB with two/three decimals).
std::string format_mb(std::size_t bytes);

}  // namespace meloppr
