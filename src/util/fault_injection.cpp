#include "util/fault_injection.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "util/sleep.hpp"

namespace meloppr {
namespace {

// Splits "key=value" out of one comma-separated segment; throws on a
// segment without '='.
std::pair<std::string, std::string> split_kv(const std::string& segment) {
  const std::size_t eq = segment.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("FaultPlan: segment without '=': \"" +
                                segment + "\"");
  }
  return {segment.substr(0, eq), segment.substr(eq + 1)};
}

double parse_probability(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad value for " + key + ": \"" +
                                value + "\"");
  }
  if (consumed != value.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FaultPlan: " + key +
                                " must be a probability in [0,1], got \"" +
                                value + "\"");
  }
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad value for " + key + ": \"" +
                                value + "\"");
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("FaultPlan: bad value for " + key + ": \"" +
                                value + "\"");
  }
  return static_cast<std::uint64_t>(n);
}

}  // namespace

bool FaultPlan::empty() const {
  return transient_probability == 0.0 && spike_probability == 0.0 &&
         extractor_probability == 0.0 && !death_scheduled;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = (comma == std::string::npos) ? spec.size() : comma;
    std::string segment = spec.substr(pos, end - pos);
    pos = end + 1;
    if (comma == std::string::npos) pos = spec.size() + 1;
    // Trim surrounding whitespace.
    const std::size_t first = segment.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // empty segment
    const std::size_t last = segment.find_last_not_of(" \t");
    segment = segment.substr(first, last - first + 1);

    auto [key, value] = split_kv(segment);
    if (key == "transient") {
      plan.transient_probability = parse_probability(key, value);
    } else if (key == "spike") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument(
            "FaultPlan: spike wants P:SECONDS, got \"" + value + "\"");
      }
      plan.spike_probability =
          parse_probability("spike", value.substr(0, colon));
      try {
        plan.spike_seconds = std::stod(value.substr(colon + 1));
      } catch (const std::exception&) {
        throw std::invalid_argument(
            "FaultPlan: bad spike duration in \"" + value + "\"");
      }
      if (plan.spike_seconds < 0.0) {
        throw std::invalid_argument("FaultPlan: negative spike duration");
      }
    } else if (key == "death") {
      const std::size_t at = value.find('@');
      plan.death_after_runs = parse_u64("death", value.substr(0, at));
      plan.death_instance =
          (at == std::string::npos) ? 0 : parse_u64("death", value.substr(at + 1));
      plan.death_scheduled = true;
    } else if (key == "extractor") {
      plan.extractor_probability = parse_probability(key, value);
    } else if (key == "seed") {
      plan.seed = parse_u64(key, value);
    }
    // Unknown keys ignored: plans stay forward compatible.
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* raw = std::getenv("MELOPPR_FAULT_PLAN");
  if (raw == nullptr || raw[0] == '\0') return {};
  return parse(raw);
}

std::string FaultPlan::summary() const {
  if (empty()) return "fault-plan: none";
  std::ostringstream os;
  os << "fault-plan: seed=" << seed;
  if (transient_probability > 0.0) os << " transient=" << transient_probability;
  if (spike_probability > 0.0) {
    os << " spike=" << spike_probability << ":" << spike_seconds << "s";
  }
  if (death_scheduled) {
    os << " death=" << death_after_runs << "@" << death_instance;
  }
  if (extractor_probability > 0.0) {
    os << " extractor=" << extractor_probability;
  }
  return os.str();
}

namespace core {

FaultyBackend::FaultyBackend(DiffusionBackend& inner, const FaultPlan& plan,
                             std::uint64_t instance)
    : inner_(&inner),
      plan_(plan),
      instance_(instance),
      rng_(plan.seed ^ (instance * 0x9e3779b97f4a7c15ULL)) {}

FaultyBackend::FaultyBackend(std::unique_ptr<DiffusionBackend> inner,
                             const FaultPlan& plan, std::uint64_t instance)
    : inner_(inner.get()),
      owned_inner_(std::move(inner)),
      plan_(plan),
      instance_(instance),
      rng_(plan.seed ^ (instance * 0x9e3779b97f4a7c15ULL)) {}

BackendResult FaultyBackend::run(const graph::Subgraph& ball, double mass,
                                 unsigned length) {
  double spike_seconds = 0.0;
  {
    util::MutexLock lock(mutex_);
    if (dead_ || (plan_.death_scheduled && instance_ == plan_.death_instance &&
                  successful_runs_ >= plan_.death_after_runs)) {
      dead_ = true;
      BackendResult out;
      out.status = RunStatus::kDeviceDead;
      out.error = "injected sticky death (instance " +
                  std::to_string(instance_) + ")";
      return out;
    }
    if (plan_.spike_probability > 0.0 && rng_.chance(plan_.spike_probability)) {
      ++injected_spikes_;
      spike_seconds = plan_.spike_seconds;
    }
    if (plan_.transient_probability > 0.0 &&
        rng_.chance(plan_.transient_probability)) {
      ++injected_transients_;
      BackendResult out;
      out.status = RunStatus::kTransientFault;
      out.error = "injected transient fault (instance " +
                  std::to_string(instance_) + ")";
      if (spike_seconds > 0.0) {
        // The spike still costs wall time even though the run fails.
        out.compute_seconds = spike_seconds;
      }
      return out;
    }
  }
  // Real sleep, outside the mutex: wall-clock dispatch deadlines must
  // genuinely trip on spikes, and other devices must keep dispatching.
  util::pause_for_seconds(spike_seconds);
  BackendResult out = inner_->run(ball, mass, length);
  out.compute_seconds += spike_seconds;
  if (out.ok()) {
    util::MutexLock lock(mutex_);
    ++successful_runs_;
  }
  return out;
}

std::string FaultyBackend::name() const {
  std::ostringstream os;
  os << "faulty(" << inner_->name() << ")";
  return os.str();
}

std::unique_ptr<DiffusionBackend> FaultyBackend::clone() const {
  // Fresh fault stream and counters, same plan and instance tag — clones
  // replay the same decision sequence from the start.
  return std::make_unique<FaultyBackend>(inner_->clone(), plan_, instance_);
}

std::size_t FaultyBackend::injected_transients() const {
  util::MutexLock lock(mutex_);
  return injected_transients_;
}

std::size_t FaultyBackend::injected_spikes() const {
  util::MutexLock lock(mutex_);
  return injected_spikes_;
}

bool FaultyBackend::device_dead() const {
  util::MutexLock lock(mutex_);
  return dead_;
}

std::size_t FaultyBackend::runs() const {
  util::MutexLock lock(mutex_);
  return successful_runs_;
}

}  // namespace core

std::function<graph::Subgraph(const graph::Graph&, graph::NodeId, unsigned)>
make_flaky_extractor(const FaultPlan& plan, std::uint64_t tag) {
  auto rng = std::make_shared<Rng>(plan.seed ^ 0xe7f1a2b3c4d5e6f7ULL ^
                                   (tag * 0x9e3779b97f4a7c15ULL));
  auto mutex = std::make_shared<util::Mutex>();
  const double p = plan.extractor_probability;
  return [rng, mutex, p](const graph::Graph& g, graph::NodeId seed,
                         unsigned radius) -> graph::Subgraph {
    bool fail = false;
    if (p > 0.0) {
      util::MutexLock lock(*mutex);
      fail = rng->chance(p);
    }
    if (fail) {
      throw std::runtime_error("injected extractor fault at seed " +
                               std::to_string(seed));
    }
    return graph::extract_ball(g, seed, radius);
  };
}

}  // namespace meloppr
