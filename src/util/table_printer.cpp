#include "util/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace meloppr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MELO_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  MELO_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

std::size_t TablePrinter::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.separator) ++n;
  }
  return n;
}

std::string TablePrinter::ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) {
      s += std::string(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
    return os.str();
  };

  std::string out = hline() + line(headers_) + hline();
  for (const auto& row : rows_) {
    out += row.separator ? hline() : line(row.cells);
  }
  out += hline();
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TablePrinter::csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_ratio(double v, int precision) {
  return fmt_fixed(v, precision) + "x";
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_fixed(fraction * 100.0, precision) + "%";
}

std::string fmt_range(double lo, double hi, int precision) {
  return fmt_fixed(lo, precision) + " ~ " + fmt_fixed(hi, precision);
}

}  // namespace meloppr
