#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/concurrent_topck.hpp"
#include "util/assert.hpp"

namespace meloppr::core {

void ExactAggregator::add(graph::NodeId node, double delta) {
  scores_[node] += delta;
}

std::vector<ScoredNode> ExactAggregator::top(std::size_t k) const {
  return ppr::top_k(scores_, k);
}

std::size_t ExactAggregator::bytes() const {
  // unordered_map footprint: bucket array + one heap node per entry
  // (key+value+next pointer, rounded to malloc granularity).
  const std::size_t per_entry =
      sizeof(graph::NodeId) + sizeof(double) + 2 * sizeof(void*);
  return scores_.bucket_count() * sizeof(void*) +
         scores_.size() * per_entry;
}

TopCKAggregator::TopCKAggregator(std::size_t capacity, double admit_epsilon)
    : capacity_(capacity), epsilon_(admit_epsilon) {
  if (capacity == 0) {
    throw std::invalid_argument("TopCKAggregator: capacity must be positive");
  }
  if (!(admit_epsilon >= 0.0)) {  // rejects negatives and NaN
    throw std::invalid_argument(
        "TopCKAggregator: admit_epsilon must be non-negative");
  }
  index_.reserve(capacity);
  slots_.reserve(capacity);
  heap_.reserve(2 * capacity);
}

void TopCKAggregator::rebuild_heap() {
  heap_.clear();
  heap_.reserve(2 * capacity_);
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    heap_.push_back({slots_[s].score, s});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

void TopCKAggregator::push_snapshot(double key, std::uint32_t slot) {
  // Every snapshot producer funnels through here so the growth guard
  // catches all churn — in particular long negative-update streams that
  // never reach settle_min() (the table not full, or drops keeping the
  // cached minimum valid) must not outgrow the c·k memory envelope.
  if (heap_.size() > 4 * capacity_ + 8) {
    rebuild_heap();
    return;  // the rebuild snapshots every live slot, `slot` included
  }
  heap_.push_back({key, slot});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

std::uint32_t TopCKAggregator::settle_min() {
  // Lazy-heap invariant: every live slot always has at least one heap
  // entry with key ≤ its live score (inserts and negative updates push a
  // fresh snapshot; positive in-place updates only make old snapshots
  // stale *low*). Settling in key order therefore meets only stale or
  // re-tenanted snapshots before the first accurate one, and the first
  // accurate snapshot is the true minimum.
  //
  // ConcurrentTopCKAggregator::pop_min_locked (concurrent_topck.cpp)
  // carries a per-shard copy of this invariant over atomic scores — a
  // change to the settle/refresh rule or the growth guard here must be
  // mirrored there.
  for (;;) {
    if (heap_.empty()) rebuild_heap();
    const HeapEntry e = heap_.front();
    if (slots_[e.slot].score == e.key) return e.slot;
    // Stale (score moved since the snapshot) or re-tenanted slot: refresh.
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.back() = {slots_[e.slot].score, e.slot};
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  }
}

void TopCKAggregator::refresh_min() {
  if (min_valid_) return;
  min_slot_ = settle_min();
  min_score_ = slots_[min_slot_].score;
  min_valid_ = true;
}

void TopCKAggregator::add(graph::NodeId node, double delta) {
  const auto it = index_.find(node);
  if (it != index_.end()) {
    // In-place BRAM update: always allowed, no eviction. Only decreases
    // need a fresh snapshot (see settle_min); the common positive update
    // is one addition, no heap traffic.
    const auto slot = it->second;
    Slot& entry = slots_[slot];
    entry.score += delta;
    if (delta < 0.0) {
      push_snapshot(entry.score, slot);
      if (min_valid_ && entry.score < min_score_) {
        // Sank below the cached minimum — it is the minimum now.
        min_slot_ = slot;
        min_score_ = entry.score;
      } else if (min_valid_ && slot == min_slot_) {
        min_score_ = entry.score;
      }
    } else if (min_valid_ && slot == min_slot_) {
      // The cached minimum rose; some other slot may be smaller now.
      min_valid_ = false;
    }
    return;
  }
  if (slots_.size() < capacity_) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back({node, delta});
    push_snapshot(delta, slot);
    index_.emplace(node, slot);
    if (min_valid_ && delta < min_score_) {
      min_slot_ = slot;
      min_score_ = delta;
    }
    return;
  }
  // Full: the new score competes with the current minimum. Contributions
  // smaller than the table minimum — or inside the ε·|min| hysteresis
  // margin above it — are dropped: this is where precision loss for small
  // c comes from, and where the margin suppresses evict/readmit churn on
  // boundary noise. A drop leaves the minimum unchanged, so the cached
  // minimum makes it heap-free. Either way the losing score feeds the
  // eviction bound, the table's own fidelity certificate.
  refresh_min();
  if (delta <= min_score_ + epsilon_ * std::abs(min_score_)) {
    bound_ = std::max(bound_, delta);
    if (delta > min_score_) ++margin_drops_;
    return;
  }
  bound_ = std::max(bound_, min_score_);
  ++evictions_;
  index_.erase(slots_[min_slot_].node);
  slots_[min_slot_] = {node, delta};
  index_.emplace(node, min_slot_);
  push_snapshot(delta, min_slot_);
  min_valid_ = false;  // the old minimum's slot now holds a larger score
}

std::vector<ScoredNode> TopCKAggregator::top(std::size_t k) const {
  std::vector<ScoredNode> all;
  all.reserve(slots_.size());
  for (const Slot& slot : slots_) all.push_back({slot.node, slot.score});
  return ppr::top_k(std::move(all), k);
}

std::size_t TopCKAggregator::bytes() const {
  // The hardware table is `capacity` slots of (node id, 32-bit score) plus a
  // comparator tree; model as capacity × 8 bytes, matching the BRAM budget
  // the paper reserves for the global score table.
  return capacity_ * (sizeof(graph::NodeId) + sizeof(std::uint32_t));
}

void TopCKAggregator::clear() {
  // The vectors keep their capacity and the map its buckets, so pooled
  // arenas (AggregatorPool) reuse warm storage.
  index_.clear();
  slots_.clear();
  heap_.clear();
  evictions_ = 0;
  margin_drops_ = 0;
  min_valid_ = false;
  bound_ = -std::numeric_limits<double>::infinity();
}

StripedAggregator::StripedAggregator(std::size_t stripes) {
  if (stripes == 0) {
    throw std::invalid_argument("StripedAggregator: need at least one stripe");
  }
  stripes_.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void StripedAggregator::add(graph::NodeId node, double delta) {
  Stripe& stripe = stripe_for(node);
  util::MutexLock lock(stripe.mu);
  stripe.scores[node] += delta;
}

std::vector<ScoredNode> StripedAggregator::top(std::size_t k) const {
  std::vector<ScoredNode> all;
  for (const auto& stripe : stripes_) {
    util::MutexLock lock(stripe->mu);
    all.reserve(all.size() + stripe->scores.size());
    for (const auto& [node, score] : stripe->scores) {
      all.push_back({node, score});
    }
  }
  return ppr::top_k(std::move(all), k);
}

std::size_t StripedAggregator::entries() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    util::MutexLock lock(stripe->mu);
    n += stripe->scores.size();
  }
  return n;
}

std::size_t StripedAggregator::bytes() const {
  // Same per-entry model as ExactAggregator, plus the stripe array.
  const std::size_t per_entry =
      sizeof(graph::NodeId) + sizeof(double) + 2 * sizeof(void*);
  std::size_t total = stripes_.size() * sizeof(Stripe);
  for (const auto& stripe : stripes_) {
    util::MutexLock lock(stripe->mu);
    total += stripe->scores.bucket_count() * sizeof(void*) +
             stripe->scores.size() * per_entry;
  }
  return total;
}

void StripedAggregator::clear() {
  for (const auto& stripe : stripes_) {
    util::MutexLock lock(stripe->mu);
    stripe->scores.clear();
  }
}

std::unique_ptr<ScoreAggregator> make_serial_aggregator(AggregationMode mode,
                                                        std::size_t k,
                                                        std::size_t c,
                                                        double epsilon) {
  if (mode == AggregationMode::kBounded) {
    return std::make_unique<TopCKAggregator>(std::max<std::size_t>(1, c * k),
                                             epsilon);
  }
  return std::make_unique<ExactAggregator>();
}

std::unique_ptr<ScoreAggregator> make_concurrent_aggregator(
    AggregationMode mode, std::size_t k, std::size_t c, std::size_t ways,
    double epsilon) {
  if (mode == AggregationMode::kBounded) {
    return std::make_unique<ConcurrentTopCKAggregator>(
        std::max<std::size_t>(1, c * k), ways, epsilon);
  }
  return std::make_unique<StripedAggregator>(ways == 0 ? 16 : ways);
}

AggregatorPool::AggregatorPool(std::size_t slots, Factory factory)
    : factory_(std::move(factory)) {
  if (slots == 0) {
    throw std::invalid_argument("AggregatorPool: need at least one slot");
  }
  if (!factory_) {
    factory_ = [] { return std::make_unique<ExactAggregator>(); };
  }
  arenas_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    arenas_.push_back(factory_());
  }
  busy_.assign(slots, 0);
  used_once_.assign(slots, 0);
}

AggregatorPool::Lease AggregatorPool::acquire(std::size_t preferred) {
  const std::size_t want = preferred % arenas_.size();
  std::size_t picked = want;
  {
    util::MutexLock lock(mu_);
    for (;;) {
      if (!busy_[want]) {
        picked = want;
        break;
      }
      // Preferred slot busy (another batch shares the pool): any free slot
      // keeps the arena warm for *someone*.
      bool found = false;
      for (std::size_t s = 0; s < busy_.size() && !found; ++s) {
        if (!busy_[s]) {
          picked = s;
          found = true;
        }
      }
      if (found) break;
      slot_free_.wait(lock.native());
    }
    busy_[picked] = 1;
    if (used_once_[picked]) reuses_.fetch_add(1, std::memory_order_relaxed);
    used_once_[picked] = 1;
  }
  acquires_.fetch_add(1, std::memory_order_relaxed);
  // clear() keeps the arena's storage (buckets / BRAM slots) — the point.
  arenas_[picked]->clear();
  return Lease(this, picked);
}

void AggregatorPool::release(std::size_t slot) {
  {
    util::MutexLock lock(mu_);
    busy_[slot] = 0;
  }
  slot_free_.notify_one();
}

AggregatorPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(slot_);
}

ScoreAggregator& AggregatorPool::Lease::operator*() const {
  return *pool_->arenas_[slot_];
}

ScoreAggregator* AggregatorPool::Lease::operator->() const {
  return pool_->arenas_[slot_].get();
}

}  // namespace meloppr::core
