#include "core/aggregator.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::core {

void ExactAggregator::add(graph::NodeId node, double delta) {
  scores_[node] += delta;
}

std::vector<ScoredNode> ExactAggregator::top(std::size_t k) const {
  return ppr::top_k(scores_, k);
}

std::size_t ExactAggregator::bytes() const {
  // unordered_map footprint: bucket array + one heap node per entry
  // (key+value+next pointer, rounded to malloc granularity).
  const std::size_t per_entry =
      sizeof(graph::NodeId) + sizeof(double) + 2 * sizeof(void*);
  return scores_.bucket_count() * sizeof(void*) +
         scores_.size() * per_entry;
}

TopCKAggregator::TopCKAggregator(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TopCKAggregator: capacity must be positive");
  }
}

void TopCKAggregator::erase_index(graph::NodeId node, double score) {
  auto [lo, hi] = by_score_.equal_range(score);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == node) {
      by_score_.erase(it);
      return;
    }
  }
  MELO_CHECK_MSG(false, "TopCKAggregator index out of sync for node " << node);
}

void TopCKAggregator::add(graph::NodeId node, double delta) {
  auto it = by_node_.find(node);
  if (it != by_node_.end()) {
    // In-place BRAM update: always allowed, no eviction.
    const double old_score = it->second;
    it->second += delta;
    erase_index(node, old_score);
    by_score_.emplace(it->second, node);
    return;
  }
  if (by_node_.size() < capacity_) {
    by_node_.emplace(node, delta);
    by_score_.emplace(delta, node);
    return;
  }
  // Full: the new score competes with the current minimum. Contributions
  // smaller than the table minimum are dropped — this is where precision
  // loss for small c comes from.
  auto min_it = by_score_.begin();
  if (delta <= min_it->first) return;
  by_node_.erase(min_it->second);
  by_score_.erase(min_it);
  ++evictions_;
  by_node_.emplace(node, delta);
  by_score_.emplace(delta, node);
}

std::vector<ScoredNode> TopCKAggregator::top(std::size_t k) const {
  std::vector<ScoredNode> all;
  all.reserve(by_node_.size());
  for (const auto& [node, score] : by_node_) all.push_back({node, score});
  return ppr::top_k(std::move(all), k);
}

std::size_t TopCKAggregator::bytes() const {
  // The hardware table is `capacity` slots of (node id, 32-bit score) plus a
  // comparator tree; model as capacity × 8 bytes, matching the BRAM budget
  // the paper reserves for the global score table.
  return capacity_ * (sizeof(graph::NodeId) + sizeof(std::uint32_t));
}

void TopCKAggregator::clear() {
  by_node_.clear();
  by_score_.clear();
  evictions_ = 0;
}

StripedAggregator::StripedAggregator(std::size_t stripes) {
  if (stripes == 0) {
    throw std::invalid_argument("StripedAggregator: need at least one stripe");
  }
  stripes_.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void StripedAggregator::add(graph::NodeId node, double delta) {
  Stripe& stripe = stripe_for(node);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.scores[node] += delta;
}

std::vector<ScoredNode> StripedAggregator::top(std::size_t k) const {
  std::vector<ScoredNode> all;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    all.reserve(all.size() + stripe->scores.size());
    for (const auto& [node, score] : stripe->scores) {
      all.push_back({node, score});
    }
  }
  return ppr::top_k(std::move(all), k);
}

std::size_t StripedAggregator::entries() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    n += stripe->scores.size();
  }
  return n;
}

std::size_t StripedAggregator::bytes() const {
  // Same per-entry model as ExactAggregator, plus the stripe array.
  const std::size_t per_entry =
      sizeof(graph::NodeId) + sizeof(double) + 2 * sizeof(void*);
  std::size_t total = stripes_.size() * sizeof(Stripe);
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->scores.bucket_count() * sizeof(void*) +
             stripe->scores.size() * per_entry;
  }
  return total;
}

void StripedAggregator::clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->scores.clear();
  }
}

AggregatorPool::AggregatorPool(std::size_t slots) {
  if (slots == 0) {
    throw std::invalid_argument("AggregatorPool: need at least one slot");
  }
  slots_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

AggregatorPool::Lease AggregatorPool::acquire(std::size_t preferred) {
  const std::size_t want = preferred % slots_.size();
  std::size_t picked = want;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!slots_[want]->busy) {
        picked = want;
        break;
      }
      // Preferred slot busy (another batch shares the pool): any free slot
      // keeps the arena warm for *someone*.
      bool found = false;
      for (std::size_t s = 0; s < slots_.size() && !found; ++s) {
        if (!slots_[s]->busy) {
          picked = s;
          found = true;
        }
      }
      if (found) break;
      slot_free_.wait(lock);
    }
    Slot& slot = *slots_[picked];
    slot.busy = true;
    if (slot.used_once) reuses_.fetch_add(1, std::memory_order_relaxed);
    slot.used_once = true;
  }
  acquires_.fetch_add(1, std::memory_order_relaxed);
  // clear() keeps the unordered_map's bucket array — the whole point.
  slots_[picked]->aggregator.clear();
  return Lease(this, picked);
}

void AggregatorPool::release(std::size_t slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[slot]->busy = false;
  }
  slot_free_.notify_one();
}

AggregatorPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(slot_);
}

ExactAggregator& AggregatorPool::Lease::operator*() const {
  return pool_->slots_[slot_]->aggregator;
}

ExactAggregator* AggregatorPool::Lease::operator->() const {
  return &pool_->slots_[slot_]->aggregator;
}

}  // namespace meloppr::core
