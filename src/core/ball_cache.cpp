#include "core/ball_cache.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

BallCache::BallCache(const graph::Graph& g, std::size_t byte_budget)
    : graph_(&g), budget_(byte_budget) {
  if (byte_budget == 0) {
    throw std::invalid_argument("BallCache: byte budget must be positive");
  }
}

const graph::Subgraph& BallCache::get(graph::NodeId root, unsigned radius) {
  const BallKey key{root, radius};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return it->second->ball;
  }

  ++misses_;
  Timer timer;
  graph::Subgraph ball = graph::extract_ball(*graph_, root, radius);
  extraction_seconds_ += timer.elapsed_seconds();

  const std::size_t incoming = ball.bytes();
  if (incoming > budget_) {
    // Too big to retain: serve it through the overflow slot.
    overflow_ = std::move(ball);
    return overflow_;
  }
  evict_until_fits(incoming);
  lru_.push_front(Entry{key, std::move(ball)});
  entries_.emplace(key, lru_.begin());
  bytes_ += incoming;
  return lru_.front().ball;
}

void BallCache::evict_until_fits(std::size_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > budget_) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.ball.bytes();
    entries_.erase(victim.key);
    lru_.pop_back();
  }
  MELO_CHECK(bytes_ + incoming_bytes <= budget_);
}

void BallCache::clear() {
  lru_.clear();
  entries_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  extraction_seconds_ = 0.0;
  overflow_ = graph::Subgraph{};
}

}  // namespace meloppr::core
