#include "core/backend.hpp"

#include <cmath>
#include <sstream>

#include "core/config.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kTransientFault:
      return "transient-fault";
    case RunStatus::kDeviceDead:
      return "device-dead";
    case RunStatus::kDeadlineMiss:
      return "deadline-miss";
    case RunStatus::kNoHealthyDevice:
      return "no-healthy-device";
  }
  return "unknown";
}

BackendResult FailoverBackend::run(const graph::Subgraph& ball, double mass,
                                   unsigned length) {
  BackendResult primary = primary_->run(ball, mass, length);
  if (primary.ok()) return primary;

  BackendResult fallback = fallback_->run(ball, mass, length);
  // The primary's failed attempts (and their deadline misses) are part of
  // this run's cost even though the fallback produced the scores.
  fallback.attempts += primary.attempts;
  fallback.deadline_misses += primary.deadline_misses;
  fallback.transfer_seconds += primary.transfer_seconds;
  if (fallback.ok()) {
    fallback.failed_over = true;
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  return fallback;
}

std::string FailoverBackend::name() const {
  std::ostringstream os;
  os << "failover(" << primary_->name() << " -> " << fallback_->name() << ")";
  return os.str();
}

BackendResult CpuBackend::run(const graph::Subgraph& ball, double mass,
                              unsigned length) {
  Timer timer;
  ppr::DiffusionParams params;
  params.alpha = alpha_;
  params.length = length;
  if (quantizer_.has_value()) {
    params.numerics = ppr::Numerics::kFixedPoint;
    params.quantizer = &*quantizer_;
  }
  ppr::DiffusionResult diff = ppr::diffuse_from(ball, /*local_seed=*/0, mass,
                                                params);
  BackendResult out;
  out.compute_seconds = timer.elapsed_seconds();
  out.accumulated = std::move(diff.accumulated);
  out.inflight = std::move(diff.residual);
  if (!quantizer_.has_value()) {
    // Float mode returns the raw residual W^l·S0; the backend contract wants
    // the α-scaled in-flight mass α^l·W^l·S0 (see backend.hpp). Fixed-point
    // mode needs no scaling — the integer datapath applies α per step, so
    // its residual table is α-scaled by construction (like the FPGA's).
    const double alpha_pow = std::pow(alpha_, static_cast<double>(length));
    for (double& r : out.inflight) r *= alpha_pow;
  }
  out.edge_ops = diff.edge_ops;
  return out;
}

std::size_t CpuBackend::working_bytes(std::size_t ball_nodes,
                                      std::size_t /*ball_edges*/) const {
  if (quantizer_.has_value()) {
    // Four dense uint64 lanes (u, next, acc, contrib) plus the two uint32
    // output tables.
    return ball_nodes * (4 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t));
  }
  // Five dense double lanes of the blocked kernel (t, next, share, recip)
  // plus the accumulated output.
  return ball_nodes * (5 * sizeof(double));
}

std::string CpuBackend::name() const {
  if (!quantizer_.has_value()) return "cpu";
  std::ostringstream os;
  os << "cpu(fx q=" << quantizer_->q() << ")";
  return os.str();
}

std::unique_ptr<DiffusionBackend> make_cpu_backend(
    const graph::Graph& graph, const MelopprConfig& config) {
  if (config.numerics == ppr::Numerics::kFloat64) {
    return std::make_unique<CpuBackend>(config.alpha);
  }
  // Same derivation the FPGA harnesses use: Max referenced to |V| as a
  // conservative stand-in for |G_L(s)|.
  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      config.alpha, config.fixed_point_q, config.fixed_point_d,
      graph.average_degree(), graph.max_degree(), graph.num_nodes());
  return std::make_unique<CpuBackend>(config.alpha, quant);
}

}  // namespace meloppr::core
