#include "core/backend.hpp"

#include <cmath>

#include "util/timer.hpp"

namespace meloppr::core {

BackendResult CpuBackend::run(const graph::Subgraph& ball, double mass,
                              unsigned length) {
  Timer timer;
  ppr::DiffusionResult diff = ppr::diffuse_from(
      ball, /*local_seed=*/0, mass, ppr::DiffusionParams{alpha_, length});
  BackendResult out;
  out.compute_seconds = timer.elapsed_seconds();
  out.accumulated = std::move(diff.accumulated);
  // ppr::diffuse returns the raw residual W^l·S0; the backend contract wants
  // the α-scaled in-flight mass α^l·W^l·S0 (see backend.hpp).
  const double alpha_pow = std::pow(alpha_, static_cast<double>(length));
  out.inflight = std::move(diff.residual);
  for (double& r : out.inflight) r *= alpha_pow;
  out.edge_ops = diff.edge_ops;
  return out;
}

std::size_t CpuBackend::working_bytes(std::size_t ball_nodes,
                                      std::size_t /*ball_edges*/) const {
  // The diffusion kernel holds three dense double vectors over the ball
  // (t_k, next, accumulated) plus the active list.
  return ball_nodes * (3 * sizeof(double) + sizeof(graph::NodeId) + 1);
}

}  // namespace meloppr::core
