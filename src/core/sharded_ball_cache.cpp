#include "core/sharded_ball_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/bfs.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

void ShardedBallCache::FrequencySketch::record(std::uint64_t mixed) {
  for (std::size_t row = 0; row < kRows; ++row) {
    std::uint8_t& counter = table_[row][index(mixed, row)];
    if (counter < kMaxCount) ++counter;
  }
  if (++records_ >= kSamplePeriod) {
    // Aging (the "reset" of TinyLFU): halving keeps the *relative* order
    // of hot vs cold keys while bounding how long stale popularity can
    // veto admission.
    for (auto& row : table_) {
      for (std::uint8_t& counter : row) counter >>= 1;
    }
    records_ = 0;
  }
}

std::uint32_t ShardedBallCache::FrequencySketch::estimate(
    std::uint64_t mixed) const {
  std::uint32_t freq = kMaxCount;
  for (std::size_t row = 0; row < kRows; ++row) {
    freq = std::min<std::uint32_t>(freq, table_[row][index(mixed, row)]);
  }
  return freq;
}

std::size_t ShardedBallCache::FrequencySketch::index(std::uint64_t mixed,
                                                     std::size_t row) {
  // Each row re-mixes with its own odd constant so the rows' collision
  // patterns are independent (the count-min guarantee needs pairwise
  // independent rows, not just shifted views of one hash).
  return static_cast<std::size_t>(
             splitmix64(mixed ^ (0x9e3779b97f4a7c15ULL * (row + 1)))) %
         kCounters;
}

ShardedBallCache::ShardedBallCache(const graph::Graph& g,
                                   std::size_t byte_budget,
                                   std::size_t shards,
                                   CacheAdmission admission)
    : graph_(&g), budget_(byte_budget), admission_(admission) {
  if (byte_budget == 0) {
    throw std::invalid_argument(
        "ShardedBallCache: byte budget must be positive");
  }
  const std::size_t n = shards == 0 ? kDefaultShards : shards;
  shard_budget_ = byte_budget / n;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    if (admission_ == CacheAdmission::kTinyLFU) {
      shards_.back()->sketch = std::make_unique<FrequencySketch>();
    }
  }
}

void ShardedBallCache::count_hit(FetchKind kind, bool deduped) {
  if (kind == FetchKind::kPrefetch) {
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (deduped) dedup_hits_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedBallCache::count_miss(FetchKind kind) {
  if (kind == FetchKind::kPrefetch) {
    prefetch_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

ShardedBallCache::Fetch ShardedBallCache::fetch(graph::NodeId root,
                                                unsigned radius,
                                                FetchKind kind) {
  const BallKey key{root, radius};
  Shard& shard = shard_for(key);

  std::promise<BallPtr> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    // Every access (hit, miss, prefetch) feeds the frequency estimate —
    // admission later compares these counts, so prefetch traffic for a
    // seed about to be queried legitimately raises its standing.
    if (shard.sketch != nullptr) shard.sketch->record(splitmix64(key.packed()));
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // → MRU
      count_hit(kind, /*deduped=*/false);
      return {it->second->ball, /*hit=*/true, /*deduped=*/false, 0.0};
    }
    if (const auto it = shard.in_flight.find(key);
        it != shard.in_flight.end()) {
      if (kind == FetchKind::kPrefetch) {
        // The ball is already on its way into the cache; parking a
        // prefetch thread on someone else's BFS would serialize the whole
        // lookahead pipeline for zero work. Report a (ball-less) hit.
        count_hit(kind, /*deduped=*/true);
        return {nullptr, /*hit=*/true, /*deduped=*/true, 0.0};
      }
      // Another thread is extracting this very ball; wait for its result
      // outside the lock instead of duplicating the BFS.
      std::shared_future<BallPtr> pending = it->second;
      lock.unlock();
      BallPtr ball = pending.get();  // rethrows the extractor's exception
      count_hit(kind, /*deduped=*/true);
      return {std::move(ball), /*hit=*/true, /*deduped=*/true, 0.0};
    }
    shard.in_flight.emplace(key, promise.get_future().share());
  }

  // Miss with the extraction claimed: run the BFS unlocked so other shards
  // (and other keys of this shard, briefly) keep serving.
  Timer timer;
  BallPtr ball;
  try {
    ball = std::make_shared<const graph::Subgraph>(
        graph::extract_ball(*graph_, root, radius));
  } catch (...) {
    // Unblock any waiters with the same failure, then unclaim the key.
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(key);
    throw;
  }
  const double extract_seconds = timer.elapsed_seconds();
  promise.set_value(ball);
  count_miss(kind);

  const std::size_t incoming = ball->bytes();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(key);
    shard.extraction_seconds += extract_seconds;
    // clear() may have raced ahead of this insertion; re-check the map in
    // case another extraction of the same key landed first (possible only
    // across a clear()).
    if (incoming <= shard_budget_ && shard.map.find(key) == shard.map.end() &&
        admit(shard, key, incoming)) {
      shard.lru.push_front(Entry{key, ball, incoming});
      shard.map.emplace(key, shard.lru.begin());
      shard.bytes += incoming;
      total_bytes_.fetch_add(incoming, std::memory_order_relaxed);
    }
  }
  return {std::move(ball), /*hit=*/false, /*deduped=*/false, extract_seconds};
}

bool ShardedBallCache::admit(Shard& shard, const BallKey& key,
                             std::size_t incoming) {
  if (shard.sketch != nullptr && shard.bytes + incoming > shard_budget_) {
    // TinyLFU gate, decided before touching the LRU: walk would-be victims
    // from the cold end and reject the candidate outright if any of them
    // is estimated at least as hot (ties keep the resident — one-shot
    // scan keys all estimate ~1 and can never displace a ball that has
    // been hit repeatedly). Rejecting before evicting means a lost duel
    // costs nothing: the shard is left exactly as it was.
    const std::uint32_t candidate =
        shard.sketch->estimate(splitmix64(key.packed()));
    std::size_t reclaimed = 0;
    for (auto it = shard.lru.rbegin();
         it != shard.lru.rend() && shard.bytes - reclaimed + incoming >
                                       shard_budget_;
         ++it) {
      if (shard.sketch->estimate(splitmix64(it->key.packed())) >= candidate) {
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      reclaimed += it->ball_bytes;
    }
  }
  evict_until_fits(shard, incoming);
  return true;
}

void ShardedBallCache::evict_until_fits(Shard& shard, std::size_t incoming) {
  while (!shard.lru.empty() && shard.bytes + incoming > shard_budget_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.ball_bytes;
    total_bytes_.fetch_sub(victim.ball_bytes, std::memory_order_relaxed);
    shard.map.erase(victim.key);
    shard.lru.pop_back();  // pinned readers keep the ball alive via BallPtr
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  MELO_CHECK(shard.bytes + incoming <= shard_budget_);
}

ShardedBallCache::Stats ShardedBallCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetch_misses = prefetch_misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ShardedBallCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

double ShardedBallCache::extraction_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->extraction_seconds;
  }
  return total;
}

void ShardedBallCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    total_bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->bytes = 0;
    shard->extraction_seconds = 0.0;
    // in_flight is left alone: those extractions complete normally.
  }
  // Zero the counters as one unit: stats() holds the same mutex, so a
  // snapshot sees either the pre-reset or the post-reset world, never a
  // mix (the hit-rate race this fixes).
  std::lock_guard<std::mutex> lock(stats_mu_);
  hits_.store(0);
  misses_.store(0);
  dedup_hits_.store(0);
  prefetch_hits_.store(0);
  prefetch_misses_.store(0);
  evictions_.store(0);
  admission_rejects_.store(0);
}

}  // namespace meloppr::core
