#include "core/sharded_ball_cache.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "graph/bfs.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

void ShardedBallCache::FrequencySketch::record(std::uint64_t mixed) {
  for (std::size_t row = 0; row < kRows; ++row) {
    std::uint8_t& counter = table_[row][index(mixed, row)];
    if (counter < kMaxCount) ++counter;
  }
  if (++records_ >= kSamplePeriod) {
    // Aging (the "reset" of TinyLFU): halving keeps the *relative* order
    // of hot vs cold keys while bounding how long stale popularity can
    // veto admission.
    for (auto& row : table_) {
      for (std::uint8_t& counter : row) counter >>= 1;
    }
    records_ = 0;
  }
}

std::uint32_t ShardedBallCache::FrequencySketch::estimate(
    std::uint64_t mixed) const {
  std::uint32_t freq = kMaxCount;
  for (std::size_t row = 0; row < kRows; ++row) {
    freq = std::min<std::uint32_t>(freq, table_[row][index(mixed, row)]);
  }
  return freq;
}

void ShardedBallCache::FrequencySketch::clear() {
  for (auto& row : table_) {
    for (std::uint8_t& counter : row) counter = 0;
  }
  records_ = 0;
}

std::size_t ShardedBallCache::FrequencySketch::index(std::uint64_t mixed,
                                                     std::size_t row) {
  // Each row re-mixes with its own odd constant so the rows' collision
  // patterns are independent (the count-min guarantee needs pairwise
  // independent rows, not just shifted views of one hash).
  return static_cast<std::size_t>(
             splitmix64(mixed ^ (0x9e3779b97f4a7c15ULL * (row + 1)))) %
         kCounters;
}

ShardedBallCache::~ShardedBallCache() {
  if (dynamic_ != nullptr) dynamic_->remove_listener(listener_id_);
}

void ShardedBallCache::bind_dynamic_graph(graph::DynamicGraph& dyn) {
  MELO_CHECK(dynamic_ == nullptr);
  dynamic_ = &dyn;
  listener_id_ = dyn.add_update_listener(
      [this](const graph::EdgeUpdate& update, std::uint64_t version) {
        invalidate_edge(update, version);
      });
}

void ShardedBallCache::index_ball(Shard& shard, const BallKey& key,
                                  const graph::Subgraph& ball) {
  for (const graph::NodeId global : ball.local_to_global()) {
    shard.reverse_index[global].insert(key);
  }
  reverse_index_entries_.fetch_add(ball.num_nodes(),
                                   std::memory_order_relaxed);
}

void ShardedBallCache::unindex_ball(Shard& shard, const BallKey& key,
                                    const graph::Subgraph& ball) {
  for (const graph::NodeId global : ball.local_to_global()) {
    const auto it = shard.reverse_index.find(global);
    if (it == shard.reverse_index.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) shard.reverse_index.erase(it);
  }
  reverse_index_entries_.fetch_sub(ball.num_nodes(),
                                   std::memory_order_relaxed);
}

void ShardedBallCache::invalidate_edge(const graph::EdgeUpdate& update,
                                       std::uint64_t version) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mu);
    shard.last_invalidation_version = version;
    // Residents: the reverse index lists exactly the balls containing an
    // endpoint — no scan of unaffected entries. A ball containing both
    // endpoints appears under each; the map re-check makes the second
    // lookup a no-op.
    std::vector<BallKey> victims;
    for (const graph::NodeId endpoint : {update.u, update.v}) {
      const auto it = shard.reverse_index.find(endpoint);
      if (it == shard.reverse_index.end()) continue;
      victims.insert(victims.end(), it->second.begin(), it->second.end());
    }
    for (const BallKey& key : victims) {
      const auto it = shard.map.find(key);
      if (it == shard.map.end()) continue;
      const Entry& entry = *it->second;
      shard.bytes -= entry.ball_bytes;
      total_bytes_.fetch_sub(entry.ball_bytes, std::memory_order_relaxed);
      unindex_ball(shard, key, *entry.ball);
      shard.lru.erase(it->second);
      shard.map.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
    // Pins: the table is small and bounded, a direct membership scan is
    // cheaper than indexing it.
    for (auto it = shard.pinned.begin(); it != shard.pinned.end();) {
      if (it->second.ball->contains(update.u) ||
          it->second.ball->contains(update.v)) {
        pinned_bytes_.fetch_sub(it->second.ball->bytes(),
                                std::memory_order_relaxed);
        pinned_count_.fetch_sub(1, std::memory_order_relaxed);
        pins_expired_.fetch_add(1, std::memory_order_relaxed);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        it = shard.pinned.erase(it);
      } else {
        ++it;
      }
    }
    // In-flight extractions are left alone: the insert-time staleness gate
    // (and the joiners' min_version check) keeps their results out.
  }
}

std::vector<BallKey> ShardedBallCache::resident_keys() const {
  std::vector<BallKey> keys;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [key, it] : shard->map) keys.push_back(key);
  }
  return keys;
}

ShardedBallCache::BallPtr ShardedBallCache::peek(const BallKey& key) const {
  Shard& shard = *shards_[(splitmix64(key.packed()) >> 40) % shards_.size()];
  util::MutexLock lock(shard.mu);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second->ball;
}

ShardedBallCache::ShardedBallCache(const graph::Graph& g,
                                   std::size_t byte_budget,
                                   std::size_t shards,
                                   CacheAdmission admission,
                                   std::size_t pin_capacity)
    : graph_(&g),
      budget_(byte_budget),
      admission_(admission),
      pin_capacity_(pin_capacity) {
  if (byte_budget == 0) {
    throw std::invalid_argument(
        "ShardedBallCache: byte budget must be positive");
  }
  const std::size_t n = shards == 0 ? kDefaultShards : shards;
  shard_budget_ = byte_budget / n;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    if (admission_ == CacheAdmission::kTinyLFU) {
      // Lock for the analysis: no other thread can see this fresh shard,
      // but `sketch` is a guarded field and ctor exemption only covers
      // members of the class under construction, not heap objects.
      Shard& shard = *shards_.back();
      util::MutexLock lock(shard.mu);
      shard.sketch = std::make_unique<FrequencySketch>();
    }
  }
}

void ShardedBallCache::count_hit(FetchKind kind, bool deduped) {
  if (is_prefetch(kind)) {
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (deduped) dedup_hits_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedBallCache::count_miss(FetchKind kind) {
  if (is_prefetch(kind)) {
    prefetch_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedBallCache::note_extraction(Shard& shard, const BallKey& key,
                                       FetchKind kind, std::size_t incoming) {
  // Smoothing factor of the recent-ball-bytes EWMAs: heavy enough to
  // track a shifting working set within a dozen extractions, light
  // enough that one hub ball does not whipsaw the adaptive window.
  constexpr double kEwmaAlpha = 0.2;
  const auto fold = [incoming](std::atomic<double>& ewma) {
    double cur = ewma.load(std::memory_order_relaxed);
    double next;
    do {
      next = cur == 0.0 ? static_cast<double>(incoming)
                        : cur + kEwmaAlpha * (static_cast<double>(incoming) -
                                              cur);
    } while (!ewma.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed));
  };
  fold(ewma_ball_bytes_);
  fold(ewma_by_radius_[radius_slot(key.radius)]);

  if (is_root_prefetch(kind)) {
    if (shard.root_prefetched.size() < kRootRecordCap) {
      shard.root_prefetched.insert(key);
    }
  } else if (kind == FetchKind::kDemand && !shard.root_prefetched.empty() &&
             shard.root_prefetched.erase(key) > 0) {
    // The demand path just re-ran a BFS that a root prefetch already paid
    // for — the waste the pinned handoff eliminates.
    root_reextractions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedBallCache::maybe_pin(Shard& shard, const BallKey& key,
                                 const BallPtr& ball,
                                 std::size_t claim_priority,
                                 std::uint64_t version) {
  if (pin_capacity_ == 0 || ball == nullptr) return;
  if (const auto it = shard.pinned.find(key); it != shard.pinned.end()) {
    // Re-pinned key: keep the better (closer-to-claim) priority so a
    // re-issued speculation cannot demote an earlier, nearer one.
    it->second.priority = std::min(it->second.priority, claim_priority);
    return;
  }
  // Strictly bounded: the table never grows past pin_capacity_ — pins live
  // one batch at most, and a hard memory bound matters more than fairness
  // between speculative seeds.
  if (pinned_count_.fetch_add(1, std::memory_order_relaxed) >=
      pin_capacity_) {
    pinned_count_.fetch_sub(1, std::memory_order_relaxed);
    // Capacity pressure: seeds closest to claim win (ROADMAP "Pin-table
    // admission"). If the newcomer is strictly closer than this shard's
    // farthest-from-claim pin, that pin yields its slot — its seed would
    // be claimed later (or never: a stale horizon from an earlier claim),
    // so it is the speculation least likely to pay off before the batch
    // ends. Priority-less pins (kNoClaimPriority) never displace anything.
    auto worst = shard.pinned.end();
    for (auto it = shard.pinned.begin(); it != shard.pinned.end(); ++it) {
      if (worst == shard.pinned.end() ||
          it->second.priority > worst->second.priority) {
        worst = it;
      }
    }
    if (worst == shard.pinned.end() ||
        worst->second.priority <= claim_priority) {
      return;
    }
    pinned_bytes_.fetch_sub(worst->second.ball->bytes(),
                            std::memory_order_relaxed);
    pinned_count_.fetch_sub(1, std::memory_order_relaxed);
    pins_expired_.fetch_add(1, std::memory_order_relaxed);
    pin_displacements_.fetch_add(1, std::memory_order_relaxed);
    shard.pinned.erase(worst);
    if (pinned_count_.fetch_add(1, std::memory_order_relaxed) >=
        pin_capacity_) {
      // Another shard raced into the freed slot; the newcomer loses after
      // all rather than breaching the bound.
      pinned_count_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
  shard.pinned.emplace(key, Shard::Pin{ball, claim_priority, version});
  pinned_bytes_.fetch_add(ball->bytes(), std::memory_order_relaxed);
  pins_installed_.fetch_add(1, std::memory_order_relaxed);
}

ShardedBallCache::Fetch ShardedBallCache::fetch(graph::NodeId root,
                                                unsigned radius,
                                                FetchKind kind,
                                                std::size_t claim_priority,
                                                std::uint64_t min_version) {
  const BallKey key{root, radius};
  Shard& shard = shard_for(key);

  // The loop re-enters only when a joined in-flight extraction turns out
  // to predate the caller's min_version (dynamic mode): the retry either
  // finds a fresh resident or claims its own extraction at the current
  // version, which always satisfies min_version — so it terminates.
  for (;;) {
  std::promise<Extracted> promise;
  {
    util::MutexLock lock(shard.mu);
    // Every access (hit, miss, prefetch) feeds the frequency estimate —
    // admission later compares these counts, so prefetch traffic for a
    // seed about to be queried legitimately raises its standing.
    if (shard.sketch != nullptr) shard.sketch->record(splitmix64(key.packed()));
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // → MRU
      if (kind == FetchKind::kDemand) {
        // Emptiness guards keep these two probes off the hit fast path
        // entirely for stacks that never root-prefetch (the tables stay
        // empty, and this runs under the contended shard lock).
        if (!shard.root_prefetched.empty()) {
          // The claim was served: the root-prefetch record is settled
          // (the speculation paid off), and any later demand extraction
          // of this key is an ordinary capacity miss, not prefetch waste.
          shard.root_prefetched.erase(key);
        }
        if (!shard.pinned.empty()) {
          // A pin for the same key has nothing left to protect either;
          // free the slot early.
          if (const auto pin = shard.pinned.find(key);
              pin != shard.pinned.end()) {
            pinned_bytes_.fetch_sub(pin->second.ball->bytes(),
                                    std::memory_order_relaxed);
            pinned_count_.fetch_sub(1, std::memory_order_relaxed);
            pins_expired_.fetch_add(1, std::memory_order_relaxed);
            shard.pinned.erase(pin);
          }
        }
      } else if (kind == FetchKind::kPinnedRootPrefetch) {
        // Resident today is not resident at claim time: pin the ball so an
        // eviction between now and the claim cannot undo the lookahead.
        maybe_pin(shard, key, it->second->ball, claim_priority,
                  it->second->version);
      }
      count_hit(kind, /*deduped=*/false);
      return {it->second->ball, /*hit=*/true, /*deduped=*/false,
              /*pinned=*/false, 0.0, it->second->version};
    }
    if (!shard.pinned.empty()) {
      if (const auto pin = shard.pinned.find(key); pin != shard.pinned.end()) {
        // Pinned prefetch handoff: the ball was root-prefetched but not
        // retained (TinyLFU rejection, or evicted since) — the pin makes
        // the prefetch BFS useful anyway.
        BallPtr ball = pin->second.ball;
        const std::uint64_t pin_version = pin->second.version;
        if (kind == FetchKind::kDemand) {
          // The seed is claimed: consume the pin (and settle the root-
          // prefetch record — the speculation paid off). The claim is
          // also a second access, so give the ball a regular admission
          // shot at residency (repeat seeds then hit the LRU directly); a
          // lost duel just serves from the consumed pin.
          shard.root_prefetched.erase(key);
          pinned_bytes_.fetch_sub(ball->bytes(), std::memory_order_relaxed);
          pinned_count_.fetch_sub(1, std::memory_order_relaxed);
          pin_hits_.fetch_add(1, std::memory_order_relaxed);
          shard.pinned.erase(pin);
          const std::size_t incoming = ball->bytes();
          if (incoming <= shard_budget_ && admit(shard, key, incoming)) {
            shard.lru.push_front(Entry{key, ball, incoming, pin_version});
            shard.map.emplace(key, shard.lru.begin());
            shard.bytes += incoming;
            total_bytes_.fetch_add(incoming, std::memory_order_relaxed);
            if (dynamic_ != nullptr) index_ball(shard, key, *ball);
          }
        }
        count_hit(kind, /*deduped=*/false);
        return {std::move(ball), /*hit=*/true, /*deduped=*/false,
                /*pinned=*/true, 0.0, pin_version};
      }
    }
    if (const auto it = shard.in_flight.find(key);
        it != shard.in_flight.end()) {
      if (is_prefetch(kind)) {
        // The ball is already on its way into the cache; parking a
        // prefetch thread on someone else's BFS would serialize the whole
        // lookahead pipeline for zero work. Report a (ball-less) hit. A
        // pinned root prefetch still needs its handoff: mark the key so
        // the completing extraction pins (and records) on its behalf —
        // otherwise a root/stage-lookahead race on one key would silently
        // skip the pin and the claim could re-pay the BFS.
        if (kind == FetchKind::kPinnedRootPrefetch) {
          const auto [pending, inserted] =
              shard.pin_on_complete.emplace(key, claim_priority);
          if (!inserted) {
            pending->second = std::min(pending->second, claim_priority);
          }
        }
        count_hit(kind, /*deduped=*/true);
        return {nullptr, /*hit=*/true, /*deduped=*/true, /*pinned=*/false,
                0.0};
      }
      // Another thread is extracting this very ball; wait for its result
      // outside the lock instead of duplicating the BFS.
      std::shared_future<Extracted> pending = it->second;
      lock.unlock();
      Extracted extracted;
      try {
        extracted = pending.get();  // rethrows the extractor's exception
      } catch (...) {
        // The access still happened: count it before surfacing the
        // extractor's failure, or hit/miss totals silently drift under
        // failures (a miss, not a hit — nothing was served).
        count_miss(kind);
        throw;
      }
      if (dynamic_ != nullptr && extracted.version < min_version &&
          dynamic_->touched_since(*extracted.ball, extracted.version)) {
        // The joined extraction started before this query was admitted and
        // an update has touched its ball since: serving it would hand the
        // query state older than its admission stamp. Retry — the next
        // pass serves a fresh resident or extracts at the current version.
        stale_rejects_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      count_hit(kind, /*deduped=*/true);
      return {std::move(extracted.ball), /*hit=*/true, /*deduped=*/true,
              /*pinned=*/false, 0.0, extracted.version};
    }
    shard.in_flight.emplace(key, promise.get_future().share());
  }

  // Miss with the extraction claimed: run the BFS unlocked so other shards
  // (and other keys of this shard, briefly) keep serving. In dynamic mode
  // the extraction runs under the graph's shared lock, which serializes it
  // against updates and stamps it with an exact version.
  Timer timer;
  BallPtr ball;
  std::uint64_t ball_version = 0;
  try {
    if (dynamic_ != nullptr) {
      ball = std::make_shared<const graph::Subgraph>(
          dynamic_->extract_ball(root, radius, &ball_version));
    } else {
      ball = std::make_shared<const graph::Subgraph>(
          extractor_ ? extractor_(*graph_, root, radius)
                     : graph::extract_ball(*graph_, root, radius));
    }
  } catch (...) {
    // Unblock any waiters with the same failure, then unclaim the key.
    extraction_failures_.fetch_add(1, std::memory_order_relaxed);
    promise.set_exception(std::current_exception());
    {
      util::MutexLock lock(shard.mu);
      shard.in_flight.erase(key);
      // A deduped pinned root prefetch may have asked this extraction to
      // pin for it; the request dies with the extraction — a stale entry
      // would misclassify the NEXT successful extraction of this key.
      if (!shard.pin_on_complete.empty()) shard.pin_on_complete.erase(key);
    }
    count_miss(kind);  // the access happened; keep the totals honest
    throw;
  }
  const double extract_seconds = timer.elapsed_seconds();
  promise.set_value({ball, ball_version});
  count_miss(kind);

  // Freshness probe BEFORE taking the shard lock (lock order is graph →
  // shard, never the reverse): has any update touched this ball since its
  // extraction? `checked_version` is the version that answer is valid for.
  bool fresh = true;
  std::uint64_t checked_version = ball_version;
  if (dynamic_ != nullptr) {
    fresh = !dynamic_->touched_since(*ball, ball_version, &checked_version);
  }

  const std::size_t incoming = ball->bytes();
  {
    util::MutexLock lock(shard.mu);
    shard.in_flight.erase(key);
    shard.extraction_seconds += extract_seconds;
    // Insert-time staleness gate: retain only if the ball is untouched up
    // to checked_version AND no invalidation scan has visited this shard
    // after that — a scan that passed between the probe and this lock
    // could not have seen the entry, so retaining would leave a stale
    // resident behind. (A scan arriving AFTER the insert finds the entry
    // in the reverse index and removes it normally.) The caller is still
    // served: its admission version can't exceed the extraction version.
    const bool retain =
        dynamic_ == nullptr ||
        (fresh && shard.last_invalidation_version <= checked_version);
    if (!retain) stale_rejects_.fetch_add(1, std::memory_order_relaxed);
    // A deduped pinned root prefetch may have asked this extraction to
    // pin on its behalf; honoring it counts as a root-prefetch extraction
    // for the re-extraction records too, and the pin carries the best
    // (lowest) claim priority any requester supplied.
    bool pin_requested = false;
    std::size_t pin_priority = claim_priority;
    if (!shard.pin_on_complete.empty()) {
      if (const auto pending = shard.pin_on_complete.find(key);
          pending != shard.pin_on_complete.end()) {
        pin_requested = true;
        pin_priority = std::min(pin_priority, pending->second);
        shard.pin_on_complete.erase(pending);
      }
    }
    note_extraction(shard, key,
                    pin_requested ? FetchKind::kPinnedRootPrefetch : kind,
                    incoming);
    if (retain && (kind == FetchKind::kPinnedRootPrefetch || pin_requested)) {
      maybe_pin(shard, key, ball, pin_priority, ball_version);
    }
    // clear() may have raced ahead of this insertion; re-check the map in
    // case another extraction of the same key landed first (possible only
    // across a clear()).
    if (retain && incoming <= shard_budget_ &&
        shard.map.find(key) == shard.map.end() &&
        admit(shard, key, incoming)) {
      shard.lru.push_front(Entry{key, ball, incoming, ball_version});
      shard.map.emplace(key, shard.lru.begin());
      shard.bytes += incoming;
      total_bytes_.fetch_add(incoming, std::memory_order_relaxed);
      if (dynamic_ != nullptr) index_ball(shard, key, *ball);
    }
  }
  return {std::move(ball), /*hit=*/false, /*deduped=*/false,
          /*pinned=*/false, extract_seconds, ball_version};
  }  // for (;;)
}

void ShardedBallCache::evict_lru_until_fits(Shard& shard,
                                            std::size_t incoming) {
  // kAlways: exact LRU order, allocation-free — this runs under the
  // contended shard mutex on every insert that needs room.
  while (!shard.lru.empty() && shard.bytes + incoming > shard_budget_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.ball_bytes;
    total_bytes_.fetch_sub(victim.ball_bytes, std::memory_order_relaxed);
    if (dynamic_ != nullptr) unindex_ball(shard, victim.key, *victim.ball);
    shard.map.erase(victim.key);
    shard.lru.pop_back();  // pinned readers keep the ball alive via BallPtr
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::list<ShardedBallCache::Entry>::iterator>
ShardedBallCache::plan_evictions(Shard& shard, std::size_t incoming) const {
  std::vector<std::list<Entry>::iterator> victims;
  std::size_t reclaimed = 0;
  const auto need_more = [&] {
    return shard.bytes - reclaimed + incoming > shard_budget_;
  };
  // Candidates roll in from the cold end; the adaptive tail window (~10%
  // of the shard's residents, floor 8, cap 64 — a small shard behaves
  // exactly like the old fixed window) competes and the coldest-by-sketch
  // goes first (strict < keeps the least-recently-used on ties), so a hot
  // ball that drifted to the tail between bursts outlives one-shot entries
  // that are merely more recent. Each entry is estimated once, as it
  // enters the window — estimates cannot change mid-plan (the lock is
  // held) — and the window buffer is a fixed-size stack array sized for
  // the cap: this runs under the contended shard mutex, so the only heap
  // allocation left is the victims list itself.
  const std::size_t scan_window = eviction_scan_window(shard.map.size());
  auto next = shard.lru.rbegin();
  std::array<std::pair<std::list<Entry>::iterator, std::uint32_t>,
             kMaxEvictionScanWindow>
      window;
  std::size_t window_size = 0;
  while (need_more()) {
    while (window_size < scan_window && next != shard.lru.rend()) {
      const auto it = std::prev(next.base());
      window[window_size++] = {
          it, shard.sketch->estimate(splitmix64(it->key.packed()))};
      ++next;
    }
    if (window_size == 0) break;  // whole shard planned away
    std::size_t pick = 0;
    for (std::size_t i = 1; i < window_size; ++i) {
      if (window[i].second < window[pick].second) pick = i;
    }
    reclaimed += window[pick].first->ball_bytes;
    victims.push_back(window[pick].first);
    // Compact in place (order carries the LRU tie-break; < window moves).
    for (std::size_t i = pick + 1; i < window_size; ++i) {
      window[i - 1] = window[i];
    }
    --window_size;
  }
  return victims;
}

void ShardedBallCache::evict(
    Shard& shard, const std::vector<std::list<Entry>::iterator>& victims) {
  for (const auto& it : victims) {
    shard.bytes -= it->ball_bytes;
    total_bytes_.fetch_sub(it->ball_bytes, std::memory_order_relaxed);
    if (dynamic_ != nullptr) unindex_ball(shard, it->key, *it->ball);
    shard.map.erase(it->key);
    shard.lru.erase(it);  // pinned readers keep the ball alive via BallPtr
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardedBallCache::admit(Shard& shard, const BallKey& key,
                             std::size_t incoming) {
  if (shard.sketch == nullptr) {
    evict_lru_until_fits(shard, incoming);
    MELO_CHECK(shard.bytes + incoming <= shard_budget_);
    return true;
  }
  // kTinyLFU — plan first, mutate last: the duel below runs against
  // exactly the victims sketch-informed eviction would take, so admission
  // and eviction can never disagree about who goes — and a lost duel
  // costs nothing, the shard is left exactly as it was.
  const std::vector<std::list<Entry>::iterator> victims =
      plan_evictions(shard, incoming);
  if (!victims.empty()) {
    // TinyLFU gate: the candidate must be estimated strictly hotter than
    // every victim it displaces (ties keep the residents — one-shot scan
    // keys all estimate ~1 and can never displace a ball that has been
    // hit repeatedly).
    const std::uint32_t candidate =
        shard.sketch->estimate(splitmix64(key.packed()));
    for (const auto& it : victims) {
      if (shard.sketch->estimate(splitmix64(it->key.packed())) >= candidate) {
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }
  evict(shard, victims);
  MELO_CHECK(shard.bytes + incoming <= shard_budget_);
  return true;
}

ShardedBallCache::Stats ShardedBallCache::stats() const {
  util::MutexLock lock(stats_mu_);
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetch_misses = prefetch_misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.pins_installed = pins_installed_.load(std::memory_order_relaxed);
  s.pin_hits = pin_hits_.load(std::memory_order_relaxed);
  s.pins_expired = pins_expired_.load(std::memory_order_relaxed);
  s.pin_displacements = pin_displacements_.load(std::memory_order_relaxed);
  s.root_reextractions =
      root_reextractions_.load(std::memory_order_relaxed);
  s.extraction_failures =
      extraction_failures_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.stale_rejects = stale_rejects_.load(std::memory_order_relaxed);
  s.reverse_index_entries =
      reverse_index_entries_.load(std::memory_order_relaxed);
  return s;
}

void ShardedBallCache::drop_pins() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [key, pin] : shard->pinned) {
      pinned_bytes_.fetch_sub(pin.ball->bytes(), std::memory_order_relaxed);
      pinned_count_.fetch_sub(1, std::memory_order_relaxed);
      pins_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    shard->pinned.clear();
    shard->root_prefetched.clear();
    shard->pin_on_complete.clear();
  }
}

std::size_t ShardedBallCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

double ShardedBallCache::extraction_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->extraction_seconds;
  }
  return total;
}

void ShardedBallCache::clear() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    total_bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->bytes = 0;
    shard->extraction_seconds = 0.0;
    // The sketch must reset with the residents: stale popularity from
    // before the reset would otherwise veto admission of the next working
    // set (every new ball would lose its duel against phantoms).
    if (shard->sketch != nullptr) shard->sketch->clear();
    for (const auto& [key, pin] : shard->pinned) {
      pinned_bytes_.fetch_sub(pin.ball->bytes(), std::memory_order_relaxed);
      pinned_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->pinned.clear();
    shard->root_prefetched.clear();
    shard->pin_on_complete.clear();
    // The reverse index mirrors the residents, so it empties with them;
    // the gauge drops by exactly this shard's live pairs. NOTE:
    // last_invalidation_version is deliberately NOT reset — forgetting
    // that an update happened would let a racing pre-update extraction
    // slip past the insert-time staleness gate.
    std::size_t indexed = 0;
    for (const auto& [vertex, keys] : shard->reverse_index) {
      indexed += keys.size();
    }
    reverse_index_entries_.fetch_sub(indexed, std::memory_order_relaxed);
    shard->reverse_index.clear();
    // in_flight is left alone: those extractions complete normally.
  }
  ewma_ball_bytes_.store(0.0, std::memory_order_relaxed);
  for (std::atomic<double>& ewma : ewma_by_radius_) {
    ewma.store(0.0, std::memory_order_relaxed);
  }
  // Zero the counters as one unit: stats() holds the same mutex, so a
  // snapshot sees either the pre-reset or the post-reset world, never a
  // mix (the hit-rate race this fixes).
  util::MutexLock lock(stats_mu_);
  hits_.store(0);
  misses_.store(0);
  dedup_hits_.store(0);
  prefetch_hits_.store(0);
  prefetch_misses_.store(0);
  evictions_.store(0);
  admission_rejects_.store(0);
  pins_installed_.store(0);
  pin_hits_.store(0);
  pins_expired_.store(0);
  pin_displacements_.store(0);
  root_reextractions_.store(0);
  extraction_failures_.store(0);
  // The dynamic-mode counters reset with the rest (the PR 5 lesson:
  // every counter a snapshot reports must reset as one unit with it).
  invalidations_.store(0);
  stale_rejects_.store(0);
}

}  // namespace meloppr::core
