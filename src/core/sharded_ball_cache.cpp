#include "core/sharded_ball_cache.hpp"

#include <stdexcept>
#include <utility>

#include "graph/bfs.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

ShardedBallCache::ShardedBallCache(const graph::Graph& g,
                                   std::size_t byte_budget,
                                   std::size_t shards)
    : graph_(&g), budget_(byte_budget) {
  if (byte_budget == 0) {
    throw std::invalid_argument(
        "ShardedBallCache: byte budget must be positive");
  }
  const std::size_t n = shards == 0 ? kDefaultShards : shards;
  shard_budget_ = byte_budget / n;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ShardedBallCache::count_hit(FetchKind kind, bool deduped) {
  if (kind == FetchKind::kPrefetch) {
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (deduped) dedup_hits_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedBallCache::count_miss(FetchKind kind) {
  if (kind == FetchKind::kPrefetch) {
    prefetch_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

ShardedBallCache::Fetch ShardedBallCache::fetch(graph::NodeId root,
                                                unsigned radius,
                                                FetchKind kind) {
  const BallKey key{root, radius};
  Shard& shard = shard_for(key);

  std::promise<BallPtr> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // → MRU
      count_hit(kind, /*deduped=*/false);
      return {it->second->ball, /*hit=*/true, /*deduped=*/false, 0.0};
    }
    if (const auto it = shard.in_flight.find(key);
        it != shard.in_flight.end()) {
      if (kind == FetchKind::kPrefetch) {
        // The ball is already on its way into the cache; parking a
        // prefetch thread on someone else's BFS would serialize the whole
        // lookahead pipeline for zero work. Report a (ball-less) hit.
        count_hit(kind, /*deduped=*/true);
        return {nullptr, /*hit=*/true, /*deduped=*/true, 0.0};
      }
      // Another thread is extracting this very ball; wait for its result
      // outside the lock instead of duplicating the BFS.
      std::shared_future<BallPtr> pending = it->second;
      lock.unlock();
      BallPtr ball = pending.get();  // rethrows the extractor's exception
      count_hit(kind, /*deduped=*/true);
      return {std::move(ball), /*hit=*/true, /*deduped=*/true, 0.0};
    }
    shard.in_flight.emplace(key, promise.get_future().share());
  }

  // Miss with the extraction claimed: run the BFS unlocked so other shards
  // (and other keys of this shard, briefly) keep serving.
  Timer timer;
  BallPtr ball;
  try {
    ball = std::make_shared<const graph::Subgraph>(
        graph::extract_ball(*graph_, root, radius));
  } catch (...) {
    // Unblock any waiters with the same failure, then unclaim the key.
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(key);
    throw;
  }
  const double extract_seconds = timer.elapsed_seconds();
  promise.set_value(ball);
  count_miss(kind);

  const std::size_t incoming = ball->bytes();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(key);
    shard.extraction_seconds += extract_seconds;
    // clear() may have raced ahead of this insertion; re-check the map in
    // case another extraction of the same key landed first (possible only
    // across a clear()).
    if (incoming <= shard_budget_ && shard.map.find(key) == shard.map.end()) {
      evict_until_fits(shard, incoming);
      shard.lru.push_front(Entry{key, ball, incoming});
      shard.map.emplace(key, shard.lru.begin());
      shard.bytes += incoming;
      total_bytes_.fetch_add(incoming, std::memory_order_relaxed);
    }
  }
  return {std::move(ball), /*hit=*/false, /*deduped=*/false, extract_seconds};
}

void ShardedBallCache::evict_until_fits(Shard& shard, std::size_t incoming) {
  while (!shard.lru.empty() && shard.bytes + incoming > shard_budget_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.ball_bytes;
    total_bytes_.fetch_sub(victim.ball_bytes, std::memory_order_relaxed);
    shard.map.erase(victim.key);
    shard.lru.pop_back();  // pinned readers keep the ball alive via BallPtr
  }
  MELO_CHECK(shard.bytes + incoming <= shard_budget_);
}

double ShardedBallCache::hit_rate() const {
  const std::size_t h = hits_.load();
  const std::size_t total = h + misses_.load();
  return total == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(total);
}

std::size_t ShardedBallCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

double ShardedBallCache::extraction_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->extraction_seconds;
  }
  return total;
}

void ShardedBallCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    total_bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->bytes = 0;
    shard->extraction_seconds = 0.0;
    // in_flight is left alone: those extractions complete normally.
  }
  hits_.store(0);
  misses_.store(0);
  dedup_hits_.store(0);
  prefetch_hits_.store(0);
  prefetch_misses_.store(0);
}

}  // namespace meloppr::core
