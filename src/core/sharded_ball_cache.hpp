// Thread-safe N-way sharded LRU cache of extracted BFS balls.
//
// The concurrent counterpart of BallCache (ball_cache.hpp): the serving
// pipeline's workers and the stage-lookahead prefetcher all extract balls
// through one shared cache, so popular-seed locality is exploited across
// the whole worker pool instead of per thread. Design:
//
//   * Sharding. Keys are distributed over N independent shards by the high
//     bits of the splitmix64-mixed key (the map inside a shard consumes the
//     low bits, so the two uses are decorrelated). Each shard owns its own
//     mutex, LRU list and byte budget (total / N), so concurrent fetches of
//     different balls contend only when they land in the same shard.
//
//   * Pinned entries. fetch() hands out shared_ptr<const Subgraph>, so an
//     eviction (or clear()) while another worker still reads the ball only
//     drops the cache's reference — the ball stays alive until its last
//     reader releases it. This is what BallCache's "valid until the next
//     get()" contract cannot offer under concurrency.
//
//   * In-flight miss deduplication. When two workers miss on the same
//     popular ball simultaneously, the first installs a shared_future and
//     runs the BFS; the second waits on the future instead of extracting
//     the same ball twice. Counted as dedup_hits — BFS work avoided, not
//     merely bytes served.
//
//   * Prefetch accounting. The prefetcher's fetches pass kPrefetch so they
//     do not pollute the demand hit rate: a prefetched ball that a query
//     later reads is a demand hit (the entire point); the prefetch fetch
//     itself is tallied under prefetch_hits/prefetch_misses.
//
//   * Frequency-aware admission (CacheAdmission::kTinyLFU). Each shard
//     carries a 4-bit count-min sketch of ball access frequency (every
//     fetch records its key; the sketch is halved periodically so history
//     ages out). When retaining a new ball would evict residents, the
//     candidate must be estimated strictly hotter than every victim it
//     displaces, or it is served without being retained — so a one-pass
//     scan of cold seeds can never flush the hot hub balls the serving
//     pipeline depends on. kAlways (the default) is plain LRU.
//
//   * Sketch-informed eviction. Under kTinyLFU the victims themselves are
//     chosen by frequency, not recency alone: eviction scans an adaptive
//     tail window of the LRU (~10% of the shard's residents, floor 8,
//     cap 64 — see eviction_scan_window()) and takes the coldest-by-sketch
//     first, so a hot ball that merely drifted to the cold end (a
//     mid-recency hub between bursts) outlives one-shot entries that are
//     more recent. The admission duel above is run against exactly the
//     victims this selection would take, so the two policies never
//     disagree. kAlways keeps pure LRU order.
//
//   * Pinned prefetch handoff. A root-prefetched ball (FetchKind::
//     kPinnedRootPrefetch) is additionally held in a bounded per-shard
//     side-table keyed by its BallKey, outside the LRU and outside the
//     byte budget, until the first demand fetch consumes it or drop_pins()
//     ends the batch. A TinyLFU retention rejection (or an eviction racing
//     the claim) can therefore no longer waste the prefetch BFS: the
//     claiming worker is served from the pin. Both root-prefetch kinds
//     also record their keys so root_reextractions can count the PR 4
//     failure mode (a root-prefetched ball re-extracted on the demand
//     path) — zero when pinning is on and the pin table has capacity.
//
//   * Surgical invalidation (bind_dynamic_graph). Bound to a DynamicGraph,
//     each shard maintains a reverse-reachability index (vertex → the
//     cached BallKeys whose ball contains it, updated at insert/evict
//     under the shard lock). An edge update then invalidates exactly the
//     resident and pinned balls containing either endpoint — instead of
//     clear() — inside the graph's update listener, BEFORE the new version
//     publishes. That ordering plus an insert-time staleness gate (an
//     extraction that raced an update is served to its caller but never
//     retained — stale_rejects) yields the serving invariant: every
//     resident and pinned ball reflects all updates up to the current
//     graph version, so a query stamped at admission is always served
//     balls at least as fresh as its stamp. In-flight extractions are
//     version-stamped; a demand fetch joining one whose result predates
//     the fetch's min_version re-extracts rather than serve stale state.
//     Static-mode caches (never bound) pay nothing for any of this.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/ball_cache.hpp"
#include "core/config.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr::core {

class ShardedBallCache {
 public:
  using BallPtr = std::shared_ptr<const graph::Subgraph>;
  /// Pluggable extraction function (fault injection / alternate storage):
  /// called as extractor(graph, root, radius) on every miss.
  using Extractor =
      std::function<graph::Subgraph(const graph::Graph&, graph::NodeId,
                                    unsigned)>;

  /// Who is asking — demand fetches feed hit_rate(); prefetch fetches are
  /// tallied separately so lookahead traffic cannot inflate it. The two
  /// root kinds mark cross-query root lookahead: both record their keys
  /// for re-extraction accounting, and kPinnedRootPrefetch additionally
  /// holds the ball in the pinned side-table until its seed is claimed.
  enum class FetchKind {
    kDemand,
    kPrefetch,            ///< stage lookahead
    kRootPrefetch,        ///< root lookahead, unpinned (PR 4 behavior)
    kPinnedRootPrefetch,  ///< root lookahead with pinned handoff
  };

  /// What one fetch() did, for per-task attribution.
  struct Fetch {
    /// The ball — always set for demand fetches. A prefetch-kind fetch
    /// that finds the key already being extracted returns hit=true with a
    /// null ball instead of parking on the other thread's BFS.
    BallPtr ball;
    bool hit = false;      ///< served without running a BFS on this thread
    bool deduped = false;  ///< joined/observed another thread's extraction
    bool pinned = false;   ///< served from the pinned prefetch side-table
    double extract_seconds = 0.0;  ///< BFS time paid by THIS call (0 on hit)
    /// Graph version the ball was extracted at (dynamic mode; 0 static).
    /// Resident/pinned balls are additionally current: they reflect every
    /// update up to the graph version at the time they were served.
    std::uint64_t version = 0;
  };

  /// `byte_budget` is split evenly across `shards` (0 → kDefaultShards).
  /// A ball larger than its shard's budget is served but never retained.
  /// `admission` selects the retention policy (see CacheAdmission in
  /// config.hpp); kTinyLFU costs ~4 KiB of sketch per shard and one sketch
  /// update per fetch, both under the shard lock the fetch already holds.
  /// `pin_capacity` bounds the pinned side-table (total entries across all
  /// shards; pins beyond it are skipped, never evict one another).
  /// Throws std::invalid_argument on a zero budget.
  ShardedBallCache(const graph::Graph& g, std::size_t byte_budget,
                   std::size_t shards = 0,
                   CacheAdmission admission = CacheAdmission::kAlways,
                   std::size_t pin_capacity = kDefaultPinCapacity);
  /// Unregisters the dynamic-graph listener, if bound.
  ~ShardedBallCache();

  /// "No claim-order information": the default claim priority, losing every
  /// pin-table capacity duel (see fetch()).
  static constexpr std::size_t kNoClaimPriority =
      std::numeric_limits<std::size_t>::max();

  /// Returns the ball around `root` with the given radius, extracting it on
  /// a miss (or waiting for a concurrent extraction of the same key). Safe
  /// from any number of threads.
  ///
  /// `claim_priority` (root-prefetch kinds only) is the seed's distance
  /// from claim — the pipeline passes the stream index, so lower = claimed
  /// sooner. Under pin-table capacity pressure the seeds closest to claim
  /// win: a new pin strictly closer than the shard's farthest-from-claim
  /// pin displaces it (pin_displacements counts these); with the default
  /// kNoClaimPriority the new pin is simply skipped, as before.
  ///
  /// `min_version` (dynamic mode only) is the graph version the caller's
  /// query was admitted at: the fetch never serves a ball reflecting an
  /// older state. Residents and pins always satisfy it (they are kept
  /// current by invalidation); only a joined in-flight extraction that
  /// started before the caller's admission can fail it, in which case the
  /// fetch re-extracts at the current version instead.
  Fetch fetch(graph::NodeId root, unsigned radius,
              FetchKind kind = FetchKind::kDemand,
              std::size_t claim_priority = kNoClaimPriority,
              std::uint64_t min_version = 0);

  /// Routes miss-path extraction through `dyn` (delta-aware, version
  /// stamped under the graph's shared lock) and registers this cache for
  /// surgical invalidation on every update. Overrides set_extractor. Call
  /// before the cache is shared; `dyn` must outlive this cache. The
  /// Graph passed to the constructor is ignored while bound.
  void bind_dynamic_graph(graph::DynamicGraph& dyn);

  /// Convenience wrapper when the caller only wants the ball.
  BallPtr get(graph::NodeId root, unsigned radius) {
    return fetch(root, radius).ball;
  }

  /// Replaces the extraction function used on misses (empty restores the
  /// built-in graph::extract_ball). Intended for fault injection and tests;
  /// must not be called concurrently with fetches — install it before the
  /// cache is shared. An extractor that throws fails only the fetches of
  /// that one key attempt: waiters parked on the in-flight future are woken
  /// with the same exception, the key is unclaimed so the next fetch
  /// re-attempts, and extraction_failures counts the event.
  void set_extractor(Extractor extractor) {
    extractor_ = std::move(extractor);
  }

  static constexpr std::size_t kDefaultShards = 16;
  /// Default bound of the pinned side-table: sized for a deep root-prefetch
  /// horizon (the adaptive window tops out well below this) times a few
  /// concurrent batches.
  static constexpr std::size_t kDefaultPinCapacity = 256;
  /// Bounds of the adaptive eviction-scan window (ROADMAP "Adaptive
  /// eviction-scan window"): how far into the LRU tail sketch-informed
  /// eviction looks for a colder victim. 1 would be pure LRU; larger
  /// windows protect hot balls deeper into the list at the cost of a
  /// slightly longer scan per eviction.
  static constexpr std::size_t kMinEvictionScanWindow = 8;
  static constexpr std::size_t kMaxEvictionScanWindow = 64;

  /// The scan window for a shard currently holding `residents` entries:
  /// ~10% of them, floored at kMinEvictionScanWindow (small shards behave
  /// exactly like the old fixed window of 8) and capped at
  /// kMaxEvictionScanWindow (the plan loop's stack buffer — and an
  /// eviction-latency bound, since the scan runs under the shard mutex).
  [[nodiscard]] static std::size_t eviction_scan_window(
      std::size_t residents) {
    return std::clamp(residents / 10, kMinEvictionScanWindow,
                      kMaxEvictionScanWindow);
  }

  /// One coherent view of the cache-wide counters. Taken as a unit so a
  /// concurrent clear() can never split a reader's view (e.g. hits read
  /// before the reset, misses after — which made hit_rate() transiently
  /// report nonsense). Individual counters keep incrementing lock-free
  /// while a snapshot is taken; only reset vs read is serialized.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t dedup_hits = 0;
    std::size_t prefetch_hits = 0;
    std::size_t prefetch_misses = 0;
    std::size_t evictions = 0;          ///< residents displaced for room
    std::size_t admission_rejects = 0;  ///< TinyLFU: served, not retained
    std::size_t pins_installed = 0;     ///< balls held in the pin table
    std::size_t pin_hits = 0;           ///< demand fetches served from a pin
    std::size_t pins_expired = 0;       ///< pins discarded unconsumed
    /// Pins displaced under capacity pressure by a seed strictly closer to
    /// claim (lower stream index); also counted in pins_expired.
    std::size_t pin_displacements = 0;
    /// Root-prefetched balls whose BFS was paid AGAIN by a later demand
    /// fetch — the waste the pinned handoff exists to eliminate (0 while
    /// pinning is on and the pin table has capacity).
    std::size_t root_reextractions = 0;
    /// Extractions that threw (flaky extractor / storage fault). Each one
    /// fails exactly the fetches joined to that attempt; the key is
    /// re-attemptable immediately afterwards.
    std::size_t extraction_failures = 0;
    /// Resident + pinned balls removed by edge-update invalidation
    /// (dynamic mode): exactly the balls containing an updated endpoint.
    std::size_t invalidations = 0;
    /// Extractions that raced an update and were served but not retained,
    /// plus stale in-flight joins that re-extracted (dynamic mode).
    std::size_t stale_rejects = 0;
    /// Live reverse-index (vertex, BallKey) pairs — a gauge, not a
    /// counter: Σ over resident balls of their node count.
    std::size_t reverse_index_entries = 0;
    /// Demand hit rate (prefetch traffic excluded).
    [[nodiscard]] double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // --- statistics (atomic; safe to read while serving) ---
  /// Consistent snapshot of every counter (serialized against clear()).
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Demand fetches that piggybacked on another thread's in-flight
  /// extraction (already included in hits()).
  [[nodiscard]] std::size_t dedup_hits() const { return dedup_hits_.load(); }
  [[nodiscard]] std::size_t prefetch_hits() const {
    return prefetch_hits_.load();
  }
  [[nodiscard]] std::size_t prefetch_misses() const {
    return prefetch_misses_.load();
  }
  /// Entries evicted to make room (both admission modes).
  [[nodiscard]] std::size_t evictions() const { return evictions_.load(); }
  /// Balls served but not retained because a resident victim was estimated
  /// hotter (kTinyLFU only; always 0 under kAlways).
  [[nodiscard]] std::size_t admission_rejects() const {
    return admission_rejects_.load();
  }
  [[nodiscard]] CacheAdmission admission() const { return admission_; }
  /// Demand hit rate (prefetch traffic excluded); stats().hit_rate().
  [[nodiscard]] double hit_rate() const { return stats().hit_rate(); }

  // --- pinned prefetch handoff ---
  /// Balls held in the pinned side-table so far (kPinnedRootPrefetch).
  [[nodiscard]] std::size_t pins_installed() const {
    return pins_installed_.load();
  }
  /// Demand fetches served from a pin (the handoff paying off).
  [[nodiscard]] std::size_t pin_hits() const { return pin_hits_.load(); }
  /// Pins discarded without a demand consumer (drop_pins/clear, the pinned
  /// key turning out to be resident when claimed, or displacement by a
  /// closer-to-claim seed).
  [[nodiscard]] std::size_t pins_expired() const {
    return pins_expired_.load();
  }
  /// Pins displaced under capacity pressure by a seed strictly closer to
  /// claim (see fetch()'s claim_priority).
  [[nodiscard]] std::size_t pin_displacements() const {
    return pin_displacements_.load();
  }
  /// Root-prefetched balls re-extracted by the demand path (see Stats).
  [[nodiscard]] std::size_t root_reextractions() const {
    return root_reextractions_.load();
  }
  /// Extractions that threw (see Stats::extraction_failures).
  [[nodiscard]] std::size_t extraction_failures() const {
    return extraction_failures_.load();
  }
  /// Balls removed by edge-update invalidation (see Stats::invalidations).
  [[nodiscard]] std::size_t invalidations() const {
    return invalidations_.load();
  }
  /// Stale extractions served-but-not-retained (see Stats::stale_rejects).
  [[nodiscard]] std::size_t stale_rejects() const {
    return stale_rejects_.load();
  }
  /// Live reverse-index (vertex, BallKey) pairs (dynamic mode gauge).
  [[nodiscard]] std::size_t reverse_index_entries() const {
    return reverse_index_entries_.load(std::memory_order_relaxed);
  }
  /// The bound DynamicGraph's current version (0 when not bound).
  [[nodiscard]] std::uint64_t current_version() const {
    return dynamic_ == nullptr ? 0 : dynamic_->version();
  }

  /// Test/introspection: every resident key, no LRU or stats effects.
  [[nodiscard]] std::vector<BallKey> resident_keys() const;
  /// Test/introspection: the resident ball for `key` (nullptr on a miss),
  /// without touching LRU order, stats, or the sketch.
  [[nodiscard]] BallPtr peek(const BallKey& key) const;
  /// Currently pinned balls / their footprint (outside bytes()).
  [[nodiscard]] std::size_t pinned_entries() const {
    return pinned_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pinned_bytes() const {
    return pinned_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pin_capacity() const { return pin_capacity_; }
  /// Discards every unconsumed pin and the root-prefetch key records (the
  /// batch is over; an unclaimed pin's speculation did not pay off). Balls
  /// still held by readers survive via their shared_ptr.
  void drop_pins();

  /// EWMA of the ball bytes of recent extractions (demand and prefetch,
  /// all radii mixed), 0 before the first completed extraction. Unlike
  /// bytes()/entries() it is defined on an empty cache and tracks the
  /// working set actually flowing through, not what admission happened to
  /// retain.
  [[nodiscard]] std::size_t ewma_ball_bytes() const {
    return static_cast<std::size_t>(
        ewma_ball_bytes_.load(std::memory_order_relaxed));
  }

  /// Per-radius variant: the EWMA over extractions of exactly this radius
  /// (0 before the first one). The adaptive root-prefetch controller uses
  /// the stage-0 radius here to convert its spare-budget byte cap into a
  /// seed count — the mixed EWMA above would be dragged toward the
  /// (often much smaller) later-stage balls by stage lookahead and
  /// overestimate how many stage-0 seeds the cap affords. Radii beyond
  /// kEwmaRadiusSlots-1 share the last slot.
  [[nodiscard]] std::size_t ewma_ball_bytes(unsigned radius) const {
    return static_cast<std::size_t>(
        ewma_by_radius_[radius_slot(radius)].load(
            std::memory_order_relaxed));
  }

  /// Current cached footprint across all shards (Subgraph::bytes() sums).
  /// Lock-free (an atomic total maintained on insert/evict): safe to poll
  /// from the per-task hot path without re-serializing the shards.
  [[nodiscard]] std::size_t bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t byte_budget() const { return budget_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Total BFS seconds paid on misses, by whichever thread ran them.
  [[nodiscard]] double extraction_seconds() const;

  /// Drops every cached ball, every pin, the frequency sketches, and the
  /// statistics — a full reset to the constructed state. The sketches must
  /// go too: stale popularity from before the reset would otherwise veto
  /// admission of the next working set. Balls still pinned by outstanding
  /// BallPtrs survive until released. Extractions in flight complete and
  /// are inserted afterwards (their stats land post-clear).
  void clear();

 private:
  struct Entry {
    BallKey key;
    BallPtr ball;
    std::size_t ball_bytes = 0;
    /// Graph version the ball was extracted at (0 in static mode).
    std::uint64_t version = 0;
  };

  /// In-flight extraction result: the ball plus the graph version it was
  /// extracted at (captured under the graph's shared lock).
  struct Extracted {
    BallPtr ball;
    std::uint64_t version = 0;
  };

  /// TinyLFU's frequency estimator: a count-min sketch of 4-bit saturating
  /// counters, halved every `kSamplePeriod` records so estimates decay and
  /// yesterday's hot set cannot veto today's. Guarded by the owning
  /// shard's mutex — no internal synchronization.
  class FrequencySketch {
   public:
    /// Saturating increment of `mixed`'s counters in every row.
    void record(std::uint64_t mixed);
    /// Frequency estimate: the minimum counter across rows (classic
    /// count-min — overestimates only, never underestimates).
    [[nodiscard]] std::uint32_t estimate(std::uint64_t mixed) const;
    /// Zeroes every counter — used by ShardedBallCache::clear() so
    /// popularity from before a reset cannot veto admission of the next
    /// working set.
    void clear();

   private:
    static constexpr std::size_t kRows = 4;
    static constexpr std::size_t kCounters = 1024;  ///< per row, power of 2
    static constexpr std::uint8_t kMaxCount = 15;   ///< 4-bit saturation
    /// Aging horizon: after this many records, every counter is halved.
    static constexpr std::size_t kSamplePeriod = 8 * kCounters;

    [[nodiscard]] static std::size_t index(std::uint64_t mixed,
                                           std::size_t row);

    std::uint8_t table_[kRows][kCounters] = {};
    std::size_t records_ = 0;
  };

  struct Shard {
    util::Mutex mu;
    std::list<Entry> lru MELOPPR_GUARDED_BY(mu);  ///< MRU at front
    std::unordered_map<BallKey, std::list<Entry>::iterator, BallKeyHash> map
        MELOPPR_GUARDED_BY(mu);
    /// Extractions in progress: later fetches of the same key wait here.
    std::unordered_map<BallKey, std::shared_future<Extracted>, BallKeyHash>
        in_flight MELOPPR_GUARDED_BY(mu);
    std::size_t bytes MELOPPR_GUARDED_BY(mu) = 0;
    double extraction_seconds MELOPPR_GUARDED_BY(mu) = 0.0;
    /// Ball access frequencies (kTinyLFU only).
    std::unique_ptr<FrequencySketch> sketch MELOPPR_GUARDED_BY(mu);
    /// One pinned prefetch handoff entry: the ball plus how close its seed
    /// is to claim (lower = sooner; kNoClaimPriority = unknown). The
    /// priority decides who yields under capacity pressure.
    struct Pin {
      BallPtr ball;
      std::size_t priority = kNoClaimPriority;
      /// Graph version the ball was extracted at (0 in static mode).
      std::uint64_t version = 0;
    };
    /// Pinned prefetch handoff: root-prefetched balls held until their
    /// seed is claimed or drop_pins(); guarded by mu, bounded globally by
    /// pin_capacity_.
    std::unordered_map<BallKey, Pin, BallKeyHash> pinned
        MELOPPR_GUARDED_BY(mu);
    /// Keys extracted by a root-prefetch fetch since the last drop_pins(),
    /// so a later demand extraction of one of them can be counted as a
    /// re-extraction; capped at kRootRecordCap entries.
    std::unordered_set<BallKey, BallKeyHash> root_prefetched
        MELOPPR_GUARDED_BY(mu);
    /// Keys whose in-flight extraction (claimed by another fetch kind) a
    /// kPinnedRootPrefetch deduped onto, with the best (lowest) claim
    /// priority requested so far: the completing extraction pins the ball
    /// on these keys' behalf, so the handoff guarantee holds even when
    /// root and stage lookahead race on one key.
    std::unordered_map<BallKey, std::size_t, BallKeyHash> pin_on_complete
        MELOPPR_GUARDED_BY(mu);
    /// Reverse-reachability index (dynamic mode only): vertex → the
    /// resident BallKeys whose ball contains it. Maintained at
    /// insert/evict under `mu`; empty when no DynamicGraph is bound, so
    /// static stacks pay nothing.
    std::unordered_map<graph::NodeId,
                       std::unordered_set<BallKey, BallKeyHash>>
        reverse_index MELOPPR_GUARDED_BY(mu);
    /// Version of the latest update whose invalidation scan visited this
    /// shard. The insert-time staleness gate compares against it: a ball
    /// whose freshness was probed at an older version may have been
    /// missed by a scan that already passed, so it is served, not
    /// retained. Never reset (clear() must not forget an update happened).
    std::uint64_t last_invalidation_version MELOPPR_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] Shard& shard_for(const BallKey& key) {
    // High bits pick the shard; the in-shard map hashes the same mixed word
    // from the low end, so shard choice and bucket choice stay independent.
    return *shards_[(splitmix64(key.packed()) >> 40) % shards_.size()];
  }

  void count_hit(FetchKind kind, bool deduped);
  void count_miss(FetchKind kind);
  /// Both root kinds plus plain stage lookahead share prefetch tallies.
  [[nodiscard]] static bool is_prefetch(FetchKind kind) {
    return kind != FetchKind::kDemand;
  }
  [[nodiscard]] static bool is_root_prefetch(FetchKind kind) {
    return kind == FetchKind::kRootPrefetch ||
           kind == FetchKind::kPinnedRootPrefetch;
  }

  /// Upper bound on per-shard root-prefetch key records — an accounting
  /// safety valve for batches that never drop_pins(); far above any real
  /// batch's root count.
  static constexpr std::size_t kRootRecordCap = 4096;

  /// Must hold `shard.mu`. kAlways eviction: walks the LRU tail in place
  /// (allocation-free — this is the hot insert path) until `incoming`
  /// fits.
  void evict_lru_until_fits(Shard& shard, std::size_t incoming)
      MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`; kTinyLFU only (`shard.sketch != nullptr`).
  /// Selects the victims (in eviction order) that would make room for
  /// `incoming` bytes, without mutating the shard: coldest-by-sketch
  /// within the adaptive tail window (eviction_scan_window of the shard's
  /// residents), each entry estimated once as it enters the window (ties
  /// keep the least-recently-used). Stops once enough bytes are covered.
  [[nodiscard]] std::vector<std::list<Entry>::iterator> plan_evictions(
      Shard& shard, std::size_t incoming) const MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`. Erases the planned victims and updates the
  /// byte accounting.
  void evict(Shard& shard,
             const std::vector<std::list<Entry>::iterator>& victims)
      MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`. Applies the admission policy for a ball of
  /// `incoming` bytes keyed `key`: evicts victims and returns true when
  /// the ball should be retained, or returns false (TinyLFU reject —
  /// nothing evicted) when a needed victim is estimated at least as hot.
  bool admit(Shard& shard, const BallKey& key, std::size_t incoming)
      MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`. Records one extraction's footprint into the
  /// recent-ball-bytes EWMA and, for root-prefetch kinds, into the
  /// shard's re-extraction records; counts a demand extraction of a
  /// recorded key as a re-extraction.
  void note_extraction(Shard& shard, const BallKey& key, FetchKind kind,
                       std::size_t incoming) MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`. Installs `ball` in the pinned side-table if
  /// capacity allows (an already-pinned key just keeps the better — lower —
  /// priority). At capacity, a newcomer strictly closer to claim than the
  /// shard's farthest-from-claim pin displaces it (ROADMAP "Pin-table
  /// admission"); otherwise the new pin is skipped.
  void maybe_pin(Shard& shard, const BallKey& key, const BallPtr& ball,
                 std::size_t claim_priority, std::uint64_t version)
      MELOPPR_REQUIRES(shard.mu);

  /// Must hold `shard.mu`; dynamic mode only. Adds/removes `key` under
  /// every member vertex of `ball` in the shard's reverse index.
  void index_ball(Shard& shard, const BallKey& key,
                  const graph::Subgraph& ball) MELOPPR_REQUIRES(shard.mu);
  void unindex_ball(Shard& shard, const BallKey& key,
                    const graph::Subgraph& ball) MELOPPR_REQUIRES(shard.mu);

  /// The DynamicGraph update listener: removes every resident ball listed
  /// under either endpoint in the reverse index and every pinned ball
  /// containing one, and records `version` as each shard's
  /// last_invalidation_version. Runs under the graph's writer lock before
  /// the version publishes; takes each shard's lock in turn (lock order
  /// graph → shard, matching nothing that holds a shard lock while taking
  /// the graph lock).
  void invalidate_edge(const graph::EdgeUpdate& update,
                       std::uint64_t version);

  const graph::Graph* graph_;
  /// Bound by bind_dynamic_graph; null in static mode.
  graph::DynamicGraph* dynamic_ = nullptr;
  std::size_t listener_id_ = 0;
  std::size_t budget_;
  std::size_t shard_budget_;
  CacheAdmission admission_;
  std::size_t pin_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> dedup_hits_{0};
  std::atomic<std::size_t> prefetch_hits_{0};
  std::atomic<std::size_t> prefetch_misses_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> admission_rejects_{0};
  std::atomic<std::size_t> pins_installed_{0};
  std::atomic<std::size_t> pin_hits_{0};
  std::atomic<std::size_t> pins_expired_{0};
  std::atomic<std::size_t> pin_displacements_{0};
  std::atomic<std::size_t> root_reextractions_{0};
  std::atomic<std::size_t> extraction_failures_{0};
  std::atomic<std::size_t> invalidations_{0};
  std::atomic<std::size_t> stale_rejects_{0};
  /// Gauge: live (vertex, BallKey) reverse-index pairs across all shards.
  std::atomic<std::size_t> reverse_index_entries_{0};
  /// Miss-path extraction function; empty → graph::extract_ball. Set
  /// before sharing the cache (not synchronized against fetches).
  Extractor extractor_;
  /// Live pin table occupancy/footprint (outside the byte budget).
  std::atomic<std::size_t> pinned_count_{0};
  std::atomic<std::size_t> pinned_bytes_{0};
  /// Recent-extraction ball size estimates; CAS-updated, read lock-free.
  /// One mixed estimate plus direct-indexed per-radius slots (real stage
  /// radii are single digits; larger ones share the last slot).
  static constexpr std::size_t kEwmaRadiusSlots = 64;
  [[nodiscard]] static std::size_t radius_slot(unsigned radius) {
    return radius < kEwmaRadiusSlots ? radius : kEwmaRadiusSlots - 1;
  }
  std::atomic<double> ewma_ball_bytes_{0.0};
  std::atomic<double> ewma_by_radius_[kEwmaRadiusSlots] = {};
  /// Sum of per-shard bytes, updated under the owning shard's mutex.
  std::atomic<std::size_t> total_bytes_{0};
  /// Serializes counter *resets* against stats() snapshots. Increments are
  /// lock-free; without this a snapshot interleaving with clear() could
  /// pair pre-reset hits with post-reset misses. Guards no fields (the
  /// counters stay atomic); it exists purely to order reset against read.
  mutable util::Mutex stats_mu_;
};

}  // namespace meloppr::core
