// Thread-safe N-way sharded LRU cache of extracted BFS balls.
//
// The concurrent counterpart of BallCache (ball_cache.hpp): the serving
// pipeline's workers and the stage-lookahead prefetcher all extract balls
// through one shared cache, so popular-seed locality is exploited across
// the whole worker pool instead of per thread. Design:
//
//   * Sharding. Keys are distributed over N independent shards by the high
//     bits of the splitmix64-mixed key (the map inside a shard consumes the
//     low bits, so the two uses are decorrelated). Each shard owns its own
//     mutex, LRU list and byte budget (total / N), so concurrent fetches of
//     different balls contend only when they land in the same shard.
//
//   * Pinned entries. fetch() hands out shared_ptr<const Subgraph>, so an
//     eviction (or clear()) while another worker still reads the ball only
//     drops the cache's reference — the ball stays alive until its last
//     reader releases it. This is what BallCache's "valid until the next
//     get()" contract cannot offer under concurrency.
//
//   * In-flight miss deduplication. When two workers miss on the same
//     popular ball simultaneously, the first installs a shared_future and
//     runs the BFS; the second waits on the future instead of extracting
//     the same ball twice. Counted as dedup_hits — BFS work avoided, not
//     merely bytes served.
//
//   * Prefetch accounting. The prefetcher's fetches pass kPrefetch so they
//     do not pollute the demand hit rate: a prefetched ball that a query
//     later reads is a demand hit (the entire point); the prefetch fetch
//     itself is tallied under prefetch_hits/prefetch_misses.
//
//   * Frequency-aware admission (CacheAdmission::kTinyLFU). Each shard
//     carries a 4-bit count-min sketch of ball access frequency (every
//     fetch records its key; the sketch is halved periodically so history
//     ages out). When retaining a new ball would evict residents, the
//     candidate must be estimated strictly hotter than every LRU victim it
//     displaces, or it is served without being retained — so a one-pass
//     scan of cold seeds can never flush the hot hub balls the serving
//     pipeline depends on. kAlways (the default) is plain LRU.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/ball_cache.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace meloppr::core {

class ShardedBallCache {
 public:
  using BallPtr = std::shared_ptr<const graph::Subgraph>;

  /// Who is asking — demand fetches feed hit_rate(); prefetch fetches are
  /// tallied separately so lookahead traffic cannot inflate it.
  enum class FetchKind { kDemand, kPrefetch };

  /// What one fetch() did, for per-task attribution.
  struct Fetch {
    /// The ball — always set for demand fetches. A kPrefetch fetch that
    /// finds the key already being extracted returns hit=true with a null
    /// ball instead of parking on the other thread's BFS.
    BallPtr ball;
    bool hit = false;      ///< served without running a BFS on this thread
    bool deduped = false;  ///< joined/observed another thread's extraction
    double extract_seconds = 0.0;  ///< BFS time paid by THIS call (0 on hit)
  };

  /// `byte_budget` is split evenly across `shards` (0 → kDefaultShards).
  /// A ball larger than its shard's budget is served but never retained.
  /// `admission` selects the retention policy (see CacheAdmission in
  /// config.hpp); kTinyLFU costs ~4 KiB of sketch per shard and one sketch
  /// update per fetch, both under the shard lock the fetch already holds.
  /// Throws std::invalid_argument on a zero budget.
  ShardedBallCache(const graph::Graph& g, std::size_t byte_budget,
                   std::size_t shards = 0,
                   CacheAdmission admission = CacheAdmission::kAlways);

  /// Returns the ball around `root` with the given radius, extracting it on
  /// a miss (or waiting for a concurrent extraction of the same key). Safe
  /// from any number of threads.
  Fetch fetch(graph::NodeId root, unsigned radius,
              FetchKind kind = FetchKind::kDemand);

  /// Convenience wrapper when the caller only wants the ball.
  BallPtr get(graph::NodeId root, unsigned radius) {
    return fetch(root, radius).ball;
  }

  static constexpr std::size_t kDefaultShards = 16;

  /// One coherent view of the cache-wide counters. Taken as a unit so a
  /// concurrent clear() can never split a reader's view (e.g. hits read
  /// before the reset, misses after — which made hit_rate() transiently
  /// report nonsense). Individual counters keep incrementing lock-free
  /// while a snapshot is taken; only reset vs read is serialized.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t dedup_hits = 0;
    std::size_t prefetch_hits = 0;
    std::size_t prefetch_misses = 0;
    std::size_t evictions = 0;          ///< residents displaced for room
    std::size_t admission_rejects = 0;  ///< TinyLFU: served, not retained
    /// Demand hit rate (prefetch traffic excluded).
    [[nodiscard]] double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // --- statistics (atomic; safe to read while serving) ---
  /// Consistent snapshot of every counter (serialized against clear()).
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Demand fetches that piggybacked on another thread's in-flight
  /// extraction (already included in hits()).
  [[nodiscard]] std::size_t dedup_hits() const { return dedup_hits_.load(); }
  [[nodiscard]] std::size_t prefetch_hits() const {
    return prefetch_hits_.load();
  }
  [[nodiscard]] std::size_t prefetch_misses() const {
    return prefetch_misses_.load();
  }
  /// Entries evicted to make room (both admission modes).
  [[nodiscard]] std::size_t evictions() const { return evictions_.load(); }
  /// Balls served but not retained because a resident victim was estimated
  /// hotter (kTinyLFU only; always 0 under kAlways).
  [[nodiscard]] std::size_t admission_rejects() const {
    return admission_rejects_.load();
  }
  [[nodiscard]] CacheAdmission admission() const { return admission_; }
  /// Demand hit rate (prefetch traffic excluded); stats().hit_rate().
  [[nodiscard]] double hit_rate() const { return stats().hit_rate(); }

  /// Current cached footprint across all shards (Subgraph::bytes() sums).
  /// Lock-free (an atomic total maintained on insert/evict): safe to poll
  /// from the per-task hot path without re-serializing the shards.
  [[nodiscard]] std::size_t bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t byte_budget() const { return budget_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Total BFS seconds paid on misses, by whichever thread ran them.
  [[nodiscard]] double extraction_seconds() const;

  /// Drops every cached ball and zeroes the statistics. Balls still pinned
  /// by outstanding BallPtrs survive until released. Extractions in flight
  /// complete and are inserted afterwards (their stats land post-clear).
  void clear();

 private:
  struct Entry {
    BallKey key;
    BallPtr ball;
    std::size_t ball_bytes = 0;
  };

  /// TinyLFU's frequency estimator: a count-min sketch of 4-bit saturating
  /// counters, halved every `kSamplePeriod` records so estimates decay and
  /// yesterday's hot set cannot veto today's. Guarded by the owning
  /// shard's mutex — no internal synchronization.
  class FrequencySketch {
   public:
    /// Saturating increment of `mixed`'s counters in every row.
    void record(std::uint64_t mixed);
    /// Frequency estimate: the minimum counter across rows (classic
    /// count-min — overestimates only, never underestimates).
    [[nodiscard]] std::uint32_t estimate(std::uint64_t mixed) const;

   private:
    static constexpr std::size_t kRows = 4;
    static constexpr std::size_t kCounters = 1024;  ///< per row, power of 2
    static constexpr std::uint8_t kMaxCount = 15;   ///< 4-bit saturation
    /// Aging horizon: after this many records, every counter is halved.
    static constexpr std::size_t kSamplePeriod = 8 * kCounters;

    [[nodiscard]] static std::size_t index(std::uint64_t mixed,
                                           std::size_t row);

    std::uint8_t table_[kRows][kCounters] = {};
    std::size_t records_ = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< MRU at front
    std::unordered_map<BallKey, std::list<Entry>::iterator, BallKeyHash> map;
    /// Extractions in progress: later fetches of the same key wait here.
    std::unordered_map<BallKey, std::shared_future<BallPtr>, BallKeyHash>
        in_flight;
    std::size_t bytes = 0;
    double extraction_seconds = 0.0;  ///< guarded by mu
    /// Ball access frequencies (kTinyLFU only); guarded by mu.
    std::unique_ptr<FrequencySketch> sketch;
  };

  [[nodiscard]] Shard& shard_for(const BallKey& key) {
    // High bits pick the shard; the in-shard map hashes the same mixed word
    // from the low end, so shard choice and bucket choice stay independent.
    return *shards_[(splitmix64(key.packed()) >> 40) % shards_.size()];
  }

  void count_hit(FetchKind kind, bool deduped);
  void count_miss(FetchKind kind);

  /// Must hold `shard.mu`. Evicts LRU entries until `incoming` fits.
  void evict_until_fits(Shard& shard, std::size_t incoming);

  /// Must hold `shard.mu`. Applies the admission policy for a ball of
  /// `incoming` bytes keyed `key`: evicts victims and returns true when
  /// the ball should be retained, or returns false (TinyLFU reject —
  /// nothing evicted) when a needed victim is estimated hotter.
  bool admit(Shard& shard, const BallKey& key, std::size_t incoming);

  const graph::Graph* graph_;
  std::size_t budget_;
  std::size_t shard_budget_;
  CacheAdmission admission_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> dedup_hits_{0};
  std::atomic<std::size_t> prefetch_hits_{0};
  std::atomic<std::size_t> prefetch_misses_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> admission_rejects_{0};
  /// Sum of per-shard bytes, updated under the owning shard's mutex.
  std::atomic<std::size_t> total_bytes_{0};
  /// Serializes counter *resets* against stats() snapshots. Increments are
  /// lock-free; without this a snapshot interleaving with clear() could
  /// pair pre-reset hits with post-reset misses.
  mutable std::mutex stats_mu_;
};

}  // namespace meloppr::core
