#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

QueryPipeline::QueryPipeline(const Engine& engine, DiffusionBackend& backend,
                             PipelineConfig config)
    : engine_(&engine),
      config_(config),
      threads_(config.resolved_threads()),
      backend_offloads_(backend.offloads_compute()) {
  config_.validate();
  if (backend.thread_safe()) {
    shared_backend_ = &backend;
  } else {
    clones_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      clones_.push_back(backend.clone());
    }
  }
  if (config_.pool_aggregators) {
    // Arenas follow the engine's aggregation mode: exact maps, or bounded
    // c·k tables whose clear() keeps the fixed slots warm.
    const MelopprConfig& ecfg = engine_->config();
    agg_pool_ = std::make_unique<AggregatorPool>(
        threads_, [mode = ecfg.aggregation, k = ecfg.k, c = ecfg.topck_c,
                   eps = ecfg.topck_epsilon] {
          return make_serial_aggregator(mode, k, c, eps);
        });
  }
  workers_.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryPipeline::~QueryPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ShardedBallCache* QueryPipeline::activate_lookahead() {
  if (!config_.prefetch) return nullptr;
  // Backend-aware throttle: lookahead BFS threads only pay off while
  // dispatchers block on an offloading backend (farm/device). Against a
  // CPU backend the workers already occupy every core, so prefetch
  // threads would oversubscribe — the demand path fetches instead.
  if (config_.prefetch_throttle && !backend_offloads_) return nullptr;
  ShardedBallCache* cache = engine_->shared_ball_cache();
  if (cache == nullptr) return nullptr;
  // Lazy: a pipeline that never sees a shared cache never pays for
  // prefetch threads (they could do no work anyway).
  std::call_once(prefetcher_once_, [this] {
    // Farm-wait meter: pause lookahead while the shared offloading
    // backend is momentarily idle (no dispatcher inside run() means host
    // cores carry the demand path alone). Only a shared backend has an
    // aggregate live signal — per-worker clones cannot be polled as one.
    std::function<bool()> pause;
    if (config_.prefetch_wait_meter && backend_offloads_ &&
        shared_backend_ != nullptr) {
      pause = [backend = shared_backend_] {
        return backend->active_dispatches() == 0;
      };
    }
    prefetcher_ = std::make_unique<BallPrefetcher>(
        config_.resolved_prefetch_threads(), std::move(pause));
    if (config_.root_prefetch_window > 0) {
      // Root-prefetch width: the configured window is the floor (the
      // controller never does worse than the static knob); with adaptive
      // mode on, idle prefetch threads widen it toward max_window. Fixed
      // mode is the degenerate min == max window, routed through the same
      // controller so both modes share one byte-cap conversion. Either
      // way the cache's spare-budget throttle closes the window entirely
      // on a full cache — churn protection is the byte cap, not narrowed
      // issuance.
      const std::size_t floor = config_.root_prefetch_window;
      const std::size_t ceiling =
          config_.adaptive_root_prefetch
              ? std::max(config_.root_prefetch_max_window, floor)
              : floor;
      window_controller_ =
          std::make_unique<AdaptiveWindowController>(floor, ceiling);
    }
  });
  return cache;
}

void QueryPipeline::check_cache_free() const {
  MELO_CHECK_MSG(engine_->ball_cache() == nullptr || threads_ == 1,
                 "QueryPipeline: the engine's BallCache is single-threaded; "
                 "remove it (set_ball_cache(nullptr)) or install a "
                 "ShardedBallCache for parallel use");
}

void QueryPipeline::worker_loop(std::size_t worker_id) {
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job(worker_id);
  }
}

void QueryPipeline::run_jobs(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      queue_.emplace_back([&fn, i, latch](std::size_t worker_id) {
        std::exception_ptr err;
        try {
          fn(i, worker_id);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> l(latch->mu);
        if (err != nullptr && latch->error == nullptr) latch->error = err;
        if (--latch->remaining == 0) latch->done.notify_all();
      });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
  if (latch->error != nullptr) std::rethrow_exception(latch->error);
}

namespace {

/// Scope guard: the lookahead contract ("no prefetch thread touches any
/// cache passed earlier after query()/query_batch() returns", pins expire
/// with the batch) must hold on the throw path too — a caller that tears
/// the cache down after catching a batch error would otherwise race live
/// prefetch threads. Quiesce is idempotent (the success paths still
/// quiesce explicitly before reading their stat deltas). drop_pins() is
/// cache-global, so it only runs when the LAST concurrent batch on this
/// pipeline drains — one batch finishing must not discard a still-running
/// batch's live pins.
class LookaheadDrain {
 public:
  LookaheadDrain(BallPrefetcher* prefetcher, ShardedBallCache* cache,
                 std::atomic<std::size_t>* active_batches)
      : prefetcher_(prefetcher),
        cache_(cache),
        active_batches_(active_batches) {}
  LookaheadDrain(const LookaheadDrain&) = delete;
  LookaheadDrain& operator=(const LookaheadDrain&) = delete;
  ~LookaheadDrain() {
    if (prefetcher_ != nullptr) prefetcher_->quiesce();
    if (cache_ != nullptr &&
        active_batches_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cache_->drop_pins();
    }
  }

 private:
  BallPrefetcher* prefetcher_;
  ShardedBallCache* cache_;
  std::atomic<std::size_t>* active_batches_;
};

}  // namespace

QueryResult QueryPipeline::query(graph::NodeId seed) {
  check_cache_free();
  QueryResult result;
  result.stats.stages.resize(engine_->config().num_stages());

  // Per-worker state: transient-footprint meters and diffusion busy time.
  // A worker runs one job at a time, so its slot needs no lock; the
  // completion latch orders its writes before the coordinator's reads.
  std::vector<MemoryMeter> meters(threads_);
  std::vector<double> busy_seconds(threads_, 0.0);

  // Stage-lookahead: children discovered by a finishing task are handed to
  // the prefetch threads immediately, so their balls stream into the shared
  // cache while the REST of this stage's diffusions still run.
  ShardedBallCache* lookahead = activate_lookahead();
  const double hidden_before =
      prefetcher_ != nullptr ? prefetcher_->hidden_seconds() : 0.0;
  LookaheadDrain drain(lookahead != nullptr ? prefetcher_.get() : nullptr,
                       /*cache=*/nullptr,  // query() installs no pins
                       /*active_batches=*/nullptr);

  const bool deterministic = config_.deterministic_reduction;
  const MelopprConfig& ecfg = engine_->config();
  std::optional<AggregatorPool::Lease> lease;
  std::unique_ptr<ScoreAggregator> owned_aggregator;
  ScoreAggregator* aggregator_ptr;
  if (deterministic && agg_pool_ != nullptr) {
    lease.emplace(agg_pool_->acquire(0));
    aggregator_ptr = &**lease;
  } else if (deterministic) {
    owned_aggregator = make_serial_aggregator(
        ecfg.aggregation, ecfg.k, ecfg.topck_c, ecfg.topck_epsilon);
    aggregator_ptr = owned_aggregator.get();
  } else {
    // Concurrent streaming reduction: striped exact maps, or the sharded
    // bounded table (one shard per worker by default).
    owned_aggregator = make_concurrent_aggregator(
        ecfg.aggregation, ecfg.k, ecfg.topck_c,
        ecfg.aggregation == AggregationMode::kBounded
            ? (config_.topck_shards != 0 ? config_.topck_shards : threads_)
            : config_.aggregator_stripes,
        ecfg.topck_epsilon);
    aggregator_ptr = owned_aggregator.get();
  }
  ScoreAggregator& aggregator = *aggregator_ptr;

  Timer total;
  // The coordinator's own footprint: the frontier plus every outstanding
  // outcome buffer of the stage (they all coexist until the reduction).
  MemoryMeter coordinator_meter;
  std::vector<StageTask> frontier;
  frontier.push_back({seed, 1.0, 0});
  while (!frontier.empty()) {
    // Dispatch: every task in the frontier is independent (linearity of the
    // decomposition), so BFS + diffusion fan out across the pool.
    std::vector<StageOutcome> outcomes(frontier.size());
    run_jobs(frontier.size(), [&](std::size_t i, std::size_t w) {
      const StageTask& task = frontier[i];
      if (!(task.mass > 0.0)) return;  // skip, as the serial schedule does
      StageOutcome out = engine_->run_task(task, backend_for(w), meters[w]);
      meters[w].set("stage_buffers", 0);  // ownership moves to outcomes[i]
      busy_seconds[w] +=
          out.stats.compute_seconds + out.stats.transfer_seconds;
      if (lookahead != nullptr) {
        for (const StageTask& child : out.children) {
          prefetcher_->enqueue(
              *lookahead, child.root,
              engine_->config().stage_lengths[child.stage]);
        }
      }
      if (!deterministic && !out.failed) {
        // Concurrent reduction: stream this task's deltas straight into the
        // striped aggregator (sums are exact per node; order is not). A
        // failed task streams nothing — its parked parent mass stays in
        // place (see StageOutcome::failed).
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
        out.contributions.clear();
      }
      outcomes[i] = std::move(out);
    });

    std::size_t outcome_bytes =
        vector_bytes(frontier) + vector_bytes(outcomes);
    for (const StageOutcome& out : outcomes) {
      outcome_bytes +=
          vector_bytes(out.contributions) + vector_bytes(out.children);
    }
    coordinator_meter.set("frontier_buffers", outcome_bytes);

    // Reduce in task order — deterministic regardless of which worker ran
    // what — and splice the children into the next frontier.
    std::vector<StageTask> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const StageTask& task = frontier[i];
      StageOutcome& out = outcomes[i];
      result.stats.stages[task.stage].merge(out.stats);
      if (deterministic && task.mass > 0.0 && !out.failed) {
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
      }
      next.insert(next.end(), out.children.begin(), out.children.end());
    }
    frontier = std::move(next);
    coordinator_meter.set("frontier_buffers", vector_bytes(frontier));
  }

  result.top = aggregator.top(engine_->config().k);
  result.stats.total_seconds = total.elapsed_seconds();
  result.stats.threads_used = threads_;
  result.stats.diffusion_serial_seconds =
      result.stats.compute_seconds() + result.stats.transfer_seconds();
  // Worker-level makespan, floored by the backend's own execution slots: a
  // shared farm with D < T devices cannot complete faster than serial/D no
  // matter how its seconds were attributed across dispatching workers.
  const std::size_t slots =
      std::min(threads_, shared_backend_ != nullptr
                             ? shared_backend_->max_concurrent_runs()
                             : threads_);
  result.stats.diffusion_makespan_seconds = std::max(
      *std::max_element(busy_seconds.begin(), busy_seconds.end()),
      result.stats.diffusion_serial_seconds / static_cast<double>(slots));
  result.stats.aggregator_bytes = aggregator.bytes();
  result.stats.aggregator_entries = aggregator.entries();
  result.stats.aggregator_evictions = aggregator.evictions();
  if (lookahead != nullptr) {
    // Quiesce so no prefetch thread touches the cache after we return and
    // the hidden-seconds delta is complete. Approximate under concurrent
    // queries: the delta includes lookahead work triggered by overlapping
    // calls on the same pipeline.
    prefetcher_->quiesce();
    result.stats.prefetch_hidden_seconds =
        prefetcher_->hidden_seconds() - hidden_before;
  }

  // Aggregator first, then the worker peaks on top: the final score
  // structure coexists with the in-flight balls, so the honest (upper
  // bound) peak is their sum, not their max.
  MemoryMeter merged;
  merged.set("aggregator", aggregator.bytes());
  merged.merge_peak(coordinator_meter);
  for (const MemoryMeter& m : meters) merged.merge_peak(m);
  result.stats.peak_bytes = merged.peak_bytes();
  return result;
}

std::vector<QueryResult> QueryPipeline::query_batch(
    std::span<const graph::NodeId> seeds, BatchStats* batch_stats) {
  check_cache_free();
  Timer wall;
  // Spawn prefetch threads (when eligible) before the delta snapshot.
  ShardedBallCache* lookahead = activate_lookahead();
  if (lookahead != nullptr) {
    active_batches_.fetch_add(1, std::memory_order_acq_rel);
  }
  LookaheadDrain drain(lookahead != nullptr ? prefetcher_.get() : nullptr,
                       lookahead, &active_batches_);

  // Serving-layer counters, measured as deltas around the batch.
  ShardedBallCache* cache = engine_->shared_ball_cache();
  const std::size_t dedup_before = cache != nullptr ? cache->dedup_hits() : 0;
  const std::size_t rejects_before =
      cache != nullptr ? cache->admission_rejects() : 0;
  const std::size_t pin_hits_before = cache != nullptr ? cache->pin_hits() : 0;
  const std::size_t reextract_before =
      cache != nullptr ? cache->root_reextractions() : 0;
  const std::size_t issued_before =
      prefetcher_ != nullptr ? prefetcher_->issued() : 0;
  const std::size_t fetched_before =
      prefetcher_ != nullptr ? prefetcher_->balls_fetched() : 0;
  const double hidden_before =
      prefetcher_ != nullptr ? prefetcher_->hidden_seconds() : 0.0;
  const std::size_t prefetch_failures_before =
      prefetcher_ != nullptr ? prefetcher_->failures() : 0;
  // Shared-backend health (farm breaker/probe counters) is cumulative, so
  // measure trips/probes as deltas around the batch like the cache stats.
  const DispatchHealth health_before =
      shared_backend_ != nullptr ? shared_backend_->dispatch_health()
                                 : DispatchHealth{};

  RootPrefetchTelemetry root_telemetry;
  std::vector<QueryResult> results(seeds.size());
  if (config_.work_stealing && threads_ > 1 && seeds.size() > 1) {
    run_stealing_batch(seeds, results, &root_telemetry);
  } else {
    run_jobs(seeds.size(), [&](std::size_t i, std::size_t w) {
      // Query-pinned scheduling: each query keeps the serial depth-first
      // schedule (scores bit-identical to Engine::query) on one worker;
      // the batch's parallelism is across queries.
      if (agg_pool_ != nullptr) {
        AggregatorPool::Lease lease = agg_pool_->acquire(w);
        results[i] = engine_->query(seeds[i], backend_for(w), *lease);
      } else {
        const MelopprConfig& ecfg = engine_->config();
        const std::unique_ptr<ScoreAggregator> aggregator =
            make_serial_aggregator(ecfg.aggregation, ecfg.k, ecfg.topck_c,
                                   ecfg.topck_epsilon);
        results[i] = engine_->query(seeds[i], backend_for(w), *aggregator);
      }
    });
  }

  // Quiesce before reading deltas (and before the caller may tear the
  // cache down): queued lookahead from the batch's tail would otherwise
  // keep prefetch threads touching the cache after we return. Unclaimed
  // pins expire when the last concurrent batch drains (LookaheadDrain) —
  // their speculation did not pay off, and holding them across batches
  // would leak footprint.
  if (lookahead != nullptr) prefetcher_->quiesce();

  if (batch_stats != nullptr) {
    *batch_stats = BatchStats{};  // caller may reuse one instance per batch
    batch_stats->queries = seeds.size();
    batch_stats->wall_seconds = wall.elapsed_seconds();
    for (const QueryResult& r : results) {
      batch_stats->executed_tasks += r.stats.total_balls();
      batch_stats->stolen_tasks += r.stats.stolen_tasks;
      batch_stats->cache_hits += r.stats.cache_hits();
      batch_stats->cache_misses += r.stats.cache_misses();
      batch_stats->demand_bfs_seconds += r.stats.bfs_seconds();
      batch_stats->peak_bytes =
          std::max(batch_stats->peak_bytes, r.stats.peak_bytes);
      batch_stats->aggregator_evictions += r.stats.aggregator_evictions;
      batch_stats->peak_aggregator_entries = std::max(
          batch_stats->peak_aggregator_entries, r.stats.aggregator_entries);
      batch_stats->dispatch_retries += r.stats.dispatch_retries();
      batch_stats->deadline_misses += r.stats.deadline_misses();
      batch_stats->failovers += r.stats.failovers();
      batch_stats->failed_balls += r.stats.failed_balls();
      switch (r.stats.outcome()) {
        case QueryOutcome::kOk:
          break;
        case QueryOutcome::kDegraded:
          ++batch_stats->degraded_queries;
          break;
        case QueryOutcome::kFailed:
          ++batch_stats->failed_queries;
          break;
      }
    }
    if (shared_backend_ != nullptr) {
      const DispatchHealth health = shared_backend_->dispatch_health();
      batch_stats->breaker_trips =
          health.breaker_trips - health_before.breaker_trips;
      batch_stats->breaker_probes = health.probes - health_before.probes;
      batch_stats->devices = health.devices;
      batch_stats->healthy_devices = health.healthy_devices;
      batch_stats->dead_devices = health.dead_devices;
    }
    if (cache != nullptr) {
      batch_stats->dedup_hits = cache->dedup_hits() - dedup_before;
      batch_stats->cache_admission_rejects =
          cache->admission_rejects() - rejects_before;
      batch_stats->root_prefetch_pin_hits =
          cache->pin_hits() - pin_hits_before;
      batch_stats->root_reextractions =
          cache->root_reextractions() - reextract_before;
    }
    if (prefetcher_ != nullptr) {
      batch_stats->prefetch_issued = prefetcher_->issued() - issued_before;
      batch_stats->prefetched_balls =
          prefetcher_->balls_fetched() - fetched_before;
      batch_stats->prefetch_hidden_seconds =
          prefetcher_->hidden_seconds() - hidden_before;
      batch_stats->root_prefetch_issued = root_telemetry.issued;
      batch_stats->prefetch_failures =
          prefetcher_->failures() - prefetch_failures_before;
    }
    batch_stats->last_root_prefetch_window = root_telemetry.last_window;
    batch_stats->prefetch_idle_fraction = root_telemetry.idle_fraction;
  }
  return results;
}

namespace {

/// One stage task of one query in the stealing scheduler. The tree is the
/// query's task tree; outcomes stay attached to their node so the reduction
/// can replay the serial depth-first order after out-of-order execution.
struct TreeNode {
  StageTask task;
  StageOutcome out;
  std::vector<std::unique_ptr<TreeNode>> children;
};

struct BatchQuery {
  std::size_t index = 0;
  std::unique_ptr<TreeNode> root;
  /// Tasks of this query not yet executed (root counts as 1 up front).
  /// Whoever decrements it to zero reduces the query.
  std::atomic<std::size_t> remaining{1};
  /// One bit per worker that executed a task of this query (exact at any
  /// thread count; words allocated by the scheduler).
  std::unique_ptr<std::atomic<std::uint64_t>[]> worker_words;
  std::atomic<std::size_t> stolen{0};
  double start_seconds = 0.0;
};

struct StealTask {
  BatchQuery* query = nullptr;
  TreeNode* node = nullptr;
};

struct WorkerDeque {
  std::mutex mu;
  std::deque<StealTask> tasks;
};

/// Applies one query's outcomes in the exact operation order of
/// Engine::query's LIFO stack (depth-first, children in selection order) —
/// this is what makes stolen, out-of-order execution bit-identical.
void reduce_tree(const TreeNode& node, ScoreAggregator& aggregator,
                 QueryStats& stats) {
  if (!(node.task.mass > 0.0)) return;  // serial schedule skips these too
  stats.stages[node.task.stage].merge(node.out.stats);
  // A failed task (StageOutcome::failed) contributes nothing and must also
  // keep its parent's parked mass: skipping the −mass alone would leave
  // scores corrupted. Its stats (failed_balls, retries) still merge above.
  if (!node.out.failed) {
    if (node.task.stage > 0) {
      aggregator.add(node.task.root, -node.task.mass);
    }
    for (const auto& [dest, delta] : node.out.contributions) {
      aggregator.add(dest, delta);
    }
  }
  for (const auto& child : node.children) {
    reduce_tree(*child, aggregator, stats);
  }
}

std::size_t tree_bytes(const TreeNode& node) {
  std::size_t bytes = sizeof(TreeNode) +
                      vector_bytes(node.out.contributions) +
                      vector_bytes(node.out.children) +
                      vector_bytes(node.children);
  for (const auto& child : node.children) bytes += tree_bytes(*child);
  return bytes;
}

}  // namespace

void QueryPipeline::run_stealing_batch(std::span<const graph::NodeId> seeds,
                                       std::vector<QueryResult>& results,
                                       RootPrefetchTelemetry* telemetry) {
  const std::size_t n = seeds.size();
  ShardedBallCache* lookahead = activate_lookahead();
  const std::size_t mask_words = (threads_ + 63) / 64;

  // --- Cross-query root lookahead (ROADMAP "Cross-query root prefetch").
  // Unlike stage lookahead (which only knows children once a parent
  // finishes), the batch knows every upcoming seed up front: the stage-0
  // balls of the next W unclaimed queries are fed to the prefetch
  // threads, so a freshly claimed query starts on a warm ball instead of
  // paying cold-start BFS. `root_horizon` marks how far into the stream
  // lookahead has been issued — an atomic max so each seed is enqueued
  // once however many workers claim concurrently. W comes from the
  // adaptive controller (prefetch-thread idle fraction, EWMA ball bytes)
  // or the fixed knob, and is always capped by the spare-budget throttle:
  // speculation may consume spare capacity, at most 1/8 of the budget —
  // min, not max, so a FULL cache stops speculating entirely instead of
  // churning at 1/8-budget rate (the PR 4 inversion this fixes).
  // Correctness never depends on any of it — an unprefetched root just
  // pays its own BFS, and the cache's in-flight dedup absorbs any race
  // with the claiming worker.
  std::atomic<std::size_t> root_horizon{0};
  std::atomic<std::size_t> roots_issued{0};
  const unsigned root_radius = engine_->config().stage_lengths.front();
  // Pinned handoff: hold each root-prefetched ball in the cache's pinned
  // side-table until its seed is claimed, so a TinyLFU retention
  // rejection cannot waste the prefetch BFS.
  const ShardedBallCache::FetchKind root_kind =
      config_.root_prefetch_pinning
          ? ShardedBallCache::FetchKind::kPinnedRootPrefetch
          : ShardedBallCache::FetchKind::kRootPrefetch;
  const auto root_lookahead = [&](std::size_t next_unclaimed) {
    if (lookahead == nullptr || config_.root_prefetch_window == 0) return;
    const std::size_t bytes = lookahead->bytes();
    const std::size_t budget = lookahead->byte_budget();
    const std::size_t spare = budget > bytes ? budget - bytes : 0;
    const std::size_t cap_bytes = std::min(spare, budget / 8);
    // Stage-0 balls are what root lookahead extracts, so the byte cap is
    // converted with the stage-0-radius size estimate — the mixed EWMA
    // (the fallback before any stage-0 extraction completes) is dragged
    // toward the often-smaller later-stage balls and would overcount the
    // affordable seeds.
    std::size_t ewma = lookahead->ewma_ball_bytes(root_radius);
    if (ewma == 0) ewma = lookahead->ewma_ball_bytes();
    const std::size_t window = window_controller_->window(
        prefetcher_->busy_seconds(), uptime_.elapsed_seconds(),
        prefetcher_->threads(), ewma, cap_bytes);
    const std::size_t to = std::min(n, next_unclaimed + window);
    std::size_t from = root_horizon.load(std::memory_order_relaxed);
    while (from < to && !root_horizon.compare_exchange_weak(
                            from, to, std::memory_order_relaxed)) {
    }
    if (from >= to) return;  // another worker already covered this span
    // The horizon can lag the claim cursor (a narrowed window leaves a
    // gap; concurrent claims land out of order): seeds below
    // `next_unclaimed` are already claimed, so prefetching them is pure
    // waste — advance the horizon past them without issuing.
    from = std::max(from, next_unclaimed);
    for (std::size_t i = from; i < to; ++i) {
      // The stream index doubles as the claim priority: under pin-table
      // capacity pressure the seeds closest to claim keep their pins.
      prefetcher_->enqueue(*lookahead, seeds[i], root_radius, root_kind,
                           /*claim_priority=*/i);
    }
    roots_issued.fetch_add(to - from, std::memory_order_relaxed);
  };
  // Queue the head of the stream up front. Against a CPU-style backend
  // (no wait meter) these run immediately, before the workers' first
  // claims; under the farm-wait meter they sit queued until the first
  // dispatch enters the farm — by the meter's own logic the host cores
  // belong to the workers' initial stage-0 BFS until then — and warm the
  // rest of the window the moment device time starts flowing. Either way
  // the cache's in-flight dedup keeps a racing demand fetch from
  // duplicating the BFS.
  root_lookahead(0);

  std::vector<std::unique_ptr<BatchQuery>> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto q = std::make_unique<BatchQuery>();
    q->index = i;
    q->worker_words =
        std::make_unique<std::atomic<std::uint64_t>[]>(mask_words);
    for (std::size_t word = 0; word < mask_words; ++word) {
      q->worker_words[word].store(0, std::memory_order_relaxed);
    }
    queries.push_back(std::move(q));
  }

  std::vector<std::unique_ptr<WorkerDeque>> deques;
  deques.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    deques.push_back(std::make_unique<WorkerDeque>());
  }

  std::vector<MemoryMeter> meters(threads_);
  std::atomic<std::size_t> next_root{0};
  std::atomic<std::size_t> live{n};  // known-but-unfinished tasks
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  // Idle workers park here instead of spinning: signaled when new tasks
  // are published, when the batch drains, and on failure. The timed wait
  // below makes a lost wakeup cost a millisecond, never a hang.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  Timer wall;

  const auto finalize_query = [&](BatchQuery& q, std::size_t self) {
    std::optional<AggregatorPool::Lease> lease;
    std::unique_ptr<ScoreAggregator> local;
    ScoreAggregator* aggregator;
    if (agg_pool_ != nullptr) {
      lease.emplace(agg_pool_->acquire(self));
      aggregator = &**lease;
    } else {
      const MelopprConfig& ecfg = engine_->config();
      local = make_serial_aggregator(ecfg.aggregation, ecfg.k, ecfg.topck_c,
                                     ecfg.topck_epsilon);
      aggregator = local.get();
    }

    QueryResult r;
    r.stats.stages.resize(engine_->config().num_stages());
    reduce_tree(*q.root, *aggregator, r.stats);
    r.top = aggregator->top(engine_->config().k);
    r.stats.total_seconds = wall.elapsed_seconds() - q.start_seconds;
    r.stats.diffusion_serial_seconds =
        r.stats.compute_seconds() + r.stats.transfer_seconds();
    // Per-query makespan equals the serial sum: this query's *internal*
    // speedup is not tracked under stealing (parallelism is across the
    // batch); batch-level wall time is the honest throughput figure.
    r.stats.diffusion_makespan_seconds = r.stats.diffusion_serial_seconds;
    std::size_t distinct_workers = 0;
    for (std::size_t word = 0; word < mask_words; ++word) {
      distinct_workers += static_cast<std::size_t>(std::popcount(
          q.worker_words[word].load(std::memory_order_relaxed)));
    }
    r.stats.threads_used = distinct_workers;
    r.stats.stolen_tasks = q.stolen.load(std::memory_order_relaxed);
    r.stats.aggregator_bytes = aggregator->bytes();
    r.stats.aggregator_entries = aggregator->entries();
    r.stats.aggregator_evictions = aggregator->evictions();
    // Retained footprint: the outcome tree coexists with the aggregator at
    // reduction time. The transient ball/device footprints live in the
    // per-worker meters and are folded into every query's peak once the
    // batch drains (tasks of any query may run on any worker).
    MemoryMeter meter;
    meter.set("aggregator", aggregator->bytes());
    meter.set("outcome_tree", tree_bytes(*q.root));
    r.stats.peak_bytes = meter.peak_bytes();
    results[q.index] = std::move(r);
  };

  const auto execute_task = [&](const StealTask& t, std::size_t self,
                                std::size_t w) {
    BatchQuery& q = *t.query;
    TreeNode& node = *t.node;
    if (node.task.mass > 0.0) {
      node.out = engine_->run_task(node.task, backend_for(w), meters[w]);
      meters[w].set("stage_buffers", 0);
      const std::vector<StageTask>& child_tasks = node.out.children;
      if (!child_tasks.empty()) {
        node.children.reserve(child_tasks.size());
        for (const StageTask& c : child_tasks) {
          auto child = std::make_unique<TreeNode>();
          child->task = c;
          node.children.push_back(std::move(child));
        }
        // Account the children before finishing this task so neither the
        // query's remaining count nor the batch's live count can touch
        // zero while work is still pending.
        q.remaining.fetch_add(child_tasks.size(),
                              std::memory_order_acq_rel);
        live.fetch_add(child_tasks.size(), std::memory_order_acq_rel);
        {
          // Publish in reverse selection order: this worker pops LIFO, so
          // it continues depth-first with the first-selected child while
          // thieves take from the other end (the last-selected tail).
          std::lock_guard<std::mutex> lock(deques[self]->mu);
          for (auto it = node.children.rbegin();
               it != node.children.rend(); ++it) {
            deques[self]->tasks.push_back({&q, it->get()});
          }
        }
        idle_cv.notify_all();  // parked workers can steal these
        if (lookahead != nullptr) {
          // This worker dives into children[0] next; its siblings' balls
          // are lookahead work for the prefetch threads.
          for (std::size_t c = 1; c < node.children.size(); ++c) {
            prefetcher_->enqueue(
                *lookahead, node.children[c]->task.root,
                engine_->config().stage_lengths[node.children[c]->task.stage]);
          }
        }
      }
    }
    q.worker_words[self / 64].fetch_or(std::uint64_t{1} << (self % 64),
                                       std::memory_order_relaxed);
    // acq_rel: the winner of the final decrement observes every executor's
    // outcome writes (release sequence on `remaining`), so reduce_tree
    // reads fully-published nodes.
    if (q.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finalize_query(q, self);
    }
    if (live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv.notify_all();  // batch drained: release parked workers
    }
  };

  run_jobs(threads_, [&](std::size_t self, std::size_t w) {
    WorkerDeque& own = *deques[self];
    for (;;) {
      if (failed.load(std::memory_order_acquire)) break;
      StealTask task;
      bool have = false;
      {  // 1. own deque, LIFO — depth-first, newest (hottest) subtree
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
          task = own.tasks.back();
          own.tasks.pop_back();
          have = true;
        }
      }
      if (!have) {  // 2. claim a fresh query root
        const std::size_t r =
            next_root.fetch_add(1, std::memory_order_relaxed);
        if (r < n) {
          BatchQuery& q = *queries[r];
          q.start_seconds = wall.elapsed_seconds();
          q.root = std::make_unique<TreeNode>();
          q.root->task = {seeds[r], 1.0, 0};
          task = {&q, q.root.get()};
          have = true;
          // Slide the root-lookahead window past the seed just claimed.
          root_lookahead(r + 1);
        }
      }
      if (!have) {  // 3. steal, FIFO — the victim's oldest (biggest) subtree
        for (std::size_t d = 1; d < deques.size() && !have; ++d) {
          WorkerDeque& victim = *deques[(self + d) % deques.size()];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.tasks.empty()) {
            task = victim.tasks.front();
            victim.tasks.pop_front();
            have = true;
          }
        }
        if (have) {
          task.query->stolen.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!have) {
        if (live.load(std::memory_order_acquire) == 0) break;
        // A peer still runs tasks we may inherit; park until something is
        // published (bounded wait: a missed notify costs 1 ms, not a hang,
        // and leaves the cores to the prefetch threads meanwhile).
        std::unique_lock<std::mutex> lock(idle_mu);
        idle_cv.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      try {
        execute_task(task, self, w);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
        failed.store(true, std::memory_order_release);
        idle_cv.notify_all();
        break;
      }
    }
  });

  if (first_error != nullptr) std::rethrow_exception(first_error);
  MELO_CHECK(live.load() == 0);
  if (telemetry != nullptr) {
    telemetry->issued = roots_issued.load(std::memory_order_relaxed);
    // Window/idle telemetry belongs to THIS batch: zeros unless root
    // lookahead was actually active here (approximate under concurrent
    // batches sharing the controller, like the other deltas).
    if (lookahead != nullptr && window_controller_ != nullptr) {
      telemetry->last_window = window_controller_->last_window();
      telemetry->idle_fraction = window_controller_->idle_fraction();
    }
  }

  // Fold the workers' transient ball/device peaks into every query's peak:
  // summed worker peaks never under-report the true simultaneous footprint
  // (the same convention the stage-parallel query uses), so per-query
  // peak_bytes stays an honest sizing figure under the default scheduler.
  MemoryMeter transient;
  for (const MemoryMeter& m : meters) transient.merge_peak(m);
  for (QueryResult& r : results) {
    r.stats.peak_bytes += transient.peak_bytes();
  }
}

}  // namespace meloppr::core
