#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

std::size_t SeedStream::push(graph::NodeId seed) {
  util::MutexLock lock(mu_);
  if (closed_) {
    throw std::logic_error("SeedStream::push: stream is closed");
  }
  const std::size_t index = slots_.size();
  slots_.push_back({seed, clock_.elapsed_seconds()});
  // The wake hook runs under mu_ by contract: the draining scheduler clears
  // it under the same lock, so no invocation can outlive its frame.
  if (on_event_) on_event_();
  return index;
}

std::size_t SeedStream::push_all(std::span<const graph::NodeId> seeds) {
  util::MutexLock lock(mu_);
  if (closed_) {
    throw std::logic_error("SeedStream::push_all: stream is closed");
  }
  const std::size_t first = slots_.size();
  const double now = clock_.elapsed_seconds();
  slots_.reserve(slots_.size() + seeds.size());
  for (graph::NodeId seed : seeds) slots_.push_back({seed, now});
  if (on_event_ && !seeds.empty()) on_event_();
  return first;
}

void SeedStream::close() {
  util::MutexLock lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (on_event_) on_event_();
}

bool SeedStream::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

std::size_t SeedStream::size() const {
  util::MutexLock lock(mu_);
  return slots_.size();
}

QueryPipeline::QueryPipeline(const Engine& engine, DiffusionBackend& backend,
                             PipelineConfig config)
    : engine_(&engine),
      config_(config),
      threads_(config.resolved_threads()),
      backend_offloads_(backend.offloads_compute()) {
  config_.validate();
  if (backend.thread_safe()) {
    shared_backend_ = &backend;
  } else {
    clones_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      clones_.push_back(backend.clone());
    }
  }
  if (config_.pool_aggregators) {
    // Arenas follow the engine's aggregation mode: exact maps, or bounded
    // c·k tables whose clear() keeps the fixed slots warm.
    const MelopprConfig& ecfg = engine_->config();
    agg_pool_ = std::make_unique<AggregatorPool>(
        threads_, [mode = ecfg.aggregation, k = ecfg.k, c = ecfg.topck_c,
                   eps = ecfg.topck_epsilon] {
          return make_serial_aggregator(mode, k, c, eps);
        });
  }
  workers_.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryPipeline::~QueryPipeline() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ShardedBallCache* QueryPipeline::activate_lookahead() {
  if (!config_.prefetch) return nullptr;
  // Backend-aware throttle: lookahead BFS threads only pay off while
  // dispatchers block on an offloading backend (farm/device). Against a
  // CPU backend the workers already occupy every core, so prefetch
  // threads would oversubscribe — the demand path fetches instead.
  if (config_.prefetch_throttle && !backend_offloads_) return nullptr;
  ShardedBallCache* cache = engine_->shared_ball_cache();
  if (cache == nullptr) return nullptr;
  // Lazy: a pipeline that never sees a shared cache never pays for
  // prefetch threads (they could do no work anyway).
  std::call_once(prefetcher_once_, [this] {
    // Farm-wait meter: pause lookahead while the shared offloading
    // backend is momentarily idle (no dispatcher inside run() means host
    // cores carry the demand path alone). Only a shared backend has an
    // aggregate live signal — per-worker clones cannot be polled as one.
    std::function<bool()> pause;
    if (config_.prefetch_wait_meter && backend_offloads_ &&
        shared_backend_ != nullptr) {
      pause = [backend = shared_backend_] {
        return backend->active_dispatches() == 0;
      };
    }
    prefetcher_ = std::make_unique<BallPrefetcher>(
        config_.resolved_prefetch_threads(), std::move(pause));
    if (config_.root_prefetch_window > 0) {
      // Root-prefetch width: the configured window is the floor (the
      // controller never does worse than the static knob); with adaptive
      // mode on, idle prefetch threads widen it toward max_window. Fixed
      // mode is the degenerate min == max window, routed through the same
      // controller so both modes share one byte-cap conversion. Either
      // way the cache's spare-budget throttle closes the window entirely
      // on a full cache — churn protection is the byte cap, not narrowed
      // issuance.
      const std::size_t floor = config_.root_prefetch_window;
      const std::size_t ceiling =
          config_.adaptive_root_prefetch
              ? std::max(config_.root_prefetch_max_window, floor)
              : floor;
      window_controller_ =
          std::make_unique<AdaptiveWindowController>(floor, ceiling);
    }
  });
  return cache;
}

void QueryPipeline::check_cache_free() const {
  MELO_CHECK_MSG(engine_->ball_cache() == nullptr || threads_ == 1,
                 "QueryPipeline: the engine's BallCache is single-threaded; "
                 "remove it (set_ball_cache(nullptr)) or install a "
                 "ShardedBallCache for parallel use");
}

void QueryPipeline::worker_loop(std::size_t worker_id) {
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      util::MutexLock lock(mu_);
      while (!(stop_ || !queue_.empty())) {
        work_available_.wait(lock.native());
      }
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job(worker_id);
  }
}

void QueryPipeline::run_jobs(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  struct Latch {
    util::Mutex mu;
    std::condition_variable done;
    std::size_t remaining MELOPPR_GUARDED_BY(mu);
    std::exception_ptr error MELOPPR_GUARDED_BY(mu);
  };
  auto latch = std::make_shared<Latch>();
  {
    // Lock for the analysis: the latch is not shared until the jobs below
    // are enqueued.
    util::MutexLock lock(latch->mu);
    latch->remaining = count;
  }
  {
    util::MutexLock lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      queue_.emplace_back([&fn, i, latch](std::size_t worker_id) {
        std::exception_ptr err;
        try {
          fn(i, worker_id);
        } catch (...) {
          err = std::current_exception();
        }
        util::MutexLock l(latch->mu);
        if (err != nullptr && latch->error == nullptr) latch->error = err;
        if (--latch->remaining == 0) latch->done.notify_all();
      });
    }
  }
  work_available_.notify_all();
  util::MutexLock lock(latch->mu);
  while (latch->remaining != 0) latch->done.wait(lock.native());
  if (latch->error != nullptr) std::rethrow_exception(latch->error);
}

namespace {

/// Scope guard: the lookahead contract ("no prefetch thread touches any
/// cache passed earlier after query()/query_batch() returns", pins expire
/// with the batch) must hold on the throw path too — a caller that tears
/// the cache down after catching a batch error would otherwise race live
/// prefetch threads. Quiesce is idempotent (the success paths still
/// quiesce explicitly before reading their stat deltas). drop_pins() is
/// cache-global, so it only runs when the LAST concurrent batch on this
/// pipeline drains — one batch finishing must not discard a still-running
/// batch's live pins.
class LookaheadDrain {
 public:
  LookaheadDrain(BallPrefetcher* prefetcher, ShardedBallCache* cache,
                 std::atomic<std::size_t>* active_batches)
      : prefetcher_(prefetcher),
        cache_(cache),
        active_batches_(active_batches) {}
  LookaheadDrain(const LookaheadDrain&) = delete;
  LookaheadDrain& operator=(const LookaheadDrain&) = delete;
  ~LookaheadDrain() {
    if (prefetcher_ != nullptr) prefetcher_->quiesce();
    if (cache_ != nullptr &&
        active_batches_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cache_->drop_pins();
    }
  }

 private:
  BallPrefetcher* prefetcher_;
  ShardedBallCache* cache_;
  std::atomic<std::size_t>* active_batches_;
};

}  // namespace

QueryResult QueryPipeline::query(graph::NodeId seed) {
  check_cache_free();
  QueryResult result;
  result.stats.stages.resize(engine_->config().num_stages());

  // Per-worker state: transient-footprint meters and diffusion busy time.
  // A worker runs one job at a time, so its slot needs no lock; the
  // completion latch orders its writes before the coordinator's reads.
  std::vector<MemoryMeter> meters(threads_);
  std::vector<double> busy_seconds(threads_, 0.0);
  // One flag per worker that ran any of this query's tasks: threads_used
  // reports distinct EXECUTING workers (the stealing scheduler's popcount
  // semantics), not the pool size — a 2-task query on a 16-thread pool
  // says 2, and speedup math against it stops flattering the pool.
  std::vector<std::uint8_t> worker_used(threads_, 0);

  // Stage-lookahead: children discovered by a finishing task are handed to
  // the prefetch threads immediately, so their balls stream into the shared
  // cache while the REST of this stage's diffusions still run.
  ShardedBallCache* lookahead = activate_lookahead();
  const double hidden_before =
      prefetcher_ != nullptr ? prefetcher_->hidden_seconds() : 0.0;
  LookaheadDrain drain(lookahead != nullptr ? prefetcher_.get() : nullptr,
                       /*cache=*/nullptr,  // query() installs no pins
                       /*active_batches=*/nullptr);

  const bool deterministic = config_.deterministic_reduction;
  const MelopprConfig& ecfg = engine_->config();
  std::optional<AggregatorPool::Lease> lease;
  std::unique_ptr<ScoreAggregator> owned_aggregator;
  ScoreAggregator* aggregator_ptr;
  if (deterministic && agg_pool_ != nullptr) {
    lease.emplace(agg_pool_->acquire(0));
    aggregator_ptr = &**lease;
  } else if (deterministic) {
    owned_aggregator = make_serial_aggregator(
        ecfg.aggregation, ecfg.k, ecfg.topck_c, ecfg.topck_epsilon);
    aggregator_ptr = owned_aggregator.get();
  } else {
    // Concurrent streaming reduction: striped exact maps, or the sharded
    // bounded table (one shard per worker by default).
    owned_aggregator = make_concurrent_aggregator(
        ecfg.aggregation, ecfg.k, ecfg.topck_c,
        ecfg.aggregation == AggregationMode::kBounded
            ? (config_.topck_shards != 0 ? config_.topck_shards : threads_)
            : config_.aggregator_stripes,
        ecfg.topck_epsilon);
    aggregator_ptr = owned_aggregator.get();
  }
  ScoreAggregator& aggregator = *aggregator_ptr;

  Timer total;
  // The coordinator's own footprint: the frontier plus every outstanding
  // outcome buffer of the stage (they all coexist until the reduction).
  MemoryMeter coordinator_meter;
  std::vector<StageTask> frontier;
  frontier.push_back(engine_->make_root_task(seed));
  result.stats.graph_version = frontier.back().version;
  while (!frontier.empty()) {
    // Dispatch: every task in the frontier is independent (linearity of the
    // decomposition), so BFS + diffusion fan out across the pool.
    std::vector<StageOutcome> outcomes(frontier.size());
    run_jobs(frontier.size(), [&](std::size_t i, std::size_t w) {
      worker_used[w] = 1;  // a worker runs one job at a time: no race
      const StageTask& task = frontier[i];
      if (!(task.mass > 0.0)) return;  // skip, as the serial schedule does
      StageOutcome out = engine_->run_task(task, backend_for(w), meters[w]);
      meters[w].set("stage_buffers", 0);  // ownership moves to outcomes[i]
      busy_seconds[w] +=
          out.stats.compute_seconds + out.stats.transfer_seconds;
      if (lookahead != nullptr) {
        for (const StageTask& child : out.children) {
          prefetcher_->enqueue(
              *lookahead, child.root,
              engine_->config().stage_lengths[child.stage]);
        }
      }
      if (!deterministic && !out.failed) {
        // Concurrent reduction: stream this task's deltas straight into the
        // striped aggregator (sums are exact per node; order is not). A
        // failed task streams nothing — its parked parent mass stays in
        // place (see StageOutcome::failed).
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
        out.contributions.clear();
      }
      outcomes[i] = std::move(out);
    });

    std::size_t outcome_bytes =
        vector_bytes(frontier) + vector_bytes(outcomes);
    for (const StageOutcome& out : outcomes) {
      outcome_bytes +=
          vector_bytes(out.contributions) + vector_bytes(out.children);
    }
    coordinator_meter.set("frontier_buffers", outcome_bytes);

    // Reduce in task order — deterministic regardless of which worker ran
    // what — and splice the children into the next frontier.
    std::vector<StageTask> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const StageTask& task = frontier[i];
      StageOutcome& out = outcomes[i];
      result.stats.stages[task.stage].merge(out.stats);
      if (deterministic && task.mass > 0.0 && !out.failed) {
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
      }
      next.insert(next.end(), out.children.begin(), out.children.end());
    }
    frontier = std::move(next);
    coordinator_meter.set("frontier_buffers", vector_bytes(frontier));
  }

  result.top = aggregator.top(engine_->config().k);
  result.stats.total_seconds = total.elapsed_seconds();
  std::size_t used = 0;
  for (const std::uint8_t flag : worker_used) used += flag;
  result.stats.threads_used = std::max<std::size_t>(used, 1);
  result.stats.diffusion_serial_seconds =
      result.stats.compute_seconds() + result.stats.transfer_seconds();
  // Worker-level makespan, floored by the backend's own execution slots: a
  // shared farm with D < T devices cannot complete faster than serial/D no
  // matter how its seconds were attributed across dispatching workers.
  const std::size_t slots =
      std::min(threads_, shared_backend_ != nullptr
                             ? shared_backend_->max_concurrent_runs()
                             : threads_);
  result.stats.diffusion_makespan_seconds = std::max(
      *std::max_element(busy_seconds.begin(), busy_seconds.end()),
      result.stats.diffusion_serial_seconds / static_cast<double>(slots));
  result.stats.aggregator_bytes = aggregator.bytes();
  result.stats.aggregator_entries = aggregator.entries();
  result.stats.aggregator_evictions = aggregator.evictions();
  if (lookahead != nullptr) {
    // Quiesce so no prefetch thread touches the cache after we return and
    // the hidden-seconds delta is complete. Approximate under concurrent
    // queries: the delta includes lookahead work triggered by overlapping
    // calls on the same pipeline.
    prefetcher_->quiesce();
    result.stats.prefetch_hidden_seconds =
        prefetcher_->hidden_seconds() - hidden_before;
  }

  // Aggregator first, then the worker peaks on top: the final score
  // structure coexists with the in-flight balls, so the honest (upper
  // bound) peak is their sum, not their max.
  MemoryMeter merged;
  merged.set("aggregator", aggregator.bytes());
  merged.merge_peak(coordinator_meter);
  for (const MemoryMeter& m : meters) merged.merge_peak(m);
  result.stats.peak_bytes = merged.peak_bytes();
  return result;
}

namespace {

/// Per-result accounting shared by the pinned batch path and query_stream:
/// the per-query sums plus the arrival-stamped response-time distribution.
/// Callers serialize add() themselves (the stream sink locks around it;
/// the pinned path folds after its completion barrier).
struct QueryTally {
  std::size_t queries = 0;
  std::size_t executed_tasks = 0;
  std::size_t stolen_tasks = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double demand_bfs_seconds = 0.0;
  std::size_t peak_bytes = 0;
  std::size_t aggregator_evictions = 0;
  std::size_t peak_aggregator_entries = 0;
  std::size_t dispatch_retries = 0;
  std::size_t deadline_misses = 0;
  std::size_t failovers = 0;
  std::size_t failed_balls = 0;
  std::size_t degraded_queries = 0;
  std::size_t failed_queries = 0;
  Samples response;
  double queue_sum = 0.0;

  void add(const QueryStats& s) {
    ++queries;
    executed_tasks += s.total_balls();
    stolen_tasks += s.stolen_tasks;
    cache_hits += s.cache_hits();
    cache_misses += s.cache_misses();
    demand_bfs_seconds += s.bfs_seconds();
    peak_bytes = std::max(peak_bytes, s.peak_bytes);
    aggregator_evictions += s.aggregator_evictions;
    peak_aggregator_entries =
        std::max(peak_aggregator_entries, s.aggregator_entries);
    dispatch_retries += s.dispatch_retries();
    deadline_misses += s.deadline_misses();
    failovers += s.failovers();
    failed_balls += s.failed_balls();
    switch (s.outcome()) {
      case QueryOutcome::kOk:
        break;
      case QueryOutcome::kDegraded:
        ++degraded_queries;
        break;
      case QueryOutcome::kFailed:
        ++failed_queries;
        break;
    }
    response.add(s.total_seconds);
    queue_sum += s.queue_seconds;
  }

  void fill(QueryPipeline::BatchStats& bs) const {
    bs.queries = queries;
    bs.executed_tasks = executed_tasks;
    bs.stolen_tasks = stolen_tasks;
    bs.cache_hits = cache_hits;
    bs.cache_misses = cache_misses;
    bs.demand_bfs_seconds = demand_bfs_seconds;
    bs.peak_bytes = peak_bytes;
    bs.aggregator_evictions = aggregator_evictions;
    bs.peak_aggregator_entries = peak_aggregator_entries;
    bs.dispatch_retries = dispatch_retries;
    bs.deadline_misses = deadline_misses;
    bs.failovers = failovers;
    bs.failed_balls = failed_balls;
    bs.degraded_queries = degraded_queries;
    bs.failed_queries = failed_queries;
    if (!response.empty()) {
      bs.response_p50_seconds = response.percentile(50.0);
      bs.response_p99_seconds = response.percentile(99.0);
      bs.response_p999_seconds = response.percentile(99.9);
      bs.max_response_seconds = response.max();
      bs.mean_queue_seconds = queue_sum / static_cast<double>(queries);
    }
  }
};

/// Serving-layer counters (cache + prefetcher + shared-backend health)
/// measured as deltas around one batch/stream call: snapshot at
/// construction, fill() writes current-minus-snapshot into BatchStats.
class ServingDeltas {
 public:
  ServingDeltas(ShardedBallCache* cache, BallPrefetcher* prefetcher,
                DiffusionBackend* backend)
      : cache_(cache), prefetcher_(prefetcher), backend_(backend) {
    if (cache_ != nullptr) {
      dedup_ = cache_->dedup_hits();
      rejects_ = cache_->admission_rejects();
      pin_hits_ = cache_->pin_hits();
      reextract_ = cache_->root_reextractions();
    }
    if (prefetcher_ != nullptr) {
      issued_ = prefetcher_->issued();
      fetched_ = prefetcher_->balls_fetched();
      hidden_ = prefetcher_->hidden_seconds();
      failures_ = prefetcher_->failures();
    }
    // Shared-backend health (farm breaker/probe counters) is cumulative,
    // so trips/probes are deltas too; device counts are absolute state.
    if (backend_ != nullptr) health_ = backend_->dispatch_health();
  }

  void fill(QueryPipeline::BatchStats& bs) const {
    if (backend_ != nullptr) {
      const DispatchHealth health = backend_->dispatch_health();
      bs.breaker_trips = health.breaker_trips - health_.breaker_trips;
      bs.breaker_probes = health.probes - health_.probes;
      bs.devices = health.devices;
      bs.healthy_devices = health.healthy_devices;
      bs.dead_devices = health.dead_devices;
    }
    if (cache_ != nullptr) {
      bs.dedup_hits = cache_->dedup_hits() - dedup_;
      bs.cache_admission_rejects = cache_->admission_rejects() - rejects_;
      bs.root_prefetch_pin_hits = cache_->pin_hits() - pin_hits_;
      bs.root_reextractions = cache_->root_reextractions() - reextract_;
    }
    if (prefetcher_ != nullptr) {
      bs.prefetch_issued = prefetcher_->issued() - issued_;
      bs.prefetched_balls = prefetcher_->balls_fetched() - fetched_;
      bs.prefetch_hidden_seconds = prefetcher_->hidden_seconds() - hidden_;
      bs.prefetch_failures = prefetcher_->failures() - failures_;
    }
  }

 private:
  ShardedBallCache* cache_;
  BallPrefetcher* prefetcher_;
  DiffusionBackend* backend_;
  std::size_t dedup_ = 0;
  std::size_t rejects_ = 0;
  std::size_t pin_hits_ = 0;
  std::size_t reextract_ = 0;
  std::size_t issued_ = 0;
  std::size_t fetched_ = 0;
  std::size_t failures_ = 0;
  double hidden_ = 0.0;
  DispatchHealth health_{};
};

}  // namespace

std::vector<QueryResult> QueryPipeline::query_batch(
    std::span<const graph::NodeId> seeds, BatchStats* batch_stats) {
  check_cache_free();
  if (config_.work_stealing && threads_ > 1 && seeds.size() > 1) {
    // The stealing batch IS a pre-filled, already-closed seed stream: one
    // scheduler serves closed batches and continuous ingest, and closed
    // batches inherit the arrival-stamped attribution (every seed arrives
    // at submission, so total_seconds spans submission→finalize and
    // queue_seconds is the wait behind earlier seeds).
    SeedStream stream;
    stream.push_all(seeds);
    stream.close();
    std::vector<QueryResult> results(seeds.size());
    query_stream(
        stream,
        [&results](std::size_t index, QueryResult&& r) {
          // Stream indices are distinct: concurrent finalizes write
          // disjoint slots, no lock needed.
          results[index] = std::move(r);
        },
        batch_stats);
    return results;
  }

  // Query-pinned scheduling (stealing off, one worker, or a single seed):
  // each query keeps the serial depth-first schedule (scores bit-identical
  // to Engine::query) on one worker; parallelism is across queries.
  ShardedBallCache* lookahead = activate_lookahead();
  // The wall clock starts AFTER activation so the first batch's q/s does
  // not pay the one-time prefetch-thread spawn.
  Timer wall;
  if (lookahead != nullptr) {
    active_batches_.fetch_add(1, std::memory_order_acq_rel);
  }
  LookaheadDrain drain(lookahead != nullptr ? prefetcher_.get() : nullptr,
                       lookahead, &active_batches_);
  ServingDeltas deltas(engine_->shared_ball_cache(), prefetcher_.get(),
                       shared_backend_);

  std::vector<QueryResult> results(seeds.size());
  run_jobs(seeds.size(), [&](std::size_t i, std::size_t w) {
    const double claim_seconds = wall.elapsed_seconds();
    if (agg_pool_ != nullptr) {
      AggregatorPool::Lease lease = agg_pool_->acquire(w);
      results[i] = engine_->query(seeds[i], backend_for(w), *lease);
    } else {
      const MelopprConfig& ecfg = engine_->config();
      const std::unique_ptr<ScoreAggregator> aggregator =
          make_serial_aggregator(ecfg.aggregation, ecfg.k, ecfg.topck_c,
                                 ecfg.topck_epsilon);
      results[i] = engine_->query(seeds[i], backend_for(w), *aggregator);
    }
    // Arrival attribution: every seed of a closed batch arrived at
    // submission (wall zero), so the response time runs to the finalize
    // stamp and queue_seconds is how long the job sat behind earlier
    // queries in the pool — same semantics as the stream scheduler.
    results[i].stats.queue_seconds = claim_seconds;
    results[i].stats.total_seconds = wall.elapsed_seconds();
  });

  // Quiesce before reading deltas (and before the caller may tear the
  // cache down): queued lookahead from the batch's tail would otherwise
  // keep prefetch threads touching the cache after we return. Unclaimed
  // pins expire when the last concurrent batch drains (LookaheadDrain) —
  // their speculation did not pay off, and holding them across batches
  // would leak footprint.
  if (lookahead != nullptr) prefetcher_->quiesce();

  if (batch_stats != nullptr) {
    *batch_stats = BatchStats{};  // caller may reuse one instance per batch
    QueryTally tally;
    for (const QueryResult& r : results) tally.add(r.stats);
    tally.fill(*batch_stats);
    batch_stats->queries = seeds.size();
    batch_stats->wall_seconds = wall.elapsed_seconds();
    deltas.fill(*batch_stats);
    // No root lookahead on this path: telemetry fields stay zero.
  }
  return results;
}

void QueryPipeline::query_stream(SeedStream& stream,
                                 const ResultSink& on_result,
                                 BatchStats* batch_stats) {
  check_cache_free();
  ShardedBallCache* lookahead = activate_lookahead();
  // Wall clock after activation: first-call prefetch spawn is not billed.
  Timer wall;
  if (lookahead != nullptr) {
    active_batches_.fetch_add(1, std::memory_order_acq_rel);
  }
  LookaheadDrain drain(lookahead != nullptr ? prefetcher_.get() : nullptr,
                       lookahead, &active_batches_);
  ServingDeltas deltas(engine_->shared_ball_cache(), prefetcher_.get(),
                       shared_backend_);

  RootPrefetchTelemetry root_telemetry;
  util::Mutex tally_mu;
  QueryTally tally;
  if (batch_stats != nullptr) {
    const ResultSink sink = [&](std::size_t index, QueryResult&& r) {
      {
        util::MutexLock lock(tally_mu);
        tally.add(r.stats);
      }
      on_result(index, std::move(r));
    };
    run_stream_batch(stream, sink, &root_telemetry);
  } else {
    run_stream_batch(stream, on_result, &root_telemetry);
  }

  // Same drain discipline as the closed batch (see query_batch).
  if (lookahead != nullptr) prefetcher_->quiesce();

  if (batch_stats != nullptr) {
    *batch_stats = BatchStats{};
    tally.fill(*batch_stats);
    batch_stats->wall_seconds = wall.elapsed_seconds();
    deltas.fill(*batch_stats);
    batch_stats->root_prefetch_issued = root_telemetry.issued;
    batch_stats->last_root_prefetch_window = root_telemetry.last_window;
    batch_stats->prefetch_idle_fraction = root_telemetry.idle_fraction;
  }
}

namespace {

/// One stage task of one query in the stealing scheduler. The tree is the
/// query's task tree; outcomes stay attached to their node so the reduction
/// can replay the serial depth-first order after out-of-order execution.
struct TreeNode {
  StageTask task;
  StageOutcome out;
  std::vector<std::unique_ptr<TreeNode>> children;
};

struct BatchQuery {
  std::size_t index = 0;
  std::unique_ptr<TreeNode> root;
  /// Tasks of this query not yet executed (root counts as 1 up front).
  /// Whoever decrements it to zero reduces the query.
  std::atomic<std::size_t> remaining{1};
  /// One bit per worker that executed a task of this query (exact at any
  /// thread count; words allocated by the scheduler).
  std::unique_ptr<std::atomic<std::uint64_t>[]> worker_words;
  std::atomic<std::size_t> stolen{0};
  /// Stamps on the stream's clock: push time and first-claim time. The
  /// difference is QueryStats::queue_seconds; arrival→finalize is the
  /// response time the scheduler reports as total_seconds.
  double arrival_seconds = 0.0;
  double claim_seconds = 0.0;
};

struct StealTask {
  BatchQuery* query = nullptr;
  TreeNode* node = nullptr;
};

struct WorkerDeque {
  util::Mutex mu;
  std::deque<StealTask> tasks MELOPPR_GUARDED_BY(mu);
};

/// Applies one query's outcomes in the exact operation order of
/// Engine::query's LIFO stack (depth-first, children in selection order) —
/// this is what makes stolen, out-of-order execution bit-identical.
void reduce_tree(const TreeNode& node, ScoreAggregator& aggregator,
                 QueryStats& stats) {
  if (!(node.task.mass > 0.0)) return;  // serial schedule skips these too
  stats.stages[node.task.stage].merge(node.out.stats);
  // A failed task (StageOutcome::failed) contributes nothing and must also
  // keep its parent's parked mass: skipping the −mass alone would leave
  // scores corrupted. Its stats (failed_balls, retries) still merge above.
  if (!node.out.failed) {
    if (node.task.stage > 0) {
      aggregator.add(node.task.root, -node.task.mass);
    }
    for (const auto& [dest, delta] : node.out.contributions) {
      aggregator.add(dest, delta);
    }
  }
  for (const auto& child : node.children) {
    reduce_tree(*child, aggregator, stats);
  }
}

std::size_t tree_bytes(const TreeNode& node) {
  std::size_t bytes = sizeof(TreeNode) +
                      vector_bytes(node.out.contributions) +
                      vector_bytes(node.out.children) +
                      vector_bytes(node.children);
  for (const auto& child : node.children) bytes += tree_bytes(*child);
  return bytes;
}

}  // namespace

void QueryPipeline::run_stream_batch(SeedStream& stream,
                                     const ResultSink& on_result,
                                     RootPrefetchTelemetry* telemetry) {
  ShardedBallCache* lookahead = activate_lookahead();
  const std::size_t mask_words = (threads_ + 63) / 64;

  // --- Cross-query root lookahead (ROADMAP "Cross-query root prefetch").
  // Unlike stage lookahead (which only knows children once a parent
  // finishes), the batch knows every upcoming seed up front: the stage-0
  // balls of the next W unclaimed queries are fed to the prefetch
  // threads, so a freshly claimed query starts on a warm ball instead of
  // paying cold-start BFS. `root_horizon` marks how far into the stream
  // lookahead has been issued — an atomic max so each seed is enqueued
  // once however many workers claim concurrently. W comes from the
  // adaptive controller (prefetch-thread idle fraction, EWMA ball bytes)
  // or the fixed knob, and is always capped by the spare-budget throttle:
  // speculation may consume spare capacity, at most 1/8 of the budget —
  // min, not max, so a FULL cache stops speculating entirely instead of
  // churning at 1/8-budget rate (the PR 4 inversion this fixes).
  // Correctness never depends on any of it — an unprefetched root just
  // pays its own BFS, and the cache's in-flight dedup absorbs any race
  // with the claiming worker.
  std::atomic<std::size_t> root_horizon{0};
  std::atomic<std::size_t> roots_issued{0};
  const unsigned root_radius = engine_->config().stage_lengths.front();
  // Pinned handoff: hold each root-prefetched ball in the cache's pinned
  // side-table until its seed is claimed, so a TinyLFU retention
  // rejection cannot waste the prefetch BFS.
  const ShardedBallCache::FetchKind root_kind =
      config_.root_prefetch_pinning
          ? ShardedBallCache::FetchKind::kPinnedRootPrefetch
          : ShardedBallCache::FetchKind::kRootPrefetch;
  const auto root_lookahead = [&](std::size_t next_unclaimed) {
    if (lookahead == nullptr || config_.root_prefetch_window == 0) return;
    const std::size_t bytes = lookahead->bytes();
    const std::size_t budget = lookahead->byte_budget();
    const std::size_t spare = budget > bytes ? budget - bytes : 0;
    const std::size_t cap_bytes = std::min(spare, budget / 8);
    // Stage-0 balls are what root lookahead extracts, so the byte cap is
    // converted with the stage-0-radius size estimate — the mixed EWMA
    // (the fallback before any stage-0 extraction completes) is dragged
    // toward the often-smaller later-stage balls and would overcount the
    // affordable seeds.
    std::size_t ewma = lookahead->ewma_ball_bytes(root_radius);
    if (ewma == 0) ewma = lookahead->ewma_ball_bytes();
    const std::size_t window = window_controller_->window(
        prefetcher_->busy_seconds(), uptime_.elapsed_seconds(),
        prefetcher_->threads(), ewma, cap_bytes);
    // Snapshot the upcoming seeds under the stream lock: the window is
    // additionally clamped to what has actually ARRIVED (a later claim
    // re-extends the horizon as the stream grows), and the CAS still
    // guarantees each stream index is issued at most once however many
    // workers claim concurrently.
    std::vector<graph::NodeId> upcoming;
    std::size_t from = 0;
    {
      util::MutexLock lock(stream.mu_);
      const std::size_t to =
          std::min(stream.slots_.size(), next_unclaimed + window);
      from = root_horizon.load(std::memory_order_relaxed);
      while (from < to && !root_horizon.compare_exchange_weak(
                              from, to, std::memory_order_relaxed)) {
      }
      if (from >= to) return;  // covered already, or nothing arrived yet
      // The horizon can lag the claim cursor (a narrowed window leaves a
      // gap; concurrent claims land out of order): seeds below
      // `next_unclaimed` are already claimed, so prefetching them is pure
      // waste — advance the horizon past them without issuing.
      from = std::max(from, next_unclaimed);
      upcoming.reserve(to - from);
      for (std::size_t i = from; i < to; ++i) {
        upcoming.push_back(stream.slots_[i].seed);
      }
    }
    // Issue outside the lock so extraction enqueue never blocks arrivals.
    for (std::size_t j = 0; j < upcoming.size(); ++j) {
      // The stream index doubles as the claim priority: under pin-table
      // capacity pressure the seeds closest to claim keep their pins.
      prefetcher_->enqueue(*lookahead, upcoming[j], root_radius, root_kind,
                           /*claim_priority=*/from + j);
    }
    roots_issued.fetch_add(upcoming.size(), std::memory_order_relaxed);
  };
  // Queue the head of the stream up front. Against a CPU-style backend
  // (no wait meter) these run immediately, before the workers' first
  // claims; under the farm-wait meter they sit queued until the first
  // dispatch enters the farm — by the meter's own logic the host cores
  // belong to the workers' initial stage-0 BFS until then — and warm the
  // rest of the window the moment device time starts flowing. Either way
  // the cache's in-flight dedup keeps a racing demand fetch from
  // duplicating the BFS.
  root_lookahead(0);

  std::vector<std::unique_ptr<WorkerDeque>> deques;
  deques.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    deques.push_back(std::make_unique<WorkerDeque>());
  }

  // In-flight queries, keyed by stream index, created at claim time.
  // Ownership leaves the map at finalize, so an unbounded stream never
  // accumulates finished outcome trees; on the failure path whatever is
  // left unwinds with the map.
  util::Mutex inflight_mu;
  std::unordered_map<std::size_t, std::unique_ptr<BatchQuery>> inflight;

  std::vector<MemoryMeter> meters(threads_);
  // Per-worker transient peaks, republished after every task so a
  // finalizing worker can fold ALL workers' ball/device footprints into
  // the query's peak without reading a foreign MemoryMeter mid-flight.
  // Peaks are monotone, and every executor of a query publishes before
  // its release-decrement on `remaining`, so the sum read at finalize is
  // always ≥ the footprint while this query's tasks ran — an honest
  // upper bound, same convention as the closed batch always used.
  auto transient_peaks =
      std::make_unique<std::atomic<std::size_t>[]>(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    transient_peaks[w].store(0, std::memory_order_relaxed);
  }

  std::atomic<std::size_t> live{0};  // known-but-unfinished tasks
  std::atomic<bool> failed{false};
  util::Mutex error_mu;
  std::exception_ptr first_error;
  // Idle workers park event-driven on this epoch: every state change a
  // parked worker could act on (task published, seed pushed, stream
  // closed, last task finished, failure) bumps the epoch under idle_mu
  // and notifies. A worker snapshots the epoch BEFORE scanning for work,
  // so a publication racing its scan flips the wait predicate — no lost
  // wakeup, and no timed polling (the 1 ms wait_for this replaces).
  util::Mutex idle_mu;
  std::condition_variable idle_cv;
  std::uint64_t wake_epoch = 0;  // guarded by idle_mu
  const auto wake_all = [&idle_mu, &idle_cv, &wake_epoch] {
    {
      util::MutexLock lock(idle_mu);
      ++wake_epoch;
    }
    idle_cv.notify_all();
  };

  // Arrivals wake parked workers through the stream's hook, which push()
  // and close() invoke under the stream lock; registering and clearing it
  // under that same lock means no invocation can outlive this frame.
  {
    util::MutexLock lock(stream.mu_);
    MELO_CHECK_MSG(stream.on_event_ == nullptr,
                   "SeedStream: already drained by another query_stream");
    stream.on_event_ = wake_all;
  }
  struct HookClear {
    SeedStream* s;
    ~HookClear() {
      util::MutexLock lock(s->mu_);
      s->on_event_ = nullptr;
    }
  } hook_clear{&stream};

  const auto finalize_query = [&](BatchQuery& q, std::size_t self) {
    std::optional<AggregatorPool::Lease> lease;
    std::unique_ptr<ScoreAggregator> local;
    ScoreAggregator* aggregator;
    if (agg_pool_ != nullptr) {
      lease.emplace(agg_pool_->acquire(self));
      aggregator = &**lease;
    } else {
      const MelopprConfig& ecfg = engine_->config();
      local = make_serial_aggregator(ecfg.aggregation, ecfg.k, ecfg.topck_c,
                                     ecfg.topck_epsilon);
      aggregator = local.get();
    }

    QueryResult r;
    r.stats.stages.resize(engine_->config().num_stages());
    r.stats.graph_version = q.root->task.version;
    reduce_tree(*q.root, *aggregator, r.stats);
    r.top = aggregator->top(engine_->config().k);
    // Arrival-stamped attribution — the headline fix. The stream clock
    // stamps arrival at push, claim at first execution, and now: so
    // total_seconds is the arrival→finalize RESPONSE time (queueing
    // included, the quantity an SLO bounds) and queue_seconds the
    // arrival→claim wait, instead of the claim-clocked service time the
    // scheduler used to report.
    r.stats.total_seconds = stream.now() - q.arrival_seconds;
    r.stats.queue_seconds = q.claim_seconds - q.arrival_seconds;
    r.stats.diffusion_serial_seconds =
        r.stats.compute_seconds() + r.stats.transfer_seconds();
    // Per-query makespan equals the serial sum: this query's *internal*
    // speedup is not tracked under stealing (parallelism is across the
    // batch); batch-level wall time is the honest throughput figure.
    r.stats.diffusion_makespan_seconds = r.stats.diffusion_serial_seconds;
    std::size_t distinct_workers = 0;
    for (std::size_t word = 0; word < mask_words; ++word) {
      distinct_workers += static_cast<std::size_t>(std::popcount(
          q.worker_words[word].load(std::memory_order_relaxed)));
    }
    r.stats.threads_used = distinct_workers;
    r.stats.stolen_tasks = q.stolen.load(std::memory_order_relaxed);
    r.stats.aggregator_bytes = aggregator->bytes();
    r.stats.aggregator_entries = aggregator->entries();
    r.stats.aggregator_evictions = aggregator->evictions();
    // Retained footprint (the outcome tree coexists with the aggregator
    // at reduction time) plus every worker's published transient peak:
    // tasks of any query may run on any worker, and summed peaks never
    // under-report the true simultaneous footprint.
    std::size_t transient = 0;
    for (std::size_t w = 0; w < threads_; ++w) {
      transient += transient_peaks[w].load(std::memory_order_relaxed);
    }
    MemoryMeter meter;
    meter.set("aggregator", aggregator->bytes());
    meter.set("outcome_tree", tree_bytes(*q.root));
    r.stats.peak_bytes = meter.peak_bytes() + transient;

    // Retire the query BEFORE delivering the result: the tree is freed
    // here, mid-stream, so a long-lived stream holds only in-flight state.
    const std::size_t index = q.index;
    std::unique_ptr<BatchQuery> owned;
    {
      util::MutexLock lock(inflight_mu);
      auto it = inflight.find(index);
      MELO_CHECK(it != inflight.end());
      owned = std::move(it->second);
      inflight.erase(it);
    }
    owned.reset();  // `q` is dangling past this point
    on_result(index, std::move(r));
  };

  const auto execute_task = [&](const StealTask& t, std::size_t self,
                                std::size_t w) {
    BatchQuery& q = *t.query;
    TreeNode& node = *t.node;
    if (node.task.mass > 0.0) {
      node.out = engine_->run_task(node.task, backend_for(w), meters[w]);
      meters[w].set("stage_buffers", 0);
      const std::vector<StageTask>& child_tasks = node.out.children;
      if (!child_tasks.empty()) {
        node.children.reserve(child_tasks.size());
        for (const StageTask& c : child_tasks) {
          auto child = std::make_unique<TreeNode>();
          child->task = c;
          node.children.push_back(std::move(child));
        }
        // Account the children before finishing this task so neither the
        // query's remaining count nor the batch's live count can touch
        // zero while work is still pending.
        q.remaining.fetch_add(child_tasks.size(),
                              std::memory_order_acq_rel);
        live.fetch_add(child_tasks.size(), std::memory_order_acq_rel);
        {
          // Publish in reverse selection order: this worker pops LIFO, so
          // it continues depth-first with the first-selected child while
          // thieves take from the other end (the last-selected tail).
          util::MutexLock lock(deques[self]->mu);
          for (auto it = node.children.rbegin();
               it != node.children.rend(); ++it) {
            deques[self]->tasks.push_back({&q, it->get()});
          }
        }
        wake_all();  // parked workers can steal these
        if (lookahead != nullptr) {
          // This worker dives into children[0] next; its siblings' balls
          // are lookahead work for the prefetch threads.
          for (std::size_t c = 1; c < node.children.size(); ++c) {
            prefetcher_->enqueue(
                *lookahead, node.children[c]->task.root,
                engine_->config().stage_lengths[node.children[c]->task.stage]);
          }
        }
      }
    }
    // Republish this worker's transient peak before the release on
    // `remaining`: whoever finalizes a query this worker touched reads a
    // peak at least as large as during this task.
    transient_peaks[w].store(meters[w].peak_bytes(),
                             std::memory_order_relaxed);
    q.worker_words[self / 64].fetch_or(std::uint64_t{1} << (self % 64),
                                       std::memory_order_relaxed);
    // acq_rel: the winner of the final decrement observes every executor's
    // outcome writes (release sequence on `remaining`), so reduce_tree
    // reads fully-published nodes.
    if (q.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finalize_query(q, self);
    }
    if (live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wake_all();  // nothing in flight: parked workers re-check exit
    }
  };

  run_jobs(threads_, [&](std::size_t self, std::size_t w) {
    WorkerDeque& own = *deques[self];
    for (;;) {
      if (failed.load(std::memory_order_acquire)) break;
      try {
        // Epoch snapshot BEFORE the scans: a publication/arrival landing
        // after this line bumps the epoch and defeats the wait below, so
        // scanning-then-parking can never sleep through it.
        std::uint64_t epoch;
        {
          util::MutexLock lock(idle_mu);
          epoch = wake_epoch;
        }
        StealTask task;
        bool have = false;
        {  // 1. own deque, LIFO — depth-first, newest (hottest) subtree
          util::MutexLock lock(own.mu);
          if (!own.tasks.empty()) {
            task = own.tasks.back();
            own.tasks.pop_back();
            have = true;
          }
        }
        if (!have) {  // 2. claim a fresh query root from the stream
          graph::NodeId seed = graph::kInvalidNode;
          double arrival = 0.0;
          std::size_t index = 0;
          std::size_t cursor_after = 0;
          {
            util::MutexLock lock(stream.mu_);
            if (stream.next_claim_ < stream.slots_.size()) {
              index = stream.next_claim_++;
              seed = stream.slots_[index].seed;
              arrival = stream.slots_[index].arrival_seconds;
              cursor_after = stream.next_claim_;
              // Raise `live` INSIDE the claim section: an exiting worker
              // re-reads the cursor under this lock, so it can never see
              // "fully claimed" without also seeing this query in flight.
              live.fetch_add(1, std::memory_order_acq_rel);
              have = true;
            }
          }
          if (have) {
            auto fresh = std::make_unique<BatchQuery>();
            fresh->index = index;
            fresh->arrival_seconds = arrival;
            fresh->claim_seconds = stream.now();
            fresh->worker_words =
                std::make_unique<std::atomic<std::uint64_t>[]>(mask_words);
            for (std::size_t word = 0; word < mask_words; ++word) {
              fresh->worker_words[word].store(0, std::memory_order_relaxed);
            }
            fresh->root = std::make_unique<TreeNode>();
            // Claim time IS admission for a stream query: the version
            // stamp (dynamic graphs) freezes here, before any extraction.
            fresh->root->task = engine_->make_root_task(seed);
            task = {fresh.get(), fresh->root.get()};
            {
              util::MutexLock lock(inflight_mu);
              inflight.emplace(index, std::move(fresh));
            }
            // Slide the root-lookahead window past the seed just claimed.
            root_lookahead(cursor_after);
          }
        }
        if (!have) {  // 3. steal, FIFO — victim's oldest (biggest) subtree
          for (std::size_t d = 1; d < deques.size() && !have; ++d) {
            WorkerDeque& victim = *deques[(self + d) % deques.size()];
            util::MutexLock lock(victim.mu);
            if (!victim.tasks.empty()) {
              task = victim.tasks.front();
              victim.tasks.pop_front();
              have = true;
            }
          }
          if (have) {
            task.query->stolen.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!have) {
          // Exit only when the stream can produce no more work (closed
          // AND fully claimed) and nothing is in flight; the claim-section
          // live increment makes this two-step check race-free.
          bool exhausted;
          {
            util::MutexLock lock(stream.mu_);
            exhausted = stream.closed_ &&
                        stream.next_claim_ == stream.slots_.size();
          }
          if (exhausted && live.load(std::memory_order_acquire) == 0) break;
          // Park event-driven: a push, a task publication, close(), the
          // final task's completion, or a failure each bump the epoch.
          util::MutexLock lock(idle_mu);
          while (wake_epoch == epoch) idle_cv.wait(lock.native());
          continue;
        }
        execute_task(task, self, w);
      } catch (...) {
        {
          util::MutexLock lock(error_mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
        failed.store(true, std::memory_order_release);
        wake_all();
        break;
      }
    }
  });

  if (first_error != nullptr) std::rethrow_exception(first_error);
  MELO_CHECK(live.load() == 0);
  {
    // Every claimed query was finalized and delivered (the failure path
    // returns above, where leftovers unwind with the map instead).
    util::MutexLock lock(inflight_mu);
    MELO_CHECK(inflight.empty());
  }
  if (telemetry != nullptr) {
    telemetry->issued = roots_issued.load(std::memory_order_relaxed);
    // Window/idle telemetry belongs to THIS batch: zeros unless root
    // lookahead was actually active here (approximate under concurrent
    // batches sharing the controller, like the other deltas).
    if (lookahead != nullptr && window_controller_ != nullptr) {
      telemetry->last_window = window_controller_->last_window();
      telemetry->idle_fraction = window_controller_->idle_fraction();
    }
  }
}

}  // namespace meloppr::core
