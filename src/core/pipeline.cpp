#include "core/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

QueryPipeline::QueryPipeline(const Engine& engine, DiffusionBackend& backend,
                             PipelineConfig config)
    : engine_(&engine),
      config_(config),
      threads_(config.resolved_threads()) {
  config_.validate();
  if (backend.thread_safe()) {
    shared_backend_ = &backend;
  } else {
    clones_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      clones_.push_back(backend.clone());
    }
  }
  workers_.reserve(threads_);
  for (std::size_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryPipeline::~QueryPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryPipeline::check_cache_free() const {
  MELO_CHECK_MSG(engine_->ball_cache() == nullptr || threads_ == 1,
                 "QueryPipeline: the engine's ball cache is single-threaded; "
                 "remove it (set_ball_cache(nullptr)) before parallel use");
}

void QueryPipeline::worker_loop(std::size_t worker_id) {
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job(worker_id);
  }
}

void QueryPipeline::run_jobs(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      queue_.emplace_back([&fn, i, latch](std::size_t worker_id) {
        std::exception_ptr err;
        try {
          fn(i, worker_id);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> l(latch->mu);
        if (err != nullptr && latch->error == nullptr) latch->error = err;
        if (--latch->remaining == 0) latch->done.notify_all();
      });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
  if (latch->error != nullptr) std::rethrow_exception(latch->error);
}

QueryResult QueryPipeline::query(graph::NodeId seed) {
  check_cache_free();
  QueryResult result;
  result.stats.stages.resize(engine_->config().num_stages());

  // Per-worker state: transient-footprint meters and diffusion busy time.
  // A worker runs one job at a time, so its slot needs no lock; the
  // completion latch orders its writes before the coordinator's reads.
  std::vector<MemoryMeter> meters(threads_);
  std::vector<double> busy_seconds(threads_, 0.0);

  const bool deterministic = config_.deterministic_reduction;
  const std::unique_ptr<ScoreAggregator> owned_aggregator =
      deterministic
          ? static_cast<std::unique_ptr<ScoreAggregator>>(
                std::make_unique<ExactAggregator>())
          : std::make_unique<StripedAggregator>(config_.aggregator_stripes);
  ScoreAggregator& aggregator = *owned_aggregator;

  Timer total;
  // The coordinator's own footprint: the frontier plus every outstanding
  // outcome buffer of the stage (they all coexist until the reduction).
  MemoryMeter coordinator_meter;
  std::vector<StageTask> frontier;
  frontier.push_back({seed, 1.0, 0});
  while (!frontier.empty()) {
    // Dispatch: every task in the frontier is independent (linearity of the
    // decomposition), so BFS + diffusion fan out across the pool.
    std::vector<StageOutcome> outcomes(frontier.size());
    run_jobs(frontier.size(), [&](std::size_t i, std::size_t w) {
      const StageTask& task = frontier[i];
      if (!(task.mass > 0.0)) return;  // skip, as the serial schedule does
      StageOutcome out = engine_->run_task(task, backend_for(w), meters[w]);
      meters[w].set("stage_buffers", 0);  // ownership moves to outcomes[i]
      busy_seconds[w] +=
          out.stats.compute_seconds + out.stats.transfer_seconds;
      if (!deterministic) {
        // Concurrent reduction: stream this task's deltas straight into the
        // striped aggregator (sums are exact per node; order is not).
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
        out.contributions.clear();
      }
      outcomes[i] = std::move(out);
    });

    std::size_t outcome_bytes =
        vector_bytes(frontier) + vector_bytes(outcomes);
    for (const StageOutcome& out : outcomes) {
      outcome_bytes +=
          vector_bytes(out.contributions) + vector_bytes(out.children);
    }
    coordinator_meter.set("frontier_buffers", outcome_bytes);

    // Reduce in task order — deterministic regardless of which worker ran
    // what — and splice the children into the next frontier.
    std::vector<StageTask> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const StageTask& task = frontier[i];
      StageOutcome& out = outcomes[i];
      result.stats.stages[task.stage].merge(out.stats);
      if (deterministic && task.mass > 0.0) {
        if (task.stage > 0) aggregator.add(task.root, -task.mass);
        for (const auto& [node, delta] : out.contributions) {
          aggregator.add(node, delta);
        }
      }
      next.insert(next.end(), out.children.begin(), out.children.end());
    }
    frontier = std::move(next);
    coordinator_meter.set("frontier_buffers", vector_bytes(frontier));
  }

  result.top = aggregator.top(engine_->config().k);
  result.stats.total_seconds = total.elapsed_seconds();
  result.stats.threads_used = threads_;
  result.stats.diffusion_serial_seconds =
      result.stats.compute_seconds() + result.stats.transfer_seconds();
  // Worker-level makespan, floored by the backend's own execution slots: a
  // shared farm with D < T devices cannot complete faster than serial/D no
  // matter how its seconds were attributed across dispatching workers.
  const std::size_t slots =
      std::min(threads_, shared_backend_ != nullptr
                             ? shared_backend_->max_concurrent_runs()
                             : threads_);
  result.stats.diffusion_makespan_seconds = std::max(
      *std::max_element(busy_seconds.begin(), busy_seconds.end()),
      result.stats.diffusion_serial_seconds / static_cast<double>(slots));
  result.stats.aggregator_bytes = aggregator.bytes();

  // Aggregator first, then the worker peaks on top: the final score
  // structure coexists with the in-flight balls, so the honest (upper
  // bound) peak is their sum, not their max.
  MemoryMeter merged;
  merged.set("aggregator", aggregator.bytes());
  merged.merge_peak(coordinator_meter);
  for (const MemoryMeter& m : meters) merged.merge_peak(m);
  result.stats.peak_bytes = merged.peak_bytes();
  return result;
}

std::vector<QueryResult> QueryPipeline::query_batch(
    std::span<const graph::NodeId> seeds) {
  check_cache_free();
  std::vector<QueryResult> results(seeds.size());
  run_jobs(seeds.size(), [&](std::size_t i, std::size_t w) {
    // Each query keeps the serial depth-first schedule — scores are
    // bit-identical to Engine::query — and its own aggregator; the batch's
    // parallelism is across queries.
    ExactAggregator aggregator;
    results[i] = engine_->query(seeds[i], backend_for(w), aggregator);
  });
  return results;
}

}  // namespace meloppr::core
