// Diffusion execution backends.
//
// The MeLoPPR engine is backend-agnostic: the same multi-stage control flow
// (BFS → diffuse → select → recurse, Sec. IV) runs its per-ball diffusions
// either on the host CPU (CpuBackend) or on the simulated FPGA accelerator
// (hw::FpgaBackend in src/hw/host.hpp). This mirrors the paper's co-design
// split: the PS (CPU) prepares sub-graphs, the PL (FPGA) diffuses them.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "hw/quantizer.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::core {

struct MelopprConfig;

/// Typed failure channel of a diffusion run (ROADMAP "fault-tolerant
/// dispatch"). run() reports environmental failures — a flaky device, an
/// exhausted retry budget, a missed deadline — through this status instead
/// of letting raw exceptions escape, so schedulers can contain them per
/// task (retry, fail over, mark the query degraded) rather than aborting a
/// whole batch. Caller errors (std::invalid_argument) and invariant
/// violations still throw: those are bugs, not weather.
enum class RunStatus : std::uint8_t {
  kOk = 0,
  /// The run failed in a way a retry may fix (injected fault, a device
  /// run that threw, transport hiccup).
  kTransientFault,
  /// The device reported sticky death; it will never serve again.
  kDeviceDead,
  /// The run (or its final retry) exceeded the dispatch deadline.
  kDeadlineMiss,
  /// Every device in the farm is out of rotation (breaker-open or dead)
  /// and no half-open probe was claimable — the caller should fail over.
  kNoHealthyDevice,
};

[[nodiscard]] const char* to_string(RunStatus status);

/// Farm-level health counters, exposed uniformly through
/// DiffusionBackend::dispatch_health() so the pipeline can report
/// degradation without knowing the backend's concrete type. Plain backends
/// return the all-zero default.
struct DispatchHealth {
  std::size_t devices = 0;          ///< execution slots behind this backend
  std::size_t healthy_devices = 0;  ///< breaker-closed (in rotation)
  std::size_t dead_devices = 0;     ///< sticky-dead (never re-admitted)
  std::size_t retries = 0;          ///< failed attempts that were retried
  std::size_t deadline_misses = 0;  ///< attempts discarded for lateness
  std::size_t breaker_trips = 0;    ///< closed→open transitions
  std::size_t probes = 0;           ///< half-open probe dispatches
  std::size_t exhausted_runs = 0;   ///< runs returning non-ok to the caller
  std::size_t failovers = 0;        ///< runs served by a fallback backend
};

/// Outcome of one per-ball diffusion, plus device-accounting metadata.
///
/// `accumulated` is the absolute PPR contribution of the ball (the input
/// mass is already fully scaled by the engine, so no further scaling is
/// applied at aggregation). `inflight` is α^l·W^l·S0 — the α-scaled
/// residual mass, which is *directly* both the Eq. 8 subtraction term and
/// the next stage's input mass. Keeping the α^l inside the backend mirrors
/// the hardware, whose integer residual table is α-scaled by construction
/// (each propagation step multiplies by α).
struct BackendResult {
  std::vector<double> accumulated;  ///< π_a over local ids (absolute)
  std::vector<double> inflight;     ///< α^l·π_r over local ids (absolute)
  /// Time attributed to the diffusion itself: measured wall-clock for the
  /// CPU backend, simulated cycles/frequency for the FPGA backend.
  double compute_seconds = 0.0;
  /// Extra time for moving the ball to the device (0 for CPU).
  double transfer_seconds = 0.0;
  std::uint64_t edge_ops = 0;

  /// Typed failure channel: kOk means `accumulated`/`inflight` are valid;
  /// anything else means the run produced no usable scores and `error`
  /// names the cause. Schedulers must check ok() before aggregating.
  RunStatus status = RunStatus::kOk;
  std::string error;
  /// Dispatch attempts this run consumed (1 = first try succeeded; a farm
  /// with retry reports the attempt that finally returned).
  std::uint32_t attempts = 1;
  /// Attempts of this run discarded for missing the dispatch deadline.
  std::uint32_t deadline_misses = 0;
  /// True when the result came from a fallback backend after the primary
  /// failed (FailoverBackend) — the query is degraded, not wrong.
  bool failed_over = false;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
};

class DiffusionBackend {
 public:
  virtual ~DiffusionBackend() = default;

  /// Diffuses `mass` placed at the ball root (local 0) for `length` steps.
  virtual BackendResult run(const graph::Subgraph& ball, double mass,
                            unsigned length) = 0;

  /// Device memory required to process a ball of the given size, charged to
  /// the engine's memory model. The CPU backend charges the score vectors;
  /// the FPGA backend charges its BRAM tables.
  [[nodiscard]] virtual std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const = 0;

  /// Short name for reports, e.g. "cpu" or "fpga(P=16)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh instance sharing no mutable state with this one (counters start
  /// at zero). The QueryPipeline clones one backend per worker thread when
  /// the backend is not thread_safe().
  [[nodiscard]] virtual std::unique_ptr<DiffusionBackend> clone() const = 0;

  /// True when run() may be called concurrently from multiple threads on
  /// this same instance (e.g. a farm that dispatches internally). Defaults
  /// to false: the pipeline then clones per worker instead of sharing.
  [[nodiscard]] virtual bool thread_safe() const { return false; }

  /// Upper bound on run() calls this backend can genuinely execute at the
  /// same time (its internal execution slots). Unbounded by default; an
  /// internally-scheduled farm reports its device count so schedulers can
  /// report physically possible makespans when workers outnumber devices.
  [[nodiscard]] virtual std::size_t max_concurrent_runs() const {
    return std::numeric_limits<std::size_t>::max();
  }

  /// True when run() executes the diffusion off the host CPU (an
  /// accelerator or accelerator farm), so dispatching threads block while
  /// the device computes and host cores sit idle. The pipeline's
  /// backend-aware prefetch throttle only spawns lookahead BFS threads for
  /// offloading backends — against a CPU backend they would oversubscribe
  /// the very cores the workers compute on.
  [[nodiscard]] virtual bool offloads_compute() const { return false; }

  /// Callers currently inside run() — executing on a device or blocked on
  /// device checkout. This is the live idleness signal behind the
  /// pipeline's farm-wait prefetch meter (PipelineConfig::
  /// prefetch_wait_meter): while a shared offloading backend reports 0,
  /// no worker is parked on the device side, so host cores belong to the
  /// demand path and lookahead BFS pauses. Backends without a live signal
  /// keep this default ("unknown — assume busy"), which never pauses
  /// lookahead.
  [[nodiscard]] virtual std::size_t active_dispatches() const {
    return std::numeric_limits<std::size_t>::max();
  }

  /// Cumulative dispatch-health counters (retry/breaker/failover layer).
  /// Backends without a resilience layer report the all-zero default; the
  /// pipeline folds deltas of this into BatchStats so operators see farm
  /// degradation per batch.
  [[nodiscard]] virtual DispatchHealth dispatch_health() const { return {}; }
};

/// Host-CPU backend: wall-clock-measured ppr::diffuse, dispatched to the
/// SIMD kernel family (ppr/diffusion_kernels.hpp). Two numeric modes:
/// double precision (default), or — when constructed with a Quantizer —
/// the accelerator's fixed-point datapath on host lanes, whose scores
/// match the simulated FPGA node-for-node.
class CpuBackend final : public DiffusionBackend {
 public:
  explicit CpuBackend(double alpha) : alpha_(alpha) {}
  /// Fixed-point host numerics with the given quantizer (normally built by
  /// make_cpu_backend from graph stats, mirroring the FPGA construction).
  CpuBackend(double alpha, hw::Quantizer quantizer)
      : alpha_(alpha), quantizer_(quantizer) {}

  BackendResult run(const graph::Subgraph& ball, double mass,
                    unsigned length) override;
  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DiffusionBackend> clone() const override {
    return std::make_unique<CpuBackend>(*this);
  }
  /// run() holds no mutable state — concurrent calls are safe (the kernel
  /// scratch is per-thread).
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] const std::optional<hw::Quantizer>& quantizer() const {
    return quantizer_;
  }

 private:
  double alpha_;
  std::optional<hw::Quantizer> quantizer_;
};

/// Graceful-degradation decorator: try `primary`, and when it returns a
/// non-ok status (retry budget exhausted, deadline missed, no healthy
/// device), re-run the diffusion on `fallback` and mark the result
/// failed_over. With a farm as primary and a fixed-point CpuBackend as
/// fallback (make_cpu_backend with numerics = kFixedPoint), the fallback
/// scores are node-for-node identical to the accelerator's — degradation
/// costs throughput, never correctness (the bit-exact failover invariant,
/// gated by bench_fault_tolerance).
///
/// Exceptions from either backend still propagate: the typed channel is
/// for environmental failures, throws are caller errors or bugs.
class FailoverBackend final : public DiffusionBackend {
 public:
  /// Non-owning: both backends must outlive this decorator.
  FailoverBackend(DiffusionBackend& primary, DiffusionBackend& fallback)
      : primary_(&primary), fallback_(&fallback) {}
  /// Owning variant (used by clone()).
  FailoverBackend(std::unique_ptr<DiffusionBackend> primary,
                  std::unique_ptr<DiffusionBackend> fallback)
      : primary_(primary.get()),
        fallback_(fallback.get()),
        owned_primary_(std::move(primary)),
        owned_fallback_(std::move(fallback)) {}

  BackendResult run(const graph::Subgraph& ball, double mass,
                    unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override {
    return std::max(primary_->working_bytes(ball_nodes, ball_edges),
                    fallback_->working_bytes(ball_nodes, ball_edges));
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DiffusionBackend> clone() const override {
    return std::make_unique<FailoverBackend>(primary_->clone(),
                                             fallback_->clone());
  }
  [[nodiscard]] bool thread_safe() const override {
    return primary_->thread_safe() && fallback_->thread_safe();
  }
  [[nodiscard]] std::size_t max_concurrent_runs() const override {
    return primary_->max_concurrent_runs();
  }
  /// The prefetch throttle keys on the primary: while the farm serves,
  /// dispatchers block device-side exactly as without the decorator. (A
  /// fully failed-over stack computes on host cores, but by then the farm
  /// reports no active dispatches and the wait meter pauses lookahead.)
  [[nodiscard]] bool offloads_compute() const override {
    return primary_->offloads_compute();
  }
  [[nodiscard]] std::size_t active_dispatches() const override {
    return primary_->active_dispatches();
  }
  /// The primary's health plus this decorator's failover count.
  [[nodiscard]] DispatchHealth dispatch_health() const override {
    DispatchHealth h = primary_->dispatch_health();
    h.failovers += failovers_.load(std::memory_order_relaxed);
    return h;
  }

  /// Runs served by the fallback so far.
  [[nodiscard]] std::size_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const DiffusionBackend& primary() const { return *primary_; }
  [[nodiscard]] const DiffusionBackend& fallback() const {
    return *fallback_;
  }

 private:
  DiffusionBackend* primary_;
  DiffusionBackend* fallback_;
  std::unique_ptr<DiffusionBackend> owned_primary_;
  std::unique_ptr<DiffusionBackend> owned_fallback_;
  std::atomic<std::size_t> failovers_{0};
};

/// Builds the CpuBackend MelopprConfig asks for: float64, or fixed-point
/// with a Quantizer derived from the graph's degree stats exactly the way
/// the FPGA backends derive theirs (Max = d·|V|, α_p = round(α·2^q)) — so
/// host and simulated-device scores are comparable at zero tolerance.
std::unique_ptr<DiffusionBackend> make_cpu_backend(const graph::Graph& graph,
                                                   const MelopprConfig& config);

}  // namespace meloppr::core
