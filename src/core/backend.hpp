// Diffusion execution backends.
//
// The MeLoPPR engine is backend-agnostic: the same multi-stage control flow
// (BFS → diffuse → select → recurse, Sec. IV) runs its per-ball diffusions
// either on the host CPU (CpuBackend) or on the simulated FPGA accelerator
// (hw::FpgaBackend in src/hw/host.hpp). This mirrors the paper's co-design
// split: the PS (CPU) prepares sub-graphs, the PL (FPGA) diffuses them.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "hw/quantizer.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::core {

struct MelopprConfig;

/// Outcome of one per-ball diffusion, plus device-accounting metadata.
///
/// `accumulated` is the absolute PPR contribution of the ball (the input
/// mass is already fully scaled by the engine, so no further scaling is
/// applied at aggregation). `inflight` is α^l·W^l·S0 — the α-scaled
/// residual mass, which is *directly* both the Eq. 8 subtraction term and
/// the next stage's input mass. Keeping the α^l inside the backend mirrors
/// the hardware, whose integer residual table is α-scaled by construction
/// (each propagation step multiplies by α).
struct BackendResult {
  std::vector<double> accumulated;  ///< π_a over local ids (absolute)
  std::vector<double> inflight;     ///< α^l·π_r over local ids (absolute)
  /// Time attributed to the diffusion itself: measured wall-clock for the
  /// CPU backend, simulated cycles/frequency for the FPGA backend.
  double compute_seconds = 0.0;
  /// Extra time for moving the ball to the device (0 for CPU).
  double transfer_seconds = 0.0;
  std::uint64_t edge_ops = 0;
};

class DiffusionBackend {
 public:
  virtual ~DiffusionBackend() = default;

  /// Diffuses `mass` placed at the ball root (local 0) for `length` steps.
  virtual BackendResult run(const graph::Subgraph& ball, double mass,
                            unsigned length) = 0;

  /// Device memory required to process a ball of the given size, charged to
  /// the engine's memory model. The CPU backend charges the score vectors;
  /// the FPGA backend charges its BRAM tables.
  [[nodiscard]] virtual std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const = 0;

  /// Short name for reports, e.g. "cpu" or "fpga(P=16)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh instance sharing no mutable state with this one (counters start
  /// at zero). The QueryPipeline clones one backend per worker thread when
  /// the backend is not thread_safe().
  [[nodiscard]] virtual std::unique_ptr<DiffusionBackend> clone() const = 0;

  /// True when run() may be called concurrently from multiple threads on
  /// this same instance (e.g. a farm that dispatches internally). Defaults
  /// to false: the pipeline then clones per worker instead of sharing.
  [[nodiscard]] virtual bool thread_safe() const { return false; }

  /// Upper bound on run() calls this backend can genuinely execute at the
  /// same time (its internal execution slots). Unbounded by default; an
  /// internally-scheduled farm reports its device count so schedulers can
  /// report physically possible makespans when workers outnumber devices.
  [[nodiscard]] virtual std::size_t max_concurrent_runs() const {
    return std::numeric_limits<std::size_t>::max();
  }

  /// True when run() executes the diffusion off the host CPU (an
  /// accelerator or accelerator farm), so dispatching threads block while
  /// the device computes and host cores sit idle. The pipeline's
  /// backend-aware prefetch throttle only spawns lookahead BFS threads for
  /// offloading backends — against a CPU backend they would oversubscribe
  /// the very cores the workers compute on.
  [[nodiscard]] virtual bool offloads_compute() const { return false; }

  /// Callers currently inside run() — executing on a device or blocked on
  /// device checkout. This is the live idleness signal behind the
  /// pipeline's farm-wait prefetch meter (PipelineConfig::
  /// prefetch_wait_meter): while a shared offloading backend reports 0,
  /// no worker is parked on the device side, so host cores belong to the
  /// demand path and lookahead BFS pauses. Backends without a live signal
  /// keep this default ("unknown — assume busy"), which never pauses
  /// lookahead.
  [[nodiscard]] virtual std::size_t active_dispatches() const {
    return std::numeric_limits<std::size_t>::max();
  }
};

/// Host-CPU backend: wall-clock-measured ppr::diffuse, dispatched to the
/// SIMD kernel family (ppr/diffusion_kernels.hpp). Two numeric modes:
/// double precision (default), or — when constructed with a Quantizer —
/// the accelerator's fixed-point datapath on host lanes, whose scores
/// match the simulated FPGA node-for-node.
class CpuBackend final : public DiffusionBackend {
 public:
  explicit CpuBackend(double alpha) : alpha_(alpha) {}
  /// Fixed-point host numerics with the given quantizer (normally built by
  /// make_cpu_backend from graph stats, mirroring the FPGA construction).
  CpuBackend(double alpha, hw::Quantizer quantizer)
      : alpha_(alpha), quantizer_(quantizer) {}

  BackendResult run(const graph::Subgraph& ball, double mass,
                    unsigned length) override;
  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DiffusionBackend> clone() const override {
    return std::make_unique<CpuBackend>(*this);
  }
  /// run() holds no mutable state — concurrent calls are safe (the kernel
  /// scratch is per-thread).
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] const std::optional<hw::Quantizer>& quantizer() const {
    return quantizer_;
  }

 private:
  double alpha_;
  std::optional<hw::Quantizer> quantizer_;
};

/// Builds the CpuBackend MelopprConfig asks for: float64, or fixed-point
/// with a Quantizer derived from the graph's degree stats exactly the way
/// the FPGA backends derive theirs (Max = d·|V|, α_p = round(α·2^q)) — so
/// host and simulated-device scores are comparable at zero tolerance.
std::unique_ptr<DiffusionBackend> make_cpu_backend(const graph::Graph& graph,
                                                   const MelopprConfig& config);

}  // namespace meloppr::core
