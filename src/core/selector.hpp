// Next-stage node selection (Sec. IV-D).
//
// After a stage's diffusion, the residual vector π_r says how much mass is
// still "in flight" at each ball node. The PPR vector is extremely sparse
// (Fig. 6: >90% of nodes carry near-zero score), so only the nodes with the
// largest residuals are worth a stage-2 diffusion. The selection policy is
// the latency↔precision knob of the whole system.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace meloppr::core {

using graph::NodeId;

/// Declarative selection policy; build with the factory functions.
struct Selection {
  enum class Mode {
    kRatio,      ///< top ⌈ratio·n⌉ nodes by residual (Fig. 6/7 x-axis)
    kCount,      ///< top `count` nodes by residual
    kThreshold,  ///< every node with residual > threshold
    kAll,        ///< every node with non-zero residual (exact mode, Eq. 8)
  };

  Mode mode = Mode::kRatio;
  double ratio = 0.05;
  std::size_t count = 0;
  double threshold = 0.0;

  static Selection all() { return {Mode::kAll, 0.0, 0, 0.0}; }
  static Selection top_ratio(double r) { return {Mode::kRatio, r, 0, 0.0}; }
  static Selection top_count(std::size_t c) {
    return {Mode::kCount, 0.0, c, 0.0};
  }
  static Selection above(double t) { return {Mode::kThreshold, 0.0, 0, t}; }

  void validate() const;

  /// Human-readable tag for bench output, e.g. "ratio=5%".
  [[nodiscard]] std::string describe() const;
};

/// A selected next-stage node: local ball id plus its residual mass.
struct SelectedNode {
  NodeId local = graph::kInvalidNode;
  double residual = 0.0;
};

/// Applies the policy to a residual vector (local indexing). Returns nodes
/// in descending residual order (ties by ascending local id); zero-residual
/// nodes are never selected regardless of policy.
std::vector<SelectedNode> select_next_stage(std::span<const double> residual,
                                            const Selection& policy);

}  // namespace meloppr::core
