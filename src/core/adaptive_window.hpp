// Self-tuning width for the cross-query root-prefetch window (ROADMAP
// "Adaptive root-prefetch window").
//
// PR 4 made the window a fixed knob throttled by the cache's spare byte
// budget. That knob has no single right value: on a graph of small balls a
// window of 4 leaves the prefetch threads idle while cold queries still pay
// their own BFS; on a graph of hub-sized balls the same 4 can overrun the
// spare budget the moment traffic shifts. The controller derives the width
// per claim from two live signals instead:
//
//   * prefetch-thread idle fraction — differentiated from the prefetcher's
//     cumulative busy-seconds counter over wall time, then smoothed by an
//     EWMA. Idle threads mean lookahead capacity is going unused, so the
//     window widens toward max_window; saturated threads mean speculation
//     is already backed up, so it narrows toward min_window. (Pause-gated
//     time — the farm-wait meter — counts as idle on purpose: a paused
//     prefetcher has no business widening its backlog.)
//   * EWMA of recently extracted ball bytes — converts the spare-budget
//     byte cap the caller supplies into "how many balls of the size we are
//     actually seeing", replacing the resident-mean estimate that is
//     undefined on an empty cache and stale on a shifting working set.
//
// The spare-budget throttle always wins: whatever the idle signal wants,
// the returned window never exceeds cap_bytes / ewma_ball_bytes, and a
// saturated cache (cap_bytes ≈ 0) yields a window of 0 — the corrected
// PR 4 contract (min(spare, budget/8), not max) that keeps small caches
// from being churned by speculation. Before the first completed
// extraction (ewma 0) the cap cannot be converted, so the window holds
// at min_window — the static knob's cold-start burst — instead of
// opening to max into a cache of unknown per-ball capacity.
//
// The controller is intentionally dependency-free and fed explicit numbers
// (busy seconds, wall seconds, thread count, EWMA bytes, byte cap) so its
// policy is unit-testable without threads or clocks.
#pragma once

#include <atomic>
#include <cstddef>

#include "util/thread_annotations.hpp"

namespace meloppr::core {

class AdaptiveWindowController {
 public:
  /// Window bounds in seeds. min_window is a *desire* floor — the byte cap
  /// may still force the window below it (to 0 on a saturated cache).
  /// Both are clamped to ≥ 1 / ≥ min internally.
  AdaptiveWindowController(std::size_t min_window, std::size_t max_window);

  /// One controller step; returns the window width to use right now.
  ///   busy_seconds — the prefetcher's cumulative fetch-busy seconds
  ///   wall_seconds — monotonic wall clock shared across calls
  ///   prefetch_threads — how many threads produced busy_seconds
  ///   ewma_ball_bytes — recent-extraction ball size estimate (0 = unknown)
  ///   cap_bytes — the spare-budget throttle, min(spare, budget/8)
  /// Thread-safe; concurrent callers serialize on an internal mutex (the
  /// call rate is one per claimed query root).
  std::size_t window(double busy_seconds, double wall_seconds,
                     std::size_t prefetch_threads,
                     std::size_t ewma_ball_bytes, std::size_t cap_bytes);

  /// The width the last window() call returned (telemetry; lock-free).
  [[nodiscard]] std::size_t last_window() const {
    return last_window_.load(std::memory_order_relaxed);
  }

  /// Smoothed prefetch-thread idle fraction in [0, 1] (telemetry).
  [[nodiscard]] double idle_fraction() const;

 private:
  /// Intervals shorter than this carry too much timer noise to re-estimate
  /// idleness; the previous smoothed value is reused instead.
  static constexpr double kMinIntervalSeconds = 1e-3;
  /// Smoothing factor of the idle-fraction EWMA (higher = more reactive).
  static constexpr double kIdleSmoothing = 0.3;

  const std::size_t min_window_;
  const std::size_t max_window_;

  mutable util::Mutex mu_;
  double last_busy_seconds_ MELOPPR_GUARDED_BY(mu_) = 0.0;
  double last_wall_seconds_ MELOPPR_GUARDED_BY(mu_) = 0.0;
  /// Starts at 1.0: before any measurement the threads have done no work,
  /// which is exactly "fully idle" — the window widens as soon as the
  /// first ball-size estimate lets the byte cap be applied.
  double idle_ MELOPPR_GUARDED_BY(mu_) = 1.0;

  std::atomic<std::size_t> last_window_{0};
};

}  // namespace meloppr::core
