// Global score aggregation (Sec. V-B "Data Transfer Reduction").
//
// Every per-ball diffusion contributes scores that must be summed into the
// global PPR vector S_L (Eq. 8). Two strategies:
//
//   ExactAggregator  — a hash map holding every touched node. Exact, but its
//                      footprint grows toward O(G_L(s)); this is what the
//                      CPU implementation uses.
//   TopCKAggregator  — the paper's FPGA strategy: a fixed-capacity table of
//                      the c·k best scores kept in BRAM. Insertions beyond
//                      capacity evict the current minimum, so late small
//                      contributions to evicted nodes are lost — the source
//                      of the <0.2% (c>8) / >3% (c<4) precision loss the
//                      paper measures. We default to c=10 as the paper does.
//   StripedAggregator — the QueryPipeline's concurrent path: exact scores
//                      sharded across mutex-striped maps so worker threads
//                      add() in parallel with low contention.
//   ConcurrentTopCKAggregator (concurrent_topck.hpp) — the thread-safe
//                      bounded table: TopCK's BRAM strategy sharded for
//                      concurrent add(), with a lock-free fast path for
//                      resident updates.
//
// make_serial_aggregator / make_concurrent_aggregator map an
// AggregationMode (config.hpp) onto these four.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "ppr/topk.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr::core {

using ppr::ScoredNode;

/// Interface for summing per-ball score contributions into a global view.
class ScoreAggregator {
 public:
  virtual ~ScoreAggregator() = default;

  /// Adds `delta` (possibly negative — the −α^l·S^r correction of Eq. 8)
  /// to `node`'s global score.
  virtual void add(graph::NodeId node, double delta) = 0;

  /// Current top-k by aggregated score.
  [[nodiscard]] virtual std::vector<ScoredNode> top(std::size_t k) const = 0;

  /// Number of nodes currently tracked.
  [[nodiscard]] virtual std::size_t entries() const = 0;

  /// Footprint charged by the memory model.
  [[nodiscard]] virtual std::size_t bytes() const = 0;

  virtual void clear() = 0;

  /// Entry capacity of a bounded table; 0 means unbounded (exact modes).
  [[nodiscard]] virtual std::size_t capacity() const { return 0; }

  /// Min-evictions performed by a bounded table (a fidelity diagnostic:
  /// zero evictions means bounded behaved exactly like exact). Always 0
  /// for unbounded aggregators.
  [[nodiscard]] virtual std::size_t evictions() const { return 0; }
};

/// Exact hash-map aggregation (CPU mode).
class ExactAggregator final : public ScoreAggregator {
 public:
  void add(graph::NodeId node, double delta) override;
  [[nodiscard]] std::vector<ScoredNode> top(std::size_t k) const override;
  [[nodiscard]] std::size_t entries() const override { return scores_.size(); }
  [[nodiscard]] std::size_t bytes() const override;
  void clear() override { scores_.clear(); }

  [[nodiscard]] const ppr::ScoreMap& scores() const { return scores_; }

 private:
  ppr::ScoreMap scores_;
};

/// Fixed-capacity top-(c·k) table (FPGA mode). Keeps the `capacity` largest
/// scores; an insertion into a full table evicts the minimum entry. Updates
/// to a node already present always succeed (matching the BRAM table, which
/// updates in place).
///
/// Storage is a fixed slot arena plus a lazy min-heap of (score snapshot,
/// slot) pairs, so the hot path is allocation-free and heap-free: a
/// positive in-place update is one hash lookup and one addition (its old
/// snapshots go stale *low*, which lazy eviction tolerates), a negative
/// update additionally pushes a fresh snapshot (so no live score can ever
/// sit below every one of its snapshots). Eviction pops snapshots,
/// refreshing stale ones, until one matches its live score — provably the
/// true minimum under the invariant above — which keeps min-eviction
/// exact at amortized O(log cap) while bounded mode keeps pace with the
/// exact hash map.
class TopCKAggregator final : public ScoreAggregator {
 public:
  /// capacity = c·k. `admit_epsilon` is the eviction hysteresis margin
  /// (MelopprConfig::topck_epsilon): a full table evicts its minimum only
  /// when the challenger beats it by more than ε·|min|; challengers inside
  /// the margin are dropped (counted by margin_drops(), fed into
  /// eviction_bound()), which cuts evict/readmit churn on scores within
  /// noise of each other. ε = 0 (default) is strict min-eviction,
  /// bit-identical to the pre-hysteresis table. Throws
  /// std::invalid_argument when capacity is zero or ε is negative/NaN.
  explicit TopCKAggregator(std::size_t capacity, double admit_epsilon = 0.0);

  void add(graph::NodeId node, double delta) override;
  [[nodiscard]] std::vector<ScoredNode> top(std::size_t k) const override;
  [[nodiscard]] std::size_t entries() const override { return slots_.size(); }
  [[nodiscard]] std::size_t bytes() const override;
  void clear() override;

  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  /// Number of evictions performed (a fidelity diagnostic: zero evictions
  /// means the table behaved exactly like the exact aggregator).
  [[nodiscard]] std::size_t evictions() const override { return evictions_; }

  /// Largest score ever displaced (evicted entry or dropped delta): any
  /// node whose every individual contribution exceeds this bound is
  /// guaranteed resident. -inf while nothing has been displaced. The
  /// certificate holds at any ε — a challenger dropped inside the
  /// hysteresis margin is recorded here at its own (possibly above-min)
  /// value, so the bound still dominates everything ever displaced.
  [[nodiscard]] double eviction_bound() const { return bound_; }

  /// Challengers that beat the minimum but fell inside the ε margin and
  /// were dropped instead of evicting (always 0 when ε = 0) — the churn
  /// the hysteresis removed.
  [[nodiscard]] std::size_t margin_drops() const { return margin_drops_; }
  [[nodiscard]] double admit_epsilon() const { return epsilon_; }

 private:
  struct Slot {
    graph::NodeId node;
    double score;
  };
  /// (score snapshot, slot) — refreshed lazily at eviction time.
  struct HeapEntry {
    double key;
    std::uint32_t slot;
  };
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key;
  }
  /// Settles the lazy heap until its front is an accurate snapshot and
  /// returns that slot — the true minimum (the entry stays in the heap).
  std::uint32_t settle_min();
  /// Discards every stale snapshot by rebuilding from the live slots,
  /// O(cap) — the growth guard that keeps the heap (and with it the
  /// advertised c·k memory envelope) bounded under snapshot churn.
  void rebuild_heap();
  /// Pushes a snapshot, rebuilding first when the heap has outgrown a
  /// small multiple of the capacity.
  void push_snapshot(double key, std::uint32_t slot);
  /// Re-validates min_slot_/min_score_ if needed. A cached minimum makes
  /// the drop path (most full-table adds) entirely heap-free: a drop
  /// cannot change the minimum, so the cache survives it.
  void refresh_min();

  std::size_t capacity_;
  double epsilon_;
  std::size_t evictions_ = 0;
  std::size_t margin_drops_ = 0;
  double bound_ = -std::numeric_limits<double>::infinity();
  bool min_valid_ = false;
  std::uint32_t min_slot_ = 0;
  double min_score_ = 0.0;
  std::unordered_map<graph::NodeId, std::uint32_t> index_;  ///< node → slot
  std::vector<Slot> slots_;      ///< live entries, dense
  std::vector<HeapEntry> heap_;  ///< lazy min-heap over live scores
};

/// Exact aggregation sharded across `stripes` independent score maps, each
/// behind its own mutex (stripe = hash(node) % stripes). add() is safe from
/// any number of threads and contends only within a stripe; sums are exact
/// because every node lives in exactly one stripe, but the *order* in which
/// concurrent deltas land is scheduling-dependent, so totals can differ
/// from a serial run by floating-point rounding (~1e-15 relative). The
/// read-side calls (top/entries/bytes/clear) lock every stripe and must not
/// race in-flight add() bursts the caller still awaits.
class StripedAggregator final : public ScoreAggregator {
 public:
  /// Throws std::invalid_argument when `stripes` is zero.
  explicit StripedAggregator(std::size_t stripes = 16);

  void add(graph::NodeId node, double delta) override;
  [[nodiscard]] std::vector<ScoredNode> top(std::size_t k) const override;
  [[nodiscard]] std::size_t entries() const override;
  [[nodiscard]] std::size_t bytes() const override;
  void clear() override;

  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }

 private:
  struct Stripe {
    mutable util::Mutex mu;
    ppr::ScoreMap scores MELOPPR_GUARDED_BY(mu);
  };
  [[nodiscard]] Stripe& stripe_for(graph::NodeId node) const {
    return *stripes_[static_cast<std::size_t>(node) % stripes_.size()];
  }

  /// unique_ptr keeps Stripe addresses stable and sidesteps mutex's
  /// non-movability.
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Builds the aggregator for a serial reduction schedule (Engine::query's
/// DFS drain, the pipeline's deterministic task-order reduction, and the
/// per-query replay of the stealing batch): an exact map, or the bounded
/// c·k table whose results are bit-identical to the serial engine for the
/// same operation order. `epsilon` is the bounded table's eviction
/// hysteresis (MelopprConfig::topck_epsilon; ignored in exact mode).
[[nodiscard]] std::unique_ptr<ScoreAggregator> make_serial_aggregator(
    AggregationMode mode, std::size_t k, std::size_t c,
    double epsilon = 0.0);

/// Builds the aggregator for concurrent streaming add() from many worker
/// threads (the pipeline's non-deterministic reduction): mutex-striped
/// exact maps, or the sharded concurrent bounded table. `ways` is the
/// stripe/shard count (0 → implementation default); `epsilon` the bounded
/// table's eviction hysteresis (ignored in exact mode).
[[nodiscard]] std::unique_ptr<ScoreAggregator> make_concurrent_aggregator(
    AggregationMode mode, std::size_t k, std::size_t c, std::size_t ways,
    double epsilon = 0.0);

/// Per-worker arena of reusable serial aggregators (ROADMAP: "Aggregator
/// reuse across a batch"). Constructing and tearing down an aggregator per
/// query reallocates its table every time; clear() on a reused instance
/// keeps the storage (hash-map buckets for exact arenas, the fixed BRAM
/// slots for bounded ones), so a worker's second query aggregates into
/// already-warm memory. acquire(slot) hands out an exclusive lease on one
/// aggregator, cleared and ready; the preferred slot is the worker index,
/// so within one batch there is no contention at all — the locking only
/// matters when several batches share a pipeline.
class AggregatorPool {
 public:
  using Factory = std::function<std::unique_ptr<ScoreAggregator>()>;

  /// `factory` builds every slot's arena eagerly at construction
  /// (default: exact arenas) — an oversized pool pays its full storage up
  /// front, bounded arenas included. Throws std::invalid_argument when
  /// `slots` is zero.
  explicit AggregatorPool(std::size_t slots, Factory factory = {});

  /// Exclusive lease; releases the slot on destruction. The aggregator
  /// reference stays valid for the lease's lifetime only.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), slot_(other.slot_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    [[nodiscard]] ScoreAggregator& operator*() const;
    [[nodiscard]] ScoreAggregator* operator->() const;

   private:
    friend class AggregatorPool;
    Lease(AggregatorPool* pool, std::size_t slot)
        : pool_(pool), slot_(slot) {}
    AggregatorPool* pool_;
    std::size_t slot_;
  };

  /// Returns a cleared aggregator, preferring slot `preferred % slots` and
  /// falling back to any free slot (blocking on the preferred one only when
  /// every slot is busy).
  [[nodiscard]] Lease acquire(std::size_t preferred);

  [[nodiscard]] std::size_t slots() const { return arenas_.size(); }
  /// Total leases handed out (each beyond the first per slot reused a warm
  /// arena instead of allocating a fresh map).
  [[nodiscard]] std::size_t acquires() const { return acquires_.load(); }
  /// acquires() minus first-use-per-slot: queries that skipped the
  /// construct/teardown malloc churn entirely.
  [[nodiscard]] std::size_t reuses() const { return reuses_.load(); }

 private:
  void release(std::size_t slot) MELOPPR_EXCLUDES(mu_);

  Factory factory_;
  /// Built once at construction and never resized; a leased arena is
  /// accessed unlocked — the lease's exclusivity (busy_[slot]) is the
  /// synchronization, the same reasoning as a checked-out farm device.
  std::vector<std::unique_ptr<ScoreAggregator>> arenas_;
  util::Mutex mu_;
  std::vector<unsigned char> busy_ MELOPPR_GUARDED_BY(mu_);
  std::vector<unsigned char> used_once_ MELOPPR_GUARDED_BY(mu_);
  std::condition_variable slot_free_;
  std::atomic<std::size_t> acquires_{0};
  std::atomic<std::size_t> reuses_{0};
};

}  // namespace meloppr::core
