#include "core/concurrent_topck.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/ball_cache.hpp"  // splitmix64
#include "ppr/topk.hpp"

namespace meloppr::core {

namespace {

constexpr double kNoBound = -std::numeric_limits<double>::infinity();

}  // namespace

ConcurrentTopCKAggregator::ConcurrentTopCKAggregator(std::size_t capacity,
                                                     std::size_t shards,
                                                     double admit_epsilon)
    : capacity_(capacity), epsilon_(admit_epsilon) {
  if (capacity == 0) {
    throw std::invalid_argument(
        "ConcurrentTopCKAggregator: capacity must be positive");
  }
  if (!(admit_epsilon >= 0.0)) {  // rejects negatives and NaN
    throw std::invalid_argument(
        "ConcurrentTopCKAggregator: admit_epsilon must be non-negative");
  }
  if (shards == 0) shards = 8;
  shards = std::min(shards, capacity);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Σ shard capacities == capacity exactly, so the total entry bound is
    // the BRAM budget even when capacity % shards != 0. Locked so the
    // fresh shard's guarded fields are initialized under its capability
    // (no other thread can see it yet; this is for the analysis).
    util::WriterLock lock(shard->mu);
    shard->cap = capacity / shards + (s < capacity % shards ? 1 : 0);
    shard->slots = std::make_unique<Slot[]>(shard->cap);
    shard->index.reserve(shard->cap);
    shard->bound = kNoBound;
    shards_.push_back(std::move(shard));
  }
}

void ConcurrentTopCKAggregator::rebuild_heap_locked(Shard& shard) {
  shard.heap.clear();
  shard.heap.reserve(2 * shard.cap);
  for (std::uint32_t s = 0; s < shard.size; ++s) {
    shard.heap.push_back(
        {shard.slots[s].score.load(std::memory_order_relaxed), s});
  }
  std::make_heap(shard.heap.begin(), shard.heap.end(), heap_after);
}

void ConcurrentTopCKAggregator::push_snapshot_locked(Shard& shard, double key,
                                                     std::uint32_t slot) {
  if (shard.heap.size() > 4 * shard.cap + 8) {
    rebuild_heap_locked(shard);
    return;  // the rebuild snapshots every live slot, `slot` included
  }
  shard.heap.push_back({key, slot});
  std::push_heap(shard.heap.begin(), shard.heap.end(), heap_after);
}

ConcurrentTopCKAggregator::Shard& ConcurrentTopCKAggregator::shard_for(
    graph::NodeId node) const {
  // High bits pick the shard; the index's hash consumes the low bits, so
  // the two uses stay decorrelated (same scheme as ShardedBallCache).
  return *shards_[(splitmix64(node) >> 40) % shards_.size()];
}

void ConcurrentTopCKAggregator::add(graph::NodeId node, double delta) {
  Shard& shard = shard_for(node);
  if (delta >= 0.0) {
    // Fast path: resident node, in-place BRAM update. The shared lock only
    // fences out structural changes; concurrent resident updates all
    // proceed here in parallel, ordered by the atomic fetch_add. Positive
    // updates leave their heap snapshots stale *low*, which lazy eviction
    // tolerates (pop_min_locked refreshes them), so no heap traffic here.
    util::ReaderLock lock(shard.mu);
    auto it = shard.index.find(node);
    if (it != shard.index.end()) {
      shard.slots[it->second].score.fetch_add(delta,
                                              std::memory_order_relaxed);
      fast_adds_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  util::WriterLock lock(shard.mu);
  auto it = shard.index.find(node);
  if (it != shard.index.end()) {
    // Resident, but either we lost an insert race or the delta is negative.
    // A decrease must leave a fresh snapshot behind, or the lazy heap could
    // lose track of the true minimum (see pop_min_locked).
    const auto slot = it->second;
    const double updated =
        shard.slots[slot].score.fetch_add(delta, std::memory_order_relaxed) +
        delta;
    if (delta < 0.0) {
      push_snapshot_locked(shard, updated, slot);
    }
    return;
  }
  insert_locked(shard, node, delta);
}

std::uint32_t ConcurrentTopCKAggregator::pop_min_locked(Shard& shard) {
  // Lazy heap: positive fetch_adds never touch it, so keys go stale *low*
  // and slots may have been re-tenanted since a key was pushed; decreases
  // push a fresh snapshot (add()'s structural path), so no live score ever
  // sits below every one of its snapshots. Popping in key order therefore
  // meets only stale snapshots before the first accurate one — which is
  // the true shard minimum at this instant. Under the exclusive lock live
  // scores are stable, so refreshing a popped entry with its live score
  // terminates: a refreshed entry matches when popped again.
  //
  // TopCKAggregator::settle_min (aggregator.cpp) carries the serial copy
  // of this invariant over plain scores — a change to the settle/refresh
  // rule or the growth guard there must be mirrored here.
  for (;;) {
    if (shard.heap.size() > 4 * shard.cap + 8 || shard.heap.empty()) {
      // Growth guard (refresh churn) and cold start.
      rebuild_heap_locked(shard);
    }
    std::pop_heap(shard.heap.begin(), shard.heap.end(), heap_after);
    const HeapEntry e = shard.heap.back();
    shard.heap.pop_back();
    const double live =
        shard.slots[e.slot].score.load(std::memory_order_relaxed);
    if (live == e.key) return e.slot;
    shard.heap.push_back({live, e.slot});
    std::push_heap(shard.heap.begin(), shard.heap.end(), heap_after);
  }
}

void ConcurrentTopCKAggregator::insert_locked(Shard& shard,
                                              graph::NodeId node,
                                              double delta) {
  if (shard.size < shard.cap) {
    const auto slot = static_cast<std::uint32_t>(shard.size++);
    shard.slots[slot].node = node;
    shard.slots[slot].score.store(delta, std::memory_order_relaxed);
    shard.index.emplace(node, slot);
    push_snapshot_locked(shard, delta, slot);
    return;
  }
  // Full: the new score competes with the shard minimum, mirroring the
  // serial table (whose minimum is global — the per-shard boundary is the
  // documented divergence).
  const std::uint32_t victim = pop_min_locked(shard);
  const double victim_score =
      shard.slots[victim].score.load(std::memory_order_relaxed);
  if (delta <= victim_score + epsilon_ * std::abs(victim_score)) {
    // Dropped — the precision cost of small c, or (inside the ε margin)
    // the churn the hysteresis suppresses. The popped entry is still
    // live; push it back.
    shard.bound = std::max(shard.bound, delta);
    if (delta > victim_score) ++shard.margin_drops;
    push_snapshot_locked(shard, victim_score, victim);
    return;
  }
  shard.bound = std::max(shard.bound, victim_score);
  ++shard.evictions;
  shard.index.erase(shard.slots[victim].node);
  shard.slots[victim].node = node;
  shard.slots[victim].score.store(delta, std::memory_order_relaxed);
  shard.index.emplace(node, victim);
  push_snapshot_locked(shard, delta, victim);
}

std::vector<ScoredNode> ConcurrentTopCKAggregator::top(std::size_t k) const {
  std::vector<ScoredNode> all;
  all.reserve(entries());
  for (const auto& shard : shards_) {
    util::ReaderLock lock(shard->mu);
    for (std::size_t s = 0; s < shard->size; ++s) {
      all.push_back({shard->slots[s].node,
                     shard->slots[s].score.load(std::memory_order_relaxed)});
    }
  }
  return ppr::top_k(std::move(all), k);
}

std::size_t ConcurrentTopCKAggregator::entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::ReaderLock lock(shard->mu);
    n += shard->size;
  }
  return n;
}

std::size_t ConcurrentTopCKAggregator::bytes() const {
  // Same fixed BRAM model as TopCKAggregator: `capacity` slots of
  // (node id, 32-bit score), regardless of occupancy.
  return capacity_ * (sizeof(graph::NodeId) + sizeof(std::uint32_t));
}

std::size_t ConcurrentTopCKAggregator::evictions() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::ReaderLock lock(shard->mu);
    n += shard->evictions;
  }
  return n;
}

std::size_t ConcurrentTopCKAggregator::margin_drops() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::ReaderLock lock(shard->mu);
    n += shard->margin_drops;
  }
  return n;
}

double ConcurrentTopCKAggregator::eviction_bound() const {
  double bound = kNoBound;
  for (const auto& shard : shards_) {
    util::ReaderLock lock(shard->mu);
    bound = std::max(bound, shard->bound);
  }
  return bound;
}

void ConcurrentTopCKAggregator::clear() {
  for (const auto& shard : shards_) {
    util::WriterLock lock(shard->mu);
    shard->index.clear();
    shard->heap.clear();
    shard->size = 0;
    shard->evictions = 0;
    shard->margin_drops = 0;
    shard->bound = kNoBound;
  }
  fast_adds_.store(0, std::memory_order_relaxed);
}

}  // namespace meloppr::core
