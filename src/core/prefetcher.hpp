// Stage-lookahead BFS prefetcher — the PS/PL overlap of Fig. 4 the paper
// leaves serial.
//
// The moment a stage task finishes, select_next_stage has named the roots of
// its stage-s+1 children — but their diffusions cannot start until the rest
// of stage s drains. That window is exactly when the host's cores are idle
// (or blocked on the device farm). The prefetcher spends it extracting the
// next stage's balls into the ShardedBallCache on dedicated host threads,
// so by the time a child task is dispatched, its BFS is a cache hit and the
// CPU-side ball preparation (Fig. 7's dominant light-blue bars) has been
// hidden behind device diffusion instead of serialized in front of it.
//
// The prefetcher is deliberately decoupled from scheduling policy: it is a
// fire-and-forget queue of (cache, root, radius) requests. Correctness never
// depends on it — a dropped or late prefetch only means the demand fetch
// pays the BFS itself, and the cache's in-flight dedup guarantees a demand
// fetch racing a prefetch of the same ball never extracts twice.
//
// Requests come in two classes with strict priority between them (ROADMAP
// "Root-prefetch queue priority"): stage lookahead (the children of a task
// that just finished — needed within the CURRENT query, often milliseconds
// from claim) always drains before cross-query root lookahead (speculation
// about upcoming seeds, useful whole queries from now). A wide adaptive
// root window can therefore never queue ahead of, and delay, the
// stage-children prefetches the in-flight query is about to demand.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/sharded_ball_cache.hpp"
#include "graph/graph.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr::core {

class BallPrefetcher {
 public:
  /// Spawns `threads` dedicated BFS threads (≥ 1 enforced).
  ///
  /// `pause` (optional) is the farm-wait meter's gate: while it returns
  /// true, workers leave queued requests untouched and re-check every few
  /// hundred microseconds (pause-state changes carry no notification).
  /// The pipeline passes "shared offloading backend reports zero active
  /// dispatches" here, so lookahead BFS yields the host's cores to the
  /// demand path whenever nobody is blocked on the device side. The
  /// predicate must be callable from any prefetch thread without locks
  /// held (it is invoked under the queue mutex) and must outlive the
  /// prefetcher. Pausing never drops requests — enqueue/quiesce semantics
  /// are unchanged.
  explicit BallPrefetcher(std::size_t threads,
                          std::function<bool()> pause = {});
  BallPrefetcher(const BallPrefetcher&) = delete;
  BallPrefetcher& operator=(const BallPrefetcher&) = delete;
  ~BallPrefetcher();

  /// Requests the ball (root, radius) be pulled into `cache`. Returns
  /// immediately; the extraction happens on a prefetch thread. `cache`
  /// must stay alive until quiesce() returns — the pipeline quiesces at
  /// the end of every query()/query_batch(), so callers only need the
  /// cache to outlive the query call, not the pipeline. `kind` is the
  /// FetchKind the worker passes to the cache: plain stage lookahead by
  /// default, or one of the root-prefetch kinds so the cache can record
  /// (and, for kPinnedRootPrefetch, pin) cross-query speculation — and it
  /// also selects the queue class: root-prefetch requests wait in a
  /// separate queue that workers only touch when no stage-lookahead
  /// request is pending. `claim_priority` (root kinds) is the seed's
  /// stream index, forwarded to the cache's pin-table admission.
  void enqueue(ShardedBallCache& cache, graph::NodeId root, unsigned radius,
               ShardedBallCache::FetchKind kind =
                   ShardedBallCache::FetchKind::kPrefetch,
               std::size_t claim_priority =
                   ShardedBallCache::kNoClaimPriority);

  /// Discards queued (not yet started) requests.
  void drop_pending();

  /// drop_pending() plus a wait for in-flight requests to finish: after
  /// this returns, no prefetch thread touches any cache passed earlier.
  /// Bounded by one ball extraction per prefetch thread.
  void quiesce();

  // --- statistics ---
  [[nodiscard]] std::size_t issued() const { return issued_.load(); }
  [[nodiscard]] std::size_t completed() const { return completed_.load(); }
  /// Requests whose ball was not already cached, i.e. BFS work actually
  /// moved off the demand path.
  [[nodiscard]] std::size_t balls_fetched() const {
    return balls_fetched_.load();
  }
  /// Requests whose extraction threw (flaky extractor, storage fault). The
  /// worker thread survives and keeps draining — a prefetch is advisory,
  /// so the failure is counted, not propagated; the demand fetch
  /// re-attempts the ball with the engine's own retry budget.
  [[nodiscard]] std::size_t failures() const { return failures_.load(); }
  /// BFS seconds executed on prefetch threads — extraction time hidden from
  /// (run concurrently with) the demand path.
  [[nodiscard]] double hidden_seconds() const;

  /// Cumulative wall seconds the prefetch threads spent processing
  /// requests (including cache-hit requests that ran no BFS, unlike
  /// hidden_seconds). The adaptive root-prefetch controller differentiates
  /// this against wall time to estimate the threads' idle fraction:
  /// busy ≈ threads·wall means lookahead is saturated, busy ≈ 0 means
  /// capacity is going unused. Pause-gated time (the farm-wait meter)
  /// intentionally counts as idle.
  [[nodiscard]] double busy_seconds() const;

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }

 private:
  struct Request {
    ShardedBallCache* cache;
    graph::NodeId root;
    unsigned radius;
    ShardedBallCache::FetchKind kind;
    std::size_t claim_priority;
  };

  void worker_loop() MELOPPR_EXCLUDES(mu_);

  std::function<bool()> pause_;  ///< farm-wait meter gate (may be empty)
  mutable util::Mutex mu_;
  /// Two-class queue: stage lookahead strictly before speculative roots.
  /// Workers drain stage_queue_ first; root_queue_ is only popped when no
  /// stage request is pending.
  std::deque<Request> stage_queue_ MELOPPR_GUARDED_BY(mu_);
  std::deque<Request> root_queue_ MELOPPR_GUARDED_BY(mu_);
  std::condition_variable work_available_;
  std::condition_variable idle_;      ///< signaled when in-flight drains
  bool stop_ MELOPPR_GUARDED_BY(mu_) = false;
  std::size_t in_flight_ MELOPPR_GUARDED_BY(mu_) = 0;
  double hidden_seconds_ MELOPPR_GUARDED_BY(mu_) = 0.0;
  double busy_seconds_ MELOPPR_GUARDED_BY(mu_) = 0.0;

  std::atomic<std::size_t> issued_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> balls_fetched_{0};
  std::atomic<std::size_t> failures_{0};

  std::vector<std::thread> workers_;
};

}  // namespace meloppr::core
