#include "core/selector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::core {

void Selection::validate() const {
  switch (mode) {
    case Mode::kRatio:
      if (ratio <= 0.0 || ratio > 1.0) {
        throw std::invalid_argument("Selection: ratio must be in (0,1]");
      }
      break;
    case Mode::kCount:
      if (count == 0) {
        throw std::invalid_argument("Selection: count must be positive");
      }
      break;
    case Mode::kThreshold:
      if (threshold < 0.0) {
        throw std::invalid_argument("Selection: threshold must be >= 0");
      }
      break;
    case Mode::kAll:
      break;
  }
}

std::string Selection::describe() const {
  std::ostringstream os;
  switch (mode) {
    case Mode::kRatio:
      os << "ratio=" << ratio * 100.0 << "%";
      break;
    case Mode::kCount:
      os << "count=" << count;
      break;
    case Mode::kThreshold:
      os << "threshold=" << threshold;
      break;
    case Mode::kAll:
      os << "all";
      break;
  }
  return os.str();
}

std::vector<SelectedNode> select_next_stage(std::span<const double> residual,
                                            const Selection& policy) {
  policy.validate();

  std::vector<SelectedNode> nonzero;
  nonzero.reserve(residual.size() / 4);
  for (std::size_t v = 0; v < residual.size(); ++v) {
    MELO_CHECK_MSG(residual[v] >= 0.0, "negative residual at local " << v);
    if (residual[v] > 0.0) {
      nonzero.push_back({static_cast<NodeId>(v), residual[v]});
    }
  }
  const auto better = [](const SelectedNode& a, const SelectedNode& b) {
    if (a.residual != b.residual) return a.residual > b.residual;
    return a.local < b.local;
  };

  std::size_t keep = nonzero.size();
  switch (policy.mode) {
    case Selection::Mode::kAll:
      break;
    case Selection::Mode::kRatio:
      // The paper's x-axis is "percentage of next-stage nodes" relative to
      // the stage-1 ball size, so the quota is computed over the whole
      // residual vector, not just its non-zero support.
      keep = std::min<std::size_t>(
          nonzero.size(),
          static_cast<std::size_t>(std::ceil(
              policy.ratio * static_cast<double>(residual.size()))));
      break;
    case Selection::Mode::kCount:
      keep = std::min(nonzero.size(), policy.count);
      break;
    case Selection::Mode::kThreshold: {
      std::size_t above = 0;
      for (const auto& sn : nonzero) {
        if (sn.residual > policy.threshold) ++above;
      }
      keep = above;
      break;
    }
  }

  if (keep < nonzero.size()) {
    std::nth_element(nonzero.begin(),
                     nonzero.begin() + static_cast<std::ptrdiff_t>(keep),
                     nonzero.end(), better);
    nonzero.resize(keep);
  }
  std::sort(nonzero.begin(), nonzero.end(), better);
  return nonzero;
}

}  // namespace meloppr::core
