#include "core/selector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::core {

void Selection::validate() const {
  switch (mode) {
    case Mode::kRatio:
      if (ratio <= 0.0 || ratio > 1.0) {
        throw std::invalid_argument("Selection: ratio must be in (0,1]");
      }
      break;
    case Mode::kCount:
      if (count == 0) {
        throw std::invalid_argument("Selection: count must be positive");
      }
      break;
    case Mode::kThreshold:
      if (threshold < 0.0) {
        throw std::invalid_argument("Selection: threshold must be >= 0");
      }
      break;
    case Mode::kAll:
      break;
  }
}

std::string Selection::describe() const {
  std::ostringstream os;
  switch (mode) {
    case Mode::kRatio:
      os << "ratio=" << ratio * 100.0 << "%";
      break;
    case Mode::kCount:
      os << "count=" << count;
      break;
    case Mode::kThreshold:
      os << "threshold=" << threshold;
      break;
    case Mode::kAll:
      os << "all";
      break;
  }
  return os.str();
}

std::vector<SelectedNode> select_next_stage(std::span<const double> residual,
                                            const Selection& policy) {
  policy.validate();

  std::vector<SelectedNode> nonzero;
  nonzero.reserve(residual.size() / 4);
  for (std::size_t v = 0; v < residual.size(); ++v) {
    const double r = residual[v];
    MELO_CHECK_MSG(r >= 0.0 && std::isfinite(r),
                   "invalid residual " << r << " at local " << v);
    // Zero and denormal residuals are never worth a next-stage diffusion
    // (a denormal mass underflows to nothing after one α-scaling step), and
    // the engine's stage tasks require strictly positive normal masses —
    // filter here so the selector's postcondition, checked below, holds.
    if (std::fpclassify(r) != FP_NORMAL) continue;
    nonzero.push_back({static_cast<NodeId>(v), r});
  }
  const auto better = [](const SelectedNode& a, const SelectedNode& b) {
    if (a.residual != b.residual) return a.residual > b.residual;
    return a.local < b.local;
  };

  std::size_t keep = nonzero.size();
  switch (policy.mode) {
    case Selection::Mode::kAll:
      break;
    case Selection::Mode::kRatio:
      // The paper's x-axis is "percentage of next-stage nodes" relative to
      // the stage-1 ball size, so the quota is computed over the whole
      // residual vector, not just its non-zero support.
      keep = std::min<std::size_t>(
          nonzero.size(),
          static_cast<std::size_t>(std::ceil(
              policy.ratio * static_cast<double>(residual.size()))));
      break;
    case Selection::Mode::kCount:
      keep = std::min(nonzero.size(), policy.count);
      break;
    case Selection::Mode::kThreshold: {
      std::size_t above = 0;
      for (const auto& sn : nonzero) {
        if (sn.residual > policy.threshold) ++above;
      }
      keep = above;
      break;
    }
  }

  if (keep < nonzero.size()) {
    std::nth_element(nonzero.begin(),
                     nonzero.begin() + static_cast<std::ptrdiff_t>(keep),
                     nonzero.end(), better);
    nonzero.resize(keep);
  }
  std::sort(nonzero.begin(), nonzero.end(), better);
  for (const SelectedNode& sn : nonzero) {
    // Postcondition the engine relies on instead of aborting mid-query: a
    // selected residual is a valid stage-task mass.
    MELO_CHECK_MSG(sn.residual > 0.0 && std::isnormal(sn.residual),
                   "selected non-positive/denormal residual " << sn.residual
                                                              << " at local "
                                                              << sn.local);
  }
  return nonzero;
}

}  // namespace meloppr::core
