#include "core/engine.hpp"

#include <cmath>
#include <optional>

#include "graph/bfs.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

Engine::Engine(const graph::Graph& g, MelopprConfig config)
    : graph_(&g), config_(std::move(config)) {
  config_.validate();
}

QueryResult Engine::query(graph::NodeId seed) const {
  CpuBackend backend(config_.alpha);
  ExactAggregator aggregator;
  return query(seed, backend, aggregator);
}

QueryResult Engine::query(graph::NodeId seed, DiffusionBackend& backend,
                          ScoreAggregator& aggregator) const {
  aggregator.clear();
  QueryResult result;
  result.stats.stages.resize(config_.num_stages());

  RecursionContext ctx{backend, aggregator, result.stats, MemoryMeter{}};

  Timer total;
  run_stage(ctx, seed, /*mass=*/1.0, /*stage=*/0);
  result.top = aggregator.top(config_.k);
  result.stats.total_seconds = total.elapsed_seconds();

  result.stats.aggregator_bytes = aggregator.bytes();
  result.stats.peak_bytes = ctx.meter.peak_bytes();
  return result;
}

void Engine::run_stage(RecursionContext& ctx, graph::NodeId root_global,
                       double mass, std::size_t stage) const {
  MELO_CHECK(stage < config_.num_stages());
  MELO_CHECK(mass > 0.0);
  const unsigned length = config_.stage_lengths[stage];
  StageStats& st = ctx.stats.stages[stage];

  // --- 1. CPU-side sub-graph preparation (the PS role in Fig. 4). ---
  // With a ball cache installed, extraction is served (and charged) by the
  // cache; otherwise the ball is owned by this stage frame.
  Timer bfs_timer;
  std::optional<graph::Subgraph> owned;
  const graph::Subgraph* ball_ptr;
  if (cache_ != nullptr) {
    ball_ptr = &cache_->get(root_global, length);
    ctx.meter.set("ball_cache", cache_->bytes());
  } else {
    owned.emplace(graph::extract_ball(*graph_, root_global, length));
    ball_ptr = &*owned;
  }
  const graph::Subgraph& ball = *ball_ptr;
  st.bfs_seconds += bfs_timer.elapsed_seconds();

  // Next-stage work list: (global id, in-flight mass) pairs. Populated
  // inside the block below, consumed after the ball has been freed.
  std::vector<std::pair<graph::NodeId, double>> children;
  {
    // Ball + device working set live only within this block; freeing them
    // before recursion keeps the peak at "one ball at a time" — the memory
    // claim of the paper, here verified by the meter rather than assumed.
    ScopedAllocation ball_mem(ctx.meter, "ball",
                              owned.has_value() ? ball.bytes() : 0);
    ScopedAllocation work_mem(
        ctx.meter, "device",
        ctx.backend.working_bytes(ball.num_nodes(), ball.num_edges()));

    // --- 2. Diffusion on the device (the PL role in Fig. 4). ---
    BackendResult diff = ctx.backend.run(ball, mass, length);
    MELO_CHECK(diff.accumulated.size() == ball.num_nodes());
    MELO_CHECK(diff.inflight.size() == ball.num_nodes());

    st.balls += 1;
    st.max_ball_nodes = std::max(st.max_ball_nodes, ball.num_nodes());
    st.max_ball_edges = std::max(st.max_ball_edges, ball.num_edges());
    st.total_ball_nodes += ball.num_nodes();
    st.total_ball_edges += ball.num_edges();
    st.compute_seconds += diff.compute_seconds;
    st.transfer_seconds += diff.transfer_seconds;
    st.edge_ops += diff.edge_ops;

    // --- 3. Aggregate π_a into the global score structure (Eq. 8, +GD_l
    //        term; the input mass was pre-scaled so no factor is needed). ---
    for (graph::NodeId local = 0; local < ball.num_nodes(); ++local) {
      if (diff.accumulated[local] != 0.0) {
        ctx.aggregator.add(ball.to_global(local), diff.accumulated[local]);
      }
    }
    ctx.meter.set("aggregator", ctx.aggregator.bytes());

    // --- 4. Select next-stage nodes from the in-flight mass (Sec. IV-D). ---
    if (stage + 1 < config_.num_stages()) {
      const std::vector<SelectedNode> selected =
          select_next_stage(diff.inflight, config_.selection);
      st.selected += selected.size();
      for (double r : diff.inflight) {
        if (r > 0.0) ++st.candidates;
      }
      children.reserve(selected.size());
      for (const SelectedNode& sn : selected) {
        children.emplace_back(ball.to_global(sn.local), sn.residual);
      }
    }
  }

  // Drop the owned ball before recursing — the "one ball at a time" peak
  // is real, not just a meter convention. (ball_ptr/ball dangle past here.)
  owned.reset();

  if (children.empty()) return;

  // --- Eq. 8: re-diffuse the selected in-flight mass one stage deeper. ---
  ScopedAllocation pending_mem(
      ctx.meter, "pending",
      children.size() * sizeof(std::pair<graph::NodeId, double>));
  for (const auto& [child_global, child_mass] : children) {
    // Remove the α^l·r mass that GD_l left parked at the node; the child
    // diffusion will redistribute it (and put some of it right back).
    ctx.aggregator.add(child_global, -child_mass);
    run_stage(ctx, child_global, child_mass, stage + 1);
  }
  ctx.meter.set("aggregator", ctx.aggregator.bytes());
}

}  // namespace meloppr::core
