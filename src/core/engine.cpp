#include "core/engine.hpp"

#include <cmath>
#include <optional>

#include "graph/bfs.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

Engine::Engine(const graph::Graph& g, MelopprConfig config)
    : graph_(&g), config_(std::move(config)) {
  config_.validate();
}

QueryResult Engine::query(graph::NodeId seed) const {
  // Honors MelopprConfig::numerics: float64 by default, or the fixed-point
  // host path with a graph-derived quantizer.
  const std::unique_ptr<DiffusionBackend> backend =
      make_cpu_backend(*graph_, config_);
  const std::unique_ptr<ScoreAggregator> aggregator = make_serial_aggregator(
      config_.aggregation, config_.k, config_.topck_c,
      config_.topck_epsilon);
  return query(seed, *backend, *aggregator);
}

QueryResult Engine::query(graph::NodeId seed, DiffusionBackend& backend,
                          ScoreAggregator& aggregator) const {
  aggregator.clear();
  QueryResult result;
  result.stats.stages.resize(config_.num_stages());
  MemoryMeter meter;

  Timer total;
  // Serial schedule: a LIFO work stack drained depth-first. Children are
  // pushed in reverse selection order so they pop in selection order; the
  // resulting aggregator operation sequence is exactly the one the original
  // recursive engine produced, so scores are bit-identical.
  std::vector<StageTask> stack;
  stack.push_back(make_root_task(seed));
  result.stats.graph_version = stack.back().version;
  meter.set("pending", vector_bytes(stack));
  while (!stack.empty()) {
    const StageTask task = stack.back();
    stack.pop_back();
    // A non-positive mass cannot move anything; skip the task rather than
    // abort the query (select_next_stage filters these, but a backend could
    // in principle emit one — degrade gracefully).
    if (!(task.mass > 0.0)) continue;

    StageOutcome out = run_task(task, backend, meter);
    result.stats.stages[task.stage].merge(out.stats);
    // A failed task re-diffused nothing: leave the parent's parked mass in
    // place (skipping the −mass with nothing added would corrupt scores)
    // and spawn no children. run_task never touches the aggregator, so
    // deferring the subtraction to here preserves the exact op order.
    if (out.failed) continue;

    // Eq. 8's −α^l·S^r term: remove the mass this task will re-diffuse
    // (the parent's GD_l left it parked at the root).
    if (task.stage > 0) aggregator.add(task.root, -task.mass);

    for (const auto& [node, delta] : out.contributions) {
      aggregator.add(node, delta);
    }
    meter.set("aggregator", aggregator.bytes());

    for (auto it = out.children.rbegin(); it != out.children.rend(); ++it) {
      stack.push_back(*it);
    }
    meter.set("pending", vector_bytes(stack));
    meter.set("stage_buffers", 0);
  }

  result.top = aggregator.top(config_.k);
  result.stats.total_seconds = total.elapsed_seconds();
  result.stats.diffusion_serial_seconds =
      result.stats.compute_seconds() + result.stats.transfer_seconds();
  result.stats.diffusion_makespan_seconds =
      result.stats.diffusion_serial_seconds;
  result.stats.threads_used = 1;

  result.stats.aggregator_bytes = aggregator.bytes();
  result.stats.aggregator_entries = aggregator.entries();
  result.stats.aggregator_evictions = aggregator.evictions();
  result.stats.peak_bytes = meter.peak_bytes();
  return result;
}

StageOutcome Engine::run_task(const StageTask& task, DiffusionBackend& backend,
                              MemoryMeter& meter) const {
  MELO_CHECK(task.stage < config_.num_stages());
  MELO_CHECK(task.mass > 0.0);
  const unsigned length = config_.stage_lengths[task.stage];
  StageOutcome out;
  out.stage = task.stage;
  StageStats& st = out.stats;

  // --- 1. CPU-side sub-graph preparation (the PS role in Fig. 4). ---
  // With a ball cache installed (sharded wins over the single-threaded
  // one), extraction is served (and charged) by the cache; otherwise the
  // ball is owned by this task and freed on return. The sharded cache's
  // shared_ptr pins the ball against concurrent eviction for the scope of
  // this task. bfs_seconds is the wall time this task *waited* for its
  // ball — near zero on a cache hit, which is exactly how prefetching
  // shows up in the Fig. 7 split.
  // Extraction is retried against *environmental* failures (a flaky
  // extractor or storage layer) up to config_.extraction_attempts; caller
  // errors (std::invalid_argument — a bad seed is bad on every attempt)
  // and invariant violations (bugs) propagate immediately. A task whose
  // extraction fails past the budget returns failed instead of aborting
  // the whole query.
  Timer bfs_timer;
  std::optional<graph::Subgraph> owned;
  ShardedBallCache::BallPtr pinned;
  const graph::Subgraph* ball_ptr = nullptr;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (shared_cache_ != nullptr) {
        // task.version (the query's admission stamp) is the freshness
        // floor: the cache never serves this task a ball older than it.
        ShardedBallCache::Fetch fetch = shared_cache_->fetch(
            task.root, length, ShardedBallCache::FetchKind::kDemand,
            ShardedBallCache::kNoClaimPriority, task.version);
        fetch.hit ? ++st.cache_hits : ++st.cache_misses;
        if (fetch.pinned) ++st.cache_pin_hits;
        pinned = std::move(fetch.ball);
        ball_ptr = pinned.get();
        meter.set("ball_cache", shared_cache_->bytes());
      } else if (cache_ != nullptr) {
        const std::size_t hits_before = cache_->hits();
        ball_ptr = &cache_->get(task.root, length);
        cache_->hits() > hits_before ? ++st.cache_hits : ++st.cache_misses;
        meter.set("ball_cache", cache_->bytes());
      } else if (dynamic_ != nullptr) {
        // Cacheless dynamic extraction: the delta overlay serves the
        // current state directly (the serial reference path the
        // equivalence suite compares against a full rebuild).
        owned.emplace(dynamic_->extract_ball(task.root, length));
        ball_ptr = &*owned;
      } else {
        owned.emplace(graph::extract_ball(*graph_, task.root, length));
        ball_ptr = &*owned;
      }
      break;
    } catch (const InvariantViolation&) {
      throw;
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      ++st.extraction_faults;
      if (attempt >= config_.extraction_attempts) {
        st.bfs_seconds += bfs_timer.elapsed_seconds();
        ++st.failed_balls;
        out.failed = true;
        return out;
      }
    }
  }
  const graph::Subgraph& ball = *ball_ptr;
  st.bfs_seconds += bfs_timer.elapsed_seconds();

  // Ball + device working set live only until this function returns; the
  // peak stays at "one ball at a time" (per worker) — the memory claim of
  // the paper, verified by the meter rather than assumed.
  ScopedAllocation ball_mem(meter, "ball",
                            owned.has_value() ? ball.bytes() : 0);
  ScopedAllocation work_mem(
      meter, "device",
      backend.working_bytes(ball.num_nodes(), ball.num_edges()));

  // --- 2. Diffusion on the device (the PL role in Fig. 4). ---
  BackendResult diff = backend.run(ball, task.mass, length);

  st.balls += 1;
  st.max_ball_nodes = std::max(st.max_ball_nodes, ball.num_nodes());
  st.max_ball_edges = std::max(st.max_ball_edges, ball.num_edges());
  st.total_ball_nodes += ball.num_nodes();
  st.total_ball_edges += ball.num_edges();
  st.compute_seconds += diff.compute_seconds;
  st.transfer_seconds += diff.transfer_seconds;
  st.edge_ops += diff.edge_ops;
  // Resilient-dispatch accounting: extra attempts, discarded late attempts,
  // and fallback-served runs this diffusion consumed.
  st.dispatch_retries += diff.attempts > 0 ? diff.attempts - 1 : 0;
  st.deadline_misses += diff.deadline_misses;
  if (diff.failed_over) ++st.failovers;

  if (!diff.ok()) {
    // Retry budget and failover both exhausted: this ball's contribution
    // is missing. The scheduler leaves the parent's parked mass in place
    // (see StageOutcome::failed), so scores stay a well-defined lower
    // bound instead of going negative at the root.
    ++st.failed_balls;
    out.failed = true;
    return out;
  }
  MELO_CHECK(diff.accumulated.size() == ball.num_nodes());
  MELO_CHECK(diff.inflight.size() == ball.num_nodes());

  // --- 3. Collect π_a contributions (Eq. 8, +GD_l term; the input mass was
  //        pre-scaled so no factor is needed). The scheduler owns their
  //        application so it can pick the reduction order. ---
  out.contributions.reserve(ball.num_nodes());
  for (graph::NodeId local = 0; local < ball.num_nodes(); ++local) {
    if (diff.accumulated[local] != 0.0) {
      out.contributions.emplace_back(ball.to_global(local),
                                     diff.accumulated[local]);
    }
  }

  // --- 4. Select next-stage nodes from the in-flight mass (Sec. IV-D). ---
  if (task.stage + 1 < config_.num_stages()) {
    const std::vector<SelectedNode> selected =
        select_next_stage(diff.inflight, config_.selection);
    st.selected += selected.size();
    for (double r : diff.inflight) {
      if (r > 0.0) ++st.candidates;
    }
    out.children.reserve(selected.size());
    for (const SelectedNode& sn : selected) {
      // Children inherit the admission stamp: every ball of one query
      // shares the same freshness floor.
      out.children.push_back({ball.to_global(sn.local), sn.residual,
                              task.stage + 1, task.version});
    }
  }
  // Charge the outcome buffers while the ball and device working set are
  // still live — they genuinely coexist here, so the peak must see the
  // overlap. The scheduler zeroes the category once it has consumed them.
  meter.set("stage_buffers",
            vector_bytes(out.contributions) + vector_bytes(out.children));
  return out;
}

}  // namespace meloppr::core
