// Thread-safe bounded top-c·k score table — the FPGA's BRAM aggregation
// strategy (Sec. V-B) made safe for the QueryPipeline's concurrent paths.
//
// The serial TopCKAggregator keeps the c·k best scores and evicts the
// minimum on overflow; it is what the accelerator's on-chip table does, but
// it cannot accept add() from several worker threads. This class is the
// concurrent counterpart:
//
//   * Sharding. The capacity is split across N shards (node → shard by a
//     splitmix64 mix), each with its own fixed slot arena, index, and
//     min-eviction state, so threads contend only within a shard. The
//     entry bound is enforced per shard (Σ shard capacities = capacity),
//     which means the eviction boundary is a per-shard minimum rather than
//     the global one — the memory bound is identical, the set of survivors
//     near the boundary can differ from the serial table's.
//
//   * Lock-free fast path. Positive updates to an already-resident node —
//     the common case once the table is warm, and the BRAM table's
//     in-place update — take a shared (never exclusive) lock and
//     fetch_add an atomic score: concurrent resident updates proceed in
//     parallel with no mutual exclusion and no heap traffic. Structural
//     changes (insert, eviction, clear) and the rare negative update
//     (Eq. 8's correction term, which must leave a heap snapshot behind)
//     take the shard's lock exclusively.
//
//   * Lazy min-heap eviction. Each shard keeps a min-heap of (score
//     snapshot, slot) pairs. Positive in-place fetch_adds leave snapshots
//     stale low; an eviction pops entries, refreshing stale ones, until a
//     snapshot matches its live score — by the push-on-decrease invariant
//     that entry is the true shard minimum — at amortized O(log cap),
//     with a rebuild guard that bounds heap growth at a small multiple of
//     the capacity.
//
// Determinism: a single thread draining adds in a fixed order always
// produces the same table. Under concurrent adds the admit/evict decisions
// depend on arrival order (scheduling), exactly like the striped exact
// aggregator's floating-point jitter — so the pipeline uses this class
// only on its concurrent streaming path. The bit-exact bounded path
// (query_batch) replays the serial DFS reduction order into a serial
// TopCKAggregator arena instead; see pipeline.hpp.
//
// Read-side contract (top/entries/bytes/evictions/clear): callers must not
// race add() bursts they still await — the same contract as
// StripedAggregator and ShardedBallCache.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aggregator.hpp"
#include "util/thread_annotations.hpp"

namespace meloppr::core {

class ConcurrentTopCKAggregator final : public ScoreAggregator {
 public:
  /// capacity = c·k entries total, split across `shards` sub-tables
  /// (shards is clamped to [1, capacity]; 0 picks a default of 8).
  /// `admit_epsilon` is the per-shard eviction hysteresis
  /// (MelopprConfig::topck_epsilon): a full shard evicts its minimum only
  /// when the challenger beats it by more than ε·|min|; nearer challengers
  /// are dropped (margin_drops()), cutting boundary churn. ε = 0 (default)
  /// is strict per-shard min-eviction. Throws std::invalid_argument when
  /// capacity is zero or ε is negative/NaN.
  explicit ConcurrentTopCKAggregator(std::size_t capacity,
                                     std::size_t shards = 0,
                                     double admit_epsilon = 0.0);

  /// Thread-safe. Positive deltas to resident nodes take the lock-free
  /// fast path (shared lock + atomic fetch_add); inserts, evictions, and
  /// negative deltas serialize per shard.
  void add(graph::NodeId node, double delta) override;

  [[nodiscard]] std::vector<ScoredNode> top(std::size_t k) const override;
  [[nodiscard]] std::size_t entries() const override;
  /// Fixed BRAM-model footprint, like TopCKAggregator: capacity × 8 bytes.
  [[nodiscard]] std::size_t bytes() const override;
  void clear() override;

  [[nodiscard]] std::size_t capacity() const override { return capacity_; }
  [[nodiscard]] std::size_t evictions() const override;

  /// Largest score ever displaced: the max over all evicted entries and
  /// dropped deltas. Negative infinity while nothing has been displaced.
  ///
  /// This is the table's *fidelity certificate* (see the property tests):
  /// any node whose every individual contribution strictly exceeds this
  /// bound is guaranteed resident, because a contribution can only be
  /// displaced — dropped at insert, dropped inside the ε margin, or
  /// evicted later — at a moment when its running score was ≤ the value
  /// recorded here. Zero evictions() plus a -inf bound certify the bounded
  /// result equals the exact aggregation; a finite bound tells the caller
  /// exactly how large a contribution could have been lost. Holds at any
  /// shard count and any ε, because every displacement path records the
  /// displaced score before discarding it.
  [[nodiscard]] double eviction_bound() const;

  /// Challengers that beat a shard minimum but fell inside the ε margin
  /// and were dropped instead of evicting (always 0 when ε = 0).
  [[nodiscard]] std::size_t margin_drops() const;
  [[nodiscard]] double admit_epsilon() const { return epsilon_; }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// add() calls that took the lock-free resident-update path.
  [[nodiscard]] std::size_t fast_path_adds() const {
    return fast_adds_.load(std::memory_order_relaxed);
  }

 private:
  /// One resident entry. `score` is atomic so the fast path can fetch_add
  /// under a shared lock; `node` only changes under the exclusive lock.
  struct Slot {
    graph::NodeId node = graph::kInvalidNode;
    std::atomic<double> score{0.0};
  };

  /// (score snapshot, slot) — refreshed lazily at eviction time.
  struct HeapEntry {
    double key;
    std::uint32_t slot;
  };
  /// Min-heap ordering for std::push_heap/pop_heap (which build max-heaps):
  /// greater key sinks, so the heap front is the smallest snapshot.
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key;
  }

  struct Shard {
    mutable util::SharedMutex mu;
    /// node → slot
    std::unordered_map<graph::NodeId, std::uint32_t> index
        MELOPPR_GUARDED_BY(mu);
    /// `cap` fixed slots (the BRAM arena). The pointer is guarded; the
    /// pointees are deliberately not — Slot::score is atomic precisely so
    /// the fast path can fetch_add it under a *shared* hold, and
    /// Slot::node only changes under the exclusive hold (structural path).
    std::unique_ptr<Slot[]> slots MELOPPR_GUARDED_BY(mu);
    std::size_t cap = 0;  ///< immutable after construction
    /// live slots, dense in [0, size)
    std::size_t size MELOPPR_GUARDED_BY(mu) = 0;
    /// lazy min-heap over live scores
    std::vector<HeapEntry> heap MELOPPR_GUARDED_BY(mu);
    std::size_t evictions MELOPPR_GUARDED_BY(mu) = 0;
    std::size_t margin_drops MELOPPR_GUARDED_BY(mu) = 0;
    /// max displaced score (init -inf)
    double bound MELOPPR_GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shard_for(graph::NodeId node) const;
  /// Exclusive-lock path: insert `delta` for a non-resident `node`,
  /// evicting the shard minimum when full. Returns without inserting when
  /// the delta loses to the current minimum plus the ε margin (the drop
  /// that costs precision for small c).
  void insert_locked(Shard& shard, graph::NodeId node, double delta)
      MELOPPR_REQUIRES(shard.mu);
  /// Pops the shard's lazy heap down to a trustworthy minimum slot.
  static std::uint32_t pop_min_locked(Shard& shard)
      MELOPPR_REQUIRES(shard.mu);
  /// Discards stale snapshots by rebuilding from the live slots, O(cap).
  static void rebuild_heap_locked(Shard& shard) MELOPPR_REQUIRES(shard.mu);
  /// Pushes a snapshot, rebuilding first when the heap has outgrown a
  /// small multiple of the shard capacity — keeps the heap (and the c·k
  /// memory envelope) bounded under negative-update churn that never
  /// reaches pop_min_locked.
  static void push_snapshot_locked(Shard& shard, double key,
                                   std::uint32_t slot)
      MELOPPR_REQUIRES(shard.mu);

  std::size_t capacity_;
  double epsilon_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> fast_adds_{0};
};

}  // namespace meloppr::core
