// SLO-aware serving front end over the continuous-ingest scheduler.
//
// QueryPipeline::query_stream turned the stealing batch into something a
// server can feed while it runs; this layer adds the production-traffic
// policies the paper's real-time deployment story (Sec. I) needs but a
// closed batch cannot express:
//
//   * Bounded admission queue with load shedding — submit() never blocks
//     and never hangs: past queue_capacity it returns a TYPED reject
//     (RejectReason::kQueueFull) immediately, so overload degrades into
//     explicit, counted sheds instead of unbounded queueing collapse.
//   * Deadline-aware batch formation — the dispatcher cuts batches by a
//     LATENCY budget (Σ of per-query service estimates ≤
//     batch_budget_seconds), not by a fixed count, so a burst cannot form
//     a batch whose own length blows the tail; queries whose deadline has
//     already expired at dispatch are shed (ServeStatus::kShedDeadline)
//     rather than executed into a guaranteed miss.
//   * Per-tenant fair queueing — admission lands in per-tenant sub-queues
//     and formation round-robins across them, one query per tenant per
//     pass, so a flooding tenant delays its own tail, not everyone's.
//   * Arrival-stamped accounting — every response time reported here is
//     submit()→completion on the front end's clock (admission wait +
//     scheduler wait + service), the quantity an SLO bounds.
//
// Scores are untouched by all of it: every admitted seed runs through the
// stealing scheduler's serial-order reduction and stays bit-identical to
// Engine::query; the only queries without scores are the typed sheds.
//
// Threads: one dispatcher (forms batches, feeds the pipeline's seed
// stream) and one pipeline driver (blocks inside query_stream for the
// front end's lifetime). submit() is safe from any number of producer
// threads; completions arrive on pipeline workers and are folded under one
// lock. If the pipeline dies (a worker threw), the error is captured, all
// waiters are released — never a hang — and drain()/shutdown() rethrow it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

struct ServingConfig {
  /// Tenant sub-queues (round-robin fairness domain). Submissions name a
  /// tenant in [0, tenants).
  std::size_t tenants = 1;
  /// Global admission-queue bound across all tenants: submissions beyond
  /// it are shed with RejectReason::kQueueFull. The queue is the ONLY
  /// unbounded-growth risk in the stack, so this is the overload valve.
  std::size_t queue_capacity = 256;
  /// Default relative deadline stamped on submissions that do not carry
  /// their own; 0 means no deadline (never shed for lateness).
  double default_deadline_seconds = 0.0;
  /// Latency budget a formed batch may cost: formation stops adding
  /// queries once Σ estimated service seconds would exceed it (always at
  /// least one query). 0 disables the budget cut (max_batch still caps).
  double batch_budget_seconds = 0.05;
  /// Hard count cap per formed batch.
  std::size_t max_batch = 64;
  /// Dispatched-but-uncompleted queries the dispatcher keeps in the
  /// pipeline before waiting for completions; 0 resolves to
  /// max(4 * pipeline threads, 16). Bounds the scheduler-side queue the
  /// same way queue_capacity bounds admission.
  std::size_t max_in_flight = 0;
  /// Seed for the per-query service-time estimate (seconds) the budget
  /// cut and deadline checks use before any completion has been observed.
  double initial_service_estimate_seconds = 0.005;
  /// EWMA weight of each observed service time folded into the estimate,
  /// in [0, 1). 0 FREEZES the estimate at the initial value — what the
  /// deterministic batch-formation tests use.
  double service_estimate_ewma = 0.2;
  /// Shed queries whose deadline has already expired when the dispatcher
  /// reaches them (they would complete late with certainty). Off means
  /// they execute anyway and are merely counted as deadline misses.
  bool shed_expired = true;

  /// Throws std::invalid_argument on nonsense; returns *this for chaining.
  ServingConfig& validate();
};

/// Why a submission was not admitted. Admission NEVER blocks: every reject
/// is immediate and typed so callers can tell overload from misuse.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  /// queue_capacity reached — the overload shed.
  kQueueFull,
  /// The requested deadline is shorter than one service time: it cannot be
  /// met even by an idle stack, so admitting it would manufacture a miss.
  kDeadlineImpossible,
  /// shutdown() has begun; no new work is accepted.
  kShuttingDown,
};

[[nodiscard]] inline const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kDeadlineImpossible:
      return "deadline_impossible";
    case RejectReason::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

/// submit()'s immediate answer.
struct Admission {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  /// Identifies the query in its ServedQuery when admitted.
  std::uint64_t ticket = 0;
};

enum class ServeStatus : std::uint8_t {
  kOk = 0,
  /// Deadline expired before dispatch; the query was never executed and
  /// carries no result (ServingConfig::shed_expired).
  kShedDeadline,
};

/// One finished (served or shed) query, delivered by drain().
struct ServedQuery {
  std::uint64_t ticket = 0;
  std::size_t tenant = 0;
  graph::NodeId seed = graph::kInvalidNode;
  ServeStatus status = ServeStatus::kOk;
  /// Scores + engine stats; meaningful only when status == kOk. Scores are
  /// bit-identical to Engine::query for the same seed.
  QueryResult result;
  /// submit() time on the front end's clock.
  double arrival_seconds = 0.0;
  /// submit()→completion (or →shed): the SLO-facing response time.
  double response_seconds = 0.0;
  /// Total non-service wait: admission queue + scheduler claim wait.
  double queue_seconds = 0.0;
  /// Absolute deadline on the front end's clock; 0 = none.
  double deadline_seconds = 0.0;
  /// False when a deadline existed and completion (or shed) missed it.
  bool deadline_met = true;
};

/// Counter snapshot; conservation holds at every instant:
///   submitted == admitted + rejects, and
///   admitted == completed + shed_deadline + in_flight + queued.
struct ServingStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t completed = 0;      ///< served with scores
  std::size_t shed_deadline = 0;  ///< typed dispatcher-side sheds
  std::size_t deadline_misses = 0;  ///< completed but late (deadline_met false)
  std::size_t queued = 0;         ///< waiting in tenant sub-queues now
  std::size_t in_flight = 0;      ///< dispatched, not yet completed
  std::size_t batches_formed = 0;
  std::size_t max_batch_size = 0;
  /// Edge updates applied through submit_update (0 without a dynamic
  /// graph).
  std::size_t updates_applied = 0;
  /// Dynamic-graph version at the snapshot (0 without a dynamic graph).
  /// Every query admitted after this snapshot is served state at least
  /// this fresh.
  std::uint64_t graph_version = 0;
  double service_estimate_seconds = 0.0;  ///< current EWMA
  /// submit()→completion percentiles over every completed query (sheds
  /// excluded — they carry no service). Zero until the first completion.
  double response_p50_seconds = 0.0;
  double response_p99_seconds = 0.0;
  double response_p999_seconds = 0.0;
  double max_response_seconds = 0.0;
  double mean_queue_seconds = 0.0;
  /// Per-tenant admitted/completed/shed (index = tenant id).
  std::vector<std::size_t> tenant_admitted;
  std::vector<std::size_t> tenant_completed;
  std::vector<std::size_t> tenant_shed;
};

class ServingFrontEnd {
 public:
  /// Starts the dispatcher and the pipeline driver. `pipeline` must
  /// outlive this object and must not be used for other queries while the
  /// front end runs (its workers are the serving capacity).
  ServingFrontEnd(QueryPipeline& pipeline, ServingConfig config = {});
  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;
  /// Implies shutdown() (pending admitted queries are finished first), but
  /// swallows a pipeline error a prior drain()/shutdown() already threw.
  ~ServingFrontEnd();

  /// Non-blocking admission. `deadline_seconds` is relative to now: < 0
  /// takes the config default, 0 means none. Throws std::invalid_argument
  /// for a tenant out of range — that is caller misuse, not load.
  Admission submit(graph::NodeId seed, std::size_t tenant = 0,
                   double deadline_seconds = -1.0);

  /// Routes submit_update() through `dyn` — the graph the pipeline's
  /// engine/cache stack must also be bound to. Call before traffic starts;
  /// `dyn` must outlive the front end.
  void set_dynamic_graph(graph::DynamicGraph* dyn) { dynamic_ = dyn; }

  /// Applies one edge update to the bound dynamic graph and returns the
  /// new graph version. Safe from any producer thread, interleaved freely
  /// with submit(): queries admitted before the update keep their older
  /// admission stamp (and may be served either state — monotone
  /// freshness), queries admitted after are served state at least this
  /// fresh, and the bound cache invalidates exactly the balls the update
  /// touches before the version publishes. Throws std::invalid_argument
  /// when no dynamic graph is bound or the update itself is invalid
  /// (self-loop, out of range, double insert/delete) — caller misuse, not
  /// load.
  std::uint64_t submit_update(const graph::EdgeUpdate& update);

  /// Blocks until every admitted query has completed or been shed, then
  /// returns everything finished since the last drain (completion order).
  /// Rethrows the pipeline's error if it died — never hangs either way.
  std::vector<ServedQuery> drain();

  /// Stops intake (further submits reject kShuttingDown), finishes every
  /// admitted query, closes the stream, and joins both threads. Idempotent;
  /// rethrows a captured pipeline error on first call.
  void shutdown();

  [[nodiscard]] ServingStats stats() const;
  /// Pipeline-level accounting for the whole serve (valid after
  /// shutdown(): the stream-wide BatchStats, response percentiles
  /// dispatch→finalize on the stream clock).
  [[nodiscard]] const QueryPipeline::BatchStats& pipeline_stats() const {
    return pipeline_stats_;
  }
  /// Seconds since construction — the clock all stamps above use.
  [[nodiscard]] double now() const { return clock_.elapsed_seconds(); }
  [[nodiscard]] const ServingConfig& config() const { return config_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    std::size_t tenant = 0;
    graph::NodeId seed = graph::kInvalidNode;
    double arrival_seconds = 0.0;
    double deadline_seconds = 0.0;  ///< absolute; 0 = none
    double dispatch_seconds = 0.0;  ///< set when pushed into the stream
  };

  void dispatcher_loop();
  void pipeline_loop();
  void on_completion(std::size_t stream_index, QueryResult&& result);
  [[nodiscard]] std::size_t resolved_max_in_flight() const;

  QueryPipeline* pipeline_;
  ServingConfig config_;
  Timer clock_;
  graph::DynamicGraph* dynamic_ = nullptr;
  std::atomic<std::size_t> updates_applied_{0};

  mutable util::Mutex mu_;
  std::condition_variable cv_;  // dispatcher + drain waiters + backpressure
  std::vector<std::deque<Pending>> tenant_queues_ MELOPPR_GUARDED_BY(mu_);
  /// Σ sub-queue sizes
  std::size_t queued_ MELOPPR_GUARDED_BY(mu_) = 0;
  /// next tenant formation starts from
  std::size_t rr_cursor_ MELOPPR_GUARDED_BY(mu_) = 0;
  /// 0 never issued
  std::uint64_t next_ticket_ MELOPPR_GUARDED_BY(mu_) = 1;
  /// Dispatched queries awaiting completion, keyed by stream index.
  std::unordered_map<std::size_t, Pending> dispatched_
      MELOPPR_GUARDED_BY(mu_);
  /// completed+shed since last drain
  std::vector<ServedQuery> finished_ MELOPPR_GUARDED_BY(mu_);
  bool shutting_down_ MELOPPR_GUARDED_BY(mu_) = false;
  bool pipeline_dead_ MELOPPR_GUARDED_BY(mu_) = false;
  std::exception_ptr pipeline_error_ MELOPPR_GUARDED_BY(mu_);
  bool pipeline_error_thrown_ MELOPPR_GUARDED_BY(mu_) = false;
  /// EWMA of observed service time
  double service_estimate_ MELOPPR_GUARDED_BY(mu_) = 0.0;

  // Counters.
  ServingStats counters_ MELOPPR_GUARDED_BY(mu_);
  Samples response_samples_ MELOPPR_GUARDED_BY(mu_);
  double queue_sum_ MELOPPR_GUARDED_BY(mu_) = 0.0;

  SeedStream stream_;
  QueryPipeline::BatchStats pipeline_stats_;
  std::thread dispatcher_;
  std::thread driver_;
};

}  // namespace meloppr::core
