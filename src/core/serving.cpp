#include "core/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

namespace meloppr::core {

ServingConfig& ServingConfig::validate() {
  if (tenants == 0) {
    throw std::invalid_argument("ServingConfig: tenants must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServingConfig: queue_capacity must be >= 1");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("ServingConfig: max_batch must be >= 1");
  }
  if (batch_budget_seconds < 0.0) {
    throw std::invalid_argument(
        "ServingConfig: batch_budget_seconds must be >= 0");
  }
  if (default_deadline_seconds < 0.0) {
    throw std::invalid_argument(
        "ServingConfig: default_deadline_seconds must be >= 0");
  }
  if (!(initial_service_estimate_seconds > 0.0)) {
    throw std::invalid_argument(
        "ServingConfig: initial_service_estimate_seconds must be > 0");
  }
  if (service_estimate_ewma < 0.0 || service_estimate_ewma >= 1.0) {
    throw std::invalid_argument(
        "ServingConfig: service_estimate_ewma must be in [0, 1)");
  }
  return *this;
}

ServingFrontEnd::ServingFrontEnd(QueryPipeline& pipeline, ServingConfig config)
    : pipeline_(&pipeline), config_(config) {
  config_.validate();
  tenant_queues_.resize(config_.tenants);
  counters_.tenant_admitted.assign(config_.tenants, 0);
  counters_.tenant_completed.assign(config_.tenants, 0);
  counters_.tenant_shed.assign(config_.tenants, 0);
  service_estimate_ = config_.initial_service_estimate_seconds;
  // Driver first: the stream must have its consumer before the dispatcher
  // can feed it (ordering is not load-bearing — pushes before the drain
  // registers are claimed on registration — but it keeps startup obvious).
  driver_ = std::thread([this] { pipeline_loop(); });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ServingFrontEnd::~ServingFrontEnd() {
  try {
    shutdown();
  } catch (...) {
    // A pipeline error surfaces through drain()/shutdown(); the destructor
    // must not throw while delivering the same one again.
  }
}

std::size_t ServingFrontEnd::resolved_max_in_flight() const {
  if (config_.max_in_flight != 0) return config_.max_in_flight;
  return std::max<std::size_t>(4 * pipeline_->threads(), 16);
}

Admission ServingFrontEnd::submit(graph::NodeId seed, std::size_t tenant,
                                  double deadline_seconds) {
  if (tenant >= config_.tenants) {
    throw std::invalid_argument("ServingFrontEnd::submit: tenant out of range");
  }
  util::MutexLock lock(mu_);
  ++counters_.submitted;
  if (shutting_down_ || pipeline_dead_) {
    ++counters_.rejected_shutdown;
    return {false, RejectReason::kShuttingDown, 0};
  }
  const double rel = deadline_seconds < 0.0 ? config_.default_deadline_seconds
                                            : deadline_seconds;
  if (rel > 0.0 && rel < service_estimate_) {
    // Shorter than one bare service time: a guaranteed miss. Rejecting it
    // now is cheaper for everyone than executing it into lateness.
    ++counters_.rejected_deadline;
    return {false, RejectReason::kDeadlineImpossible, 0};
  }
  if (queued_ >= config_.queue_capacity) {
    ++counters_.rejected_queue_full;
    return {false, RejectReason::kQueueFull, 0};
  }
  Pending p;
  p.ticket = next_ticket_++;
  p.tenant = tenant;
  p.seed = seed;
  p.arrival_seconds = clock_.elapsed_seconds();
  p.deadline_seconds = rel > 0.0 ? p.arrival_seconds + rel : 0.0;
  const std::uint64_t ticket = p.ticket;
  tenant_queues_[tenant].push_back(std::move(p));
  ++queued_;
  ++counters_.admitted;
  ++counters_.tenant_admitted[tenant];
  cv_.notify_all();  // the dispatcher may be parked on an empty queue
  return {true, RejectReason::kNone, ticket};
}

void ServingFrontEnd::dispatcher_loop() {
  const std::size_t max_in_flight = resolved_max_in_flight();
  util::MutexLock lock(mu_);
  for (;;) {
    // Explicit wait loop (not a predicate lambda): the thread-safety
    // analysis checks this function's guarded accesses, but cannot see
    // into a lambda body.
    while (!(pipeline_dead_ ||
             (queued_ > 0 && dispatched_.size() < max_in_flight) ||
             (shutting_down_ && queued_ == 0))) {
      cv_.wait(lock.native());
    }
    if (pipeline_dead_) break;
    if (shutting_down_ && queued_ == 0) break;

    // Form one batch: round-robin one query per tenant per pass (a
    // flooding tenant delays itself, not the others), cut by the latency
    // budget — Σ service estimates, never count — then by max_batch.
    std::vector<Pending> batch;
    while (queued_ > 0 && batch.size() < config_.max_batch) {
      if (!batch.empty() && config_.batch_budget_seconds > 0.0 &&
          static_cast<double>(batch.size() + 1) * service_estimate_ >
              config_.batch_budget_seconds) {
        break;  // adding one more would overrun the budget
      }
      std::size_t t = rr_cursor_;
      for (std::size_t step = 0; step < tenant_queues_.size(); ++step) {
        const std::size_t cand = (rr_cursor_ + step) % tenant_queues_.size();
        if (!tenant_queues_[cand].empty()) {
          t = cand;
          break;
        }
      }
      Pending p = std::move(tenant_queues_[t].front());
      tenant_queues_[t].pop_front();
      --queued_;
      rr_cursor_ = (t + 1) % tenant_queues_.size();
      const double now_s = clock_.elapsed_seconds();
      if (config_.shed_expired && p.deadline_seconds > 0.0 &&
          now_s > p.deadline_seconds) {
        // Already late before dispatch: executing it cannot help anyone.
        // Typed, counted shed — no result, but a full ServedQuery record.
        ServedQuery shed;
        shed.ticket = p.ticket;
        shed.tenant = p.tenant;
        shed.seed = p.seed;
        shed.status = ServeStatus::kShedDeadline;
        shed.arrival_seconds = p.arrival_seconds;
        shed.response_seconds = now_s - p.arrival_seconds;
        shed.queue_seconds = shed.response_seconds;
        shed.deadline_seconds = p.deadline_seconds;
        shed.deadline_met = false;
        ++counters_.shed_deadline;
        ++counters_.tenant_shed[shed.tenant];
        finished_.push_back(std::move(shed));
        continue;  // consumes neither a batch slot nor budget
      }
      batch.push_back(std::move(p));
    }

    if (!batch.empty()) {
      ++counters_.batches_formed;
      counters_.max_batch_size =
          std::max(counters_.max_batch_size, batch.size());
      const double dispatch_s = clock_.elapsed_seconds();
      // Push + register under mu_: the completion sink also locks mu_, so
      // a worker finishing the seed can never look it up before it exists.
      for (Pending& p : batch) {
        p.dispatch_seconds = dispatch_s;
        const std::size_t index = stream_.push(p.seed);
        dispatched_.emplace(index, std::move(p));
      }
    }
    cv_.notify_all();  // drain waiters may have sheds to collect
  }
  // End of intake: close the stream so query_stream drains and returns.
  stream_.close();
  lock.unlock();
  cv_.notify_all();
}

void ServingFrontEnd::pipeline_loop() {
  try {
    pipeline_->query_stream(
        stream_,
        [this](std::size_t index, QueryResult&& result) {
          on_completion(index, std::move(result));
        },
        &pipeline_stats_);
  } catch (...) {
    util::MutexLock lock(mu_);
    pipeline_dead_ = true;
    pipeline_error_ = std::current_exception();
  }
  cv_.notify_all();  // release drain waiters and the dispatcher — no hangs
}

void ServingFrontEnd::on_completion(std::size_t stream_index,
                                    QueryResult&& result) {
  util::MutexLock lock(mu_);
  const auto it = dispatched_.find(stream_index);
  MELO_CHECK_MSG(it != dispatched_.end(),
                 "ServingFrontEnd: completion for unknown stream index "
                     << stream_index);
  const Pending p = it->second;
  dispatched_.erase(it);
  const double done = clock_.elapsed_seconds();

  ServedQuery sq;
  sq.ticket = p.ticket;
  sq.tenant = p.tenant;
  sq.seed = p.seed;
  sq.status = ServeStatus::kOk;
  sq.arrival_seconds = p.arrival_seconds;
  // submit()→completion on the front end's clock: admission wait +
  // scheduler wait + service — the arrival-stamped response an SLO bounds.
  sq.response_seconds = done - p.arrival_seconds;
  sq.queue_seconds =
      (p.dispatch_seconds - p.arrival_seconds) + result.stats.queue_seconds;
  sq.deadline_seconds = p.deadline_seconds;
  sq.deadline_met = p.deadline_seconds == 0.0 || done <= p.deadline_seconds;
  if (!sq.deadline_met) ++counters_.deadline_misses;

  if (config_.service_estimate_ewma > 0.0) {
    const double service = result.stats.service_seconds();
    if (service > 0.0) {
      service_estimate_ =
          (1.0 - config_.service_estimate_ewma) * service_estimate_ +
          config_.service_estimate_ewma * service;
    }
  }

  sq.result = std::move(result);
  ++counters_.completed;
  ++counters_.tenant_completed[p.tenant];
  response_samples_.add(sq.response_seconds);
  queue_sum_ += sq.queue_seconds;
  finished_.push_back(std::move(sq));
  cv_.notify_all();  // backpressured dispatcher + drain waiters
}

std::vector<ServedQuery> ServingFrontEnd::drain() {
  util::MutexLock lock(mu_);
  while (!(pipeline_dead_ || (queued_ == 0 && dispatched_.empty()))) {
    cv_.wait(lock.native());
  }
  if (pipeline_dead_ && pipeline_error_ != nullptr &&
      !pipeline_error_thrown_) {
    pipeline_error_thrown_ = true;
    std::rethrow_exception(pipeline_error_);
  }
  std::vector<ServedQuery> out = std::move(finished_);
  finished_.clear();
  return out;
}

void ServingFrontEnd::shutdown() {
  {
    util::MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (driver_.joinable()) driver_.join();
  util::MutexLock lock(mu_);
  if (pipeline_error_ != nullptr && !pipeline_error_thrown_) {
    pipeline_error_thrown_ = true;
    std::rethrow_exception(pipeline_error_);
  }
}

std::uint64_t ServingFrontEnd::submit_update(const graph::EdgeUpdate& update) {
  if (dynamic_ == nullptr) {
    throw std::invalid_argument(
        "ServingFrontEnd::submit_update: no dynamic graph bound");
  }
  // DynamicGraph::apply carries its own writer lock and runs the cache
  // invalidation listener before publishing the new version, so nothing
  // here needs mu_ — update producers never contend with admission.
  const std::uint64_t version = dynamic_->apply(update);
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

ServingStats ServingFrontEnd::stats() const {
  util::MutexLock lock(mu_);
  ServingStats s = counters_;
  s.queued = queued_;
  s.in_flight = dispatched_.size();
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.graph_version = dynamic_ == nullptr ? 0 : dynamic_->version();
  s.service_estimate_seconds = service_estimate_;
  if (!response_samples_.empty()) {
    s.response_p50_seconds = response_samples_.percentile(50.0);
    s.response_p99_seconds = response_samples_.percentile(99.0);
    s.response_p999_seconds = response_samples_.percentile(99.9);
    s.max_response_seconds = response_samples_.max();
    s.mean_queue_seconds =
        queue_sum_ / static_cast<double>(counters_.completed);
  }
  return s;
}

}  // namespace meloppr::core
