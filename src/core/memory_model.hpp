// Analytical memory models for Table II.
//
// The paper compares three memory footprints per query:
//   LocalPPR-CPU  — the depth-L ball plus its score vectors (measured by
//                   our MemoryMeter inside ppr::local_ppr).
//   MeLoPPR-CPU   — the largest single ball plus aggregation state
//                   (measured by the engine's meter).
//   MeLoPPR-FPGA  — BRAM bytes for the largest ball, by the paper's formula
//                   (Sec. VI-B):
//                     BRAM|Bytes = Bg + Ba + Br
//                                = 4·(2·|V(Gl)| + 2·|E(Gl)| + 2·|V(Gl)| + |V(Gl)|)
//                   i.e. 4 bytes/word × (sub-graph table: node address pairs
//                   2V + neighbor lists 2E, accumulated score table 2V,
//                   residual score table V).
#pragma once

#include <cstddef>

namespace meloppr::core {

/// The paper's FPGA BRAM byte formula for one sub-graph (Sec. VI-B).
/// `ball_edges` counts undirected edges; the neighbor list stores each
/// twice, hence the 2·|E| term.
[[nodiscard]] constexpr std::size_t fpga_bram_bytes(std::size_t ball_nodes,
                                                    std::size_t ball_edges) {
  return 4 * (2 * ball_nodes + 2 * ball_edges + 2 * ball_nodes + ball_nodes);
}

/// CPU-side footprint of holding one ball and diffusing on it: the ball's
/// CSR + relabeling tables plus three dense double vectors. Used by tests to
/// cross-check the engine's measured peaks.
[[nodiscard]] constexpr std::size_t cpu_ball_bytes(std::size_t ball_nodes,
                                                   std::size_t ball_arcs) {
  // offsets (8B/node) + targets (4B/arc) + local_to_global (4B) +
  // global_degree (4B) + depth (2B) + membership index (8B) per node.
  const std::size_t csr = 8 * (ball_nodes + 1) + 4 * ball_arcs +
                          (4 + 4 + 2 + 8) * ball_nodes;
  const std::size_t vectors = 3 * 8 * ball_nodes;
  return csr + vectors;
}

}  // namespace meloppr::core
