#include "core/adaptive_window.hpp"

#include <algorithm>
#include <cmath>

namespace meloppr::core {

AdaptiveWindowController::AdaptiveWindowController(std::size_t min_window,
                                                   std::size_t max_window)
    : min_window_(std::max<std::size_t>(1, min_window)),
      max_window_(std::max(max_window, std::max<std::size_t>(1, min_window))) {
}

std::size_t AdaptiveWindowController::window(double busy_seconds,
                                             double wall_seconds,
                                             std::size_t prefetch_threads,
                                             std::size_t ewma_ball_bytes,
                                             std::size_t cap_bytes) {
  std::size_t desired;
  {
    util::MutexLock lock(mu_);
    const double dt = wall_seconds - last_wall_seconds_;
    if (dt >= kMinIntervalSeconds && prefetch_threads > 0) {
      // Busy seconds accumulate across all prefetch threads, so the
      // available capacity of the interval is threads · dt. Clamp: timer
      // skew between the two clocks can push the raw ratio out of [0, 1].
      const double busy_dt =
          std::max(0.0, busy_seconds - last_busy_seconds_);
      const double instant = std::clamp(
          1.0 - busy_dt / (static_cast<double>(prefetch_threads) * dt), 0.0,
          1.0);
      idle_ += kIdleSmoothing * (instant - idle_);
      last_wall_seconds_ = wall_seconds;
      last_busy_seconds_ = busy_seconds;
    }
    desired = min_window_ +
              static_cast<std::size_t>(std::llround(
                  idle_ * static_cast<double>(max_window_ - min_window_)));
  }
  // The spare-budget throttle always wins over the idle signal. With no
  // ball-size estimate yet (a cache that has never completed an
  // extraction) the byte cap cannot be converted to a seed count, so the
  // cold start is held at the floor — the static knob's burst — rather
  // than opened to max_window into a cache whose capacity per ball is
  // unknown: the speculative balls churn it the moment they land.
  if (ewma_ball_bytes > 0) {
    desired = std::min(desired, cap_bytes / ewma_ball_bytes);
  } else {
    desired = std::min(desired, min_window_);
  }
  last_window_.store(desired, std::memory_order_relaxed);
  return desired;
}

double AdaptiveWindowController::idle_fraction() const {
  util::MutexLock lock(mu_);
  return idle_;
}

}  // namespace meloppr::core
