// LRU cache of extracted BFS balls, keyed by (root, radius).
//
// In a query-serving deployment the CPU-side BFS dominates end-to-end
// latency (Fig. 7's light-blue bars; the paper notes BFS becomes the
// bottleneck past P=16). Consecutive queries re-extract heavily overlapping
// stage-2 balls — popular nodes are selected as next-stage nodes by many
// different seeds — so caching extracted balls converts BFS time into
// memory, a second instance of the paper's central memory↔latency trade.
// The cache is byte-budgeted and evicts least-recently-used balls.
//
// Not thread-safe; one cache per serving thread. The concurrent serving
// path uses ShardedBallCache (sharded_ball_cache.hpp), which shares the
// (root, radius) key and hash defined here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace meloppr::core {

/// splitmix64 finalizer — a full-avalanche 64-bit mixer, so every output bit
/// depends on every input bit. The previous `root << 8 ^ radius` scheme
/// clustered keys (consecutive roots map 256 apart) and collided outright
/// once radius ≥ 256 overflowed into the root bits.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Cache key: which ball. Root and radius occupy disjoint halves of the
/// 64-bit pre-mix word, so distinct keys can never alias before mixing.
struct BallKey {
  graph::NodeId root = graph::kInvalidNode;
  unsigned radius = 0;
  bool operator==(const BallKey&) const = default;
  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(root) << 32) |
           static_cast<std::uint64_t>(radius);
  }
};

struct BallKeyHash {
  std::size_t operator()(const BallKey& k) const {
    return static_cast<std::size_t>(splitmix64(k.packed()));
  }
};

class BallCache {
 public:
  /// `byte_budget` caps the summed Subgraph::bytes() of cached balls. A
  /// ball larger than the whole budget is still served but never retained.
  BallCache(const graph::Graph& g, std::size_t byte_budget);

  /// Returns the ball around `root` with the given radius, extracting it on
  /// a miss. The reference stays valid until the next get() call (eviction
  /// may reclaim it afterwards).
  const graph::Subgraph& get(graph::NodeId root, unsigned radius);

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) /
                                  static_cast<double>(total);
  }

  /// Current cached footprint (≤ budget, except transiently for the one
  /// oversized ball being served).
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t byte_budget() const { return budget_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }

  /// Total seconds spent extracting on misses (the BFS cost actually paid).
  [[nodiscard]] double extraction_seconds() const {
    return extraction_seconds_;
  }

  void clear();

 private:
  struct Entry {
    BallKey key;
    graph::Subgraph ball;
  };

  void evict_until_fits(std::size_t incoming_bytes);

  const graph::Graph* graph_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  double extraction_seconds_ = 0.0;

  /// MRU-ordered list; lookups map keys to list iterators.
  std::list<Entry> lru_;
  std::unordered_map<BallKey, std::list<Entry>::iterator, BallKeyHash>
      entries_;
  /// Oversized ball served without being retained.
  graph::Subgraph overflow_;
};

}  // namespace meloppr::core
