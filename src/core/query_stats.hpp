// Per-query accounting produced by the MeLoPPR engine — the raw numbers
// behind Table II (memory), Fig. 6 (precision), and Fig. 7 (latency split).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace meloppr::core {

/// Aggregated statistics for one stage index (all balls diffused at that
/// recursion depth).
struct StageStats {
  std::size_t balls = 0;          ///< diffusions executed at this stage
  std::size_t selected = 0;       ///< next-stage nodes chosen here
  std::size_t candidates = 0;     ///< non-zero residual nodes available
  std::size_t max_ball_nodes = 0;
  std::size_t max_ball_edges = 0;
  std::uint64_t total_ball_nodes = 0;
  std::uint64_t total_ball_edges = 0;
  double bfs_seconds = 0.0;       ///< CPU-side sub-graph preparation
  double compute_seconds = 0.0;   ///< device diffusion time
  double transfer_seconds = 0.0;  ///< host↔device data movement (FPGA only)
  std::uint64_t edge_ops = 0;
  /// Ball-cache outcomes for this stage's extractions (both zero when no
  /// cache is installed). A hit means the BFS was skipped — either the ball
  /// was resident or a prefetch/concurrent extraction was joined. These are
  /// per-task attributions counted by the worker that ran the task, so they
  /// can never race a cache-wide counter reset; cache-wide rates (which
  /// fold in other queries sharing the cache, prefetch traffic, and
  /// admission decisions) come from ShardedBallCache::stats(), whose
  /// snapshot is taken as one consistent unit.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Of cache_hits, the ones served from the pinned prefetch side-table —
  /// a root-prefetched ball that was admission-rejected (or evicted before
  /// its claim) and would have been re-extracted without the handoff.
  std::size_t cache_pin_hits = 0;

  /// Fault-tolerance accounting (all zero on a healthy stack).
  /// Extra dispatch attempts the backend's retry layer consumed for this
  /// stage's diffusions (BackendResult::attempts - 1 summed).
  std::size_t dispatch_retries = 0;
  /// Attempts discarded for missing the dispatch deadline.
  std::size_t deadline_misses = 0;
  /// Diffusions served by a fallback backend after the primary failed —
  /// bit-identical scores (fixed-point failover), degraded throughput.
  std::size_t failovers = 0;
  /// Balls whose diffusion (or extraction) failed past every retry and
  /// failover: their contribution is missing from the scores.
  std::size_t failed_balls = 0;
  /// Ball extractions that threw an environmental error and were retried
  /// (the engine's extraction_attempts budget).
  std::size_t extraction_faults = 0;

  /// Folds another task's increments into this stage's totals (sums, with
  /// max for the max_* fields). Schedulers use this to combine per-task
  /// StageStats deltas — in deterministic task order when parallel.
  void merge(const StageStats& other) {
    balls += other.balls;
    selected += other.selected;
    candidates += other.candidates;
    max_ball_nodes = max_ball_nodes > other.max_ball_nodes
                         ? max_ball_nodes
                         : other.max_ball_nodes;
    max_ball_edges = max_ball_edges > other.max_ball_edges
                         ? max_ball_edges
                         : other.max_ball_edges;
    total_ball_nodes += other.total_ball_nodes;
    total_ball_edges += other.total_ball_edges;
    bfs_seconds += other.bfs_seconds;
    compute_seconds += other.compute_seconds;
    transfer_seconds += other.transfer_seconds;
    edge_ops += other.edge_ops;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_pin_hits += other.cache_pin_hits;
    dispatch_retries += other.dispatch_retries;
    deadline_misses += other.deadline_misses;
    failovers += other.failovers;
    failed_balls += other.failed_balls;
    extraction_faults += other.extraction_faults;
  }
};

/// Per-query degradation verdict derived from the stage stats.
enum class QueryOutcome : std::uint8_t {
  /// Every ball diffused on the primary path; scores are the full answer.
  kOk = 0,
  /// At least one diffusion was served by the failover backend (or burned
  /// retries). Scores are still bit-identical to the healthy fixed-point
  /// path — the degradation is throughput, not correctness.
  kDegraded,
  /// At least one ball's contribution is missing (extraction or diffusion
  /// failed past every retry and failover). Scores are a lower bound.
  kFailed,
};

[[nodiscard]] inline const char* to_string(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kDegraded:
      return "degraded";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

struct QueryStats {
  std::vector<StageStats> stages;

  /// Graph version the query was admitted at (dynamic graphs; 0 on a
  /// static graph). Every ball served to the query reflects at least this
  /// version — the freshness stamp the serving layer reports.
  std::uint64_t graph_version = 0;

  /// Peak simultaneously-live bytes: ball + device working set + aggregator
  /// + pending next-stage lists. The "Memory (MB)" column of Table II.
  std::size_t peak_bytes = 0;

  /// Aggregator footprint at the end of the query.
  std::size_t aggregator_bytes = 0;

  /// Score-table occupancy at the end of the query (for a bounded table,
  /// ≤ its c·k capacity — the Table II memory story; for exact
  /// aggregation, the number of touched nodes).
  std::size_t aggregator_entries = 0;
  /// Min-evictions a bounded score table performed (always 0 for exact
  /// aggregation). Zero evictions certify the bounded result equals exact;
  /// with an ε admission margin (MelopprConfig::topck_epsilon) boundary
  /// challengers are dropped instead of evicting, so this count shrinks at
  /// equal capacity — the churn the hysteresis removes.
  std::size_t aggregator_evictions = 0;

  /// End-to-end response time, arrival→finalize. Under a batch scheduler
  /// the clock starts when the query was SUBMITTED (pushed into the batch
  /// or stream), not when a worker first claimed it — so scheduler
  /// queueing delay is included, which is the quantity an SLO must bound.
  /// For the serial engine and the stage-parallel single query, arrival
  /// and start coincide and this is plain service time.
  double total_seconds = 0.0;
  /// Arrival→first-claim wait under a batch scheduler: how long the query
  /// sat submitted before any worker started it. 0 outside batch
  /// scheduling. total_seconds - queue_seconds is the in-system (service)
  /// time, so the pre-fix service-time view stays derivable.
  double queue_seconds = 0.0;

  /// Serial-sum view of the diffusion work: Σ over all balls of
  /// (compute + transfer) seconds — the 1-worker latency of this load.
  double diffusion_serial_seconds = 0.0;
  /// Parallel completion time of the same work: max over workers of their
  /// summed busy seconds, floored at serial / (backend execution slots) so
  /// a shared farm with fewer devices than workers can never report a
  /// physically impossible speedup. Equals diffusion_serial_seconds for
  /// the serial engine.
  double diffusion_makespan_seconds = 0.0;
  /// Worker threads that executed this query's diffusions.
  std::size_t threads_used = 1;

  /// Stage tasks of this query executed by a worker other than the one that
  /// started the query — the work-stealing batch scheduler's spill count.
  /// Zero for the serial engine and for query-pinned scheduling.
  std::size_t stolen_tasks = 0;

  /// BFS seconds extracted on prefetch threads concurrently with this
  /// query's diffusions (stage-lookahead overlap). Only the stage-parallel
  /// pipeline attributes this per query; batch-level totals live in
  /// QueryPipeline::BatchStats.
  double prefetch_hidden_seconds = 0.0;

  /// serial-sum / makespan — the speedup the stage scheduler extracted from
  /// independent same-stage diffusions (1.0 when serial).
  [[nodiscard]] double parallel_speedup() const {
    return diffusion_makespan_seconds > 0.0
               ? diffusion_serial_seconds / diffusion_makespan_seconds
               : 1.0;
  }

  [[nodiscard]] double bfs_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.bfs_seconds;
    return s;
  }
  [[nodiscard]] double compute_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.compute_seconds;
    return s;
  }
  [[nodiscard]] double transfer_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.transfer_seconds;
    return s;
  }
  [[nodiscard]] std::uint64_t edge_ops() const {
    std::uint64_t s = 0;
    for (const auto& st : stages) s += st.edge_ops;
    return s;
  }
  [[nodiscard]] std::size_t total_balls() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.balls;
    return s;
  }
  /// Claim→finalize time: the response time with the scheduler queue wait
  /// stripped back out (what total_seconds used to report pre-fix).
  [[nodiscard]] double service_seconds() const {
    return total_seconds > queue_seconds ? total_seconds - queue_seconds
                                         : 0.0;
  }
  /// Fraction of the query's in-system time spent in CPU-side BFS — the
  /// light-blue bars of Fig. 7. Measured against service_seconds(), not the
  /// response time, so scheduler queueing under load cannot dilute it.
  [[nodiscard]] double bfs_fraction() const {
    const double service = service_seconds();
    return service > 0.0 ? bfs_seconds() / service : 0.0;
  }
  [[nodiscard]] std::size_t cache_hits() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.cache_hits;
    return s;
  }
  [[nodiscard]] std::size_t cache_misses() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.cache_misses;
    return s;
  }
  /// Hits served from the pinned prefetch side-table (⊆ cache_hits()).
  [[nodiscard]] std::size_t cache_pin_hits() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.cache_pin_hits;
    return s;
  }
  /// Ball-cache hit rate over this query's extractions (0 when no cache).
  [[nodiscard]] double cache_hit_rate() const {
    const std::size_t total = cache_hits() + cache_misses();
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits()) /
                            static_cast<double>(total);
  }

  [[nodiscard]] std::size_t dispatch_retries() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.dispatch_retries;
    return s;
  }
  [[nodiscard]] std::size_t deadline_misses() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.deadline_misses;
    return s;
  }
  [[nodiscard]] std::size_t failovers() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.failovers;
    return s;
  }
  [[nodiscard]] std::size_t failed_balls() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.failed_balls;
    return s;
  }
  [[nodiscard]] std::size_t extraction_faults() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.extraction_faults;
    return s;
  }

  /// Degradation verdict: any missing ball → kFailed; any failover or
  /// retry → kDegraded; else kOk.
  [[nodiscard]] QueryOutcome outcome() const {
    if (failed_balls() > 0) return QueryOutcome::kFailed;
    if (failovers() > 0 || dispatch_retries() > 0 || extraction_faults() > 0) {
      return QueryOutcome::kDegraded;
    }
    return QueryOutcome::kOk;
  }
};

}  // namespace meloppr::core
