// Per-query accounting produced by the MeLoPPR engine — the raw numbers
// behind Table II (memory), Fig. 6 (precision), and Fig. 7 (latency split).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace meloppr::core {

/// Aggregated statistics for one stage index (all balls diffused at that
/// recursion depth).
struct StageStats {
  std::size_t balls = 0;          ///< diffusions executed at this stage
  std::size_t selected = 0;       ///< next-stage nodes chosen here
  std::size_t candidates = 0;     ///< non-zero residual nodes available
  std::size_t max_ball_nodes = 0;
  std::size_t max_ball_edges = 0;
  std::uint64_t total_ball_nodes = 0;
  std::uint64_t total_ball_edges = 0;
  double bfs_seconds = 0.0;       ///< CPU-side sub-graph preparation
  double compute_seconds = 0.0;   ///< device diffusion time
  double transfer_seconds = 0.0;  ///< host↔device data movement (FPGA only)
  std::uint64_t edge_ops = 0;
};

struct QueryStats {
  std::vector<StageStats> stages;

  /// Peak simultaneously-live bytes: ball + device working set + aggregator
  /// + pending next-stage lists. The "Memory (MB)" column of Table II.
  std::size_t peak_bytes = 0;

  /// Aggregator footprint at the end of the query.
  std::size_t aggregator_bytes = 0;

  double total_seconds = 0.0;  ///< end-to-end query latency

  [[nodiscard]] double bfs_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.bfs_seconds;
    return s;
  }
  [[nodiscard]] double compute_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.compute_seconds;
    return s;
  }
  [[nodiscard]] double transfer_seconds() const {
    double s = 0.0;
    for (const auto& st : stages) s += st.transfer_seconds;
    return s;
  }
  [[nodiscard]] std::uint64_t edge_ops() const {
    std::uint64_t s = 0;
    for (const auto& st : stages) s += st.edge_ops;
    return s;
  }
  [[nodiscard]] std::size_t total_balls() const {
    std::size_t s = 0;
    for (const auto& st : stages) s += st.balls;
    return s;
  }
  /// Fraction of the query spent in CPU-side BFS — the light-blue bars of
  /// Fig. 7.
  [[nodiscard]] double bfs_fraction() const {
    return total_seconds > 0.0 ? bfs_seconds() / total_seconds : 0.0;
  }
};

}  // namespace meloppr::core
