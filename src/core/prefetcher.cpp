#include "core/prefetcher.hpp"

#include <algorithm>

#include "util/sleep.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

BallPrefetcher::BallPrefetcher(std::size_t threads,
                               std::function<bool()> pause)
    : pause_(std::move(pause)) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BallPrefetcher::~BallPrefetcher() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
    stage_queue_.clear();
    root_queue_.clear();
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void BallPrefetcher::enqueue(ShardedBallCache& cache, graph::NodeId root,
                             unsigned radius,
                             ShardedBallCache::FetchKind kind,
                             std::size_t claim_priority) {
  const bool speculative =
      kind == ShardedBallCache::FetchKind::kRootPrefetch ||
      kind == ShardedBallCache::FetchKind::kPinnedRootPrefetch;
  {
    util::MutexLock lock(mu_);
    if (stop_) return;
    (speculative ? root_queue_ : stage_queue_)
        .push_back({&cache, root, radius, kind, claim_priority});
  }
  issued_.fetch_add(1, std::memory_order_relaxed);
  work_available_.notify_one();
}

void BallPrefetcher::drop_pending() {
  util::MutexLock lock(mu_);
  stage_queue_.clear();
  root_queue_.clear();
}

void BallPrefetcher::quiesce() {
  util::MutexLock lock(mu_);
  stage_queue_.clear();
  root_queue_.clear();
  while (in_flight_ != 0) idle_.wait(lock.native());
}

double BallPrefetcher::hidden_seconds() const {
  util::MutexLock lock(mu_);
  return hidden_seconds_;
}

double BallPrefetcher::busy_seconds() const {
  util::MutexLock lock(mu_);
  return busy_seconds_;
}

void BallPrefetcher::worker_loop() {
  for (;;) {
    Request req{};
    {
      util::MutexLock lock(mu_);
      // Explicit wait loop: the thread-safety analysis cannot see guarded
      // accesses inside a predicate lambda.
      while (!(stop_ || !stage_queue_.empty() || !root_queue_.empty())) {
        work_available_.wait(lock.native());
      }
      if (stop_) return;  // pending requests are best-effort; drop on stop
      if (pause_ && pause_()) {
        // Farm-wait meter: the device side is idle, so host cores belong
        // to the demand path. Leave the request queued and re-check soon
        // (a dispatch entering the farm flips the gate without notifying).
        // This poll loop is bounded to mid-batch idle windows: every
        // query()/query_batch() quiesces before returning, which empties
        // the queues and parks workers back on the condition variable.
        lock.unlock();
        util::pause_for_seconds(200e-6);
        continue;
      }
      // Strict two-class priority: stage lookahead (needed by the query in
      // flight) before speculative roots (needed queries from now).
      std::deque<Request>& q =
          stage_queue_.empty() ? root_queue_ : stage_queue_;
      req = q.front();
      q.pop_front();
      ++in_flight_;
    }
    double extract_seconds = 0.0;
    bool fetched = false;
    Timer busy;  // wall time on this request, hit or miss — the idle signal
    try {
      const ShardedBallCache::Fetch f =
          req.cache->fetch(req.root, req.radius, req.kind,
                           req.claim_priority);
      fetched = !f.hit;
      extract_seconds = f.extract_seconds;
    } catch (...) {
      // A prefetch is advisory: swallow the failure so this worker thread
      // survives for the rest of the batch, and count it — the demand
      // fetch will surface the error with proper attribution (and its own
      // retry budget) if the ball is truly unreachable.
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    const double request_seconds = busy.elapsed_seconds();
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (fetched) balls_fetched_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(mu_);
      hidden_seconds_ += extract_seconds;
      busy_seconds_ += request_seconds;
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace meloppr::core
