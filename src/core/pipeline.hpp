// Concurrent query execution over the stage scheduler.
//
// The paper's linear decomposition (Eq. 6/8) makes every same-stage
// diffusion independent — its stated future work (Sec. VI-C) is running
// them in parallel. The engine's scheduler materializes exactly that
// independence as StageTask frontiers; QueryPipeline adds the thread pool
// that exploits it, at two granularities:
//
//   query(seed)        — stage-parallel: each stage's frontier of tasks is
//                        dispatched across the pool (the BFS+diffusion of
//                        task i overlaps task j), then reduced. With
//                        PipelineConfig::deterministic_reduction (default)
//                        the coordinator applies contributions in task
//                        order, so scores are identical for ANY thread
//                        count; the alternative streams contributions into
//                        a mutex-striped aggregator concurrently.
//   query_batch(seeds) — multi-query throughput. With work_stealing (the
//                        default) every query's per-stage tasks go into
//                        per-worker deques and idle workers steal from the
//                        tails of busy ones, so one query with a huge
//                        stage-2 fan-out cannot idle the pool; each query
//                        is then reduced by replaying the serial depth-
//                        first order, so scores stay bit-identical to
//                        Engine::query. With work_stealing off, queries
//                        are pinned whole to workers (the PR 1 scheduler).
//   query_stream(stream) — continuous ingest: the same stealing scheduler
//                        draining a SeedStream that other threads may still
//                        be pushing into. Fresh seeds are claimed the moment
//                        they arrive (idle workers park event-driven on
//                        stream arrival), results are delivered through a
//                        sink as each query finalizes, and per-query times
//                        are arrival-stamped: total_seconds is
//                        arrival→finalize response time, queue_seconds the
//                        arrival→claim wait. The serving front end
//                        (core/serving.hpp) builds its admission queue,
//                        deadline-aware batch formation, and tenant fair
//                        queueing on top of this call.
//
// Aggregation (MelopprConfig::aggregation) is orthogonal to scheduling:
// in bounded mode every per-query reduction runs through a c·k-entry
// TopCK arena instead of an exact map — and because both batch scheduling
// modes replay the serial DFS operation order per query, query_batch in
// bounded mode is bit-identical to Engine::query with a TopCKAggregator
// at any thread count (the paper's BRAM memory envelope with the serial
// table's exact semantics). Only the stage-parallel query() with
// deterministic_reduction off streams adds concurrently, through the
// sharded ConcurrentTopCKAggregator, whose admit/evict boundary is
// scheduling-dependent (concurrent_topck.hpp).
//
// Host/device overlap: when the engine carries a ShardedBallCache, the
// pipeline runs a stage-lookahead prefetcher — the moment a task's
// children are selected, dedicated host threads extract their (next-stage)
// balls into the shared cache while the current stage's diffusions still
// occupy the backend. This is the Fig. 4 PS/PL overlap the paper leaves
// serial: CPU-side BFS, the end-to-end bottleneck of Fig. 7, hides behind
// device time instead of serializing in front of it. Prefetch never
// affects scores; a missed prefetch just means the demand fetch pays the
// BFS itself.
//
// The same prefetch threads serve two further lookahead refinements:
//   * Cross-query root prefetch (root_prefetch_window) — the stealing
//     batch knows every upcoming seed, so the stage-0 balls of the next W
//     unclaimed queries stream into the cache ahead of their claim,
//     hiding cold-start BFS. Bounded by the cache's spare byte budget so
//     a small cache is never thrashed by speculation.
//   * Farm-wait metering (prefetch_wait_meter) — lookahead pauses while a
//     shared offloading backend reports zero active dispatches: an idle
//     farm means no worker is blocked device-side, so the host's cores
//     belong to the demand path and extra BFS threads would oversubscribe
//     them. Resumes the moment a dispatch enters the farm.
//
// Backend policy: a thread_safe() backend (CpuBackend, FpgaFarm) is shared
// by all workers — the farm then receives genuinely concurrent dispatches,
// its devices filling with independent same-stage balls. A non-thread-safe
// backend (FpgaBackend with its cycle counters) is clone()d once per
// worker.
//
// Memory accounting stays honest under concurrency: every worker meters
// its own transient footprints (ball + device working set), and the
// per-thread meters are merged by summing peaks — an upper bound on the
// true simultaneous peak, never an under-report. The peak story becomes
// "T balls at a time + aggregator" instead of one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag (the mutexes are util::Mutex)
#include <span>
#include <thread>
#include <vector>

#include "core/adaptive_window.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/prefetcher.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace meloppr::core {

/// A growable, lock-protected seed stream — the continuous-ingest face of
/// the stealing batch scheduler. Seeds may be pushed from any thread WHILE
/// a QueryPipeline::query_stream call is draining the stream: workers claim
/// fresh roots in push order the moment they arrive (the same fresh-root
/// claiming index the closed batch used, now reading a stream that grows),
/// and idle workers park event-driven until a push, a task publication, or
/// close() wakes them. Each push stamps the seed's arrival time on the
/// stream's own monotonic clock; that stamp is what makes
/// QueryStats::total_seconds an arrival→finalize response time (and
/// queue_seconds the arrival→claim wait) instead of the claim-clocked
/// service time the scheduler used to report. The root-prefetch lookahead
/// window reads upcoming seeds from the same stream, clamped to what has
/// actually arrived.
///
/// A stream is single-use: fill/close it, hand it to exactly one
/// query_stream call (pushes may continue while that call runs), and
/// discard it afterwards. close() is the end-of-stream marker — a draining
/// scheduler finishes every pushed seed and returns.
class SeedStream {
 public:
  SeedStream() = default;
  SeedStream(const SeedStream&) = delete;
  SeedStream& operator=(const SeedStream&) = delete;

  /// Appends one seed; thread-safe against concurrent pushes and a running
  /// query_stream. Returns the seed's stream index (results are delivered
  /// with it). Throws std::logic_error after close().
  std::size_t push(graph::NodeId seed);

  /// Bulk push; returns the index of the first appended seed.
  std::size_t push_all(std::span<const graph::NodeId> seeds);

  /// Marks the end of the stream: no further pushes are accepted, and a
  /// draining query_stream returns once every pushed seed has finished.
  /// Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  /// Seeds pushed so far.
  [[nodiscard]] std::size_t size() const;
  /// Seconds since construction — the arrival clock every stamp uses.
  [[nodiscard]] double now() const { return clock_.elapsed_seconds(); }

 private:
  friend class QueryPipeline;

  struct Slot {
    graph::NodeId seed = graph::kInvalidNode;
    double arrival_seconds = 0.0;  ///< push time on the stream clock
  };

  mutable util::Mutex mu_;
  std::vector<Slot> slots_ MELOPPR_GUARDED_BY(mu_);
  /// Scheduler claim cursor.
  std::size_t next_claim_ MELOPPR_GUARDED_BY(mu_) = 0;
  bool closed_ MELOPPR_GUARDED_BY(mu_) = false;
  /// Scheduler wake hook, registered by the draining query_stream call and
  /// cleared before it returns; invoked (under mu_) on push and close so
  /// parked workers never poll for arrivals.
  std::function<void()> on_event_ MELOPPR_GUARDED_BY(mu_);
  Timer clock_;
};

class QueryPipeline {
 public:
  /// Batch-level accounting for one query_batch call: what the serving
  /// layer (cache + prefetcher + stealing) did for the whole stream.
  /// Cache/prefetch deltas are measured around the call, so concurrent
  /// batches sharing one engine see each other's traffic folded in.
  struct BatchStats {
    std::size_t queries = 0;
    double wall_seconds = 0.0;
    std::size_t executed_tasks = 0;  ///< stage tasks (balls) run
    std::size_t stolen_tasks = 0;    ///< tasks executed off their home worker
    std::size_t cache_hits = 0;      ///< demand hits (incl. dedup joins)
    std::size_t cache_misses = 0;
    std::size_t dedup_hits = 0;      ///< joins of an in-flight extraction
    std::size_t prefetch_issued = 0;
    std::size_t prefetched_balls = 0;  ///< lookahead BFS actually performed
    /// Of prefetch_issued, the requests raised by the cross-query root
    /// prefetcher (stage-0 balls of upcoming seeds) rather than stage
    /// lookahead. Only the stealing batch scheduler issues these.
    std::size_t root_prefetch_issued = 0;
    /// Demand fetches served from the pinned prefetch side-table — root
    /// lookahead that paid off despite a TinyLFU retention rejection or a
    /// pre-claim eviction (root_prefetch_pinning only).
    std::size_t root_prefetch_pin_hits = 0;
    /// Root-prefetched balls whose BFS a claiming worker paid AGAIN (the
    /// PR 4 waste; 0 while pinning is on and the pin table has capacity).
    std::size_t root_reextractions = 0;
    /// Width the root-prefetch window controller chose on its last step of
    /// this batch (the fixed knob's value when adaptive_root_prefetch is
    /// off; 0 when root lookahead never ran).
    std::size_t last_root_prefetch_window = 0;
    /// Smoothed prefetch-thread idle fraction at batch end, in [0, 1]
    /// (adaptive controller telemetry; 0 when the controller never ran).
    double prefetch_idle_fraction = 0.0;
    /// Balls the cache served but declined to retain because a resident
    /// victim was estimated hotter (CacheAdmission::kTinyLFU only).
    std::size_t cache_admission_rejects = 0;
    double prefetch_hidden_seconds = 0.0;  ///< BFS time moved off demand path
    double demand_bfs_seconds = 0.0;       ///< BFS time still paid by workers
    /// Largest per-query peak_bytes in the batch (upper bound; in stealing
    /// mode every query's peak folds in all workers' transient ball/device
    /// footprints, since tasks of any query may run on any worker).
    std::size_t peak_bytes = 0;
    /// Σ bounded-table min-evictions across the batch (0 in exact mode).
    std::size_t aggregator_evictions = 0;
    /// Largest per-query score-table occupancy — in bounded mode never
    /// exceeds c·k, the paper's BRAM envelope per in-flight query.
    std::size_t peak_aggregator_entries = 0;

    /// Fault-tolerance accounting (all zero on a healthy stack). Per-query
    /// sums come from QueryStats; breaker/probe/device figures are the
    /// shared backend's dispatch_health() — trips/probes as deltas around
    /// the batch, device counts as the absolute state at batch end (zeros
    /// when the backend is per-worker-cloned and has no shared health).
    std::size_t dispatch_retries = 0;  ///< extra attempts the retry layer spent
    std::size_t deadline_misses = 0;   ///< attempts discarded for lateness
    std::size_t failovers = 0;         ///< diffusions served by the fallback
    std::size_t failed_balls = 0;      ///< balls missing from scores entirely
    std::size_t degraded_queries = 0;  ///< outcome() == kDegraded
    std::size_t failed_queries = 0;    ///< outcome() == kFailed
    /// Prefetch-worker extractions that threw (worker survived and kept
    /// draining; the demand path re-attempts the ball itself).
    std::size_t prefetch_failures = 0;
    std::size_t breaker_trips = 0;     ///< closed→open transitions this batch
    std::size_t breaker_probes = 0;    ///< half-open probes this batch
    std::size_t devices = 0;           ///< farm size at batch end
    std::size_t healthy_devices = 0;   ///< breaker-closed at batch end
    std::size_t dead_devices = 0;      ///< sticky-dead at batch end

    /// Arrival-stamped response-time distribution (seconds) over the
    /// batch: percentiles of QueryStats::total_seconds, which under both
    /// batch schedulers is arrival→finalize — the SLO-facing quantity,
    /// queueing delay included. All zero for an empty batch.
    double response_p50_seconds = 0.0;
    double response_p99_seconds = 0.0;
    double response_p999_seconds = 0.0;
    double max_response_seconds = 0.0;
    /// Mean arrival→claim wait (QueryStats::queue_seconds) — how much of
    /// the response time was scheduler queueing rather than service.
    double mean_queue_seconds = 0.0;

    [[nodiscard]] double cache_hit_rate() const {
      const std::size_t total = cache_hits + cache_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(total);
    }
  };

  /// Spawns the worker pool (plus prefetch threads when config.prefetch).
  /// `engine` and `backend` must outlive the pipeline. A single-threaded
  /// BallCache on the engine is still rejected in parallel mode; a
  /// ShardedBallCache is embraced at any thread count. Throws
  /// std::invalid_argument on a bad config.
  QueryPipeline(const Engine& engine, DiffusionBackend& backend,
                PipelineConfig config = {});
  QueryPipeline(const QueryPipeline&) = delete;
  QueryPipeline& operator=(const QueryPipeline&) = delete;
  ~QueryPipeline();

  /// One query with its independent same-stage diffusions dispatched across
  /// the pool. Scores match Engine::query within floating-point reduction
  /// reordering (≤ ~1e-14 absolute on the paper graphs); with deterministic
  /// reduction they are additionally identical across thread counts.
  QueryResult query(graph::NodeId seed);

  /// Many queries, concurrently. Scores are bit-identical to Engine::query
  /// at any thread count in both scheduling modes (the stealing mode
  /// executes tasks out of order but reduces each query in the serial
  /// depth-first order). Results are positionally aligned with `seeds`;
  /// `batch_stats` (optional) receives the serving-layer accounting.
  std::vector<QueryResult> query_batch(std::span<const graph::NodeId> seeds,
                                       BatchStats* batch_stats = nullptr);

  /// Delivers one finished query: the seed's stream index and its result.
  /// Invoked on a worker thread; implementations must be thread-safe
  /// against each other and must not re-enter the pipeline.
  using ResultSink =
      std::function<void(std::size_t stream_index, QueryResult&& result)>;

  /// Continuous-ingest batch: drains `stream`, claiming seeds as they
  /// arrive (pushes are allowed while this call runs) and blocking until
  /// the stream is closed and every pushed seed finished. Always uses the
  /// work-stealing scheduler, at any thread count (threads == 1 included).
  /// Scores for every seed are bit-identical to Engine::query regardless
  /// of when it was injected; QueryStats::total_seconds is arrival→finalize
  /// on the stream's clock and queue_seconds the arrival→claim wait. The
  /// first task exception is rethrown after the workers stop; seeds not yet
  /// finished at that point deliver no result.
  void query_stream(SeedStream& stream, const ResultSink& on_result,
                    BatchStats* batch_stats = nullptr);

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const Engine& engine() const { return *engine_; }

  /// The stage-lookahead prefetcher. Created lazily by the first query
  /// that finds a ShardedBallCache on the engine (threads are pointless
  /// without one), so this is nullptr until then — and permanently when
  /// config.prefetch is off or the backend-aware throttle suppresses
  /// lookahead (config.prefetch_throttle with a backend that computes on
  /// the host's own cores).
  [[nodiscard]] const BallPrefetcher* prefetcher() const {
    return prefetcher_.get();
  }
  /// The pooled per-worker aggregator arenas (nullptr when
  /// config.pool_aggregators is off).
  [[nodiscard]] const AggregatorPool* aggregator_pool() const {
    return agg_pool_.get();
  }
  /// The root-prefetch window controller (nullptr until the prefetcher
  /// spawns, and permanently when root_prefetch_window is 0). With
  /// adaptive_root_prefetch off it is pinned to the fixed window
  /// (min == max), still applying the spare-budget byte cap.
  [[nodiscard]] const AdaptiveWindowController* window_controller() const {
    return window_controller_.get();
  }

 private:
  /// Enqueues `count` jobs fn(job_index, worker_id) and blocks until all
  /// complete; the first job exception (if any) is rethrown here. Safe to
  /// call from several coordinator threads at once — each call waits on its
  /// own completion latch.
  void run_jobs(std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& fn);

  void worker_loop(std::size_t worker_id);

  /// Per-batch root-lookahead accounting, filled by run_stealing_batch so
  /// query_batch never reports another batch's controller state (the
  /// controller is shared pipeline state; a batch that takes the
  /// non-stealing path must report zeros).
  struct RootPrefetchTelemetry {
    std::size_t issued = 0;
    std::size_t last_window = 0;  ///< 0 unless root lookahead ran
    double idle_fraction = 0.0;   ///< 0 unless the controller ran
  };

  /// The work-stealing scheduler over a (possibly still growing) seed
  /// stream — both query_batch (which wraps its span in a pre-filled,
  /// closed stream) and query_stream run through here. Results are
  /// delivered through `on_result` as each query finalizes; serving-layer
  /// deltas are taken by the caller around this call. `telemetry`
  /// (optional) receives this batch's root-lookahead accounting.
  void run_stream_batch(SeedStream& stream, const ResultSink& on_result,
                        RootPrefetchTelemetry* telemetry = nullptr);

  [[nodiscard]] DiffusionBackend& backend_for(std::size_t worker_id) {
    return shared_backend_ != nullptr ? *shared_backend_
                                      : *clones_[worker_id];
  }

  void check_cache_free() const;

  /// Returns the cache to prefetch into when lookahead is active —
  /// config.prefetch on AND a shared cache installed — spawning the
  /// prefetch threads on first activation; nullptr otherwise. Called by
  /// query coordinators, safe from several at once.
  ShardedBallCache* activate_lookahead();

  const Engine* engine_;
  PipelineConfig config_;
  std::size_t threads_;
  /// Whether the backend runs diffusions off the host (farm/device) — the
  /// signal the backend-aware prefetch throttle keys on.
  bool backend_offloads_ = false;

  /// Exactly one of these is used: the shared thread-safe backend, or one
  /// clone per worker.
  DiffusionBackend* shared_backend_ = nullptr;
  std::vector<std::unique_ptr<DiffusionBackend>> clones_;

  std::once_flag prefetcher_once_;
  std::unique_ptr<BallPrefetcher> prefetcher_;
  /// Width controller for the cross-query root-prefetch window; created
  /// with the prefetcher whenever root lookahead is enabled. Adaptive
  /// mode widens between [root_prefetch_window, root_prefetch_max_window];
  /// fixed mode is the degenerate min == max == root_prefetch_window, so
  /// both modes share one tested byte-cap conversion.
  std::unique_ptr<AdaptiveWindowController> window_controller_;
  /// query_batch calls with active lookahead currently in flight on this
  /// pipeline — drop_pins() (cache-global) runs only when the last one
  /// drains, so concurrent batches cannot discard each other's pins.
  std::atomic<std::size_t> active_batches_{0};
  /// Monotonic wall clock shared by the controller's idle-fraction
  /// differentiation (starts with the pipeline).
  Timer uptime_;
  std::unique_ptr<AggregatorPool> agg_pool_;

  std::vector<std::thread> workers_;
  util::Mutex mu_;
  std::deque<std::function<void(std::size_t)>> queue_
      MELOPPR_GUARDED_BY(mu_);
  std::condition_variable work_available_;
  bool stop_ MELOPPR_GUARDED_BY(mu_) = false;
};

}  // namespace meloppr::core
