// Concurrent query execution over the stage scheduler.
//
// The paper's linear decomposition (Eq. 6/8) makes every same-stage
// diffusion independent — its stated future work (Sec. VI-C) is running
// them in parallel. The engine's scheduler materializes exactly that
// independence as StageTask frontiers; QueryPipeline adds the thread pool
// that exploits it, at two granularities:
//
//   query(seed)        — stage-parallel: each stage's frontier of tasks is
//                        dispatched across the pool (the BFS+diffusion of
//                        task i overlaps task j), then reduced. With
//                        PipelineConfig::deterministic_reduction (default)
//                        the coordinator applies contributions in task
//                        order, so scores are identical for ANY thread
//                        count; the alternative streams contributions into
//                        a mutex-striped aggregator concurrently.
//   query_batch(seeds) — query-parallel: each query runs the serial
//                        depth-first schedule (bit-identical to
//                        Engine::query) on one worker, queries concurrent
//                        with each other — the multi-query throughput path
//                        a serving deployment wants.
//
// Backend policy: a thread_safe() backend (CpuBackend, FpgaFarm) is shared
// by all workers — the farm then receives genuinely concurrent dispatches,
// its devices filling with independent same-stage balls. A non-thread-safe
// backend (FpgaBackend with its cycle counters) is clone()d once per
// worker.
//
// Memory accounting stays honest under concurrency: every worker meters
// its own transient footprints (ball + device working set), and the
// per-thread meters are merged by summing peaks — an upper bound on the
// true simultaneous peak, never an under-report. The peak story becomes
// "T balls at a time + aggregator" instead of one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"

namespace meloppr::core {

class QueryPipeline {
 public:
  /// Spawns the worker pool. `engine` and `backend` must outlive the
  /// pipeline; the engine must not have a ball cache installed when more
  /// than one worker is used (the cache is single-threaded). Throws
  /// std::invalid_argument on a bad config.
  QueryPipeline(const Engine& engine, DiffusionBackend& backend,
                PipelineConfig config = {});
  QueryPipeline(const QueryPipeline&) = delete;
  QueryPipeline& operator=(const QueryPipeline&) = delete;
  ~QueryPipeline();

  /// One query with its independent same-stage diffusions dispatched across
  /// the pool. Scores match Engine::query within floating-point reduction
  /// reordering (≤ ~1e-14 absolute on the paper graphs); with deterministic
  /// reduction they are additionally identical across thread counts.
  QueryResult query(graph::NodeId seed);

  /// Many queries, each executed with the serial depth-first schedule
  /// (scores bit-identical to Engine::query) and concurrently with the
  /// others. Results are positionally aligned with `seeds`.
  std::vector<QueryResult> query_batch(std::span<const graph::NodeId> seeds);

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const Engine& engine() const { return *engine_; }

 private:
  /// Enqueues `count` jobs fn(job_index, worker_id) and blocks until all
  /// complete; the first job exception (if any) is rethrown here. Safe to
  /// call from several coordinator threads at once — each call waits on its
  /// own completion latch.
  void run_jobs(std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& fn);

  void worker_loop(std::size_t worker_id);

  [[nodiscard]] DiffusionBackend& backend_for(std::size_t worker_id) {
    return shared_backend_ != nullptr ? *shared_backend_
                                      : *clones_[worker_id];
  }

  void check_cache_free() const;

  const Engine* engine_;
  PipelineConfig config_;
  std::size_t threads_;

  /// Exactly one of these is used: the shared thread-safe backend, or one
  /// clone per worker.
  DiffusionBackend* shared_backend_ = nullptr;
  std::vector<std::unique_ptr<DiffusionBackend>> clones_;

  std::vector<std::thread> workers_;
  std::deque<std::function<void(std::size_t)>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  bool stop_ = false;
};

}  // namespace meloppr::core
