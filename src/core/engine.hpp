// The MeLoPPR engine — multi-stage PPR per Sec. IV, driven by an explicit
// stage scheduler instead of hidden recursion.
//
// One query is a tree of stage tasks. Each task is a frame
// StageTask{root, mass, stage} implementing Eq. 8 (and its multi-stage
// generalization by re-applying Eq. 6 inside each child):
//
//   stage s, root v, in-flight mass m (pre-scaled: by linearity
//   GD_l(c·S0) = c·GD_l(S0), so all of Eq. 8's α^l factors ride along
//   inside the mass — exactly as on the FPGA, whose integer residual table
//   is α-scaled by construction):
//     1. BFS:      ball ← extract_ball(G, v, l_s)                (CPU)
//     2. Diffuse:  (π_a, α^l·π_r) ← GD_{l_s}(m·e_v) on ball      (backend)
//     3. Aggregate: S_L[g] += π_a[g]  for every ball node g
//     4. If not the last stage:
//          select next-stage nodes from α^l·π_r (Sec. IV-D sparsity)
//          each selected node u with in-flight mass r becomes a child task
//          StageTask{u, r, s+1}; before the child's ball is aggregated,
//          S_L[u] −= r removes the mass the child will re-diffuse (Eq. 8's
//          −α^l·S^r term).
//
// Steps 1–4 are packaged as `run_task`: a pure work unit that maps one
// StageTask to its score contributions and child tasks without touching any
// shared state. Two schedules drain the task tree:
//
//   * Engine::query — a serial LIFO work stack. Children are pushed in
//     selection order and popped depth-first, so the aggregator sees the
//     exact floating-point operation order of the original recursive
//     implementation (scores are bit-identical); the stack replaces the call
//     stack, nothing more.
//   * core::QueryPipeline (pipeline.hpp) — the linear decomposition makes
//     every same-stage task independent (the paper's Sec. VI-C future work),
//     so the pipeline materializes each stage frontier and dispatches it
//     across a thread pool, with a deterministic task-order reduction.
//
// The ball and its score vectors are freed when run_task returns, so the
// peak footprint is one ball at a time (per worker) plus the aggregator —
// that is MeLoPPR's O(G_l) ≪ O(G_L) memory story, and the engine's memory
// meter verifies it rather than assuming it.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/aggregator.hpp"
#include "core/backend.hpp"
#include "core/ball_cache.hpp"
#include "core/config.hpp"
#include "core/query_stats.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "ppr/topk.hpp"
#include "util/memory_meter.hpp"

namespace meloppr::core {

struct QueryResult {
  std::vector<ppr::ScoredNode> top;  ///< ranked top-k (global ids)
  QueryStats stats;
};

/// One schedulable unit of multi-stage work: diffuse `mass` from `root` at
/// recursion depth `stage`. The root query is {seed, 1.0, 0}; every selected
/// next-stage node becomes a task one stage deeper.
struct StageTask {
  graph::NodeId root = graph::kInvalidNode;
  double mass = 0.0;
  std::size_t stage = 0;
  /// Graph version the query was admitted at (dynamic graphs; 0 static).
  /// Stamped on the root task by Engine::make_root_task and inherited by
  /// every child, it is the floor the cache's fetch enforces: no ball
  /// served to this task reflects state older than the admission version,
  /// so one query never mixes pre- and post-update balls older than its
  /// stamp.
  std::uint64_t version = 0;
};

/// Everything one executed stage task hands back to its scheduler.
struct StageOutcome {
  /// π_a score contributions (global ids, ascending local-id order). The
  /// scheduler applies them to the aggregator; run_task itself never touches
  /// shared state.
  std::vector<std::pair<graph::NodeId, double>> contributions;
  /// Next-stage tasks in selection order (descending residual). Empty for
  /// the last stage.
  std::vector<StageTask> children;
  /// This task's increments for QueryStats.stages[stage].
  StageStats stats;
  std::size_t stage = 0;
  /// True when this task produced no usable scores (extraction faulted past
  /// the retry budget, or the diffusion exhausted retry + failover). A
  /// failed task contributes nothing and spawns no children; the scheduler
  /// must also skip its Eq. 8 −mass subtraction (the mass was never
  /// re-diffused) and count it in QueryStats (failed_balls → the query's
  /// outcome() becomes kFailed). Stats are still valid and must be merged.
  bool failed = false;
};

class Engine {
 public:
  /// The graph must outlive the engine. Throws std::invalid_argument on an
  /// invalid config.
  Engine(const graph::Graph& g, MelopprConfig config);

  /// Convenience query: CPU backend + exact aggregation.
  [[nodiscard]] QueryResult query(graph::NodeId seed) const;

  /// Full-control query: caller supplies the diffusion backend (CPU or
  /// simulated FPGA) and the aggregation strategy (exact map or top-c·k
  /// table). The aggregator is cleared first. Thread-safe for concurrent
  /// calls when the backend is thread-safe (or distinct per call), each call
  /// uses its own aggregator, and no ball cache is installed.
  QueryResult query(graph::NodeId seed, DiffusionBackend& backend,
                    ScoreAggregator& aggregator) const;

  /// Executes one stage task: BFS ball extraction, diffusion on `backend`,
  /// and next-stage selection. Transient footprints (ball, device working
  /// set) are charged to `meter`. Does not read or write any engine mutable
  /// state, so concurrent calls are safe whenever the backend tolerates them
  /// and no ball cache is installed (the cache is single-threaded).
  StageOutcome run_task(const StageTask& task, DiffusionBackend& backend,
                        MemoryMeter& meter) const;

  [[nodiscard]] const MelopprConfig& config() const { return config_; }
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// Serves all ball extractions through `cache` (nullptr restores direct
  /// extraction). The cache must be built over the same graph and outlive
  /// the engine's queries; its footprint is charged to the query's memory
  /// peak under the "ball_cache" category instead of per-stage "ball".
  /// A cache pins the engine to serial use: it is not thread-safe.
  void set_ball_cache(BallCache* cache) { cache_ = cache; }
  [[nodiscard]] BallCache* ball_cache() const { return cache_; }

  /// Serves all ball extractions through the thread-safe sharded cache
  /// (nullptr restores direct extraction) — the concurrent alternative to
  /// set_ball_cache, safe under any number of workers, and the storage side
  /// of the pipeline's stage-lookahead prefetcher. When both caches are
  /// installed the sharded one wins. Same lifetime/graph contract as above.
  void set_shared_ball_cache(ShardedBallCache* cache) {
    shared_cache_ = cache;
  }
  [[nodiscard]] ShardedBallCache* shared_ball_cache() const {
    return shared_cache_;
  }

  /// Serves cacheless ball extractions through `dyn`'s delta overlay and
  /// stamps every root task with the graph version at admission (nullptr
  /// restores the static graph). Pair with a sharded cache bound to the
  /// SAME DynamicGraph (bind_dynamic_graph) for the full dynamic stack;
  /// either alone is also coherent. `dyn` must outlive the engine's
  /// queries, and must wrap the same base graph this engine was built on
  /// (the quantized numerics path derives its scale from that graph).
  void set_dynamic_graph(const graph::DynamicGraph* dyn) { dynamic_ = dyn; }
  [[nodiscard]] const graph::DynamicGraph* dynamic_graph() const {
    return dynamic_;
  }

  /// The stage-0 task for `seed`, stamped with the current graph version —
  /// every scheduler (the serial stack, the stage-parallel frontier, the
  /// stealing stream) creates its root tasks here so admission stamping
  /// cannot diverge between them.
  [[nodiscard]] StageTask make_root_task(graph::NodeId seed) const {
    return {seed, 1.0, 0, dynamic_ == nullptr ? 0 : dynamic_->version()};
  }

 private:
  const graph::Graph* graph_;
  MelopprConfig config_;
  BallCache* cache_ = nullptr;
  ShardedBallCache* shared_cache_ = nullptr;
  const graph::DynamicGraph* dynamic_ = nullptr;
};

}  // namespace meloppr::core
