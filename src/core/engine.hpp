// The MeLoPPR engine — multi-stage PPR per Sec. IV.
//
// One query proceeds recursively, implementing Eq. 8 (and its multi-stage
// generalization by re-applying Eq. 6 inside each child):
//
//   stage s, root v, in-flight mass m (pre-scaled: by linearity
//   GD_l(c·S0) = c·GD_l(S0), so all of Eq. 8's α^l factors ride along
//   inside the mass — exactly as on the FPGA, whose integer residual table
//   is α-scaled by construction):
//     1. BFS:      ball ← extract_ball(G, v, l_s)                (CPU)
//     2. Diffuse:  (π_a, α^l·π_r) ← GD_{l_s}(m·e_v) on ball      (backend)
//     3. Aggregate: S_L[g] += π_a[g]  for every ball node g
//     4. If not the last stage:
//          select next-stage nodes from α^l·π_r (Sec. IV-D sparsity)
//          for each selected node u with in-flight mass r:
//            S_L[u] −= r                    (remove the mass that will be
//                                            re-diffused — Eq. 8's −α^l·S^r)
//            recurse(stage s+1, u, r)
//
// The ball and its score vectors are freed *before* recursing, so the peak
// footprint is one ball at a time plus the aggregator — that is MeLoPPR's
// O(G_l) ≪ O(G_L) memory story, and the engine's memory meter verifies it
// rather than assuming it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/aggregator.hpp"
#include "core/backend.hpp"
#include "core/ball_cache.hpp"
#include "core/config.hpp"
#include "core/query_stats.hpp"
#include "graph/graph.hpp"
#include "ppr/topk.hpp"
#include "util/memory_meter.hpp"

namespace meloppr::core {

struct QueryResult {
  std::vector<ppr::ScoredNode> top;  ///< ranked top-k (global ids)
  QueryStats stats;
};

class Engine {
 public:
  /// The graph must outlive the engine. Throws std::invalid_argument on an
  /// invalid config.
  Engine(const graph::Graph& g, MelopprConfig config);

  /// Convenience query: CPU backend + exact aggregation.
  [[nodiscard]] QueryResult query(graph::NodeId seed) const;

  /// Full-control query: caller supplies the diffusion backend (CPU or
  /// simulated FPGA) and the aggregation strategy (exact map or top-c·k
  /// table). The aggregator is cleared first.
  QueryResult query(graph::NodeId seed, DiffusionBackend& backend,
                    ScoreAggregator& aggregator) const;

  [[nodiscard]] const MelopprConfig& config() const { return config_; }
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// Serves all ball extractions through `cache` (nullptr restores direct
  /// extraction). The cache must be built over the same graph and outlive
  /// the engine's queries; its footprint is charged to the query's memory
  /// peak under the "ball_cache" category instead of per-stage "ball".
  void set_ball_cache(BallCache* cache) { cache_ = cache; }

 private:
  struct RecursionContext {
    DiffusionBackend& backend;
    ScoreAggregator& aggregator;
    QueryStats& stats;
    MemoryMeter meter;
  };

  void run_stage(RecursionContext& ctx, graph::NodeId root_global,
                 double mass, std::size_t stage) const;

  const graph::Graph* graph_;
  MelopprConfig config_;
  BallCache* cache_ = nullptr;
};

}  // namespace meloppr::core
