// MeLoPPR configuration (Sec. IV + VI).
//
// The paper's evaluation fixes k=200, L=6, l1=l2=3 ("so that MeLoPPR
// contains two stages"); stage_lengths generalizes to any decomposition
// L = l1 + l2 + … + lS, which Eq. 6 supports by repeated application.
#pragma once

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/selector.hpp"
#include "hw/quantizer.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::core {

/// How per-ball score contributions are summed into the global score view
/// (Sec. V-B "Data Transfer Reduction").
enum class AggregationMode {
  /// Full hash map of every touched node — exact, O(G_L(s)) footprint
  /// (the CPU implementation's strategy).
  kExact,
  /// Fixed c·k-entry table with min-eviction — the FPGA's BRAM strategy:
  /// bounded memory, small precision loss for small c. Serial schedules
  /// use TopCKAggregator; concurrent streaming uses
  /// ConcurrentTopCKAggregator (per-shard eviction boundary).
  kBounded,
};

/// Admission policy of the sharded ball cache (sharded_ball_cache.hpp):
/// whether a freshly extracted ball may displace resident ones.
enum class CacheAdmission {
  /// Plain LRU: every ball that fits its shard's budget is retained,
  /// evicting least-recently-used entries to make room. Simple, but a
  /// burst of unpopular seeds (a scan) flushes the hot hub balls the
  /// whole serving pipeline depends on.
  kAlways,
  /// TinyLFU-style frequency gate: each shard keeps a 4-bit count-min
  /// sketch (periodically halved, so estimates age) of ball access
  /// frequency. When inserting would require eviction, the candidate is
  /// admitted only if its estimated frequency strictly beats that of
  /// every LRU victim it would displace — one-shot scan traffic can
  /// never evict a frequently-hit ball. Rejected balls are still served,
  /// just not retained (ShardedBallCache::admission_rejects counts them).
  kTinyLFU,
};

/// Concurrency surface of the QueryPipeline (core/pipeline.hpp): how many
/// workers, and how their score contributions are reduced.
struct PipelineConfig {
  /// Worker threads; 0 → std::thread::hardware_concurrency() (min 1).
  std::size_t threads = 0;

  /// Reduction mode for the stage-parallel single-query schedule.
  /// true  → workers only *compute*; the coordinator applies every task's
  ///         contributions in task order, so scores are identical for any
  ///         thread count (deterministic reduction).
  /// false → workers add concurrently through a StripedAggregator: faster
  ///         under contention, but the floating-point sum order is
  ///         scheduling-dependent (~1e-15 relative jitter between runs).
  bool deterministic_reduction = true;

  /// Stripe count for the concurrent exact aggregation path.
  std::size_t aggregator_stripes = 16;

  /// Shard count for the concurrent bounded (top-c·k) aggregation path;
  /// 0 → one shard per worker thread.
  std::size_t topck_shards = 0;

  /// Stage-lookahead BFS prefetch. When the engine has a shared
  /// (ShardedBallCache) ball cache installed, each finished stage task's
  /// next-stage children are handed to dedicated prefetch threads, which
  /// extract their balls into the cache while the current stage's
  /// diffusions still occupy the backend — the PS/PL overlap of Fig. 4.
  /// No-op without a shared cache; never affects scores.
  bool prefetch = true;

  /// Dedicated prefetch (host BFS) threads; 0 → max(1, threads/2). These
  /// are in addition to the worker pool: workers blocked on a busy device
  /// farm leave exactly this many cores for lookahead BFS.
  std::size_t prefetch_threads = 0;

  /// Backend-aware prefetch throttle (ROADMAP "Prefetch throttling"). When
  /// true (default), lookahead BFS threads only run for backends that
  /// offload diffusion off the host (a device or device farm) — that is,
  /// exactly when dispatchers block on the farm and leave cores idle. On a
  /// CPU-only backend the workers themselves occupy every core, so
  /// prefetch threads would only oversubscribe; the throttle keeps them
  /// unspawned. Set false to force lookahead regardless of backend (e.g.
  /// to measure the layer in isolation, or when the host has known-idle
  /// cores).
  bool prefetch_throttle = true;

  /// Cross-query root lookahead (ROADMAP "Cross-query root prefetch"): in a
  /// work-stealing batch the scheduler knows every upcoming seed, so the
  /// stage-0 balls of upcoming unclaimed queries are handed to the prefetch
  /// threads while earlier queries still run — the cold-start BFS of a
  /// fresh query becomes a cache hit. The window is always throttled by the
  /// shared cache's spare byte budget (speculative roots may consume spare
  /// capacity, up to at most ~1/8 of the budget — a full cache stops
  /// speculating entirely), so a small cache is never churned to warm
  /// queries that are far away. 0 disables root lookahead in both modes;
  /// with `adaptive_root_prefetch` (the default) any positive value merely
  /// enables it and the width is chosen by the controller; with the
  /// adaptive controller off this is the fixed window width (the PR 4
  /// knob). Requires prefetch + a shared cache, like stage lookahead;
  /// never affects scores.
  std::size_t root_prefetch_window = 4;

  /// Adaptive root-prefetch window (ROADMAP "Adaptive root-prefetch
  /// window"). When true (default) the window width self-tunes per claim
  /// from two live signals instead of staying at the fixed knob above:
  /// the EWMA of recently extracted ball bytes (how much speculation the
  /// spare budget can absorb) and the prefetch threads' idle fraction
  /// (how much lookahead capacity is going unused — idle threads widen
  /// the window toward root_prefetch_max_window, saturated threads let it
  /// fall back to the configured floor). The width never drops below
  /// `root_prefetch_window` — narrowing issuance protects nothing; cache
  /// churn protection is the spare-budget byte throttle, which always
  /// wins and closes the window entirely on a full cache. Set false to
  /// reproduce the fixed `root_prefetch_window` exactly.
  bool adaptive_root_prefetch = true;

  /// Upper bound of the adaptive controller's window, in seeds. The
  /// controller reaches it only when the prefetch threads are idle and the
  /// cache has spare budget for that many EWMA-sized balls.
  std::size_t root_prefetch_max_window = 32;

  /// Pinned prefetch handoff (ROADMAP "Pinned prefetch handoff"). When
  /// true (default), every root-prefetched ball is additionally held in
  /// the cache's bounded pinned side-table (keyed by seed) until its seed
  /// is claimed or the batch ends — so a TinyLFU retention rejection can
  /// no longer waste the prefetch BFS: the claiming worker is served from
  /// the pin even when the ball was never retained (and can no longer be
  /// hurt by an eviction racing the claim). Scan resistance is unchanged;
  /// pins live outside the LRU and expire with the batch. Set false for
  /// the PR 4 behavior (served-but-rejected prefetches are re-extracted).
  bool root_prefetch_pinning = true;

  /// Farm-wait prefetch meter (ROADMAP "Per-moment farm-wait throttling").
  /// The backend-aware throttle above is binary per backend; this meters
  /// lookahead at run time: prefetch threads pause (requests queue up)
  /// whenever a shared offloading backend reports zero active dispatches —
  /// an idle farm means no worker is blocked on a device, so host cores
  /// belong to the demand path and lookahead BFS would oversubscribe them.
  /// The moment a dispatch enters the farm, lookahead resumes. Only
  /// applies to shared thread-safe offloading backends (FpgaFarm); ignored
  /// elsewhere. Never affects scores — paused lookahead just means the
  /// demand fetch pays its own BFS.
  bool prefetch_wait_meter = true;

  /// query_batch scheduling. true → per-stage tasks of every query go into
  /// per-worker deques and idle workers steal from the busiest tails, so
  /// one query with a huge stage-2 fan-out cannot idle the pool; scores
  /// stay bit-identical to Engine::query (reduction replays the serial DFS
  /// order). false → each query is pinned to one worker (PR 1 behavior).
  bool work_stealing = true;

  /// Reuse per-worker ExactAggregator arenas across the queries of a batch
  /// (clear() keeps the hash-map buckets) instead of construct/teardown per
  /// query — cuts malloc churn at high thread counts.
  bool pool_aggregators = true;

  [[nodiscard]] std::size_t resolved_threads() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  [[nodiscard]] std::size_t resolved_prefetch_threads() const {
    if (prefetch_threads != 0) return prefetch_threads;
    const std::size_t half = resolved_threads() / 2;
    return half == 0 ? 1 : half;
  }

  void validate() const {
    if (aggregator_stripes == 0) {
      throw std::invalid_argument(
          "PipelineConfig: aggregator_stripes must be positive");
    }
    if (adaptive_root_prefetch && root_prefetch_window > 0 &&
        root_prefetch_max_window == 0) {
      throw std::invalid_argument(
          "PipelineConfig: root_prefetch_max_window must be positive when "
          "the adaptive controller is on and root lookahead is enabled");
    }
  }
};

struct MelopprConfig {
  double alpha = 0.85;                       ///< α-RW continuation prob.
  std::vector<unsigned> stage_lengths{3, 3}; ///< l1, l2, …; Σ = L
  std::size_t k = 200;                       ///< top-k query size
  Selection selection = Selection::top_ratio(0.05);  ///< next-stage policy

  /// Global score aggregation strategy (exact map vs bounded c·k table).
  AggregationMode aggregation = AggregationMode::kExact;
  /// Bounded-table multiplier: the table holds c·k entries (paper default
  /// c=10, the <0.2% precision-loss point). Ignored in exact mode.
  std::size_t topck_c = 10;

  /// Bounded-table admission hysteresis ε (ROADMAP "Bounded-table admission
  /// hysteresis"). Near the c·k boundary, challengers within floating-point
  /// noise of the table minimum churn evict/readmit cycles; with ε > 0 a
  /// full table evicts only when the challenger beats the minimum by more
  /// than ε·|min| — closer scores are dropped instead (they still feed
  /// eviction_bound(), so the fidelity certificate stays honest, and
  /// margin_drops() counts them). 0 (default) reproduces strict
  /// min-eviction bit-for-bit. Ignored in exact mode.
  double topck_epsilon = 0.0;

  /// Numeric domain of host (CpuBackend) diffusions. kFloat64 is the
  /// default double-precision kernel; kFixedPoint runs the accelerator's
  /// integer datapath on host SIMD lanes (hw::Quantizer built per graph by
  /// make_cpu_backend), reproducing simulated-FPGA scores node-for-node —
  /// a whole serving batch can run either numerics from config alone.
  /// Ignored by device backends, which carry their own quantizer.
  ppr::Numerics numerics = ppr::Numerics::kFloat64;
  /// Fixed-point shift amount q (α ≈ α_p/2^q; paper ships q=10). Only used
  /// when numerics == kFixedPoint.
  unsigned fixed_point_q = 10;
  /// Policy for the quantizer's Max = d·|reference| (paper ships
  /// d = max_degree/2). Only used when numerics == kFixedPoint.
  hw::DChoice fixed_point_d = hw::DChoice::kHalfMaxDegree;

  /// Ball-extraction attempts per task before the ball is declared failed
  /// (the engine's retry budget against an environmentally-flaky extractor
  /// or storage layer). Caller errors (std::invalid_argument for a bad
  /// seed) and invariant violations are never retried — they propagate.
  /// 1 = no retries.
  std::size_t extraction_attempts = 3;

  /// Bounded-table capacity, c·k entries.
  [[nodiscard]] std::size_t table_capacity() const { return topck_c * k; }

  /// Total diffusion length L = Σ stage lengths.
  [[nodiscard]] unsigned total_length() const {
    unsigned sum = 0;
    for (unsigned l : stage_lengths) sum += l;
    return sum;
  }

  [[nodiscard]] std::size_t num_stages() const {
    return stage_lengths.size();
  }

  /// Throws std::invalid_argument on nonsense parameters.
  void validate() const {
    if (alpha <= 0.0 || alpha >= 1.0) {
      throw std::invalid_argument("MelopprConfig: alpha must be in (0,1)");
    }
    if (stage_lengths.empty()) {
      throw std::invalid_argument("MelopprConfig: need at least one stage");
    }
    for (unsigned l : stage_lengths) {
      if (l == 0) {
        throw std::invalid_argument(
            "MelopprConfig: stage lengths must be positive");
      }
    }
    if (k == 0) {
      throw std::invalid_argument("MelopprConfig: k must be positive");
    }
    if (topck_c == 0) {
      throw std::invalid_argument("MelopprConfig: topck_c must be positive");
    }
    if (!(topck_epsilon >= 0.0)) {  // rejects negatives and NaN
      throw std::invalid_argument(
          "MelopprConfig: topck_epsilon must be non-negative");
    }
    if (extraction_attempts == 0) {
      throw std::invalid_argument(
          "MelopprConfig: extraction_attempts must be >= 1");
    }
    if (fixed_point_q == 0 || fixed_point_q > 16) {
      // α_p = round(α·2^q) must fit the 16-bit hardware multiplier.
      throw std::invalid_argument(
          "MelopprConfig: fixed_point_q must be in [1, 16]");
    }
    selection.validate();
  }
};

}  // namespace meloppr::core
