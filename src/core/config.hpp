// MeLoPPR configuration (Sec. IV + VI).
//
// The paper's evaluation fixes k=200, L=6, l1=l2=3 ("so that MeLoPPR
// contains two stages"); stage_lengths generalizes to any decomposition
// L = l1 + l2 + … + lS, which Eq. 6 supports by repeated application.
#pragma once

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/selector.hpp"

namespace meloppr::core {

/// Concurrency surface of the QueryPipeline (core/pipeline.hpp): how many
/// workers, and how their score contributions are reduced.
struct PipelineConfig {
  /// Worker threads; 0 → std::thread::hardware_concurrency() (min 1).
  std::size_t threads = 0;

  /// Reduction mode for the stage-parallel single-query schedule.
  /// true  → workers only *compute*; the coordinator applies every task's
  ///         contributions in task order, so scores are identical for any
  ///         thread count (deterministic reduction).
  /// false → workers add concurrently through a StripedAggregator: faster
  ///         under contention, but the floating-point sum order is
  ///         scheduling-dependent (~1e-15 relative jitter between runs).
  bool deterministic_reduction = true;

  /// Stripe count for the concurrent aggregation path.
  std::size_t aggregator_stripes = 16;

  [[nodiscard]] std::size_t resolved_threads() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  void validate() const {
    if (aggregator_stripes == 0) {
      throw std::invalid_argument(
          "PipelineConfig: aggregator_stripes must be positive");
    }
  }
};

struct MelopprConfig {
  double alpha = 0.85;                       ///< α-RW continuation prob.
  std::vector<unsigned> stage_lengths{3, 3}; ///< l1, l2, …; Σ = L
  std::size_t k = 200;                       ///< top-k query size
  Selection selection = Selection::top_ratio(0.05);  ///< next-stage policy

  /// Total diffusion length L = Σ stage lengths.
  [[nodiscard]] unsigned total_length() const {
    unsigned sum = 0;
    for (unsigned l : stage_lengths) sum += l;
    return sum;
  }

  [[nodiscard]] std::size_t num_stages() const {
    return stage_lengths.size();
  }

  /// Throws std::invalid_argument on nonsense parameters.
  void validate() const {
    if (alpha <= 0.0 || alpha >= 1.0) {
      throw std::invalid_argument("MelopprConfig: alpha must be in (0,1)");
    }
    if (stage_lengths.empty()) {
      throw std::invalid_argument("MelopprConfig: need at least one stage");
    }
    for (unsigned l : stage_lengths) {
      if (l == 0) {
        throw std::invalid_argument(
            "MelopprConfig: stage lengths must be positive");
      }
    }
    if (k == 0) {
      throw std::invalid_argument("MelopprConfig: k must be positive");
    }
    selection.validate();
  }
};

}  // namespace meloppr::core
