// MeLoPPR configuration (Sec. IV + VI).
//
// The paper's evaluation fixes k=200, L=6, l1=l2=3 ("so that MeLoPPR
// contains two stages"); stage_lengths generalizes to any decomposition
// L = l1 + l2 + … + lS, which Eq. 6 supports by repeated application.
#pragma once

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/selector.hpp"

namespace meloppr::core {

struct MelopprConfig {
  double alpha = 0.85;                       ///< α-RW continuation prob.
  std::vector<unsigned> stage_lengths{3, 3}; ///< l1, l2, …; Σ = L
  std::size_t k = 200;                       ///< top-k query size
  Selection selection = Selection::top_ratio(0.05);  ///< next-stage policy

  /// Total diffusion length L = Σ stage lengths.
  [[nodiscard]] unsigned total_length() const {
    unsigned sum = 0;
    for (unsigned l : stage_lengths) sum += l;
    return sum;
  }

  [[nodiscard]] std::size_t num_stages() const {
    return stage_lengths.size();
  }

  /// Throws std::invalid_argument on nonsense parameters.
  void validate() const {
    if (alpha <= 0.0 || alpha >= 1.0) {
      throw std::invalid_argument("MelopprConfig: alpha must be in (0,1)");
    }
    if (stage_lengths.empty()) {
      throw std::invalid_argument("MelopprConfig: need at least one stage");
    }
    for (unsigned l : stage_lengths) {
      if (l == 0) {
        throw std::invalid_argument(
            "MelopprConfig: stage lengths must be positive");
      }
    }
    if (k == 0) {
      throw std::invalid_argument("MelopprConfig: k must be positive");
    }
    selection.validate();
  }
};

}  // namespace meloppr::core
