// FPGA resource model for the Xilinx Kintex-7 KC705 (Table I).
//
// The KC705's XC7K325T device provides 203,800 LUTs, 445 36-Kb BRAM blocks
// and 840 DSP slices. Utilization is estimated structurally:
//
//   LUTs  = control plane (stream decode, host interface)
//         + P × per-PE datapath (diffuser with LUT-based divider +
//           accumulator + table addressing)
//         + P² × crossbar/arbiter slice (each diffuser can write every score
//           table, so the scheduler grows quadratically — this is why the
//           paper's LUT column grows superlinearly while BRAM stays linear)
//
//   BRAM  = base (global top-c·k score table + stream FIFOs)
//         + P × blocks for one PE's sub-graph/accumulated/residual tables,
//           sized from the paper's byte formula for the ball capacity the
//           PE is provisioned for.
//
//   DSPs  ≈ 0: the division is implemented in logic (Table I note).
#pragma once

#include <cstddef>
#include <string>

namespace meloppr::hw {

/// Device capacity constants.
struct DeviceSpec {
  std::string name = "Xilinx Kintex-7 KC705 (XC7K325T)";
  std::size_t luts = 203'800;
  std::size_t bram36_blocks = 445;
  std::size_t dsp_slices = 840;
};

/// Structural cost coefficients; defaults calibrated to a P=1 footprint of
/// ≈0.9% LUTs / ≈4.8% BRAM, the paper's measured baseline.
struct ResourceCoefficients {
  std::size_t control_luts = 0;        ///< fixed control plane
  std::size_t per_pe_luts = 1357;      ///< diffuser + divider + accumulator
  double crossbar_luts_per_pair = 477.0;  ///< × P²
  std::size_t base_bram = 2;           ///< global table + FIFOs
  /// Ball capacity one PE's tables are provisioned for.
  std::size_t pe_ball_nodes = 2500;
  std::size_t pe_ball_edges = 5000;
  std::size_t dsp_per_pe = 0;          ///< divider is LUT logic
};

struct ResourceUsage {
  std::size_t luts = 0;
  std::size_t bram36_blocks = 0;
  std::size_t dsp_slices = 0;
  double lut_fraction = 0.0;
  double bram_fraction = 0.0;
  double dsp_fraction = 0.0;
  bool fits = false;  ///< all three within device capacity
};

class ResourceModel {
 public:
  explicit ResourceModel(DeviceSpec device = {},
                         ResourceCoefficients coeff = {});

  /// Utilization estimate for a P-PE accelerator instance.
  [[nodiscard]] ResourceUsage estimate(unsigned parallelism) const;

  /// BRAM36 blocks needed to hold the three per-PE tables for one ball of
  /// the configured capacity (paper byte formula / 36 Kb, ceil).
  [[nodiscard]] std::size_t pe_bram_blocks() const;

  /// Largest P that fits the device (LUTs and BRAM both).
  [[nodiscard]] unsigned max_parallelism() const;

  [[nodiscard]] const DeviceSpec& device() const { return device_; }
  [[nodiscard]] const ResourceCoefficients& coefficients() const {
    return coeff_;
  }

 private:
  DeviceSpec device_;
  ResourceCoefficients coeff_;
};

}  // namespace meloppr::hw
