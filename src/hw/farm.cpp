#include "hw/farm.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::hw {

FpgaFarm::FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
                   const Quantizer& quantizer) {
  if (devices == 0) {
    throw std::invalid_argument("FpgaFarm: need at least one device");
  }
  devices_.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    devices_.emplace_back(Accelerator(config, quantizer));
  }
  busy_seconds_.assign(devices, 0.0);
}

core::BackendResult FpgaFarm::run(const graph::Subgraph& ball, double mass,
                                  unsigned length) {
  // Greedy list scheduling: the next independent diffusion goes to the
  // device that frees up first.
  const std::size_t device = static_cast<std::size_t>(
      std::min_element(busy_seconds_.begin(), busy_seconds_.end()) -
      busy_seconds_.begin());
  core::BackendResult result = devices_[device].run(ball, mass, length);
  busy_seconds_[device] += result.compute_seconds + result.transfer_seconds;
  ++runs_;
  return result;
}

std::size_t FpgaFarm::working_bytes(std::size_t ball_nodes,
                                    std::size_t ball_edges) const {
  // Each device holds its own tables; the farm's footprint scales with D.
  return devices_.size() *
         devices_.front().working_bytes(ball_nodes, ball_edges);
}

std::string FpgaFarm::name() const {
  std::ostringstream os;
  os << "farm(" << devices_.size() << "x "
     << devices_.front().name() << ")";
  return os.str();
}

double FpgaFarm::makespan_seconds() const {
  return *std::max_element(busy_seconds_.begin(), busy_seconds_.end());
}

double FpgaFarm::serial_seconds() const {
  double total = 0.0;
  for (double b : busy_seconds_) total += b;
  return total;
}

double FpgaFarm::imbalance() const {
  const double ideal =
      serial_seconds() / static_cast<double>(devices_.size());
  return ideal > 0.0 ? makespan_seconds() / ideal : 1.0;
}

void FpgaFarm::reset() {
  for (auto& device : devices_) device.reset_counters();
  std::fill(busy_seconds_.begin(), busy_seconds_.end(), 0.0);
  runs_ = 0;
}

}  // namespace meloppr::hw
