#include "hw/farm.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/sleep.hpp"

namespace meloppr::hw {

DispatchPolicy DispatchPolicy::from_env() {
  DispatchPolicy policy;
  policy.max_attempts = static_cast<std::size_t>(std::max<std::int64_t>(
      1, env_int("MELOPPR_DISPATCH_ATTEMPTS",
                 static_cast<std::int64_t>(policy.max_attempts))));
  policy.run_deadline_seconds =
      env_double("MELOPPR_DISPATCH_DEADLINE", policy.run_deadline_seconds);
  policy.breaker_failure_threshold =
      static_cast<std::size_t>(std::max<std::int64_t>(
          0, env_int("MELOPPR_BREAKER_THRESHOLD",
                     static_cast<std::int64_t>(
                         policy.breaker_failure_threshold))));
  policy.breaker_probe_seconds =
      env_double("MELOPPR_BREAKER_PROBE_SECONDS", policy.breaker_probe_seconds);
  return policy;
}

FpgaFarm::FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
                   const Quantizer& quantizer)
    : FpgaFarm(devices, config, quantizer, DispatchPolicy::from_env(),
               FaultPlan::from_env()) {}

FpgaFarm::FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
                   const Quantizer& quantizer, const DispatchPolicy& policy,
                   const FaultPlan& plan)
    : config_(config),
      quantizer_(quantizer),
      policy_(policy),
      plan_(plan),
      free_count_(devices),
      jitter_rng_(plan.seed ^ 0xfa43c0ffee1dULL) {
  if (devices == 0) {
    throw std::invalid_argument("FpgaFarm: need at least one device");
  }
  if (policy_.max_attempts == 0) {
    throw std::invalid_argument("FpgaFarm: max_attempts must be >= 1");
  }
  devices_.reserve(devices);
  targets_.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    devices_.emplace_back(Accelerator(config, quantizer));
  }
  // devices_ never resizes after this point, so references into it (and the
  // FaultyBackend wrappers holding them) stay stable.
  for (std::size_t d = 0; d < devices; ++d) {
    if (plan_.empty()) {
      targets_.push_back(&devices_[d]);
    } else {
      faulty_.push_back(
          std::make_unique<core::FaultyBackend>(devices_[d], plan_, d));
      targets_.push_back(faulty_.back().get());
    }
    breakers_.emplace_back(policy_.breaker_failure_threshold,
                           policy_.breaker_probe_seconds);
  }
  busy_seconds_.assign(devices, 0.0);
  in_use_.assign(devices, 0);
}

int FpgaFarm::checkout_device(bool* is_probe) {
  Timer wait_timer;
  util::MutexLock lock(mu_);
  for (;;) {
    // 1. Least-loaded free device whose breaker is closed.
    int best = -1;
    double least = -1.0;
    bool closed_but_busy = false;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      if (!breakers_[d].closed()) continue;
      if (in_use_[d]) {
        closed_but_busy = true;
        continue;
      }
      if (least < 0.0 || busy_seconds_[d] < least) {
        least = busy_seconds_[d];
        best = static_cast<int>(d);
      }
    }
    // 2. No healthy device free: a matured open breaker may offer its
    // half-open probe slot.
    if (best < 0) {
      const double now = uptime_.elapsed_seconds();
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (in_use_[d]) continue;
        if (breakers_[d].probe_ready(now)) {
          breakers_[d].begin_probe();
          *is_probe = true;
          best = static_cast<int>(d);
          break;
        }
      }
    }
    if (best >= 0) {
      in_use_[best] = 1;
      --free_count_;
      peak_in_use_ = std::max(peak_in_use_, devices_.size() - free_count_);
      wait_seconds_ += wait_timer.elapsed_seconds();
      return best;
    }
    // 3. Healthy devices exist but are all busy: wait for one to free.
    // Short timed waits (not a bare wait) because a breaker can trip while
    // we sleep, flipping the answer from "wait" to "fail over".
    if (closed_but_busy) {
      device_free_.wait_for(lock.native(), std::chrono::microseconds(500));
      continue;
    }
    // 4. Nothing dispatchable: every breaker open/dead and no probe ready.
    // Return immediately — the failover layer serves from the host; we
    // must not serialize the whole pipeline on probe timers.
    wait_seconds_ += wait_timer.elapsed_seconds();
    return -1;
  }
}

core::BackendResult FpgaFarm::run(const graph::Subgraph& ball, double mass,
                                  unsigned length) {
  // The active-dispatch gauge counts this thread for the whole call —
  // waiting for a device is as strong an "offload in progress" signal as
  // running one, and it is exactly the window the prefetch meter wants to
  // fill with lookahead BFS. RAII so a throwing diffusion (MELO_CHECK on
  // bad inputs, allocation failure) cannot leave the gauge inflated and
  // silently pin the prefetch meter open.
  struct DispatchGauge {
    std::atomic<std::size_t>& gauge;
    explicit DispatchGauge(std::atomic<std::size_t>& g) : gauge(g) {
      gauge.fetch_add(1, std::memory_order_relaxed);
    }
    ~DispatchGauge() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } gauge(active_dispatches_);

  core::BackendResult last;
  std::uint32_t misses_this_run = 0;
  double backoff = policy_.backoff_initial_seconds;
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    bool is_probe = false;
    const int device = checkout_device(&is_probe);
    if (device < 0) {
      // Degraded farm: nothing dispatchable right now. Fail fast so the
      // failover layer can serve; backoff/retry here would only add
      // latency on top of a state that probe traffic must change first.
      last = core::BackendResult{};
      last.status = core::RunStatus::kNoHealthyDevice;
      last.error = "farm: no device in rotation (breakers open or dead)";
      last.attempts = static_cast<std::uint32_t>(attempt);
      last.deadline_misses = misses_this_run;
      util::MutexLock lock(mu_);
      ++exhausted_runs_;
      return last;
    }

    Timer run_timer;
    core::BackendResult result;
    try {
      result = targets_[device]->run(ball, mass, length);
    } catch (const InvariantViolation&) {
      // A bug, not weather: release the device and let it propagate.
      {
        util::MutexLock lock(mu_);
        in_use_[device] = 0;
        ++free_count_;
      }
      device_free_.notify_all();
      throw;
    } catch (const std::invalid_argument&) {
      // Caller error (bad ball/seed): same device on the same input would
      // fail again — propagate, don't burn the retry budget.
      {
        util::MutexLock lock(mu_);
        in_use_[device] = 0;
        ++free_count_;
      }
      device_free_.notify_all();
      throw;
    } catch (const std::exception& e) {
      // Environmental: convert the throw into the typed channel so the
      // retry/breaker machinery below handles it like any failed attempt.
      result = core::BackendResult{};
      result.status = core::RunStatus::kTransientFault;
      result.error = e.what();
    }
    const double wall = run_timer.elapsed_seconds();
    const bool late = result.ok() && policy_.run_deadline_seconds > 0.0 &&
                      wall > policy_.run_deadline_seconds;
    const bool success = result.ok() && !late;

    bool retry = false;
    {
      util::MutexLock lock(mu_);
      busy_seconds_[device] +=
          result.compute_seconds + result.transfer_seconds;
      in_use_[device] = 0;
      ++free_count_;
      if (success) {
        breakers_[device].record_success();
        ++runs_;
      } else {
        if (result.status == core::RunStatus::kDeviceDead) {
          breakers_[device].kill();
        } else {
          breakers_[device].record_failure(uptime_.elapsed_seconds());
        }
        if (late) {
          ++deadline_misses_;
          ++misses_this_run;
        }
        if (attempt < policy_.max_attempts) {
          retry = true;
          ++retries_;
        } else {
          ++exhausted_runs_;
        }
      }
      if (retry) {
        // Jittered exponential backoff, computed under the lock (the RNG
        // is shared) but slept outside it.
        backoff *= jitter_rng_.uniform(1.0 - policy_.backoff_jitter,
                                       1.0 + policy_.backoff_jitter);
      }
    }
    device_free_.notify_all();

    if (success) {
      result.attempts = static_cast<std::uint32_t>(attempt);
      result.deadline_misses = misses_this_run;
      return result;
    }
    if (late) {
      // The scores are correct but the attempt blew its latency budget:
      // discard and retry (deadline semantics — a late answer is a wrong
      // answer to the serving layer).
      last = core::BackendResult{};
      last.status = core::RunStatus::kDeadlineMiss;
      std::ostringstream os;
      os << "farm: attempt took " << wall << "s against a "
         << policy_.run_deadline_seconds << "s deadline";
      last.error = os.str();
    } else {
      last = std::move(result);
    }
    if (retry) {
      util::pause_for_seconds(std::min(backoff, policy_.backoff_max_seconds));
      backoff = std::min(backoff * policy_.backoff_multiplier,
                         policy_.backoff_max_seconds);
    }
  }
  last.attempts = static_cast<std::uint32_t>(policy_.max_attempts);
  last.deadline_misses = misses_this_run;
  last.accumulated.clear();
  last.inflight.clear();
  return last;
}

std::size_t FpgaFarm::working_bytes(std::size_t ball_nodes,
                                    std::size_t ball_edges) const {
  // Each device holds its own tables; the farm's footprint scales with D.
  return devices_.size() *
         devices_.front().working_bytes(ball_nodes, ball_edges);
}

std::string FpgaFarm::name() const {
  std::ostringstream os;
  os << "farm(" << devices_.size() << "x "
     << targets_.front()->name() << ")";
  return os.str();
}

std::unique_ptr<core::DiffusionBackend> FpgaFarm::clone() const {
  return std::make_unique<FpgaFarm>(devices_.size(), config_, quantizer_,
                                    policy_, plan_);
}

core::DispatchHealth FpgaFarm::dispatch_health() const {
  util::MutexLock lock(mu_);
  core::DispatchHealth health;
  health.devices = devices_.size();
  for (const CircuitBreaker& breaker : breakers_) {
    if (breaker.closed()) ++health.healthy_devices;
    if (breaker.dead()) ++health.dead_devices;
    health.breaker_trips += breaker.trips();
    health.probes += breaker.probes();
  }
  health.retries = retries_;
  health.deadline_misses = deadline_misses_;
  health.exhausted_runs = exhausted_runs_;
  return health;
}

std::size_t FpgaFarm::healthy_device_count() const {
  util::MutexLock lock(mu_);
  std::size_t healthy = 0;
  for (const CircuitBreaker& breaker : breakers_) {
    if (breaker.closed()) ++healthy;
  }
  return healthy;
}

std::size_t FpgaFarm::dead_device_count() const {
  util::MutexLock lock(mu_);
  std::size_t dead = 0;
  for (const CircuitBreaker& breaker : breakers_) {
    if (breaker.dead()) ++dead;
  }
  return dead;
}

double FpgaFarm::makespan_seconds() const {
  util::MutexLock lock(mu_);
  return *std::max_element(busy_seconds_.begin(), busy_seconds_.end());
}

double FpgaFarm::serial_seconds() const {
  util::MutexLock lock(mu_);
  double total = 0.0;
  for (double b : busy_seconds_) total += b;
  return total;
}

double FpgaFarm::imbalance() const {
  util::MutexLock lock(mu_);
  double makespan = 0.0;
  double total = 0.0;
  for (double b : busy_seconds_) {
    makespan = std::max(makespan, b);
    total += b;
  }
  const double ideal = total / static_cast<double>(devices_.size());
  return ideal > 0.0 ? makespan / ideal : 1.0;
}

std::size_t FpgaFarm::runs() const {
  util::MutexLock lock(mu_);
  return runs_;
}

double FpgaFarm::dispatch_wait_seconds() const {
  util::MutexLock lock(mu_);
  return wait_seconds_;
}

std::size_t FpgaFarm::peak_concurrent_runs() const {
  util::MutexLock lock(mu_);
  return peak_in_use_;
}

void FpgaFarm::reset() {
  util::MutexLock lock(mu_);
  MELO_CHECK_MSG(free_count_ == devices_.size(),
                 "FpgaFarm::reset while dispatches are in flight");
  for (auto& device : devices_) device.reset_counters();
  std::fill(busy_seconds_.begin(), busy_seconds_.end(), 0.0);
  breakers_.clear();
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    breakers_.emplace_back(policy_.breaker_failure_threshold,
                           policy_.breaker_probe_seconds);
  }
  runs_ = 0;
  wait_seconds_ = 0.0;
  peak_in_use_ = 0;
  retries_ = 0;
  deadline_misses_ = 0;
  exhausted_runs_ = 0;
}

}  // namespace meloppr::hw
