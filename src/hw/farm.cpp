#include "hw/farm.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace meloppr::hw {

FpgaFarm::FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
                   const Quantizer& quantizer)
    : config_(config), quantizer_(quantizer), free_count_(devices) {
  if (devices == 0) {
    throw std::invalid_argument("FpgaFarm: need at least one device");
  }
  devices_.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    devices_.emplace_back(Accelerator(config, quantizer));
  }
  busy_seconds_.assign(devices, 0.0);
  in_use_.assign(devices, 0);
}

core::BackendResult FpgaFarm::run(const graph::Subgraph& ball, double mass,
                                  unsigned length) {
  // Greedy list scheduling: the next independent diffusion goes to the
  // least-loaded device that is currently free. Checkout is serialized;
  // the diffusion itself runs unlocked, so up to D run concurrently.
  //
  // The active-dispatch gauge counts this thread for the whole call —
  // waiting for a device is as strong an "offload in progress" signal as
  // running one, and it is exactly the window the prefetch meter wants to
  // fill with lookahead BFS. RAII so a throwing diffusion (MELO_CHECK on
  // bad inputs, allocation failure) cannot leave the gauge inflated and
  // silently pin the prefetch meter open.
  struct DispatchGauge {
    std::atomic<std::size_t>& gauge;
    explicit DispatchGauge(std::atomic<std::size_t>& g) : gauge(g) {
      gauge.fetch_add(1, std::memory_order_relaxed);
    }
    ~DispatchGauge() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } gauge(active_dispatches_);
  std::size_t device = 0;
  {
    Timer wait_timer;
    std::unique_lock<std::mutex> lock(mu_);
    device_free_.wait(lock, [this] { return free_count_ > 0; });
    wait_seconds_ += wait_timer.elapsed_seconds();
    double least = -1.0;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      if (in_use_[d]) continue;
      if (least < 0.0 || busy_seconds_[d] < least) {
        least = busy_seconds_[d];
        device = d;
      }
    }
    in_use_[device] = 1;
    --free_count_;
    peak_in_use_ = std::max(peak_in_use_, devices_.size() - free_count_);
  }

  core::BackendResult result = devices_[device].run(ball, mass, length);

  {
    std::lock_guard<std::mutex> lock(mu_);
    busy_seconds_[device] +=
        result.compute_seconds + result.transfer_seconds;
    in_use_[device] = 0;
    ++free_count_;
    ++runs_;
  }
  device_free_.notify_one();
  return result;
}

std::size_t FpgaFarm::working_bytes(std::size_t ball_nodes,
                                    std::size_t ball_edges) const {
  // Each device holds its own tables; the farm's footprint scales with D.
  return devices_.size() *
         devices_.front().working_bytes(ball_nodes, ball_edges);
}

std::string FpgaFarm::name() const {
  std::ostringstream os;
  os << "farm(" << devices_.size() << "x "
     << devices_.front().name() << ")";
  return os.str();
}

std::unique_ptr<core::DiffusionBackend> FpgaFarm::clone() const {
  return std::make_unique<FpgaFarm>(devices_.size(), config_, quantizer_);
}

double FpgaFarm::makespan_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *std::max_element(busy_seconds_.begin(), busy_seconds_.end());
}

double FpgaFarm::serial_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (double b : busy_seconds_) total += b;
  return total;
}

double FpgaFarm::imbalance() const {
  std::lock_guard<std::mutex> lock(mu_);
  double makespan = 0.0;
  double total = 0.0;
  for (double b : busy_seconds_) {
    makespan = std::max(makespan, b);
    total += b;
  }
  const double ideal = total / static_cast<double>(devices_.size());
  return ideal > 0.0 ? makespan / ideal : 1.0;
}

std::size_t FpgaFarm::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

double FpgaFarm::dispatch_wait_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wait_seconds_;
}

std::size_t FpgaFarm::peak_concurrent_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_use_;
}

void FpgaFarm::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  MELO_CHECK_MSG(free_count_ == devices_.size(),
                 "FpgaFarm::reset while dispatches are in flight");
  for (auto& device : devices_) device.reset_counters();
  std::fill(busy_seconds_.begin(), busy_seconds_.end(), 0.0);
  runs_ = 0;
  wait_seconds_ = 0.0;
  peak_in_use_ = 0;
}

}  // namespace meloppr::hw
