#include "hw/host.hpp"

#include <sstream>

#include "core/memory_model.hpp"
#include "util/assert.hpp"

namespace meloppr::hw {

FpgaBackend::FpgaBackend(Accelerator accelerator)
    : accel_(std::move(accelerator)) {}

core::BackendResult FpgaBackend::run(const graph::Subgraph& ball, double mass,
                                     unsigned length) {
  const Quantizer& quant = accel_.quantizer();
  const std::uint32_t seed_fixed = quant.to_fixed(mass);

  core::BackendResult out;
  const std::size_t n = ball.num_nodes();
  out.accumulated.assign(n, 0.0);
  out.inflight.assign(n, 0.0);

  // A mass that quantizes to zero cannot move anything on the device; the
  // honest simulation is "nothing happens" (the host would skip the
  // dispatch entirely, so no cycles are charged either).
  if (seed_fixed == 0) return out;

  const AcceleratorRun run = accel_.diffuse(ball, seed_fixed, length);
  for (std::size_t v = 0; v < n; ++v) {
    out.accumulated[v] = quant.to_real(run.accumulated[v]);
    // The hardware residual table is α-scaled by construction (u_l =
    // α^l·W^l·S0), which is exactly the backend contract's `inflight`.
    out.inflight[v] = quant.to_real(run.residual[v]);
  }
  out.edge_ops = run.edge_ops;
  const std::uint64_t compute_cycles =
      run.cycles.diffusion + run.cycles.scheduling;
  // Double-buffered streaming: this ball's DMA ran while the previous ball
  // computed; only the overhang beyond that budget is visible latency.
  const std::uint64_t visible_dm =
      run.cycles.data_movement > overlap_budget_
          ? run.cycles.data_movement - overlap_budget_
          : 0;
  overlap_budget_ = compute_cycles;

  out.compute_seconds = accel_.seconds(compute_cycles);
  out.transfer_seconds = accel_.seconds(visible_dm);

  total_.data_movement += visible_dm;
  total_.diffusion += run.cycles.diffusion;
  total_.scheduling += run.cycles.scheduling;
  ++runs_;
  if (run.saturated) ++saturated_;
  return out;
}

std::size_t FpgaBackend::working_bytes(std::size_t ball_nodes,
                                       std::size_t ball_edges) const {
  // The device-side footprint is the paper's BRAM formula (Sec. VI-B).
  return core::fpga_bram_bytes(ball_nodes, ball_edges);
}

std::unique_ptr<core::DiffusionBackend> FpgaBackend::clone() const {
  return std::make_unique<FpgaBackend>(
      Accelerator(accel_.config(), accel_.quantizer()));
}

std::string FpgaBackend::name() const {
  std::ostringstream os;
  os << "fpga(P=" << accel_.config().parallelism << ")";
  return os.str();
}

void FpgaBackend::reset_counters() {
  total_ = CycleBreakdown{};
  runs_ = 0;
  saturated_ = 0;
  overlap_budget_ = 0;
}

}  // namespace meloppr::hw
