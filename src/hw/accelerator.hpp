// Cycle-approximate simulator of the MeLoPPR FPGA accelerator (Sec. V,
// Fig. 4).
//
// Architecture being modeled, per the paper:
//   * P processing elements (PEs). Each PE owns a sub-graph table (node →
//     neighbor-list address range, plus the lists), a local accumulated
//     score table (π_a) and a local residual score table (π_r), one
//     diffuser (one edge per cycle: fetch neighbor, α-scale, divide by
//     degree, emit contribution) and one accumulator.
//   * Ball nodes are interleaved across PEs (node → PE/bank = id mod P);
//     each diffuser reads its own sub-graph table but writes to *any* score
//     table, so a scheduler arbitrates bank write conflicts.
//   * Localized score aggregation (the paper's hardware-aware optimization):
//     contributions produced inside one PE for the same destination node are
//     combined locally before being written out, so a destination bank sees
//     at most P writes per node per iteration instead of in-degree writes.
//   * The sub-graph streams in from the host over an AXI-stream interface;
//     the global top-(c·k) table lives on chip, so per-ball results are NOT
//     shipped back (Sec. V-B).
//
// The simulator executes the *numerics* with the exact integer datapath of
// quantizer.hpp (so precision results are real) and derives cycle counts
// from the actual per-iteration work distribution (so Fig. 5's scheduling
// overhead is an emergent output, not a tuned constant):
//
//   The sub-graph table interleaves *edges* across the P PEs (edge i lives
//   in table i mod P), so the read/compute stream is balanced by
//   construction: ⌈edges/P⌉ cycles. Score tables are banked by destination
//   node id (bank = id mod P), and every diffuser writes to every bank, so
//   writes are where conflicts arise — exactly the read/write conflicts the
//   paper's scheduler resolves (Sec. V-A).
//
//   per iteration:
//     read/compute pass = ⌈active edges / P⌉ cycles (balanced by interleave)
//     write-back        = FIFO write queues (one per PE; with localized
//                         aggregation one op per (destination, PE) pair,
//                         without it one op per raw contribution) drained
//                         through a P×P crossbar, one grant per bank per
//                         cycle with rotating priority. Head-of-line
//                         blocking under skewed bank traffic is what makes
//                         this slower than ideal — the physical origin of
//                         the paper's scheduling overhead.
//   iteration cycles = max(read pass, write drain) + pipeline sync;
//   scheduling overhead = iteration cycles − (read pass + sync).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/subgraph.hpp"
#include "hw/quantizer.hpp"

namespace meloppr::hw {

struct AcceleratorConfig {
  unsigned parallelism = 16;        ///< P, number of PEs (paper sweeps 1–16)
  double clock_hz = 100e6;          ///< Kintex-7 KC705 at 100 MHz
  /// Sub-graph streaming bandwidth: 512-bit AXI DMA bursts from the DDR3
  /// SODIMM (6.4 GB/s at 100 MHz — the KC705 memory interface peak).
  std::size_t stream_bytes_per_cycle = 64;
  unsigned sync_cycles_per_iteration = 8;  ///< pipeline fill/drain per pass
  bool localized_aggregation = true;       ///< the paper's optimization
};

/// Cycle breakdown of one diffusion, matching Fig. 5's stacked bars.
struct CycleBreakdown {
  std::uint64_t data_movement = 0;  ///< streaming the ball into the PEs
  std::uint64_t diffusion = 0;      ///< ideal compute (⌈work/P⌉ + sync)
  std::uint64_t scheduling = 0;     ///< conflict/imbalance stalls
  [[nodiscard]] std::uint64_t total() const {
    return data_movement + diffusion + scheduling;
  }
};

/// Result of simulating GD_l on one ball.
struct AcceleratorRun {
  std::vector<std::uint32_t> accumulated;  ///< π_a, integer domain
  std::vector<std::uint32_t> residual;     ///< π_r (α-scaled), integer domain
  CycleBreakdown cycles;
  std::uint64_t edge_ops = 0;
  bool saturated = false;  ///< any score clipped at the 32-bit ceiling
};

class Accelerator {
 public:
  Accelerator(AcceleratorConfig config, Quantizer quantizer);

  /// Simulates an l-step diffusion of `seed_mass` (integer domain) placed at
  /// local node 0. Numerics follow the integer datapath exactly:
  ///   u_0 = seed_mass at the root;
  ///   u_{k+1}[w] = Σ_v (α·u_k[v]) / deg(v)   (α via shift, ÷ truncating)
  ///   π_a += (1−α)·u_k each iteration, finally π_a += u_l; π_r = u_l.
  /// Note u_k ≡ α^k·W^k·S0, so the returned residual is already α^l-scaled
  /// (see host.cpp for how the backend folds this into Eq. 8).
  [[nodiscard]] AcceleratorRun diffuse(const graph::Subgraph& ball,
                                       std::uint32_t seed_mass,
                                       unsigned length) const;

  [[nodiscard]] const AcceleratorConfig& config() const { return config_; }
  [[nodiscard]] const Quantizer& quantizer() const { return quantizer_; }

  /// Seconds for a cycle count at the configured clock.
  [[nodiscard]] double seconds(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / config_.clock_hz;
  }

 private:
  AcceleratorConfig config_;
  Quantizer quantizer_;
};

}  // namespace meloppr::hw
