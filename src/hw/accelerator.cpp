#include "hw/accelerator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::hw {

namespace {

/// Drains P FIFO write queues through a P-bank crossbar, one grant per bank
/// per cycle and one issue per PE per cycle, with rotating grant priority —
/// the classic input-queued switch. Head-of-line blocking (a PE's head op
/// waiting on a busy bank stalls the ops behind it) is what limits real
/// arbiter throughput to well below 100% under skewed traffic; this is the
/// physical source of the paper's "scheduling overhead" in Fig. 5.
/// Returns the number of cycles needed to drain everything.
std::uint64_t drain_write_queues(
    std::vector<std::vector<std::uint8_t>>& queues, unsigned num_banks) {
  const std::size_t P = queues.size();
  std::vector<std::size_t> head(P, 0);
  std::size_t remaining = 0;
  for (const auto& q : queues) remaining += q.size();

  std::uint64_t cycles = 0;
  std::vector<int> grant(num_banks, -1);  // PE granted per bank this cycle
  unsigned rr = 0;                        // rotating priority offset
  while (remaining > 0) {
    ++cycles;
    std::fill(grant.begin(), grant.end(), -1);
    // Each PE requests the bank of its head-of-line op; each bank grants
    // one requester, rotating priority breaking ties fairly.
    for (std::size_t i = 0; i < P; ++i) {
      const std::size_t pe = (i + rr) % P;
      if (head[pe] >= queues[pe].size()) continue;
      const std::uint8_t bank = queues[pe][head[pe]];
      if (grant[bank] < 0) grant[bank] = static_cast<int>(pe);
    }
    for (unsigned bank = 0; bank < num_banks; ++bank) {
      if (grant[bank] >= 0) {
        ++head[static_cast<std::size_t>(grant[bank])];
        --remaining;
      }
    }
    ++rr;
  }
  for (auto& q : queues) q.clear();
  return cycles;
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig config, Quantizer quantizer)
    : config_(config), quantizer_(quantizer) {
  if (config_.parallelism == 0 || config_.parallelism > 64) {
    throw std::invalid_argument("Accelerator: parallelism must be in [1,64]");
  }
  if (config_.clock_hz <= 0.0) {
    throw std::invalid_argument("Accelerator: clock must be positive");
  }
  if (config_.stream_bytes_per_cycle == 0) {
    throw std::invalid_argument("Accelerator: stream width must be positive");
  }
}

AcceleratorRun Accelerator::diffuse(const graph::Subgraph& ball,
                                    std::uint32_t seed_mass,
                                    unsigned length) const {
  const std::size_t n = ball.num_nodes();
  MELO_CHECK(n > 0);
  MELO_CHECK_MSG(length <= ball.radius(),
                 "diffusion length exceeds ball radius");
  const unsigned P = config_.parallelism;

  AcceleratorRun run;

  // --- Data movement: stream the sub-graph table over AXI (Sec. V-B). ---
  // Bg = 4·(2·|V| + 2·|E|) bytes: two address words per node plus one word
  // per directed arc (Sec. VI-B formula).
  const std::uint64_t bg_bytes = 4ull * (2ull * n + ball.num_arcs());
  run.cycles.data_movement =
      (bg_bytes + config_.stream_bytes_per_cycle - 1) /
      config_.stream_bytes_per_cycle;

  // --- Integer diffusion with cycle accounting. ---
  // u ≡ α^k·W^k·S0 in the integer domain (α applied per step).
  std::vector<std::uint64_t> u(n, 0);
  std::vector<std::uint64_t> next(n, 0);
  std::vector<std::uint64_t> acc(n, 0);
  u[0] = seed_mass;

  std::vector<graph::NodeId> active;
  std::vector<char> in_active(n, 0);
  active.push_back(0);
  in_active[0] = 1;

  // Per-iteration scratch for the scheduler model. Edges are interleaved
  // across PEs (edge index mod P) so compute is balanced; score tables are
  // banked by destination id (bank = id mod P), and the write back goes
  // through the crossbar simulated by drain_write_queues().
  std::vector<std::vector<std::uint8_t>> write_queues(P);
  std::vector<std::uint64_t> touch_mask(n, 0);   // P ≤ 64 → one word
  std::vector<std::uint32_t> touch_count(n, 0);  // for non-localized mode
  std::vector<graph::NodeId> touched;

  for (unsigned k = 0; k < length; ++k) {
    // Accumulate (1−α)·u_k — pipelined into the accumulator, no extra
    // cycles beyond the read pass.
    for (graph::NodeId v : active) {
      acc[v] += quantizer_.mul_one_minus_alpha(u[v]);
    }

    touched.clear();
    std::uint64_t iteration_edges = 0;

    const std::size_t active_before = active.size();
    for (std::size_t i = 0; i < active_before; ++i) {
      const graph::NodeId v = active[i];
      if (u[v] == 0) continue;
      const auto adj = ball.neighbors(v);

      // Datapath: contribution = (α·u[v]) / deg_global(v), truncating.
      const std::uint64_t contrib = Quantizer::div_degree(
          quantizer_.mul_alpha(u[v]), ball.global_degree(v));
      for (graph::NodeId w : adj) {
        // Edge-interleaved dispatch: this contribution is computed by the
        // PE owning the current edge slot.
        const auto pe = static_cast<unsigned>(iteration_edges % P);
        ++iteration_edges;
        if (contrib != 0) {
          if (touch_mask[w] == 0 && touch_count[w] == 0) touched.push_back(w);
          next[w] += contrib;
          touch_mask[w] |= (std::uint64_t{1} << pe);
          ++touch_count[w];
          if (!config_.localized_aggregation) {
            // Every raw contribution is a separate crossbar write, in the
            // order the PE produced it.
            write_queues[pe].push_back(static_cast<std::uint8_t>(w % P));
          }
        }
        if (!in_active[w]) {
          in_active[w] = 1;
          active.push_back(w);
        }
      }
    }
    run.edge_ops += iteration_edges;

    // With localized aggregation (the paper's optimization), each PE merges
    // its contributions per destination node locally and writes once per
    // (destination, PE) pair.
    if (config_.localized_aggregation) {
      for (graph::NodeId w : touched) {
        std::uint64_t mask = touch_mask[w];
        const auto bank = static_cast<std::uint8_t>(w % P);
        while (mask != 0) {
          const int pe = std::countr_zero(mask);
          mask &= mask - 1;
          write_queues[static_cast<std::size_t>(pe)].push_back(bank);
        }
      }
    }
    for (graph::NodeId w : touched) {
      touch_mask[w] = 0;
      touch_count[w] = 0;
    }

    // Cycle accounting: the read/compute pass streams ⌈edges/P⌉ cycles; the
    // write-back drains through the arbitrated crossbar concurrently, so
    // the iteration finishes at the later of the two. Everything above the
    // balanced-compute ideal is scheduling overhead.
    const std::uint64_t ideal = (iteration_edges + P - 1) / P;
    const std::uint64_t write_cycles = drain_write_queues(write_queues, P);
    const std::uint64_t span = std::max(ideal, write_cycles);
    run.cycles.diffusion += ideal + config_.sync_cycles_per_iteration;
    run.cycles.scheduling += span - ideal;

    for (graph::NodeId v : active) {
      u[v] = next[v];
      next[v] = 0;
    }
  }

  // Final α^l·W^l·S0 term folds into the accumulated score (Eq. 1).
  for (graph::NodeId v : active) acc[v] += u[v];

  // Clamp to the 32-bit BRAM word, flagging saturation.
  run.accumulated.assign(n, 0);
  run.residual.assign(n, 0);
  constexpr std::uint64_t kCeiling = 0xffffffffULL;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (acc[v] > kCeiling) {
      run.saturated = true;
      acc[v] = kCeiling;
    }
    if (u[v] > kCeiling) {
      run.saturated = true;
      u[v] = kCeiling;
    }
    run.accumulated[v] = static_cast<std::uint32_t>(acc[v]);
    run.residual[v] = static_cast<std::uint32_t>(u[v]);
  }
  return run;
}

}  // namespace meloppr::hw
