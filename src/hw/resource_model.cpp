#include "hw/resource_model.hpp"

#include <cmath>

#include "core/memory_model.hpp"
#include "util/assert.hpp"

namespace meloppr::hw {

ResourceModel::ResourceModel(DeviceSpec device, ResourceCoefficients coeff)
    : device_(std::move(device)), coeff_(coeff) {
  MELO_CHECK(device_.luts > 0);
  MELO_CHECK(device_.bram36_blocks > 0);
}

std::size_t ResourceModel::pe_bram_blocks() const {
  const std::size_t bytes =
      core::fpga_bram_bytes(coeff_.pe_ball_nodes, coeff_.pe_ball_edges);
  const std::size_t block_bytes = 36 * 1024 / 8;  // one 36-Kb block
  return (bytes + block_bytes - 1) / block_bytes;
}

ResourceUsage ResourceModel::estimate(unsigned parallelism) const {
  MELO_CHECK(parallelism > 0);
  const double p = static_cast<double>(parallelism);

  ResourceUsage usage;
  usage.luts = coeff_.control_luts + parallelism * coeff_.per_pe_luts +
               static_cast<std::size_t>(
                   std::llround(coeff_.crossbar_luts_per_pair * p * p));
  usage.bram36_blocks =
      coeff_.base_bram + parallelism * pe_bram_blocks();
  usage.dsp_slices = parallelism * coeff_.dsp_per_pe;

  usage.lut_fraction =
      static_cast<double>(usage.luts) / static_cast<double>(device_.luts);
  usage.bram_fraction = static_cast<double>(usage.bram36_blocks) /
                        static_cast<double>(device_.bram36_blocks);
  usage.dsp_fraction = static_cast<double>(usage.dsp_slices) /
                       static_cast<double>(device_.dsp_slices);
  usage.fits = usage.luts <= device_.luts &&
               usage.bram36_blocks <= device_.bram36_blocks &&
               usage.dsp_slices <= device_.dsp_slices;
  return usage;
}

unsigned ResourceModel::max_parallelism() const {
  unsigned best = 0;
  for (unsigned p = 1; p <= 64; ++p) {
    if (estimate(p).fits) best = p;
  }
  return best;
}

}  // namespace meloppr::hw
