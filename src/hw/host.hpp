// Hybrid CPU+FPGA execution (Fig. 4).
//
// FpgaBackend plugs the simulated accelerator into the MeLoPPR engine as a
// core::DiffusionBackend: the engine keeps playing the PS role (BFS
// sub-graph preparation, orchestration, measured in wall-clock), while every
// diffusion is executed by the cycle-approximate PL model, whose simulated
// cycles are converted to seconds at the configured clock. Cumulative cycle
// counters expose the Fig. 5 breakdown (scheduling / diffusion / data
// movement) across a whole query or bench run.
#pragma once

#include <cstdint>

#include "core/backend.hpp"
#include "hw/accelerator.hpp"

namespace meloppr::hw {

class FpgaBackend final : public core::DiffusionBackend {
 public:
  explicit FpgaBackend(Accelerator accelerator);

  core::BackendResult run(const graph::Subgraph& ball, double mass,
                          unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;

  [[nodiscard]] std::string name() const override;

  /// Fresh backend over an identical accelerator (same config + quantizer),
  /// with zeroed counters and an empty double-buffer budget. Cycle counters
  /// and the overlap budget make this class stateful, so it is NOT
  /// thread-safe; the pipeline clones one per worker.
  [[nodiscard]] std::unique_ptr<core::DiffusionBackend> clone() const override;

  /// Diffusion runs on the (simulated) PL, not host cores: the host only
  /// waits, which is exactly when lookahead BFS is free.
  [[nodiscard]] bool offloads_compute() const override { return true; }

  /// Cumulative cycle breakdown since construction / reset_counters().
  /// Data-movement cycles are the *visible* (non-overlapped) residue: the
  /// streaming interface double-buffers, so a ball's transfer hides behind
  /// the previous ball's compute and only the overhang is charged.
  [[nodiscard]] const CycleBreakdown& total_cycles() const { return total_; }

  /// Simulated busy time of this device since construction / reset: total
  /// cycles at the configured clock. The per-device term of a farm's
  /// serial_seconds(), exposed here so single-device deployments can put
  /// host-side BFS seconds and device seconds on one axis (the overlap the
  /// serving layer's prefetcher hides).
  [[nodiscard]] double busy_seconds() const {
    return accel_.seconds(total_.total());
  }
  [[nodiscard]] std::size_t runs() const { return runs_; }
  /// Diffusions whose scores clipped at the 32-bit ceiling (should be zero;
  /// non-zero means the quantizer's Max is too large for the ball).
  [[nodiscard]] std::size_t saturated_runs() const { return saturated_; }
  void reset_counters();

  [[nodiscard]] const Accelerator& accelerator() const { return accel_; }

 private:
  Accelerator accel_;
  CycleBreakdown total_;
  std::size_t runs_ = 0;
  std::size_t saturated_ = 0;
  /// Compute cycles of the previous run still available to hide the next
  /// ball's DMA behind (double buffering).
  std::uint64_t overlap_budget_ = 0;
};

}  // namespace meloppr::hw
