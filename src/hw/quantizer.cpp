#include "hw/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace meloppr::hw {

std::string to_string(DChoice choice) {
  switch (choice) {
    case DChoice::kAverageDegree:
      return "d=avg_degree";
    case DChoice::kHalfMaxDegree:
      return "d=max_degree/2";
    case DChoice::kMaxDegree:
      return "d=max_degree";
  }
  return "d=?";
}

Quantizer::Quantizer(double alpha, unsigned q, std::uint64_t max_value)
    : q_(q) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("Quantizer: alpha must be in (0,1)");
  }
  if (q == 0 || q > 16) {
    throw std::invalid_argument("Quantizer: q must be in [1,16]");
  }
  if (max_value == 0) {
    throw std::invalid_argument("Quantizer: max_value must be positive");
  }
  const double scaled = std::round(alpha * std::pow(2.0, q));
  alpha_p_ = static_cast<std::uint32_t>(scaled);
  MELO_CHECK(alpha_p_ > 0);
  MELO_CHECK(alpha_p_ < (1u << q));  // α < 1 must survive rounding
  // 32-bit score words: clamp, mirroring the hardware's representable range.
  max_value_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(max_value, 0x7fffffffULL));
}

Quantizer Quantizer::from_graph_stats(double alpha, unsigned q,
                                      DChoice choice, double avg_degree,
                                      std::size_t max_degree,
                                      std::size_t reference_nodes) {
  double d = 0.0;
  switch (choice) {
    case DChoice::kAverageDegree:
      d = avg_degree;
      break;
    case DChoice::kHalfMaxDegree:
      d = static_cast<double>(max_degree) / 2.0;
      break;
    case DChoice::kMaxDegree:
      d = static_cast<double>(max_degree);
      break;
  }
  d = std::max(d, 1.0);
  const double max_val = d * static_cast<double>(reference_nodes);
  return Quantizer(alpha, q,
                   static_cast<std::uint64_t>(std::llround(max_val)));
}

std::uint32_t Quantizer::to_fixed(double mass) const {
  MELO_CHECK_MSG(mass >= 0.0 && mass <= 1.0 + 1e-9,
                 "mass " << mass << " outside [0,1]");
  const double clamped = std::clamp(mass, 0.0, 1.0);
  return static_cast<std::uint32_t>(
      std::llround(clamped * static_cast<double>(max_value_)));
}

double Quantizer::to_real(std::uint64_t fixed) const {
  return static_cast<double>(fixed) / static_cast<double>(max_value_);
}

double Quantizer::effective_alpha() const {
  return static_cast<double>(alpha_p_) / std::pow(2.0, q_);
}

}  // namespace meloppr::hw
