// Integer score representation of the FPGA datapath (Sec. V-A).
//
// Floating point is expensive on the Kintex-7, so the accelerator represents
// PPR scores as 32-bit integers:
//
//   * the unit seed mass becomes Max = d · |G_L(s)|, where d is a designer
//     knob (the paper studies d = average degree → <4% precision loss,
//     d = max degree → <0.001% loss, and ships d = max_degree/2);
//   * the multiplication by α is approximated as α ≈ α_p / 2^q with a
//     16-bit integer α_p and a q-bit right shift (no DSPs; paper uses q=10);
//   * division by a node degree is plain integer division (implemented in
//     LUT logic on the device — hence the near-zero DSP usage of Table I).
//
// Precision loss comes from the truncating divisions/shifts; a larger Max
// leaves more bits below the truncation point.
#pragma once

#include <cstdint>
#include <string>

namespace meloppr::hw {

/// How to choose the d in Max = d·|G_L(s)| (Sec. V-A experiments).
enum class DChoice {
  kAverageDegree,   ///< d = avg degree  (paper: <4% precision loss)
  kHalfMaxDegree,   ///< d = max degree/2 (paper's shipping choice)
  kMaxDegree,       ///< d = max degree  (paper: <0.001% loss)
};

std::string to_string(DChoice choice);

/// Fixed-point parameters shared by every PE of an accelerator instance.
class Quantizer {
 public:
  /// `alpha` ∈ (0,1); `q` is the shift amount (α_p = round(α·2^q) must fit
  /// 16 bits, so q ≤ 16); `max_value` is the integer assigned to unit mass.
  /// max_value is clamped to 2^31−1 so scores stay representable in the
  /// 32-bit BRAM words of the score tables.
  Quantizer(double alpha, unsigned q, std::uint64_t max_value);

  /// Convenience: Max = d·reference_nodes with d from the policy.
  static Quantizer from_graph_stats(double alpha, unsigned q, DChoice choice,
                                    double avg_degree, std::size_t max_degree,
                                    std::size_t reference_nodes);

  /// Quantizes a mass in [0,1] to the integer domain.
  [[nodiscard]] std::uint32_t to_fixed(double mass) const;

  /// Dequantizes an integer score back to [0,1] mass.
  [[nodiscard]] double to_real(std::uint64_t fixed) const;

  /// x·α via the α_p multiply + q-bit shift (what the PE datapath does).
  [[nodiscard]] std::uint64_t mul_alpha(std::uint64_t x) const {
    return (x * alpha_p_) >> q_;
  }

  /// x·(1−α) via the complementary coefficient (2^q − α_p).
  [[nodiscard]] std::uint64_t mul_one_minus_alpha(std::uint64_t x) const {
    return (x * ((std::uint64_t{1} << q_) - alpha_p_)) >> q_;
  }

  /// x / degree — truncating integer division, as on the device.
  [[nodiscard]] static std::uint64_t div_degree(std::uint64_t x,
                                                std::uint32_t degree) {
    return x / degree;
  }

  [[nodiscard]] std::uint32_t max_value() const { return max_value_; }
  [[nodiscard]] std::uint32_t alpha_p() const { return alpha_p_; }
  [[nodiscard]] unsigned q() const { return q_; }

  /// Effective α after quantization, α_p/2^q (for error-bound reasoning).
  [[nodiscard]] double effective_alpha() const;

 private:
  std::uint32_t max_value_;
  std::uint32_t alpha_p_;
  unsigned q_;
};

}  // namespace meloppr::hw
