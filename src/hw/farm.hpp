// Multi-accelerator farm — the paper's stated future work (Sec. VI-C):
// "Through linear decomposition, MeLoPPR allows multiple next-stage nodes
// to be computed in parallel, which can further reduce the overall latency.
// We leave this for future experiments."
//
// The linear decomposition makes every stage-2 diffusion independent, so a
// farm of D accelerator instances can process them concurrently. FpgaFarm
// plugs into the engine as a DiffusionBackend: each run is dispatched to
// the least-loaded *free* device (greedy online list scheduling, within 2×
// of the optimal makespan), per-device busy time accumulates, and the
// query's parallel diffusion latency is the farm makespan rather than the
// serial sum.
//
// Dispatch is thread-safe: up to D runs proceed concurrently (one per
// device); callers beyond D block on a condition variable until a device
// frees up. This makes the farm the natural shared backend for the
// QueryPipeline's stage-parallel schedule — the pool's workers feed the
// farm exactly the independent same-stage diffusions the paper describes.
// Device checkout and busy-time accounting sit behind one mutex; the
// simulated diffusions themselves run outside it, in parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/backend.hpp"
#include "hw/host.hpp"

namespace meloppr::hw {

class FpgaFarm final : public core::DiffusionBackend {
 public:
  /// `devices` identical accelerator instances.
  FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
           const Quantizer& quantizer);

  /// Dispatches to the least-loaded free device and returns its result,
  /// blocking while all devices are busy. The BackendResult's
  /// compute/transfer seconds are the device's own time (the engine sums
  /// them — that is the *serial* view; use makespan_seconds() for the
  /// parallel completion time). Safe to call from multiple threads.
  core::BackendResult run(const graph::Subgraph& ball, double mass,
                          unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;
  [[nodiscard]] std::string name() const override;

  /// A fresh farm of the same shape (device count, config, quantizer) with
  /// zeroed load. Rarely needed — the farm itself is thread-safe and meant
  /// to be shared.
  [[nodiscard]] std::unique_ptr<core::DiffusionBackend> clone() const override;
  [[nodiscard]] bool thread_safe() const override { return true; }
  /// At most one run per device executes at a time.
  [[nodiscard]] std::size_t max_concurrent_runs() const override {
    return devices_.size();
  }
  /// Dispatchers block on busy devices — the window the stage-lookahead
  /// prefetcher fills with host BFS (the backend-aware throttle's signal).
  [[nodiscard]] bool offloads_compute() const override { return true; }
  /// Live count of threads inside run() (running a device or blocked on
  /// checkout). 0 means the farm is momentarily idle — the signal the
  /// pipeline's farm-wait prefetch meter pauses lookahead on. Lock-free.
  [[nodiscard]] std::size_t active_dispatches() const override {
    return active_dispatches_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Parallel completion time of all diffusions dispatched since the last
  /// reset: max over devices of accumulated busy seconds.
  [[nodiscard]] double makespan_seconds() const;

  /// Serial equivalent (Σ busy time) — the 1-device latency of this load.
  [[nodiscard]] double serial_seconds() const;

  /// Busy-time imbalance: makespan / (serial / D); 1.0 = perfect balance.
  [[nodiscard]] double imbalance() const;

  [[nodiscard]] std::size_t runs() const;

  /// Cumulative wall seconds dispatching threads spent blocked waiting for
  /// a free device. Large values with idle prefetch threads mean host BFS
  /// could hide here — the signal the stage-lookahead prefetcher exploits.
  [[nodiscard]] double dispatch_wait_seconds() const;

  /// Most devices ever busy simultaneously (≤ device_count). Shows whether
  /// the serving layer actually fills the farm.
  [[nodiscard]] std::size_t peak_concurrent_runs() const;

  void reset();

 private:
  // Kept for clone(); devices_ holds the live instances.
  AcceleratorConfig config_;
  Quantizer quantizer_;

  std::vector<FpgaBackend> devices_;
  std::vector<double> busy_seconds_;   ///< guarded by mu_
  std::vector<char> in_use_;           ///< guarded by mu_ (char: no vbool)
  std::size_t free_count_;             ///< guarded by mu_
  std::size_t runs_ = 0;               ///< guarded by mu_
  double wait_seconds_ = 0.0;          ///< guarded by mu_
  std::size_t peak_in_use_ = 0;        ///< guarded by mu_

  /// Threads currently inside run(); see active_dispatches().
  std::atomic<std::size_t> active_dispatches_{0};

  mutable std::mutex mu_;
  std::condition_variable device_free_;
};

}  // namespace meloppr::hw
