// Multi-accelerator farm — the paper's stated future work (Sec. VI-C):
// "Through linear decomposition, MeLoPPR allows multiple next-stage nodes
// to be computed in parallel, which can further reduce the overall latency.
// We leave this for future experiments."
//
// The linear decomposition makes every stage-2 diffusion independent, so a
// farm of D accelerator instances can process them concurrently. FpgaFarm
// plugs into the engine as a DiffusionBackend: each run is dispatched to
// the least-loaded *free* device (greedy online list scheduling, within 2×
// of the optimal makespan), per-device busy time accumulates, and the
// query's parallel diffusion latency is the farm makespan rather than the
// serial sum.
//
// Dispatch is thread-safe: up to D runs proceed concurrently (one per
// device); callers beyond D block on a condition variable until a device
// frees up. This makes the farm the natural shared backend for the
// QueryPipeline's stage-parallel schedule — the pool's workers feed the
// farm exactly the independent same-stage diffusions the paper describes.
// Device checkout and busy-time accounting sit behind one mutex; the
// simulated diffusions themselves run outside it, in parallel.
//
// Resilient dispatch (the fault-tolerance layer): each run carries a
// bounded retry budget with exponential backoff + jitter and an optional
// wall-clock deadline; per-device CircuitBreakers take repeatedly-failing
// devices out of checkout rotation (half-open probes re-admit recovered
// ones, sticky-dead devices never return). When *no* device is
// dispatchable — every breaker open or dead and no probe claimable — run()
// returns RunStatus::kNoHealthyDevice immediately instead of blocking, so
// a FailoverBackend can serve the diffusion from the host's bit-exact
// fixed-point path without stalling on probe timers. Because the failover
// layer always tries the farm first, probe traffic keeps flowing and
// recovered devices rejoin on their own. A FaultPlan (util/
// fault_injection.hpp) wraps each device in a FaultyBackend so every one
// of these paths is deterministically testable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "hw/host.hpp"
#include "util/circuit_breaker.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace meloppr::hw {

/// Retry/deadline/breaker knobs of the farm's resilient dispatch layer.
/// The defaults are sized for the simulated farm (device runs are tens of
/// microseconds): total worst-case backoff per run stays well under the
/// cost of one ball extraction.
struct DispatchPolicy {
  /// Dispatch attempts per run() before giving up (≥ 1). The final
  /// attempt's typed failure is returned to the caller.
  std::size_t max_attempts = 3;
  /// Wall-clock deadline per attempt; an attempt that completes late is
  /// discarded (counted as a deadline miss and a device failure) and
  /// retried. 0 disables deadlines.
  double run_deadline_seconds = 0.0;
  /// Exponential backoff between attempts: initial * multiplier^k, capped.
  double backoff_initial_seconds = 50e-6;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2e-3;
  /// Uniform jitter fraction: each backoff is scaled by a factor in
  /// [1-jitter, 1+jitter] so retries from concurrent workers decorrelate.
  double backoff_jitter = 0.5;
  /// Consecutive failures that trip a device's breaker (0 disables).
  std::size_t breaker_failure_threshold = 3;
  /// Open→half-open maturation time of a tripped breaker.
  double breaker_probe_seconds = 0.01;

  /// Policy with MELOPPR_DISPATCH_ATTEMPTS / MELOPPR_DISPATCH_DEADLINE /
  /// MELOPPR_BREAKER_THRESHOLD / MELOPPR_BREAKER_PROBE_SECONDS overrides
  /// applied on top of the defaults.
  [[nodiscard]] static DispatchPolicy from_env();
};

class FpgaFarm final : public core::DiffusionBackend {
 public:
  /// `devices` identical accelerator instances, default dispatch policy,
  /// fault plan from MELOPPR_FAULT_PLAN (empty when unset).
  FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
           const Quantizer& quantizer);

  /// Full control over the resilience layer. An empty FaultPlan leaves the
  /// devices unwrapped (zero injection overhead).
  FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
           const Quantizer& quantizer, const DispatchPolicy& policy,
           const FaultPlan& plan);

  /// Dispatches to the least-loaded free healthy device and returns its
  /// result, retrying per the DispatchPolicy on transient failures and
  /// deadline misses. Blocks only while a breaker-closed device is busy;
  /// with nothing dispatchable it returns kNoHealthyDevice immediately.
  /// The BackendResult's compute/transfer seconds are the device's own
  /// time (the engine sums them — that is the *serial* view; use
  /// makespan_seconds() for the parallel completion time). Safe to call
  /// from multiple threads. Throws only for caller errors and invariant
  /// violations; environmental failures come back through result.status.
  core::BackendResult run(const graph::Subgraph& ball, double mass,
                          unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;
  [[nodiscard]] std::string name() const override;

  /// A fresh farm of the same shape (device count, config, quantizer,
  /// policy, fault plan) with zeroed load and fresh breakers. Rarely
  /// needed — the farm itself is thread-safe and meant to be shared.
  [[nodiscard]] std::unique_ptr<core::DiffusionBackend> clone() const override;
  [[nodiscard]] bool thread_safe() const override { return true; }
  /// At most one run per device executes at a time.
  [[nodiscard]] std::size_t max_concurrent_runs() const override {
    return devices_.size();
  }
  /// Dispatchers block on busy devices — the window the stage-lookahead
  /// prefetcher fills with host BFS (the backend-aware throttle's signal).
  [[nodiscard]] bool offloads_compute() const override { return true; }
  /// Live count of threads inside run() (running a device or blocked on
  /// checkout). 0 means the farm is momentarily idle — the signal the
  /// pipeline's farm-wait prefetch meter pauses lookahead on. Lock-free.
  [[nodiscard]] std::size_t active_dispatches() const override {
    return active_dispatches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] core::DispatchHealth dispatch_health() const override;

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  /// Devices currently in checkout rotation (breaker closed). Can recover
  /// upward when half-open probes succeed.
  [[nodiscard]] std::size_t healthy_device_count() const;
  /// Sticky-dead devices (never re-admitted).
  [[nodiscard]] std::size_t dead_device_count() const;

  [[nodiscard]] const DispatchPolicy& policy() const { return policy_; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }

  /// Parallel completion time of all diffusions dispatched since the last
  /// reset: max over devices of accumulated busy seconds.
  [[nodiscard]] double makespan_seconds() const;

  /// Serial equivalent (Σ busy time) — the 1-device latency of this load.
  [[nodiscard]] double serial_seconds() const;

  /// Busy-time imbalance: makespan / (serial / D); 1.0 = perfect balance.
  [[nodiscard]] double imbalance() const;

  [[nodiscard]] std::size_t runs() const;

  /// Cumulative wall seconds dispatching threads spent blocked waiting for
  /// a free device. Large values with idle prefetch threads mean host BFS
  /// could hide here — the signal the stage-lookahead prefetcher exploits.
  [[nodiscard]] double dispatch_wait_seconds() const;

  /// Most devices ever busy simultaneously (≤ device_count). Shows whether
  /// the serving layer actually fills the farm.
  [[nodiscard]] std::size_t peak_concurrent_runs() const;

  /// Zeroes load/health counters and re-arms all breakers. Injected sticky
  /// death is *not* cleared (the FaultyBackend keeps the device dead, as
  /// real hardware would) — its breaker just re-learns it.
  void reset();

 private:
  /// Picks a device under mu_: least-loaded free breaker-closed device,
  /// else a free probe-ready open device (claiming its half-open probe),
  /// else waits only while some closed device is merely busy. Returns -1
  /// when nothing is dispatchable (degraded farm) — never blocks on probe
  /// timers. Sets *is_probe when the claim is a half-open probe.
  int checkout_device(bool* is_probe) MELOPPR_EXCLUDES(mu_);

  // Kept for clone(); devices_ holds the live instances.
  AcceleratorConfig config_;
  Quantizer quantizer_;
  DispatchPolicy policy_;
  FaultPlan plan_;

  std::vector<FpgaBackend> devices_;
  /// Per-device FaultPlan decorators (empty when the plan is empty).
  std::vector<std::unique_ptr<core::FaultyBackend>> faulty_;
  /// Dispatch target per device: the FaultyBackend wrapper when a plan is
  /// active, the raw device otherwise.
  std::vector<core::DiffusionBackend*> targets_;

  /// CircuitBreaker is deliberately unsynchronized (clock-free, tested
  /// with synthetic time); the farm is its external synchronization — all
  /// breaker state transitions happen under mu_.
  std::vector<CircuitBreaker> breakers_ MELOPPR_GUARDED_BY(mu_);
  std::vector<double> busy_seconds_ MELOPPR_GUARDED_BY(mu_);
  /// char: vector<bool> has no sane element references
  std::vector<char> in_use_ MELOPPR_GUARDED_BY(mu_);
  std::size_t free_count_ MELOPPR_GUARDED_BY(mu_);
  std::size_t runs_ MELOPPR_GUARDED_BY(mu_) = 0;
  double wait_seconds_ MELOPPR_GUARDED_BY(mu_) = 0.0;
  std::size_t peak_in_use_ MELOPPR_GUARDED_BY(mu_) = 0;
  std::size_t retries_ MELOPPR_GUARDED_BY(mu_) = 0;
  std::size_t deadline_misses_ MELOPPR_GUARDED_BY(mu_) = 0;
  std::size_t exhausted_runs_ MELOPPR_GUARDED_BY(mu_) = 0;
  /// shared across dispatchers — backoff jitter draws serialize on mu_
  Rng jitter_rng_ MELOPPR_GUARDED_BY(mu_);

  /// Monotonic farm-local clock feeding the breakers (clock-free testing
  /// happens directly against CircuitBreaker with a synthetic `now`).
  Timer uptime_;

  /// Threads currently inside run(); see active_dispatches().
  std::atomic<std::size_t> active_dispatches_{0};

  mutable util::Mutex mu_;
  std::condition_variable device_free_;
};

}  // namespace meloppr::hw
