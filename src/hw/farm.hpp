// Multi-accelerator farm — the paper's stated future work (Sec. VI-C):
// "Through linear decomposition, MeLoPPR allows multiple next-stage nodes
// to be computed in parallel, which can further reduce the overall latency.
// We leave this for future experiments."
//
// The linear decomposition makes every stage-2 diffusion independent, so a
// farm of D accelerator instances can process them concurrently. FpgaFarm
// plugs into the engine as a DiffusionBackend: each run is dispatched to
// the least-loaded device (greedy online list scheduling, within 2× of the
// optimal makespan), per-device busy time accumulates, and the query's
// parallel diffusion latency is the farm makespan rather than the serial
// sum. The CPU-side BFS stays serial — exactly the bottleneck the paper
// predicts would cap this optimization, which bench_future_parallel
// quantifies.
#pragma once

#include <cstddef>
#include <vector>

#include "core/backend.hpp"
#include "hw/host.hpp"

namespace meloppr::hw {

class FpgaFarm final : public core::DiffusionBackend {
 public:
  /// `devices` identical accelerator instances.
  FpgaFarm(std::size_t devices, const AcceleratorConfig& config,
           const Quantizer& quantizer);

  /// Dispatches to the least-loaded device and returns its result. The
  /// BackendResult's compute/transfer seconds are the device's own time
  /// (the engine sums them — that is the *serial* view; use makespan() for
  /// the parallel completion time).
  core::BackendResult run(const graph::Subgraph& ball, double mass,
                          unsigned length) override;

  [[nodiscard]] std::size_t working_bytes(
      std::size_t ball_nodes, std::size_t ball_edges) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Parallel completion time of all diffusions dispatched since the last
  /// reset: max over devices of accumulated busy seconds.
  [[nodiscard]] double makespan_seconds() const;

  /// Serial equivalent (Σ busy time) — the 1-device latency of this load.
  [[nodiscard]] double serial_seconds() const;

  /// Busy-time imbalance: makespan / (serial / D); 1.0 = perfect balance.
  [[nodiscard]] double imbalance() const;

  [[nodiscard]] std::size_t runs() const { return runs_; }

  void reset();

 private:
  std::vector<FpgaBackend> devices_;
  std::vector<double> busy_seconds_;
  std::size_t runs_ = 0;
};

}  // namespace meloppr::hw
