// The concurrent serving layer vs the PR 1 pipeline: sharded ball cache,
// stage-lookahead prefetch, and work-stealing batch scheduling on a skewed
// (popular-seed-heavy) query stream.
//
// The paper's Fig. 7 shows CPU-side BFS dominating end-to-end latency once
// device parallelism grows; PR 1's pipeline still paid full BFS on every
// task and had to run cache-less in parallel mode. This bench layers the
// fixes on one at a time, at a fixed thread count:
//
//   baseline (PR 1)   — no cache, no prefetch, query-pinned batch
//   + sharded cache   — popular balls extracted once, served to all workers
//   + prefetch        — next-stage balls extracted during device diffusion
//   + work stealing   — tail queries spill their stage tasks to idle workers
//
// Reported per configuration: wall q/s, the BFS seconds the workers still
// paid (demand), the BFS seconds the cache+prefetcher removed or hid, the
// demand hit rate, and steal counts. Scores are asserted bit-identical to
// the serial engine in every configuration — the layer changes scheduling,
// never numerics.
//
// A second table runs the same stream against a shared FpgaFarm to show the
// PS/PL overlap directly: farm dispatch-wait seconds (workers blocked on
// busy devices) is exactly the window the prefetcher fills with BFS.
//
//   --smoke          CI mode: small sizes + hard assertions (exit 1 on
//                    regression in the cache/prefetch path)
//   MELOPPR_SEEDS    queries in the stream        (default 96; smoke 24)
//   MELOPPR_SCALE    graph-size multiplier        (default 1)
//   MELOPPR_THREADS  worker threads               (default 4)
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "hw/farm.hpp"

namespace meloppr::bench {
namespace {

struct LayerConfig {
  std::string name;
  bool cache = false;
  bool prefetch = false;
  bool stealing = false;
};

// Prefetch layers on top of stealing: the query-pinned path runs each
// query's serial DFS inside Engine::query, which exposes no lookahead
// hook — only the stealing scheduler (and the stage-parallel single-query
// path) publishes children early enough to prefetch.
const std::vector<LayerConfig> kLayers = {
    {"baseline (PR1)", false, false, false},
    {"+ sharded cache", true, false, false},
    {"+ work stealing", true, false, true},
    {"+ prefetch", true, true, true},
};

struct RunResult {
  double wall_seconds = 0.0;
  core::QueryPipeline::BatchStats stats;
  std::vector<core::QueryResult> results;
};

RunResult run_layer(core::Engine& engine, core::DiffusionBackend& backend,
                    const LayerConfig& layer, std::size_t threads,
                    std::span<const graph::NodeId> stream,
                    core::ShardedBallCache* cache) {
  engine.set_shared_ball_cache(layer.cache ? cache : nullptr);
  core::PipelineConfig pcfg;
  pcfg.threads = threads;
  pcfg.prefetch = layer.prefetch;
  // This bench measures the lookahead layer itself, so the backend-aware
  // throttle is off: the CPU-backend table shows what prefetch buys when
  // cores are genuinely spare, the farm table the throttle's target case.
  pcfg.prefetch_throttle = false;
  pcfg.work_stealing = layer.stealing;
  pcfg.pool_aggregators = layer.stealing;  // pooled arenas ride along
  core::QueryPipeline pipeline(engine, backend, pcfg);

  RunResult r;
  Timer wall;
  r.results = pipeline.query_batch(stream, &r.stats);
  r.wall_seconds = wall.elapsed_seconds();
  engine.set_shared_ball_cache(nullptr);
  return r;
}

/// Bit-identical comparison against precomputed serial references (the
/// acceptance contract of every batch scheduling mode).
bool scores_match_serial(
    const std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>>&
        reference,
    std::span<const graph::NodeId> stream,
    const std::vector<core::QueryResult>& results) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& want = reference.at(stream[i]);
    if (want.size() != results[i].top.size()) return false;
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (want[j].node != results[i].top[j].node ||
          want[j].score != results[i].top[j].score) {
        return false;
      }
    }
  }
  return true;
}

int run(bool smoke) {
  Rng rng = banner(
      "serving layer — sharded cache + prefetch + stealing vs PR1 pipeline");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 4)));
  const std::size_t query_count = bench_seed_count(smoke ? 24 : 96);

  // Skewed stream: 70% of traffic hits 16 popular seeds (a Zipf-ish head)
  // — the access pattern that makes a shared cache pay.
  std::vector<graph::NodeId> popular;
  for (int i = 0; i < 16; ++i) {
    popular.push_back(graph::random_seed_node(g, rng));
  }
  std::vector<graph::NodeId> stream;
  stream.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(rng.chance(0.7)
                         ? popular[rng.below(popular.size())]
                         : graph::random_seed_node(g, rng));
  }

  const std::size_t cache_mb = smoke ? 64 : 256;

  // Serial references, once per distinct seed — every configuration must
  // reproduce these bit-for-bit.
  std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>> reference;
  for (graph::NodeId seed : stream) {
    if (reference.find(seed) == reference.end()) {
      reference.emplace(seed, engine.query(seed).top);
    }
  }

  TablePrinter table({"configuration", "wall (s)", "q/s", "speedup",
                      "demand BFS (s)", "BFS hidden (s)", "hit rate",
                      "dedup", "steals"});
  double base_qps = 0.0;
  double layered_qps = 0.0;
  bool all_identical = true;
  core::QueryPipeline::BatchStats full_stats;

  for (const LayerConfig& layer : kLayers) {
    core::CpuBackend backend(cfg.alpha);
    core::ShardedBallCache cache(g, cache_mb << 20);
    const RunResult r =
        run_layer(engine, backend, layer, threads, stream, &cache);
    const double qps = static_cast<double>(query_count) / r.wall_seconds;
    if (layer.name == kLayers.front().name) base_qps = qps;
    layered_qps = qps;
    full_stats = r.stats;
    // BFS removed or hidden: extraction time spent on prefetch threads plus
    // the serial-BFS seconds that cache hits made vanish (estimated as
    // hits x mean miss cost).
    const double mean_miss_s =
        r.stats.cache_misses > 0
            ? cache.extraction_seconds() /
                  static_cast<double>(r.stats.cache_misses +
                                      r.stats.prefetched_balls)
            : 0.0;
    const double hidden_s =
        r.stats.prefetch_hidden_seconds +
        mean_miss_s * static_cast<double>(r.stats.cache_hits);
    all_identical =
        all_identical && scores_match_serial(reference, stream, r.results);
    table.add_row(
        {layer.name, fmt_fixed(r.wall_seconds, 3), fmt_fixed(qps, 1),
         fmt_fixed(qps / base_qps, 2) + "x",
         fmt_fixed(r.stats.demand_bfs_seconds, 3), fmt_fixed(hidden_s, 3),
         layer.cache ? fmt_percent(r.stats.cache_hit_rate()) : "-",
         layer.cache ? std::to_string(r.stats.dedup_hits) : "-",
         layer.stealing ? std::to_string(r.stats.stolen_tasks) : "-"});
  }

  std::cout << table.ascii() << '\n';

  // --- PS/PL overlap against a shared device farm. ---
  TablePrinter farm_table({"configuration", "wall (s)", "q/s",
                           "farm wait (s)", "BFS hidden (s)", "hit rate",
                           "peak devices"});
  for (const LayerConfig& layer : {kLayers.front(), kLayers.back()}) {
    hw::AcceleratorConfig acfg;
    acfg.parallelism = 16;
    acfg.clock_hz = paper_setup().clock_hz;
    const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        paper_setup().alpha, paper_setup().q, hw::DChoice::kHalfMaxDegree,
        g.average_degree(), g.max_degree(), g.num_nodes());
    // Fewer devices than workers: dispatchers must queue for the farm,
    // which is exactly the window prefetch threads fill with BFS.
    hw::FpgaFarm farm(std::max<std::size_t>(1, threads / 2), acfg, quant);
    core::ShardedBallCache cache(g, cache_mb << 20);
    const RunResult r =
        run_layer(engine, farm, layer, threads, stream, &cache);
    farm_table.add_row(
        {layer.name, fmt_fixed(r.wall_seconds, 3),
         fmt_fixed(static_cast<double>(query_count) / r.wall_seconds, 1),
         fmt_fixed(farm.dispatch_wait_seconds(), 3),
         fmt_fixed(r.stats.prefetch_hidden_seconds, 3),
         layer.cache ? fmt_percent(r.stats.cache_hit_rate()) : "-",
         std::to_string(farm.peak_concurrent_runs())});
  }
  std::cout << farm_table.ascii() << '\n'
            << "reading: the cache turns repeated popular-seed BFS into "
               "memory, the prefetcher moves the remaining BFS into the "
               "farm-wait window, and stealing keeps tail queries from "
               "idling the pool — scores bit-identical throughout.\n";

  // --- loud checks (CI smoke gate) ---
  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "CHECK FAILED: " << what << "\n";
      ok = false;
    }
  };
  // Bit-identical scores are a correctness invariant at ANY parameters.
  check(all_identical,
        "batch scores bit-identical to serial Engine::query in every "
        "configuration");
  if (smoke) {
    // The remaining gates assume the smoke-mode workload shape (skewed
    // stream, several threads); arbitrary env overrides in full mode can
    // legitimately produce a cold cache or a thread count too small for
    // stealing/prefetch to engage.
    check(full_stats.cache_hit_rate() > 0.3,
          "sharded cache demand hit rate > 30% on the skewed stream");
    check(threads < 2 || full_stats.prefetch_issued > 0,
          "prefetcher received lookahead work");
    // Wall-clock q/s on shared CI runners is noisy; the smoke gate only
    // rejects catastrophic regressions of the full stack vs the PR 1
    // baseline. The >=1.3x acceptance figure is checked on dedicated
    // hardware via the full run.
    check(layered_qps >= 0.75 * base_qps,
          "full serving stack at least ~parity with the PR1 baseline");
  }
  std::cout << (ok ? "OK" : "FAILED") << ": serving-layer checks ("
            << (smoke ? "smoke" : "full") << " mode), full-stack speedup "
            << fmt_fixed(layered_qps / base_qps, 2) << "x\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  if (smoke && meloppr::env_int("MELOPPR_SEEDS", 0) == 0) {
    // Smoke defaults sized for a CI container; env overrides still win.
    setenv("MELOPPR_SCALE", "0.25", /*overwrite=*/0);
  }
  return meloppr::bench::run(smoke);
}
