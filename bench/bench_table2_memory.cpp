// Table II — per-query memory: single-stage LocalPPR-CPU vs MeLoPPR-CPU vs
// MeLoPPR-FPGA (BRAM formula) over all six graphs; min ~ max over seeds and
// the average reduction factor, exactly the columns the paper reports.
#include <iostream>

#include "common.hpp"
#include "core/memory_model.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng =
      banner("Table II: memory comparison (LocalPPR-CPU / MeLoPPR-CPU / "
             "MeLoPPR-FPGA)");
  const PaperSetup setup = paper_setup();

  TablePrinter table({"Graph", "LocalPPR-CPU MB (min~max)",
                      "MeLoPPR-CPU MB (min~max)", "CPU red. (min~max)",
                      "CPU avg red.", "FPGA MB (min~max)",
                      "FPGA red. (min~max)", "FPGA avg red."});

  for (graph::PaperGraphId id : graph::all_paper_graphs()) {
    const auto& spec = graph::spec_for(id);
    graph::Graph g = build_graph(id, rng);
    const bool large = g.num_nodes() > 100'000;
    const std::size_t seeds = bench_seed_count(large ? 3 : 8);

    core::MelopprConfig cfg = default_config(setup.k);
    cfg.selection = core::Selection::top_ratio(0.05);
    core::Engine engine(g, cfg);

    Samples base_mb;
    Samples melo_mb;
    Samples fpga_mb;
    Samples cpu_red;
    Samples fpga_red;
    for (std::size_t i = 0; i < seeds; ++i) {
      const graph::NodeId seed = graph::random_seed_node(g, rng);
      ppr::LocalPprResult base =
          ppr::local_ppr(g, seed, {setup.alpha, setup.big_l, setup.k});
      core::QueryResult r = engine.query(seed);

      std::size_t max_ball_nodes = 0;
      std::size_t max_ball_edges = 0;
      for (const auto& st : r.stats.stages) {
        max_ball_nodes = std::max(max_ball_nodes, st.max_ball_nodes);
        max_ball_edges = std::max(max_ball_edges, st.max_ball_edges);
      }
      const std::size_t bram =
          core::fpga_bram_bytes(max_ball_nodes, max_ball_edges);

      const double mb = 1.0 / (1024.0 * 1024.0);
      base_mb.add(static_cast<double>(base.peak_bytes) * mb);
      melo_mb.add(static_cast<double>(r.stats.peak_bytes) * mb);
      fpga_mb.add(static_cast<double>(bram) * mb);
      cpu_red.add(static_cast<double>(base.peak_bytes) /
                  static_cast<double>(r.stats.peak_bytes));
      fpga_red.add(static_cast<double>(base.peak_bytes) /
                   static_cast<double>(bram));
    }

    table.add_row({spec.label + " " + spec.name,
                   fmt_range(base_mb.min(), base_mb.max()),
                   fmt_range(melo_mb.min(), melo_mb.max()),
                   fmt_range(cpu_red.min(), cpu_red.max(), 2),
                   fmt_ratio(cpu_red.geomean()),
                   fmt_range(fpga_mb.min(), fpga_mb.max()),
                   fmt_range(fpga_red.min(), fpga_red.max(), 1),
                   fmt_ratio(fpga_red.geomean(), 1)});
  }

  std::cout << '\n' << table.ascii() << '\n'
            << "paper Table II: CPU avg reductions 1.51x (G1) ... 13.43x "
               "(G5); FPGA avg reductions 73.6x (G1) ... 8699x (G6); denser "
               "community graphs save the most.\n"
            << "note: absolute MBs differ from the paper (C++ structures vs "
               "Python tracemalloc); reductions are the comparable "
               "quantity.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
