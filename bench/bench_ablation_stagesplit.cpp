// Ablation (design choice, Sec. IV-B) — how to split L = 6 into stages:
// l1/l2 in {1+5, 2+4, 3+3, 4+2, 5+1} plus the three-stage 2+2+2. The paper
// fixes l1 = l2 = 3; this bench shows the memory/latency/precision trade
// behind that choice: small l1 shrinks the stage-1 ball but pushes work
// into many stage-2 diffusions on large balls, and vice versa.
#include <iostream>

#include "common.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng = banner("Ablation: stage split of L = 6");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(8);
  const std::vector<std::vector<unsigned>> splits = {
      {1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}, {2, 2, 2}};

  for (graph::PaperGraphId id : graph::small_paper_graphs()) {
    const auto& spec = graph::spec_for(id);
    graph::Graph g = build_graph(id, rng);

    std::vector<graph::NodeId> query_seeds;
    for (std::size_t i = 0; i < seeds; ++i) {
      query_seeds.push_back(graph::random_seed_node(g, rng));
    }
    std::vector<ppr::LocalPprResult> baselines;
    for (graph::NodeId seed : query_seeds) {
      baselines.push_back(
          ppr::local_ppr(g, seed, {setup.alpha, setup.big_l, setup.k}));
    }

    TablePrinter table({"split", "precision", "peak memory (KB)",
                        "query time (ms)", "total balls",
                        "max ball nodes"});
    for (const auto& split : splits) {
      core::MelopprConfig cfg = default_config(setup.k);
      cfg.stage_lengths = split;
      cfg.selection = core::Selection::top_ratio(0.05);
      core::Engine engine(g, cfg);

      RunningStats precision;
      RunningStats peak_kb;
      RunningStats time_ms;
      RunningStats balls;
      RunningStats max_ball;
      for (std::size_t i = 0; i < query_seeds.size(); ++i) {
        core::QueryResult r = engine.query(query_seeds[i]);
        precision.add(
            ppr::precision_at_k(baselines[i].top, r.top, setup.k));
        peak_kb.add(static_cast<double>(r.stats.peak_bytes) / 1024.0);
        time_ms.add(r.stats.total_seconds * 1e3);
        balls.add(static_cast<double>(r.stats.total_balls()));
        std::size_t widest = 0;
        for (const auto& st : r.stats.stages) {
          widest = std::max(widest, st.max_ball_nodes);
        }
        max_ball.add(static_cast<double>(widest));
      }

      std::string name;
      for (std::size_t i = 0; i < split.size(); ++i) {
        if (i) name += "+";
        name += std::to_string(split[i]);
      }
      table.add_row({name, fmt_percent(precision.mean()),
                     fmt_fixed(peak_kb.mean(), 1),
                     fmt_fixed(time_ms.mean(), 2),
                     fmt_fixed(balls.mean(), 1),
                     fmt_fixed(max_ball.mean(), 0)});
    }
    std::cout << "[" << spec.label << " " << spec.name << "]\n"
              << table.ascii() << '\n';
  }
  std::cout << "reading: small l1 leaves one huge stage-2 ball (memory "
               "spikes); small l2 multiplies the number of diffusions "
               "(latency spikes); the paper's balanced 3+3 sits between "
               "the extremes. 2+2+2 shrinks balls further but compounds "
               "the selection loss across stages.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
