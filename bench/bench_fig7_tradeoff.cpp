// Figure 7 — precision-latency trade-off on all six graphs: speedup of
// MeLoPPR-CPU and MeLoPPR-FPGA (P=16) over the single-stage CPU baseline,
// the top-k precision, and the share of the FPGA query spent in CPU-side
// BFS, per next-stage selection operating point.
#include <iostream>

#include "common.hpp"

namespace meloppr::bench {
namespace {

struct OperatingPoint {
  core::Selection selection;
  std::string label;
};

int run() {
  Rng rng = banner(
      "Figure 7: precision-latency trade-offs (MeLoPPR-CPU / MeLoPPR-FPGA "
      "vs LocalPPR-CPU baseline)");
  const PaperSetup setup = paper_setup();

  for (graph::PaperGraphId id : graph::all_paper_graphs()) {
    graph::Graph g = build_graph(id, rng);
    const bool large = g.num_nodes() > 100'000;
    const std::size_t seeds = bench_seed_count(large ? 2 : 5);

    // Operating points: the small graphs sweep the paper's ratio axis; the
    // large ones use count-based points (a percentage of a 100k-node
    // stage-1 ball is thousands of stage-2 diffusions — beyond this
    // container's single-core budget; set MELOPPR_SEEDS/MELOPPR_SCALE for
    // fuller sweeps).
    std::vector<OperatingPoint> points;
    if (large) {
      points = {{core::Selection::top_count(8), "top-8"},
                {core::Selection::top_count(32), "top-32"},
                {core::Selection::top_count(128), "top-128"}};
    } else {
      points = {{core::Selection::top_ratio(0.01), "1%"},
                {core::Selection::top_ratio(0.02), "2%"},
                {core::Selection::top_ratio(0.05), "5%"},
                {core::Selection::top_ratio(0.10), "10%"}};
    }

    // Fix the seed set across operating points.
    std::vector<graph::NodeId> query_seeds;
    for (std::size_t i = 0; i < seeds; ++i) {
      query_seeds.push_back(graph::random_seed_node(g, rng));
    }

    // Baseline once per seed.
    std::vector<ppr::LocalPprResult> baselines;
    double baseline_total_s = 0.0;
    for (graph::NodeId seed : query_seeds) {
      baselines.push_back(
          ppr::local_ppr(g, seed, {setup.alpha, setup.big_l, setup.k}));
      baseline_total_s +=
          baselines.back().bfs_seconds + baselines.back().diffusion_seconds;
    }

    TablePrinter table({"next-stage", "precision", "CPU speedup",
                        "FPGA speedup", "BFS share (FPGA)",
                        "stage-2 balls"});
    for (const OperatingPoint& point : points) {
      core::MelopprConfig cfg = default_config(setup.k);
      cfg.selection = point.selection;
      core::Engine engine(g, cfg);

      RunningStats precision;
      RunningStats balls;
      double cpu_total_s = 0.0;
      double fpga_total_s = 0.0;
      double fpga_bfs_s = 0.0;
      for (std::size_t i = 0; i < query_seeds.size(); ++i) {
        core::QueryResult cpu_r = engine.query(query_seeds[i]);
        cpu_total_s += cpu_r.stats.total_seconds;

        hw::FpgaBackend fpga = make_fpga_backend(g, /*p=*/16);
        core::TopCKAggregator table_agg(setup.c * setup.k);
        core::QueryResult fpga_r =
            engine.query(query_seeds[i], fpga, table_agg);
        // Hybrid latency: measured CPU BFS + simulated device time (the
        // engine's other bookkeeping is not part of the modeled system).
        const double fpga_s = fpga_r.stats.bfs_seconds() +
                              fpga_r.stats.compute_seconds() +
                              fpga_r.stats.transfer_seconds();
        fpga_total_s += fpga_s;
        fpga_bfs_s += fpga_r.stats.bfs_seconds();

        precision.add(
            ppr::precision_at_k(baselines[i].top, fpga_r.top, setup.k));
        balls.add(static_cast<double>(fpga_r.stats.stages[1].balls));
      }
      table.add_row({point.label, fmt_percent(precision.mean()),
                     fmt_ratio(baseline_total_s / cpu_total_s),
                     fmt_ratio(baseline_total_s / fpga_total_s),
                     fmt_percent(fpga_bfs_s / fpga_total_s),
                     fmt_fixed(balls.mean(), 1)});
    }
    std::cout << table.ascii() << '\n';
  }

  std::cout << "paper Fig. 7 shape: precision rises and speedup falls with "
               "more next-stage nodes; FPGA speedups 3.1x ~ 21.8x around "
               "90% precision (up to 707.9x at low ratios on amazon); CPU "
               "shows slowdowns (<1x) at high precision on G1/G2/G6.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
