// Micro-benchmarks (google-benchmark) for the kernels every experiment is
// built from: BFS ball extraction, the graph-diffusion kernel, selection,
// aggregation, and the simulated accelerator — per paper graph G1–G3.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "graph/bfs.hpp"
#include "ppr/diffusion.hpp"
#include "ppr/diffusion_kernels.hpp"

namespace meloppr::bench {
namespace {

const graph::Graph& cached_graph(int index) {
  static const std::vector<graph::Graph> graphs = [] {
    Rng rng(bench_rng_seed());
    std::vector<graph::Graph> out;
    for (graph::PaperGraphId id : graph::small_paper_graphs()) {
      out.push_back(graph::make_paper_graph(id, rng, bench_scale()));
    }
    return out;
  }();
  return graphs[static_cast<std::size_t>(index)];
}

void BM_ExtractBall(benchmark::State& state) {
  const graph::Graph& g = cached_graph(static_cast<int>(state.range(0)));
  const auto radius = static_cast<unsigned>(state.range(1));
  Rng rng(7);
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 64; ++i) {
    seeds.push_back(graph::random_seed_node(g, rng));
  }
  std::size_t i = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const graph::Subgraph ball =
        graph::extract_ball(g, seeds[i++ % seeds.size()], radius);
    nodes += ball.num_nodes();
    benchmark::DoNotOptimize(ball);
  }
  state.counters["ball_nodes/iter"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExtractBall)
    ->ArgsProduct({{0, 1, 2}, {3, 6}})
    ->Unit(benchmark::kMicrosecond);

void BM_Diffusion(benchmark::State& state) {
  const graph::Graph& g = cached_graph(static_cast<int>(state.range(0)));
  Rng rng(11);
  const graph::Subgraph ball =
      graph::extract_ball(g, graph::random_seed_node(g, rng), 3);
  for (auto _ : state) {
    auto r = ppr::diffuse_from(ball, 0, 1.0, {0.85, 3});
    benchmark::DoNotOptimize(r);
  }
  state.counters["edges"] = static_cast<double>(ball.num_edges());
}
BENCHMARK(BM_Diffusion)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// Scalar-vs-SIMD diffusion throughput, pinned per tier (the dispatched
// BM_Diffusion above measures whatever tier CPUID picked). Rotates through
// a pool of balls so the numbers average over ball shapes the way a query
// does, and reports edge_ops/s — compare the tier:0 and tier:1 rows of the
// same (graph, radius) to read the SIMD speedup.
void BM_DiffusionTier(benchmark::State& state) {
  const graph::Graph& g = cached_graph(static_cast<int>(state.range(0)));
  const auto radius = static_cast<unsigned>(state.range(1));
  const auto tier = static_cast<ppr::KernelTier>(state.range(2));
  if (!ppr::kernel_tier_available(tier)) {
    state.SkipWithError("kernel tier unavailable on this machine");
    return;
  }
  Rng rng(11);
  std::vector<graph::Subgraph> balls;
  for (int i = 0; i < 16; ++i) {
    balls.push_back(
        graph::extract_ball(g, graph::random_seed_node(g, rng), radius));
  }
  ppr::set_kernel_tier_override(tier);
  std::size_t i = 0;
  std::uint64_t edge_ops = 0;
  for (auto _ : state) {
    auto r = ppr::diffuse_from(balls[i++ % balls.size()], 0, 1.0,
                               {0.85, radius});
    edge_ops += r.edge_ops;
    benchmark::DoNotOptimize(r);
  }
  ppr::set_kernel_tier_override(std::nullopt);
  state.counters["edge_ops/s"] = benchmark::Counter(
      static_cast<double>(edge_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiffusionTier)
    ->ArgsProduct({{0, 1, 2}, {2, 3}, {0, 1}})
    ->ArgNames({"graph", "radius", "tier"})
    ->Unit(benchmark::kMicrosecond);

void BM_AcceleratorDiffusion(benchmark::State& state) {
  const graph::Graph& g = cached_graph(0);
  Rng rng(13);
  const graph::Subgraph ball =
      graph::extract_ball(g, graph::random_seed_node(g, rng), 3);
  hw::FpgaBackend backend =
      make_fpga_backend(g, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    auto r = backend.run(ball, 1.0, 3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AcceleratorDiffusion)
    ->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Selection(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> residual(static_cast<std::size_t>(state.range(0)));
  for (double& r : residual) {
    r = rng.chance(0.1) ? rng.uniform() : 0.0;  // sparse, like real PPR
  }
  const auto policy = core::Selection::top_ratio(0.05);
  for (auto _ : state) {
    auto sel = core::select_next_stage(residual, policy);
    benchmark::DoNotOptimize(sel);
  }
}
BENCHMARK(BM_Selection)->Arg(1000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_TopCkAggregation(benchmark::State& state) {
  Rng rng(19);
  const std::size_t updates = 10000;
  std::vector<std::pair<graph::NodeId, double>> stream;
  for (std::size_t i = 0; i < updates; ++i) {
    stream.emplace_back(static_cast<graph::NodeId>(rng.below(50000)),
                        rng.uniform() * 1e-3);
  }
  for (auto _ : state) {
    core::TopCKAggregator agg(static_cast<std::size_t>(state.range(0)));
    for (const auto& [node, delta] : stream) agg.add(node, delta);
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(updates));
}
BENCHMARK(BM_TopCkAggregation)->Arg(400)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndQuery(benchmark::State& state) {
  const graph::Graph& g = cached_graph(static_cast<int>(state.range(0)));
  core::MelopprConfig cfg = default_config(200);
  cfg.selection = core::Selection::top_ratio(0.02);
  core::Engine engine(g, cfg);
  Rng rng(23);
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 32; ++i) {
    seeds.push_back(graph::random_seed_node(g, rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = engine.query(seeds[i++ % seeds.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EndToEndQuery)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace meloppr::bench

BENCHMARK_MAIN();
