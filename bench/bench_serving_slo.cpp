// Open-loop SLO harness for the serving front end: a Poisson arrival
// process sweeps the offered rate across the stack's measured capacity and
// reports the arrival→completion latency curve — the plot that makes
// saturation visible (closed-loop benches self-throttle and cannot show
// it). One generator thread draws exponential inter-arrival gaps and
// submit()s regardless of how the stack is doing, exactly like outside
// traffic.
//
// The contract this binary gates with `--smoke` (how CI runs it):
//
//   1. below saturation (0.5x capacity): zero rejects, zero sheds, and a
//      bounded p99 — the front end must be invisible when the load is easy;
//   2. above saturation (3x capacity): the queue stays bounded, overload
//      degrades into TYPED counted rejects (queue_full), conservation
//      holds (submitted == admitted + rejects, admitted == completed), and
//      the run terminates — overload must never become a hang;
//   3. every admitted query's scores are bit-identical to Engine::query.
//
// Knobs: MELOPPR_SEEDS (queries per rate point), MELOPPR_RNG_SEED,
// MELOPPR_SCALE, MELOPPR_SLO_THREADS (worker pool, default 4).
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"

namespace meloppr::bench {
namespace {

struct RatePoint {
  double offered_qps = 0.0;
  core::ServingStats stats;
  std::vector<core::ServedQuery> served;
  double wall_seconds = 0.0;
};

/// Drives one open-loop run: Poisson arrivals at `offered_qps` until
/// `query_count` submissions have been attempted, then drains.
RatePoint run_rate(core::QueryPipeline& pipeline, const graph::Graph& g,
                   double offered_qps, std::size_t query_count, Rng& rng) {
  // The overload valve must be smaller than one run's query count or a
  // saturated burst is simply absorbed and the shedding path never runs.
  core::ServingConfig scfg;
  scfg.queue_capacity = 16;
  scfg.max_in_flight = 8;
  scfg.batch_budget_seconds = 0.02;
  scfg.max_batch = 32;
  core::ServingFrontEnd fe(pipeline, scfg);

  RatePoint point;
  point.offered_qps = offered_qps;
  Timer wall;
  double next_arrival = 0.0;
  for (std::size_t i = 0; i < query_count; ++i) {
    // Exponential inter-arrival gap: -ln(U)/λ, the Poisson process. The
    // schedule is absolute (gaps accumulate into arrival times) so timer
    // oversleep cannot silently deflate the offered rate.
    next_arrival += -std::log(1.0 - rng.uniform()) / offered_qps;
    const double ahead = next_arrival - wall.elapsed_seconds();
    if (ahead > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
    }
    (void)fe.submit(graph::random_seed_node(g, rng));
  }
  point.served = fe.drain();
  point.wall_seconds = wall.elapsed_seconds();
  fe.shutdown();
  point.stats = fe.stats();
  return point;
}

int run(bool smoke) {
  Rng rng = banner("serving SLO — open-loop Poisson arrival-rate sweep");
  graph::Graph g = build_graph(graph::PaperGraphId::kG1Citeseer, rng);

  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);
  core::CpuBackend backend(cfg.alpha);
  core::PipelineConfig pcfg;
  pcfg.threads = static_cast<std::size_t>(
      env_int("MELOPPR_SLO_THREADS", 4));
  core::QueryPipeline pipeline(engine, backend, pcfg);

  // --- Calibrate capacity closed-loop: the q/s the stack sustains when
  // arrivals never outrun it. Everything below is offered relative to it.
  // The batch runs twice and only the warm run counts — lazy pool/cache
  // initialization otherwise deflates capacity and defangs the saturated
  // points of the sweep.
  const std::size_t calib_count = bench_seed_count(smoke ? 24 : 64);
  std::vector<graph::NodeId> calib_seeds;
  calib_seeds.reserve(calib_count);
  for (std::size_t i = 0; i < calib_count; ++i) {
    calib_seeds.push_back(graph::random_seed_node(g, rng));
  }
  (void)pipeline.query_batch(calib_seeds);  // warm-up, unmeasured
  Timer calib_wall;
  (void)pipeline.query_batch(calib_seeds);
  const double capacity_qps =
      static_cast<double>(calib_count) / calib_wall.elapsed_seconds();
  std::cout << "closed-loop capacity: " << fmt_fixed(capacity_qps, 1)
            << " q/s at " << pcfg.threads << " threads\n\n";

  // The saturated end is deliberately far past 1.0x: capacity calibration
  // and sleep granularity both carry slack, and the gate needs the queue
  // bound to actually engage.
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.5, 8.0}
            : std::vector<double>{0.25, 0.5, 0.75, 1.0, 2.0, 4.0, 8.0};
  const std::size_t per_rate = bench_seed_count(smoke ? 60 : 150);

  TablePrinter table({"offered (xcap)", "offered q/s", "completed",
                      "rejected", "p50 (ms)", "p99 (ms)", "max (ms)",
                      "mean queue (ms)", "max batch"});
  std::vector<RatePoint> points;
  points.reserve(fractions.size());
  for (double f : fractions) {
    RatePoint p = run_rate(pipeline, g, f * capacity_qps, per_rate, rng);
    const core::ServingStats& s = p.stats;
    const std::size_t rejected =
        s.rejected_queue_full + s.rejected_deadline + s.rejected_shutdown;
    table.add_row({fmt_fixed(f, 2), fmt_fixed(p.offered_qps, 1),
                   std::to_string(s.completed), std::to_string(rejected),
                   fmt_fixed(s.response_p50_seconds * 1e3, 2),
                   fmt_fixed(s.response_p99_seconds * 1e3, 2),
                   fmt_fixed(s.max_response_seconds * 1e3, 2),
                   fmt_fixed(s.mean_queue_seconds * 1e3, 2),
                   std::to_string(s.max_batch_size)});
    points.push_back(std::move(p));
  }
  std::cout << table.ascii() << '\n'
            << "reading: below 1.0x the latency columns are flat — queueing "
               "is negligible and every arrival is admitted. Crossing "
               "capacity the queue fills, p99 climbs to the queueing limit, "
               "and the rejected column takes over: the bounded queue turns "
               "excess offered load into typed queue_full rejects instead "
               "of unbounded latency. Percentiles are arrival→completion "
               "(admission wait included), so this curve IS the SLO curve.\n";

  if (smoke) {
    std::size_t violations = 0;
    const auto fail = [&violations](const std::string& what) {
      std::cerr << "SMOKE FAIL: " << what << '\n';
      ++violations;
    };
    const RatePoint& easy = points.front();
    const RatePoint& hard = points.back();
    if (easy.stats.rejected_queue_full + easy.stats.shed_deadline != 0) {
      fail("sub-saturation run shed or rejected work");
    }
    if (easy.stats.completed != per_rate) {
      fail("sub-saturation run lost queries: completed " +
           std::to_string(easy.stats.completed) + "/" +
           std::to_string(per_rate));
    }
    if (easy.stats.response_p99_seconds > 1.0) {
      fail("sub-saturation p99 " +
           fmt_fixed(easy.stats.response_p99_seconds, 3) + "s exceeds 1s");
    }
    if (hard.stats.rejected_queue_full == 0) {
      fail("8x-capacity run never hit the queue bound — shedding untested");
    }
    for (const RatePoint* p : {&easy, &hard}) {
      const core::ServingStats& s = p->stats;
      if (s.submitted != s.admitted + s.rejected_queue_full +
                             s.rejected_deadline + s.rejected_shutdown) {
        fail("admission conservation violated");
      }
      if (s.admitted != s.completed + s.shed_deadline) {
        fail("completion conservation violated after drain");
      }
      if (p->served.size() != s.completed + s.shed_deadline) {
        fail("drain() returned a different count than the stats");
      }
    }
    // Bit-identical scores for every admitted query of the easy run.
    std::size_t mismatched = 0;
    for (const core::ServedQuery& sq : easy.served) {
      const core::QueryResult want = engine.query(sq.seed);
      bool same = sq.result.top.size() == want.top.size();
      for (std::size_t r = 0; same && r < want.top.size(); ++r) {
        same = sq.result.top[r].node == want.top[r].node &&
               sq.result.top[r].score == want.top[r].score;
      }
      if (!same) ++mismatched;
    }
    if (mismatched != 0) {
      fail(std::to_string(mismatched) +
           " served queries not bit-identical to Engine::query");
    }
    if (violations != 0) return 1;
    std::cout << "smoke: all serving SLO gates passed\n";
  }
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  return meloppr::bench::run(smoke);
}
