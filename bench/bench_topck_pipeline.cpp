// Bounded top-c·k aggregation through the serving batch path: the A/B
// this PR's ROADMAP item asks for — the paper's BRAM-table memory
// envelope (Sec. V-B) running under the concurrent query_batch scheduler
// instead of pinning the pipeline to exact-only aggregation.
//
// One skewed query stream is served with exact aggregation and with
// bounded tables at several c. Per mode:
//
//   wall q/s          — measured throughput (one warmup round, then the
//                       best of three interleaved rounds — CI wall
//                       clocks are noisy)
//   recall@k          — mean precision vs the exact serial reference
//                       (Fig. 6's precision-vs-c story, batch edition)
//   peak agg entries  — largest per-query score-table occupancy; bounded
//                       mode must stay ≤ c·k per in-flight query
//   agg bytes         — the per-query aggregation footprint (fixed BRAM
//                       model for bounded, hash-map model for exact)
//   evictions         — Σ min-evictions (zero would mean the bound never
//                       engaged — then the A/B proves nothing)
//
// Every bounded batch is also checked bit-identical to the serial
// Engine::query with a TopCKAggregator of the same c: the batch scheduler
// replays the serial DFS reduction per query, so bounded mode inherits
// the serial table's exact semantics at any thread count.
//
//   --smoke          CI mode: small sizes + hard assertions (exit 1 on
//                    equivalence, memory-envelope, recall, or throughput
//                    regression)
//   --seed N         RNG seed override (also MELOPPR_RNG_SEED)
//   MELOPPR_SEEDS    queries in the stream        (default 96; smoke 24)
//   MELOPPR_SCALE    graph-size multiplier        (default 1; smoke 0.25)
//   MELOPPR_THREADS  worker threads               (default 4)
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"

namespace meloppr::bench {
namespace {

struct ModeResult {
  double qps = 0.0;
  double recall = 1.0;
  bool serial_identical = true;
  bool envelope_ok = true;
  std::size_t peak_entries = 0;
  std::size_t agg_bytes = 0;
  std::size_t evictions = 0;
};

int run(bool smoke) {
  Rng rng = banner(
      "top-c·k pipeline — bounded vs exact aggregation in query_batch");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  core::MelopprConfig base_cfg = default_config(/*k=*/100);
  base_cfg.selection = core::Selection::top_ratio(0.03);

  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 4)));
  const std::size_t query_count = bench_seed_count(smoke ? 24 : 96);

  // Skewed stream (the serving-shaped workload of the other benches).
  std::vector<graph::NodeId> popular;
  for (int i = 0; i < 16; ++i) {
    popular.push_back(graph::random_seed_node(g, rng));
  }
  std::vector<graph::NodeId> stream;
  stream.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(rng.chance(0.7)
                         ? popular[rng.below(popular.size())]
                         : graph::random_seed_node(g, rng));
  }

  // c = 0 encodes the exact row.
  const std::vector<std::size_t> c_values = {0, 10, 4, 2};
  struct ModeState {
    std::size_t c = 0;
    core::MelopprConfig cfg;
    std::unique_ptr<core::Engine> engine;
    std::unique_ptr<core::CpuBackend> backend;
    std::unique_ptr<core::QueryPipeline> pipeline;
    std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>> serial;
    double best_wall = 0.0;
    std::vector<core::QueryResult> results;
  };
  std::vector<ModeState> modes;
  for (const std::size_t c : c_values) {
    ModeState m;
    m.c = c;
    m.cfg = base_cfg;
    if (c > 0) {
      m.cfg.aggregation = core::AggregationMode::kBounded;
      m.cfg.topck_c = c;
    }
    m.engine = std::make_unique<core::Engine>(g, m.cfg);
    // Per-mode serial references for the bit-identity contract (for the
    // exact row this re-checks the PR 2 invariant).
    for (graph::NodeId seed : stream) {
      if (m.serial.find(seed) == m.serial.end()) {
        m.serial.emplace(seed, m.engine->query(seed).top);
      }
    }
    m.backend = std::make_unique<core::CpuBackend>(m.cfg.alpha);
    core::PipelineConfig pcfg;
    pcfg.threads = threads;
    pcfg.prefetch = false;  // isolate aggregation: no cache in this bench
    m.pipeline = std::make_unique<core::QueryPipeline>(*m.engine, *m.backend,
                                                       pcfg);
    modes.push_back(std::move(m));
  }
  // The exact mode's serial references double as the recall truth for
  // every row (no separate exact engine: same config, same results).
  const auto& truth = modes.front().serial;

  // Interleaved timing rounds (one warmup + best-of-three): alternating
  // the modes inside each round keeps slow drift on a shared CI runner
  // (frequency scaling, noisy neighbors) from biasing one mode's figure.
  const auto time_rounds = [&](int rounds, bool warmup) {
    for (int round = warmup ? -1 : 0; round < rounds; ++round) {
      for (ModeState& m : modes) {
        Timer wall;
        m.results = m.pipeline->query_batch(stream);
        const double seconds = wall.elapsed_seconds();
        if (round < 0) continue;  // warmup: prime allocators and caches
        if (m.best_wall == 0.0 || seconds < m.best_wall) {
          m.best_wall = seconds;
        }
      }
    }
  };
  time_rounds(3, /*warmup=*/true);
  // The smoke throughput gate (bounded c=10 ≥ 0.9× exact) typically has
  // only a few percent of headroom; when a noisy runner puts the first
  // pass under the line, take extra interleaved rounds before concluding
  // — best-of-N only moves if the early rounds were unlucky.
  for (int retry = 0;
       smoke && retry < 2 && modes[0].best_wall < 0.9 * modes[1].best_wall;
       ++retry) {
    time_rounds(3, /*warmup=*/false);
  }

  std::vector<ModeResult> rows;
  TablePrinter table({"aggregation", "wall (s)", "q/s", "vs exact",
                      "recall@k", "peak agg entries", "agg bytes",
                      "evictions", "= serial"});
  double exact_qps = 0.0;

  for (const ModeState& m : modes) {
    const std::size_t c = m.c;
    const core::MelopprConfig& cfg = m.cfg;
    const std::vector<core::QueryResult>& results = m.results;
    const auto& serial = m.serial;

    ModeResult row;
    row.qps = static_cast<double>(query_count) / m.best_wall;
    if (c == 0) exact_qps = row.qps;

    double recall_sum = 0.0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const core::QueryResult& r = results[i];
      recall_sum +=
          ppr::precision_at_k(truth.at(stream[i]), r.top, cfg.k);
      row.peak_entries = std::max(row.peak_entries,
                                  r.stats.aggregator_entries);
      row.agg_bytes = std::max(row.agg_bytes, r.stats.aggregator_bytes);
      row.evictions += r.stats.aggregator_evictions;
      if (c > 0 && (r.stats.aggregator_entries > cfg.table_capacity() ||
                    r.stats.aggregator_bytes > cfg.table_capacity() * 8)) {
        row.envelope_ok = false;
      }
      const auto& want = serial.at(stream[i]);
      if (want.size() != r.top.size()) {
        row.serial_identical = false;
        continue;
      }
      for (std::size_t j = 0; j < want.size(); ++j) {
        if (want[j].node != r.top[j].node ||
            want[j].score != r.top[j].score) {
          row.serial_identical = false;
          break;
        }
      }
    }
    row.recall = recall_sum / static_cast<double>(stream.size());
    rows.push_back(row);

    table.add_row(
        {c == 0 ? "exact" : "bounded c=" + std::to_string(c),
         fmt_fixed(m.best_wall, 3), fmt_fixed(row.qps, 1),
         fmt_fixed(row.qps / exact_qps, 2) + "x", fmt_fixed(row.recall, 4),
         std::to_string(row.peak_entries), std::to_string(row.agg_bytes),
         c == 0 ? "-" : std::to_string(row.evictions),
         row.serial_identical ? "yes" : "NO"});
  }

  std::cout << table.ascii() << '\n'
            << "reading: bounded mode caps every in-flight query's score "
               "table at c*k entries (the paper's BRAM envelope) while the "
               "batch scheduler replays the serial DFS reduction — so the "
               "scores equal the serial bounded engine bit-for-bit and "
               "only recall, never determinism, pays for small c.\n";

  // --- loud checks (CI smoke gate) ---
  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "CHECK FAILED: " << what << "\n";
      ok = false;
    }
  };
  // Correctness invariants, asserted at ANY parameters.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    check(rows[i].serial_identical,
          "batch scores bit-identical to the serial engine per mode");
    check(rows[i].envelope_ok,
          "bounded aggregation memory within c*k entries per query");
  }
  check(rows[1].evictions > 0 || rows[3].evictions > 0,
        "the bound engaged (no evictions means the A/B proved nothing)");
  if (smoke) {
    // Workload-shaped gates (smoke sizes only; env overrides in full mode
    // can legitimately change these).
    check(rows[1].recall >= 0.9,
          "bounded c=10 recall >= 0.9 vs exact (paper: <0.2% loss)");
    check(rows[1].recall + 0.05 >= rows[3].recall,
          "recall does not improve as c shrinks (10 vs 2)");
    // Wall clocks on shared runners are noisy; the gate rejects bounded
    // mode costing more than ~10% of exact-mode throughput (acceptance
    // figure), measured as the best of three interleaved rounds.
    check(rows[1].qps >= 0.9 * exact_qps,
          "bounded c=10 within 10% of exact-mode throughput");
  }
  std::cout << (ok ? "OK" : "FAILED") << ": top-c·k pipeline checks ("
            << (smoke ? "smoke" : "full") << " mode), bounded c=10 at "
            << fmt_fixed(rows[1].qps / exact_qps, 2) << "x exact, recall "
            << fmt_fixed(rows[1].recall, 4) << "\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  if (smoke && meloppr::env_int("MELOPPR_SEEDS", 0) == 0) {
    // Smoke defaults sized for a CI container; env overrides still win.
    setenv("MELOPPR_SCALE", "0.25", /*overwrite=*/0);
  }
  return meloppr::bench::run(smoke);
}
