// Cache admission policy A/B — LRU always-admit vs TinyLFU frequency
// gating, with cross-query root prefetch layered on top.
//
// The sharded ball cache (PR 2) admits every ball that fits its shard's
// budget: on a skewed stream that is fine, but a burst of unpopular seeds
// (a scan) flushes the hot hub balls the whole serving pipeline depends
// on, and the next popular query pays cold BFS again. TinyLFU admission
// (CacheAdmission::kTinyLFU) gates retention on estimated access
// frequency: a candidate that would evict residents must be hotter than
// every victim, so one-shot scan traffic cannot displace repeatedly-hit
// balls. Root prefetch (PipelineConfig::root_prefetch_window) additionally
// warms the stage-0 balls of upcoming queries the stealing batch already
// knows about.
//
// Two streams, three configurations each:
//
//   skewed      — 70% of traffic on a popular head: the cache's home turf.
//                 Admission barely matters; root prefetch hides cold
//                 starts of the uniform tail.
//   scan-burst  — warm (hot set cycled) → scan (one pass of cold seeds,
//                 in aggregate much larger than the cache) → probe (hot
//                 set again). The probe phase's demand hit rate is the
//                 scan-resistance metric: LRU re-misses everything the
//                 scan evicted, TinyLFU kept the hot set resident. Note
//                 the prefetch row's wall column on this stream: a
//                 prefetched cold ball can be served-but-rejected by the
//                 admission gate and re-extracted at claim time, so on
//                 cold-heavy streams root prefetch trades host CPU for
//                 warmth (see ROADMAP "Pinned prefetch handoff").
//
// Scores are asserted bit-identical to the serial engine in every cell —
// admission and prefetch change retention and scheduling, never numerics.
//
//   --smoke          CI mode: small sizes + hard assertions (exit 1 when
//                    TinyLFU's probe hit rate falls below always-admit's,
//                    when TinyLFU never rejected during the scan, or when
//                    any score diverges)
//   MELOPPR_SEEDS    queries in the skewed stream   (default 96; smoke 24)
//   MELOPPR_SCALE    graph-size multiplier          (default 1)
//   MELOPPR_THREADS  worker threads                 (default 4)
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"

namespace meloppr::bench {
namespace {

constexpr std::size_t kShards = 8;

struct AdmissionConfig {
  std::string name;
  core::CacheAdmission admission = core::CacheAdmission::kAlways;
  bool prefetch = false;  ///< stage lookahead + cross-query root prefetch
};

const std::vector<AdmissionConfig> kConfigs = {
    {"always-admit (LRU)", core::CacheAdmission::kAlways, false},
    {"TinyLFU", core::CacheAdmission::kTinyLFU, false},
    {"TinyLFU + root prefetch", core::CacheAdmission::kTinyLFU, true},
};

core::PipelineConfig pipeline_config(const AdmissionConfig& cfg,
                                     std::size_t threads) {
  core::PipelineConfig pcfg;
  pcfg.threads = threads;
  pcfg.work_stealing = true;
  pcfg.prefetch = cfg.prefetch;
  // CPU backend here: opt out of the backend-aware throttle so the
  // prefetch rows actually exercise lookahead (the cores are idle in this
  // harness; a production CPU-only server keeps the default).
  pcfg.prefetch_throttle = false;
  pcfg.root_prefetch_window = cfg.prefetch ? 8 : 0;
  return pcfg;
}

/// Bit-identical comparison against precomputed serial references.
bool scores_match_serial(
    const std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>>&
        reference,
    std::span<const graph::NodeId> stream,
    const std::vector<core::QueryResult>& results) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& want = reference.at(stream[i]);
    if (want.size() != results[i].top.size()) return false;
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (want[j].node != results[i].top[j].node ||
          want[j].score != results[i].top[j].score) {
        return false;
      }
    }
  }
  return true;
}

struct StreamResult {
  double wall_seconds = 0.0;
  double hit_rate = 0.0;        ///< demand hit rate over the whole stream
  double probe_hit_rate = 0.0;  ///< scan-burst only: the post-scan phase
  core::ShardedBallCache::Stats cache;
  core::QueryPipeline::BatchStats batch;
  bool identical = true;
};

int run(bool smoke) {
  Rng rng = banner("cache admission — LRU vs TinyLFU vs TinyLFU+prefetch");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 4)));

  // --- streams -----------------------------------------------------------
  // Skewed: 70% of traffic on 12 popular seeds, like production traffic.
  const std::size_t skew_count = bench_seed_count(smoke ? 24 : 96);
  std::vector<graph::NodeId> popular;
  for (int i = 0; i < 12; ++i) {
    popular.push_back(graph::random_seed_node(g, rng));
  }
  std::vector<graph::NodeId> skewed;
  skewed.reserve(skew_count);
  for (std::size_t i = 0; i < skew_count; ++i) {
    skewed.push_back(rng.chance(0.7) ? popular[rng.below(popular.size())]
                                     : graph::random_seed_node(g, rng));
  }

  // Scan-burst: hot set cycled (warm) → one pass of distinct cold seeds
  // (scan) → hot set cycled again (probe).
  constexpr std::size_t kHot = 8;
  const std::size_t scan_len = smoke ? 20 : 48;
  std::vector<graph::NodeId> hot;
  std::unordered_set<graph::NodeId> taken;
  while (hot.size() < kHot) {
    const graph::NodeId s = graph::random_seed_node(g, rng);
    if (taken.insert(s).second) hot.push_back(s);
  }
  std::vector<graph::NodeId> scan;
  while (scan.size() < scan_len) {
    const graph::NodeId s = graph::random_seed_node(g, rng);
    if (taken.insert(s).second) scan.push_back(s);
  }
  std::vector<graph::NodeId> warm;
  for (int cycle = 0; cycle < 3; ++cycle) {
    warm.insert(warm.end(), hot.begin(), hot.end());
  }
  std::vector<graph::NodeId> probe;
  for (int cycle = 0; cycle < 2; ++cycle) {
    probe.insert(probe.end(), hot.begin(), hot.end());
  }

  // --- serial references (the bit-identity contract) ---------------------
  std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>> reference;
  const auto remember = [&](std::span<const graph::NodeId> stream) {
    for (graph::NodeId seed : stream) {
      if (reference.find(seed) == reference.end()) {
        reference.emplace(seed, engine.query(seed).top);
      }
    }
  };
  remember(skewed);
  remember(warm);
  remember(scan);

  // --- cache sizing ------------------------------------------------------
  // Measure the hot set's resident footprint against an effectively
  // unbounded cache, then budget 1.5x of it: the hot set fits, the scan
  // (much larger in aggregate) cannot — the regime where admission policy
  // decides who survives.
  std::size_t hot_bytes = 0;
  {
    core::ShardedBallCache probe_cache(g, std::size_t{1} << 30, kShards);
    engine.set_shared_ball_cache(&probe_cache);
    core::CpuBackend backend(cfg.alpha);
    core::QueryPipeline pipeline(engine, backend,
                                 pipeline_config(kConfigs.front(), threads));
    pipeline.query_batch(warm);
    hot_bytes = probe_cache.bytes();
    engine.set_shared_ball_cache(nullptr);
  }
  const std::size_t budget =
      std::max<std::size_t>(hot_bytes + hot_bytes / 2, kShards * (64u << 10));
  std::cout << "hot-set footprint " << (hot_bytes >> 20)
            << " MiB -> cache budget " << (budget >> 20) << " MiB ("
            << kShards << " shards)\n\n";

  // --- harness -----------------------------------------------------------
  const auto serve = [&](const AdmissionConfig& acfg,
                         std::span<const std::vector<graph::NodeId>> phases,
                         std::size_t probe_phase) {
    StreamResult r;
    core::ShardedBallCache cache(g, budget, kShards, acfg.admission);
    engine.set_shared_ball_cache(&cache);
    core::CpuBackend backend(cfg.alpha);
    core::QueryPipeline pipeline(engine, backend,
                                 pipeline_config(acfg, threads));
    Timer wall;
    for (std::size_t p = 0; p < phases.size(); ++p) {
      const core::ShardedBallCache::Stats before = cache.stats();
      core::QueryPipeline::BatchStats batch;
      const std::vector<core::QueryResult> results =
          pipeline.query_batch(phases[p], &batch);
      r.identical =
          r.identical && scores_match_serial(reference, phases[p], results);
      r.batch.prefetch_issued += batch.prefetch_issued;
      r.batch.root_prefetch_issued += batch.root_prefetch_issued;
      r.batch.prefetch_hidden_seconds += batch.prefetch_hidden_seconds;
      if (p == probe_phase) {
        const core::ShardedBallCache::Stats after = cache.stats();
        const std::size_t total = (after.hits - before.hits) +
                                  (after.misses - before.misses);
        r.probe_hit_rate =
            total == 0 ? 0.0
                       : static_cast<double>(after.hits - before.hits) /
                             static_cast<double>(total);
      }
    }
    r.wall_seconds = wall.elapsed_seconds();
    r.cache = cache.stats();
    r.hit_rate = r.cache.hit_rate();
    engine.set_shared_ball_cache(nullptr);
    return r;
  };

  // --- skewed stream -----------------------------------------------------
  TablePrinter skew_table({"configuration", "wall (s)", "q/s", "hit rate",
                           "evictions", "rejected", "root pf",
                           "BFS hidden (s)"});
  bool all_identical = true;
  for (const AdmissionConfig& acfg : kConfigs) {
    const std::vector<std::vector<graph::NodeId>> phases{skewed};
    const StreamResult r = serve(acfg, phases, /*probe_phase=*/0);
    all_identical = all_identical && r.identical;
    skew_table.add_row(
        {acfg.name, fmt_fixed(r.wall_seconds, 3),
         fmt_fixed(static_cast<double>(skew_count) / r.wall_seconds, 1),
         fmt_percent(r.hit_rate), std::to_string(r.cache.evictions),
         std::to_string(r.cache.admission_rejects),
         acfg.prefetch ? std::to_string(r.batch.root_prefetch_issued) : "-",
         acfg.prefetch ? fmt_fixed(r.batch.prefetch_hidden_seconds, 3)
                       : "-"});
  }
  std::cout << "skewed stream (" << skew_count << " queries, 70% on "
            << popular.size() << " seeds):\n"
            << skew_table.ascii() << '\n';

  // --- scan-burst stream -------------------------------------------------
  TablePrinter scan_table({"configuration", "wall (s)", "probe hit rate",
                           "overall hit rate", "evictions", "rejected"});
  const std::vector<std::vector<graph::NodeId>> phases{warm, scan, probe};
  double always_probe_rate = 0.0;
  double tinylfu_probe_rate = 0.0;
  std::size_t tinylfu_rejects = 0;
  std::size_t always_rejects = 0;
  for (const AdmissionConfig& acfg : kConfigs) {
    const StreamResult r = serve(acfg, phases, /*probe_phase=*/2);
    all_identical = all_identical && r.identical;
    if (acfg.name == kConfigs[0].name) {
      always_probe_rate = r.probe_hit_rate;
      always_rejects = r.cache.admission_rejects;
    }
    if (acfg.name == kConfigs[1].name) {
      tinylfu_probe_rate = r.probe_hit_rate;
      tinylfu_rejects = r.cache.admission_rejects;
    }
    scan_table.add_row({acfg.name, fmt_fixed(r.wall_seconds, 3),
                        fmt_percent(r.probe_hit_rate), fmt_percent(r.hit_rate),
                        std::to_string(r.cache.evictions),
                        std::to_string(r.cache.admission_rejects)});
  }
  std::cout << "scan-burst stream (warm " << warm.size() << " -> scan "
            << scan.size() << " -> probe " << probe.size() << " queries):\n"
            << scan_table.ascii() << '\n'
            << "reading: after a one-pass cold scan, LRU re-misses the hot "
               "set it evicted; TinyLFU rejected the scan balls that would "
               "have displaced hotter residents, so the probe phase stays "
               "warm — scores bit-identical throughout.\n";

  // --- loud checks (CI smoke gate) ---------------------------------------
  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "CHECK FAILED: " << what << "\n";
      ok = false;
    }
  };
  // Invariants that hold at ANY parameters.
  check(all_identical,
        "scores bit-identical to serial Engine::query in every "
        "configuration and stream");
  check(always_rejects == 0, "kAlways never rejects an admission");
  if (smoke) {
    // Workload-shaped gates: the smoke sizes guarantee the scan overflows
    // the budget, so admission policy is actually exercised.
    check(tinylfu_probe_rate >= always_probe_rate,
          "TinyLFU probe hit rate >= always-admit on the scan-burst "
          "stream");
    check(tinylfu_rejects > 0,
          "TinyLFU rejected at least one admission during the scan");
  }
  std::cout << (ok ? "OK" : "FAILED") << ": cache-admission checks ("
            << (smoke ? "smoke" : "full") << " mode), probe hit rate "
            << fmt_percent(always_probe_rate) << " (LRU) vs "
            << fmt_percent(tinylfu_probe_rate) << " (TinyLFU)\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  if (smoke && meloppr::env_int("MELOPPR_SEEDS", 0) == 0) {
    // Smoke defaults sized for a CI container; env overrides still win.
    setenv("MELOPPR_SCALE", "0.25", /*overwrite=*/0);
  }
  return meloppr::bench::run(smoke);
}
