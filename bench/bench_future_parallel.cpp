// Future-work experiment (Sec. VI-C): parallel next-stage computation.
//
// "Through linear decomposition, MeLoPPR allows multiple next-stage nodes
// to be computed in parallel, which can further reduce the overall latency.
// We leave this for future experiments." — this bench runs that experiment:
// a farm of D accelerator instances processes the independent stage-2
// diffusions concurrently, and the per-query diffusion latency becomes the
// farm makespan. The serial CPU-side BFS is reported alongside (Amdahl's
// bound on the whole-query speedup), with and without the ball cache.
#include <iostream>

#include "common.hpp"
#include "core/ball_cache.hpp"
#include "hw/farm.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng = banner(
      "Future work: parallel next-stage diffusion on a multi-accelerator "
      "farm");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(10);

  for (graph::PaperGraphId id : graph::small_paper_graphs()) {
    const auto& spec = graph::spec_for(id);
    graph::Graph g = build_graph(id, rng);

    core::MelopprConfig cfg = default_config(setup.k);
    cfg.selection = core::Selection::top_ratio(0.10);
    core::Engine engine(g, cfg);

    std::vector<graph::NodeId> query_seeds;
    for (std::size_t i = 0; i < seeds; ++i) {
      query_seeds.push_back(graph::random_seed_node(g, rng));
    }

    hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        setup.alpha, setup.q, hw::DChoice::kHalfMaxDegree,
        g.average_degree(), g.max_degree(), g.num_nodes());
    hw::AcceleratorConfig acfg;
    acfg.parallelism = 16;
    acfg.clock_hz = setup.clock_hz;

    TablePrinter table({"devices", "diffusion makespan (ms)",
                        "diffusion speedup", "imbalance", "BFS (ms)",
                        "BFS cached (ms)", "query speedup (cached)"});
    double one_device_ms = 0.0;
    double bfs_ms = 0.0;
    double bfs_cached_ms = 0.0;
    for (std::size_t devices : {1u, 2u, 4u, 8u}) {
      hw::FpgaFarm farm(devices, acfg, quant);
      core::TopCKAggregator agg(setup.c * setup.k);

      double makespan_total = 0.0;
      double imbalance_total = 0.0;
      double bfs_total = 0.0;
      for (graph::NodeId seed : query_seeds) {
        farm.reset();
        core::QueryResult r = engine.query(seed, farm, agg);
        makespan_total += farm.makespan_seconds();
        imbalance_total += farm.imbalance();
        bfs_total += r.stats.bfs_seconds();
      }
      // Cached BFS pass (measured once, on the largest farm's loop shape —
      // BFS cost is device-independent).
      double bfs_cached_total = 0.0;
      {
        core::BallCache cache(g, 512u << 20);
        engine.set_ball_cache(&cache);
        hw::FpgaFarm cached_farm(devices, acfg, quant);
        // Warm pass fills the cache (a serving system is warm in steady
        // state); the measured pass is the second one.
        for (graph::NodeId seed : query_seeds) {
          engine.query(seed, cached_farm, agg);
        }
        for (graph::NodeId seed : query_seeds) {
          core::QueryResult r = engine.query(seed, cached_farm, agg);
          bfs_cached_total += r.stats.bfs_seconds();
        }
        engine.set_ball_cache(nullptr);
      }

      const double n = static_cast<double>(query_seeds.size());
      const double makespan_ms = makespan_total / n * 1e3;
      if (devices == 1) {
        one_device_ms = makespan_ms;
        bfs_ms = bfs_total / n * 1e3;
        bfs_cached_ms = bfs_cached_total / n * 1e3;
      }
      const double query_1dev = bfs_ms + one_device_ms;
      const double query_now = bfs_cached_total / n * 1e3 + makespan_ms;
      table.add_row({std::to_string(devices), fmt_fixed(makespan_ms, 4),
                     fmt_ratio(one_device_ms / makespan_ms),
                     fmt_fixed(imbalance_total / n, 2),
                     fmt_fixed(bfs_total / n * 1e3, 3),
                     fmt_fixed(bfs_cached_total / n * 1e3, 3),
                     fmt_ratio(query_1dev / query_now)});
    }
    std::cout << "[" << spec.label << " " << spec.name
              << "]  (10% next-stage nodes, P=16 per device)\n"
              << table.ascii() << '\n';
    (void)bfs_cached_ms;
  }

  std::cout << "reading: stage-2 diffusions parallelize nearly ideally "
               "across devices (imbalance ~1), confirming the paper's "
               "future-work claim — but the serial CPU BFS bounds the "
               "whole-query gain (Amdahl), which is why the ball cache "
               "column matters.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
