// Fault-tolerance acceptance harness: the same query batch runs twice
// through the serving stack — once on a healthy FPGA farm, once under an
// injected fault plan (transient device faults, latency spikes, and one
// sticky device death mid-batch) with the bit-exact fixed-point host
// fallback behind it. The contract this binary gates:
//
//   1. zero aborts — every query in the faulted batch completes;
//   2. bit-identical scores — fault containment may cost retries and
//      failovers, never correctness (fixed-point numerics make the host
//      fallback node-for-node equal to the accelerator);
//   3. bounded throughput loss — the faulted batch's wall time stays
//      within a small factor of the healthy run.
//
// `--smoke` shrinks the workload and turns violations into a non-zero
// exit, which is how CI runs it. Knobs:
//
//   MELOPPR_FAULT_PLAN  overrides the injected plan
//                       (transient=P,spike=P:S,death=N@D,extractor=P,seed=N)
//   MELOPPR_SEEDS       queries in the batch (default 24; smoke 10)
//   MELOPPR_SCALE       graph-size multiplier
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "hw/farm.hpp"
#include "util/fault_injection.hpp"

namespace meloppr::bench {
namespace {

struct BatchRun {
  std::vector<core::QueryResult> results;
  core::QueryPipeline::BatchStats stats;
  double wall_seconds = 0.0;
};

BatchRun run_batch(core::Engine& engine, core::DiffusionBackend& backend,
                   core::ShardedBallCache& cache,
                   const std::vector<graph::NodeId>& stream) {
  // The full serving stack: stealing workers, stage lookahead, shared cache.
  engine.set_shared_ball_cache(&cache);
  core::PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  core::QueryPipeline pipeline(engine, backend, pcfg);
  BatchRun run;
  Timer wall;
  run.results = pipeline.query_batch(stream, &run.stats);
  run.wall_seconds = wall.elapsed_seconds();
  engine.set_shared_ball_cache(nullptr);
  return run;
}

std::size_t mismatched_queries(const BatchRun& want, const BatchRun& got) {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    const auto& a = want.results[i].top;
    const auto& b = got.results[i].top;
    if (a.size() != b.size()) {
      ++bad;
      continue;
    }
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (a[r].node != b[r].node || a[r].score != b[r].score) {
        ++bad;
        break;
      }
    }
  }
  return bad;
}

int run(bool smoke) {
  Rng rng = banner("fault tolerance — zero-abort, bit-exact degradation");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  // Fixed-point numerics on both sides of the failover boundary: the host
  // fallback replays the accelerator's quantized arithmetic exactly, so
  // "degraded" never means "different scores".
  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  cfg.numerics = ppr::Numerics::kFixedPoint;
  cfg.extraction_attempts = 4;
  core::Engine engine(g, cfg);

  const std::size_t query_count = bench_seed_count(smoke ? 10 : 24);
  std::vector<graph::NodeId> stream;
  stream.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(graph::random_seed_node(g, rng));
  }

  FaultPlan plan = FaultPlan::from_env();
  if (plan.empty()) {
    // The acceptance scenario: transients throughout, a latency spike tail,
    // and device 1 dying for good partway into the batch.
    plan = FaultPlan::parse(smoke ? "transient=0.08,spike=0.02:0.0005,death=15@1"
                                  : "transient=0.08,spike=0.02:0.001,death=60@1");
  }
  plan.seed = bench_rng_seed();
  std::cout << "fault plan: " << plan.summary() << "\n\n";

  const PaperSetup setup = paper_setup();
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 16;
  acfg.clock_hz = setup.clock_hz;
  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      setup.alpha, setup.q, hw::DChoice::kHalfMaxDegree, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::DispatchPolicy policy = hw::DispatchPolicy::from_env();

  TablePrinter table({"run", "wall (s)", "q/s", "ok/degr/fail", "retries",
                      "failovers", "deadline miss", "breaker trips",
                      "devices healthy/dead"});
  auto add_row = [&](const std::string& name, const BatchRun& r) {
    const auto& s = r.stats;
    table.add_row(
        {name, fmt_fixed(r.wall_seconds, 3),
         fmt_fixed(static_cast<double>(s.queries) / r.wall_seconds, 1),
         std::to_string(s.queries - s.degraded_queries - s.failed_queries) +
             "/" + std::to_string(s.degraded_queries) + "/" +
             std::to_string(s.failed_queries),
         std::to_string(s.dispatch_retries), std::to_string(s.failovers),
         std::to_string(s.deadline_misses), std::to_string(s.breaker_trips),
         std::to_string(s.healthy_devices) + "/" +
             std::to_string(s.dead_devices)});
  };

  // --- Healthy baseline: same farm + failover wiring, empty plan, so any
  // overhead of the resilience layer itself is in this row too.
  hw::FpgaFarm healthy_farm(2, acfg, quant, policy, FaultPlan{});
  const std::unique_ptr<core::DiffusionBackend> healthy_cpu =
      core::make_cpu_backend(g, cfg);
  core::FailoverBackend healthy(healthy_farm, *healthy_cpu);
  core::ShardedBallCache healthy_cache(g, 128u << 20);
  const BatchRun want = run_batch(engine, healthy, healthy_cache, stream);
  add_row("healthy farm", want);

  // --- Faulted run: identical stream, farm under the plan.
  hw::FpgaFarm faulted_farm(2, acfg, quant, policy, plan);
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g, cfg);
  core::FailoverBackend failover(faulted_farm, *fallback);
  core::ShardedBallCache faulted_cache(g, 128u << 20);
  const BatchRun got = run_batch(engine, failover, faulted_cache, stream);
  add_row("under fault plan", got);

  const std::size_t mismatches = mismatched_queries(want, got);
  const double slowdown = got.wall_seconds / want.wall_seconds;
  std::cout << table.ascii() << '\n'
            << "score check: " << (stream.size() - mismatches) << "/"
            << stream.size() << " queries bit-identical to the healthy run; "
            << "faulted wall = " << fmt_fixed(slowdown, 2)
            << "x healthy\n"
            << "reading: the retry layer absorbs transients on-device, the "
               "breaker takes the dead device out of rotation (one sticky "
               "death → devices 1/1 at batch end), and the fixed-point host "
               "fallback serves anything the farm exhausts — so the right "
               "column degrades while the score column does not.\n";

  if (smoke) {
    // CI gate — violations fail the build.
    std::size_t violations = 0;
    const auto fail = [&violations](const std::string& what) {
      std::cerr << "SMOKE FAIL: " << what << '\n';
      ++violations;
    };
    if (got.results.size() != stream.size()) fail("faulted batch aborted");
    if (got.stats.failed_queries != 0) {
      fail(std::to_string(got.stats.failed_queries) + " failed queries");
    }
    if (mismatches != 0) {
      fail(std::to_string(mismatches) + " queries with non-identical scores");
    }
    if (got.stats.dead_devices != 1) {
      fail("expected exactly 1 dead device at batch end, saw " +
           std::to_string(got.stats.dead_devices));
    }
    if (got.stats.dispatch_retries + got.stats.failovers == 0) {
      fail("fault plan never engaged the resilience machinery");
    }
    if (slowdown > 5.0) {
      fail("throughput loss " + fmt_fixed(slowdown, 2) + "x exceeds 5x");
    }
    if (violations != 0) return 1;
    std::cout << "smoke: all fault-tolerance gates passed\n";
  }
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  return meloppr::bench::run(smoke);
}
