// Figure 5 — FPGA scalability for the graph-diffusion operation: GD_L on
// depth-L balls of G1, sweeping parallelism P ∈ {1,2,4,8,16}, split into
// scheduling / diffusion / data-movement cycles, against the measured CPU
// time for the same diffusions ("FPGA latency comparing with CPU for graph
// diffusion", Sec. VI-A).
#include <iostream>

#include "common.hpp"
#include "graph/bfs.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng = banner("Figure 5: FPGA scalability with increased parallelism P");
  const PaperSetup setup = paper_setup();
  graph::Graph g = build_graph(graph::PaperGraphId::kG1Citeseer, rng);

  const std::size_t seeds = bench_seed_count(25);
  std::cout << "averaging GD_" << setup.big_l << " diffusions on depth-"
            << setup.big_l << " balls over " << seeds << " random seeds\n\n";

  // Sample the balls once so every P (and the CPU) sees identical work.
  std::vector<graph::Subgraph> balls;
  balls.reserve(seeds);
  for (std::size_t i = 0; i < seeds; ++i) {
    balls.push_back(graph::extract_ball(
        g, graph::random_seed_node(g, rng), setup.big_l));
  }

  // CPU reference: measured wall-clock of the float kernel on the same
  // balls (one warm-up pass so first-touch page faults don't pollute it).
  for (const auto& ball : balls) {
    ppr::diffuse_from(ball, 0, 1.0, {setup.alpha, setup.big_l});
  }
  double cpu_total = 0.0;
  for (const auto& ball : balls) {
    Timer t;
    ppr::diffuse_from(ball, 0, 1.0, {setup.alpha, setup.big_l});
    cpu_total += t.elapsed_seconds();
  }
  const double cpu_ms = cpu_total / static_cast<double>(balls.size()) * 1e3;

  TablePrinter table({"P", "CPU (ms)", "FPGA total (ms)", "scheduling (ms)",
                      "diffusion (ms)", "data movement (ms)",
                      "sched share", "speedup vs P=1"});
  double p1_total_ms = 0.0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    hw::FpgaBackend backend = make_fpga_backend(g, p);
    for (const auto& ball : balls) {
      backend.run(ball, 1.0, setup.big_l);
    }
    const hw::CycleBreakdown cycles = backend.total_cycles();
    const double to_ms = 1e3 / setup.clock_hz /
                         static_cast<double>(balls.size());
    const double sched = static_cast<double>(cycles.scheduling) * to_ms;
    const double diff = static_cast<double>(cycles.diffusion) * to_ms;
    const double dm = static_cast<double>(cycles.data_movement) * to_ms;
    const double total = sched + diff + dm;
    if (p == 1) p1_total_ms = total;
    table.add_row({std::to_string(p), fmt_fixed(cpu_ms, 3),
                   fmt_fixed(total, 3), fmt_fixed(sched, 3),
                   fmt_fixed(diff, 3), fmt_fixed(dm, 3),
                   fmt_percent(sched / (sched + diff)),
                   fmt_ratio(p1_total_ms / total)});
  }
  std::cout << table.ascii() << '\n'
            << "paper shape: >10x total-latency improvement scaling P=1 -> "
               "16; scheduling overhead <20% of compute at P=2 and <40% for "
               "P>2 (our crossbar arbiter is more idealized, so the share "
               "is lower but grows with P the same way).\n"
            << "note: the paper's CPU column is Python/NetworkX; ours is "
               "optimized C++, so CPU-vs-FPGA ratios are not comparable — "
               "the FPGA scaling curve is.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
