// Shared plumbing for the benchmark harnesses.
//
// Every bench binary runs with no arguments, prints the paper row/series it
// reproduces, and honors:
//   MELOPPR_SEEDS     — queries averaged per configuration (paper: 500–1000;
//                       defaults here are sized for a small container)
//   MELOPPR_RNG_SEED  — base RNG seed (default 42), printed for replay
//   MELOPPR_SCALE     — global graph-size multiplier in (0,1] (default 1)
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/host.hpp"
#include "ppr/local_ppr.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace meloppr::bench {

/// Paper-wide experiment constants (Sec. VI).
struct PaperSetup {
  double alpha = 0.85;  // not stated in the paper; standard PPR value
  unsigned big_l = 6;   // L
  unsigned l1 = 3;
  unsigned l2 = 3;
  std::size_t k = 200;
  unsigned q = 10;
  std::size_t c = 10;   // global table holds c·k entries
  double clock_hz = 100e6;
};

inline PaperSetup paper_setup() { return {}; }

/// Scans argv for the shared harness flags: `--seed N` / `--seed=N`
/// overrides MELOPPR_RNG_SEED (the banner prints the effective seed, so
/// any failing run replays with one copy-pasted flag). Returns true when
/// `--smoke` was present; unknown flags are left for the bench to handle.
inline bool parse_bench_args(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      set_bench_rng_seed(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      set_bench_rng_seed(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  return smoke;
}

/// Prints the standard bench banner and returns the base RNG.
inline Rng banner(const std::string& title) {
  const std::uint64_t seed = bench_rng_seed();
  std::cout << "=== " << title << " ===\n"
            << "rng_seed=" << seed
            << "  seeds/config=" << bench_seed_count(0)
            << " (0 → per-bench default; set MELOPPR_SEEDS to override)\n\n";
  return Rng(seed);
}

/// Graph-size multiplier for quick runs.
inline double bench_scale() {
  const double s = env_double("MELOPPR_SCALE", 1.0);
  return (s <= 0.0 || s > 1.0) ? 1.0 : s;
}

/// Builds a calibrated stand-in for a paper graph, reporting its stats.
inline graph::Graph build_graph(graph::PaperGraphId id, Rng& rng) {
  const auto& spec = graph::spec_for(id);
  Timer t;
  graph::Graph g = graph::make_paper_graph(id, rng, bench_scale());
  std::cout << "[" << spec.label << " " << spec.name << "] " << g.summary()
            << "  (paper: |V|=" << spec.vertices << " |E|=" << spec.edges
            << ")  built in " << fmt_fixed(t.elapsed_seconds(), 2) << "s\n";
  return g;
}

/// Paper-default MeLoPPR config (two stages of 3).
inline core::MelopprConfig default_config(std::size_t k = 200) {
  core::MelopprConfig cfg;
  const PaperSetup setup = paper_setup();
  cfg.alpha = setup.alpha;
  cfg.stage_lengths = {setup.l1, setup.l2};
  cfg.k = k;
  return cfg;
}

/// FPGA backend with the paper's shipping configuration for a given graph
/// (P PEs, q=10, d = max_degree/2, Max referenced to |V| as a conservative
/// stand-in for |G_L(s)|).
inline hw::FpgaBackend make_fpga_backend(const graph::Graph& g, unsigned p) {
  const PaperSetup setup = paper_setup();
  hw::AcceleratorConfig cfg;
  cfg.parallelism = p;
  cfg.clock_hz = setup.clock_hz;
  hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      setup.alpha, setup.q, hw::DChoice::kHalfMaxDegree, g.average_degree(),
      g.max_degree(), g.num_nodes());
  return hw::FpgaBackend(hw::Accelerator(cfg, quant));
}

}  // namespace meloppr::bench
