// Multi-query throughput of the QueryPipeline: queries/sec vs worker
// threads, the serving-scale face of the paper's Sec. VI-C future work.
//
// Two backends are swept:
//   * cpu         — shared CpuBackend (stateless, thread-safe): measures
//                   how well independent queries scale on host cores alone.
//   * fpga farm   — one shared FpgaFarm of D simulated devices: workers'
//                   dispatches interleave on the farm exactly as a
//                   multi-accelerator deployment would see them.
//
// For each thread count T the same query stream runs through
// QueryPipeline::query_batch. Two throughputs are reported:
//
//   wall qps    — stream_size / measured wall seconds on THIS host. This
//                 only scales with T when the container actually has spare
//                 cores; on a 1-core box it stays flat by physics.
//   modeled qps — the serving-deployment view, in the same spirit as
//                 bench_future_parallel's makespan accounting: per-query
//                 costs are measured once at T=1 (host BFS + simulated
//                 device seconds, both contention-free), then the stream is
//                 greedily list-scheduled onto T workers and the modeled
//                 completion time is the worker makespan. Queries are
//                 independent (linear decomposition), so this is the
//                 throughput a T-core PS with T devices would see.
//
// Scores are bit-identical across T (the batch path keeps the serial DFS
// schedule per query), so the sweep measures scheduling, not approximation.
//
//   MELOPPR_SEEDS   queries in the stream       (default 48)
//   MELOPPR_SCALE   graph-size multiplier        (default 1)
//   MELOPPR_THREADS max thread count swept       (default 8)
#include <algorithm>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "hw/farm.hpp"

namespace meloppr::bench {
namespace {

hw::FpgaFarm make_farm(const graph::Graph& g, std::size_t devices) {
  const PaperSetup setup = paper_setup();
  hw::AcceleratorConfig cfg;
  cfg.parallelism = 16;  // the paper's largest build
  cfg.clock_hz = setup.clock_hz;
  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      setup.alpha, setup.q, hw::DChoice::kHalfMaxDegree, g.average_degree(),
      g.max_degree(), g.num_nodes());
  return hw::FpgaFarm(devices, cfg, quant);
}

/// Greedy online list scheduling of per-query costs onto `workers` —
/// the same discipline the FpgaFarm uses for balls, applied to queries.
double modeled_makespan(const std::vector<double>& costs,
                        std::size_t workers) {
  std::vector<double> busy(workers, 0.0);
  for (double c : costs) {
    *std::min_element(busy.begin(), busy.end()) += c;
  }
  return *std::max_element(busy.begin(), busy.end());
}

int run() {
  Rng rng = banner("pipeline throughput — queries/sec vs worker threads");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  const std::size_t query_count = bench_seed_count(48);
  std::vector<graph::NodeId> stream;
  stream.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(graph::random_seed_node(g, rng));
  }

  const std::size_t max_threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 8)));
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"backend", "threads", "wall (s)", "wall q/s",
                      "modeled q/s", "modeled speedup", "farm imbalance"});

  for (const bool use_farm : {false, true}) {
    core::CpuBackend cpu(cfg.alpha);
    hw::FpgaFarm farm = make_farm(g, max_threads);
    core::DiffusionBackend& backend =
        use_farm ? static_cast<core::DiffusionBackend&>(farm)
                 : static_cast<core::DiffusionBackend&>(cpu);

    // Contention-free per-query costs, measured once at T=1: host-side
    // BFS wall time plus the diffusion seconds in the backend's own
    // timebase (simulated device seconds for the farm, measured wall for
    // the CPU). Using total_seconds here would time the *simulation*, not
    // the modeled deployment.
    std::vector<double> costs;
    {
      core::PipelineConfig pcfg;
      pcfg.threads = 1;
      core::QueryPipeline pipeline(engine, backend, pcfg);
      for (const core::QueryResult& r : pipeline.query_batch(stream)) {
        costs.push_back(r.stats.bfs_seconds() +
                        r.stats.diffusion_serial_seconds);
      }
      farm.reset();
    }

    double base_modeled_qps = 0.0;
    for (const std::size_t threads : thread_counts) {
      farm.reset();
      core::PipelineConfig pcfg;
      pcfg.threads = threads;
      core::QueryPipeline pipeline(engine, backend, pcfg);
      Timer wall;
      const std::vector<core::QueryResult> results =
          pipeline.query_batch(stream);
      const double seconds = wall.elapsed_seconds();
      const double n = static_cast<double>(results.size());
      const double modeled_qps = n / modeled_makespan(costs, threads);
      if (threads == 1) base_modeled_qps = modeled_qps;
      table.add_row({backend.name(), std::to_string(threads),
                     fmt_fixed(seconds, 3), fmt_fixed(n / seconds, 1),
                     fmt_fixed(modeled_qps, 1),
                     fmt_fixed(modeled_qps / base_modeled_qps, 2) + "x",
                     use_farm ? fmt_fixed(farm.imbalance(), 2) : "-"});
    }
  }

  std::cout << table.ascii() << '\n'
            << "reading: queries (and their stage tasks) are independent by "
               "linear decomposition, so modeled throughput scales almost "
               "linearly with workers — >2x at 4 threads — until device "
               "count or BFS bandwidth saturates. Wall q/s tracks the model "
               "only when the host has that many real cores.\n\n";

  // --- Aggregator pooling & mode A/B (ROADMAP: aggregator reuse across a
  // batch; top-c·k aggregation in the pipeline). Same stream, repeated to
  // amplify per-query construct/teardown cost; pooled arenas keep each
  // worker's storage warm across queries (hash-map buckets for exact,
  // fixed BRAM slots for bounded), so the exact rows differ only by malloc
  // churn, and the bounded row shows the c·k memory envelope riding the
  // same batch path. Deeper bounded A/B (recall, thread sweep, memory
  // gate) lives in bench_topck_pipeline.
  std::vector<graph::NodeId> repeated;
  repeated.reserve(stream.size() * 4);
  for (int rep = 0; rep < 4; ++rep) {
    repeated.insert(repeated.end(), stream.begin(), stream.end());
  }
  core::MelopprConfig bounded_cfg = cfg;
  bounded_cfg.aggregation = core::AggregationMode::kBounded;
  bounded_cfg.topck_c = paper_setup().c;
  core::Engine bounded_engine(g, bounded_cfg);

  struct AggRow {
    const char* name;
    bool pooled;
    bool bounded;
  };
  const AggRow agg_rows[] = {{"per-query exact", false, false},
                             {"pooled exact", true, false},
                             {"pooled bounded c=10", true, true}};
  TablePrinter pool_table({"aggregators", "threads", "wall (s)", "wall q/s",
                           "arena reuses", "peak agg entries", "evictions"});
  for (const AggRow& row : agg_rows) {
    core::CpuBackend cpu(cfg.alpha);
    core::PipelineConfig pcfg;
    pcfg.threads = max_threads;
    pcfg.pool_aggregators = row.pooled;
    pcfg.prefetch = false;  // isolate the aggregator effect
    core::QueryPipeline pipeline(row.bounded ? bounded_engine : engine, cpu,
                                 pcfg);
    core::QueryPipeline::BatchStats batch;
    Timer wall;
    const std::size_t served = pipeline.query_batch(repeated, &batch).size();
    const double seconds = wall.elapsed_seconds();
    pool_table.add_row(
        {row.name, std::to_string(max_threads), fmt_fixed(seconds, 3),
         fmt_fixed(static_cast<double>(served) / seconds, 1),
         row.pooled ? std::to_string(pipeline.aggregator_pool()->reuses())
                    : "-",
         std::to_string(batch.peak_aggregator_entries),
         row.bounded ? std::to_string(batch.aggregator_evictions) : "-"});
  }
  std::cout << pool_table.ascii() << '\n'
            << "reading: pooled rows reuse warm arenas (clear() keeps the "
               "storage), so the exact-row gap is pure allocation churn; "
               "the bounded row caps every query's score table at c*k "
               "entries — the paper's BRAM envelope — on the same "
               "work-stealing batch path.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  meloppr::bench::parse_bench_args(argc, argv);
  return meloppr::bench::run();
}
