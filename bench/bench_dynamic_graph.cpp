// Dynamic-graph serving A/B — surgical cache invalidation vs clear().
//
// PR 2's sharded ball cache assumed a frozen graph; under streaming edge
// updates the naive way to stay correct is to clear() the whole cache on
// every update, which throws away every ball the update did NOT touch.
// The reverse-reachability index (ShardedBallCache::bind_dynamic_graph)
// instead invalidates exactly the balls containing an updated endpoint,
// so a warm cache survives churn.
//
// Two stacks over the same base graph, same seed batch, same update
// stream:
//
//   surgical — DynamicGraph + bind_dynamic_graph cache + versioned engine:
//              updates invalidate only the balls containing an endpoint.
//   clear()  — DynamicGraph serving extraction through set_extractor, with
//              the cache fully cleared after every update (the baseline
//              coherence protocol).
//
// Both stacks re-run the identical query batch after the update phase;
// the post-update demand hit rate is the retention metric. Scores in every
// cell are asserted bit-identical to the serial engine on a from-scratch
// CSR rebuild at the same version — invalidation changes retention, never
// results.
//
//   --smoke          CI mode: small sizes + hard assertions (exit 1 when
//                    scores diverge from the rebuild reference, when the
//                    surgical stack invalidated nothing, or when its
//                    post-update hit rate is below 2x the clear()
//                    baseline's)
//   MELOPPR_SEEDS    queries in the batch           (default 96; smoke 48)
//   MELOPPR_SCALE    graph-size multiplier          (default 1)
//   MELOPPR_THREADS  worker threads                 (default 4)
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/update_streams.hpp"

namespace meloppr::bench {
namespace {

using core::Engine;
using core::QueryPipeline;
using core::QueryResult;
using core::ShardedBallCache;
using graph::DynamicGraph;
using graph::EdgeUpdate;
using graph::Graph;
using graph::NodeId;

struct Stack {
  DynamicGraph dyn;
  ShardedBallCache cache;
  Engine engine;
  std::unique_ptr<core::DiffusionBackend> backend;
  std::unique_ptr<QueryPipeline> pipeline;

  Stack(const Graph& base, const core::MelopprConfig& mcfg,
        std::size_t threads, bool surgical)
      : dyn(base), cache(base, 64u << 20, 8), engine(base, mcfg) {
    if (surgical) {
      cache.bind_dynamic_graph(dyn);
      engine.set_dynamic_graph(&dyn);
    } else {
      // Baseline: extraction still serves the CURRENT graph (anything else
      // would be wrong, not just slow); coherence comes from clear().
      cache.set_extractor(
          [this](const Graph&, NodeId root, unsigned radius) {
            return dyn.extract_ball(root, radius);
          });
    }
    engine.set_shared_ball_cache(&cache);
    backend = core::make_cpu_backend(base, mcfg);
    core::PipelineConfig pcfg;
    pcfg.threads = threads;
    pipeline = std::make_unique<QueryPipeline>(engine, *backend, pcfg);
  }
};

struct Phase {
  double hit_rate = 0.0;
  double wall_seconds = 0.0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

Phase run_batch(Stack& s, const std::vector<NodeId>& seeds,
                std::vector<QueryResult>* results_out = nullptr) {
  const auto before = s.cache.stats();
  Timer t;
  std::vector<QueryResult> results = s.pipeline->query_batch(seeds);
  Phase p;
  p.wall_seconds = t.elapsed_seconds();
  const auto after = s.cache.stats();
  p.hits = after.hits - before.hits;
  p.misses = after.misses - before.misses;
  p.hit_rate = p.hits + p.misses == 0
                   ? 0.0
                   : static_cast<double>(p.hits) /
                         static_cast<double>(p.hits + p.misses);
  if (results_out != nullptr) *results_out = std::move(results);
  return p;
}

bool same_scores(const std::vector<QueryResult>& got,
                 const std::vector<QueryResult>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].top.size() != want[i].top.size()) return false;
    for (std::size_t r = 0; r < got[i].top.size(); ++r) {
      if (got[i].top[r].node != want[i].top[r].node) return false;
      if (got[i].top[r].score != want[i].top[r].score) return false;
    }
  }
  return true;
}

int run(bool smoke) {
  Rng rng = banner("dynamic graph serving: surgical invalidation vs clear()");
  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 4)));
  const std::size_t batch = bench_seed_count(smoke ? 48 : 96);
  const std::size_t n =
      std::max<std::size_t>(1200, static_cast<std::size_t>(
                                      (smoke ? 2400 : 4800) * bench_scale()));
  const std::size_t update_rounds = smoke ? 1 : 3;
  const std::size_t updates_per_round = smoke ? 12 : 48;

  core::MelopprConfig mcfg = default_config(100);
  mcfg.stage_lengths = {2, 2};  // short stages keep the A/B about caching

  Timer build;
  Rng grng = rng.fork(1);
  // ER keeps balls small and nearly disjoint, so the A/B actually measures
  // the coherence protocols: each update touches a handful of cached balls
  // (surgical keeps the rest), and within-batch ball sharing — the clear()
  // baseline's only retention — stays honest. On clique-like graphs every
  // ball covers its whole community and ANY update in it kills them all,
  // which the full-mode table of bench runs on other families can show,
  // but which makes a retention gate meaningless.
  const Graph base =
      graph::erdos_renyi(n, (n * 5) / 2, grng);
  std::cout << "[erdos-renyi] " << base.summary() << "  built in "
            << fmt_fixed(build.elapsed_seconds(), 2) << "s  threads="
            << threads << "\n\n";

  // Distinct spread seeds: within-batch ball sharing is the clear()
  // baseline's only retention, so the batch must not be a single hot spot.
  std::vector<NodeId> seeds;
  Rng seed_rng = rng.fork(2);
  std::vector<bool> used(base.num_nodes(), false);
  while (seeds.size() < batch) {
    const NodeId s = static_cast<NodeId>(seed_rng.below(base.num_nodes()));
    if (used[s] || base.degree(s) == 0) continue;
    used[s] = true;
    seeds.push_back(s);
  }

  Rng urng = rng.fork(3);
  graph::UpdateStreamConfig ucfg;
  ucfg.count = update_rounds * updates_per_round;
  const std::vector<EdgeUpdate> stream = graph::make_update_stream(
      base, graph::UpdateWorkload::kRecommenderChurn, ucfg, urng);

  Stack surgical(base, mcfg, threads, /*surgical=*/true);
  Stack baseline(base, mcfg, threads, /*surgical=*/false);

  // Warm both caches with the same traffic.
  const Phase warm_s = run_batch(surgical, seeds);
  const Phase warm_b = run_batch(baseline, seeds);

  TablePrinter table({"phase", "stack", "hit rate", "hits", "misses",
                      "invalidated", "wall (s)"});
  const auto add = [&](const std::string& phase, const std::string& stack,
                       const Phase& p, std::size_t invalidated) {
    table.add_row({phase, stack, fmt_percent(p.hit_rate),
                   std::to_string(p.hits), std::to_string(p.misses),
                   std::to_string(invalidated),
                   fmt_fixed(p.wall_seconds, 3)});
  };
  add("warm", "surgical", warm_s, 0);
  add("warm", "clear()", warm_b, 0);
  table.add_separator();

  bool all_identical = true;
  double last_rate_s = 0.0;
  double last_rate_b = 0.0;
  std::size_t total_invalidated = 0;
  for (std::size_t round = 0; round < update_rounds; ++round) {
    const std::size_t begin = round * updates_per_round;
    const std::size_t end =
        std::min(stream.size(), begin + updates_per_round);
    const std::size_t inv_before = surgical.cache.stats().invalidations;
    for (std::size_t i = begin; i < end; ++i) {
      surgical.dyn.apply(stream[i]);
      baseline.dyn.apply(stream[i]);
      baseline.cache.clear();  // the whole point of the comparison
    }
    const std::size_t invalidated =
        surgical.cache.stats().invalidations - inv_before;
    total_invalidated += invalidated;

    std::vector<QueryResult> got_s;
    std::vector<QueryResult> got_b;
    const Phase ph_s = run_batch(surgical, seeds, &got_s);
    const Phase ph_b = run_batch(baseline, seeds, &got_b);
    last_rate_s = ph_s.hit_rate;
    last_rate_b = ph_b.hit_rate;

    // Reference: serial engine on a from-scratch rebuild at this version.
    const Graph rebuilt = surgical.dyn.materialize();
    Engine ref(rebuilt, mcfg);
    std::vector<QueryResult> want;
    want.reserve(seeds.size());
    for (const NodeId s : seeds) want.push_back(ref.query(s));
    all_identical = all_identical && same_scores(got_s, want) &&
                    same_scores(got_b, want);

    const std::string phase = "post-update " + std::to_string(round + 1);
    add(phase, "surgical", ph_s, invalidated);
    add(phase, "clear()", ph_b, 0);
  }

  std::cout << table.ascii() << '\n'
            << "reading: after each update round the surgical stack loses "
               "only the balls containing an updated endpoint (the "
               "`invalidated` column), so the re-run batch stays warm; the "
               "clear() baseline pays cold BFS for everything, keeping only "
               "within-batch ball sharing. Scores are bit-identical to a "
               "serial from-scratch rebuild in every cell.\n";

  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "CHECK FAILED: " << what << "\n";
      ok = false;
    }
  };
  check(all_identical,
        "scores bit-identical to the rebuilt-graph serial engine in both "
        "stacks after every update round");
  check(total_invalidated > 0,
        "surgical stack invalidated at least one resident ball");
  check(surgical.dyn.version() == baseline.dyn.version(),
        "both stacks applied the full update stream");
  if (smoke) {
    check(last_rate_s >= 2.0 * last_rate_b,
          "surgical post-update hit rate >= 2x the clear() baseline's");
  }
  std::cout << (ok ? "OK" : "FAILED") << ": dynamic-graph checks ("
            << (smoke ? "smoke" : "full") << " mode), post-update hit rate "
            << fmt_percent(last_rate_s) << " (surgical) vs "
            << fmt_percent(last_rate_b) << " (clear), "
            << total_invalidated << " balls invalidated\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  return meloppr::bench::run(smoke);
}
