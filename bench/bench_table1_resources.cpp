// Table I — FPGA resource utilization of the accelerator on the Kintex-7
// KC705 under parallelism P = 1, 2, 4, 8, 16 (structural model; see
// src/hw/resource_model.hpp for the cost breakdown).
#include <iostream>

#include "common.hpp"
#include "hw/resource_model.hpp"

namespace meloppr::bench {
namespace {

int run() {
  banner("Table I: FPGA resource utilization under different parallelism P");
  hw::ResourceModel model;
  std::cout << "device: " << model.device().name << " ("
            << model.device().luts << " LUTs, "
            << model.device().bram36_blocks << " BRAM36, "
            << model.device().dsp_slices << " DSP)\n"
            << "per-PE tables provisioned for balls of "
            << model.coefficients().pe_ball_nodes << " nodes / "
            << model.coefficients().pe_ball_edges << " edges ("
            << model.pe_bram_blocks() << " BRAM36 per PE)\n\n";

  TablePrinter table({"Resource", "P=1", "P=2", "P=4", "P=8", "P=16"});
  std::vector<std::string> lut_row{"LUTs"};
  std::vector<std::string> bram_row{"BRAM"};
  std::vector<std::string> dsp_row{"DSP"};
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    const hw::ResourceUsage usage = model.estimate(p);
    lut_row.push_back(fmt_percent(usage.lut_fraction));
    bram_row.push_back(fmt_percent(usage.bram_fraction));
    dsp_row.push_back(fmt_percent(usage.dsp_fraction, 2));
  }
  table.add_row(lut_row);
  table.add_row(bram_row);
  table.add_row(dsp_row);
  std::cout << table.ascii() << '\n'
            << "paper Table I: LUT 0.9 / 3.1 / 8.9 / 21.8 / 70.6 %, BRAM "
               "4.8 / 9.9 / 19.2 / 36.1 / 72.8 %, DSP < 0.1% (division in "
               "logic).\n"
            << "largest P that fits the device: "
            << model.max_parallelism() << "\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
