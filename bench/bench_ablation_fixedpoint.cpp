// Ablation (Sec. V-A claims) — integer-score precision loss as a function
// of the d in Max = d·|G_L(s)|: the paper reports <4% top-k precision loss
// for d = average degree, <0.001% for d = max degree, and ships
// d = max_degree/2 with q = 10. Also sweeps the shift width q.
#include <iostream>

#include "common.hpp"
#include "graph/bfs.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::bench {
namespace {

double fixed_point_precision(const hw::Quantizer& q,
                             const std::vector<graph::Subgraph>& balls,
                             std::size_t k, const PaperSetup& setup) {
  hw::AcceleratorConfig cfg;
  cfg.parallelism = 4;
  hw::Accelerator accel(cfg, q);
  RunningStats precision;
  for (const auto& ball : balls) {
    const ppr::DiffusionResult ref =
        ppr::diffuse_from(ball, 0, 1.0, {setup.alpha, setup.l1});
    const hw::AcceleratorRun run =
        accel.diffuse(ball, q.to_fixed(1.0), setup.l1);
    std::vector<ppr::ScoredNode> truth;
    std::vector<ppr::ScoredNode> fixed;
    for (graph::NodeId v = 0; v < ball.num_nodes(); ++v) {
      truth.push_back({ball.to_global(v), ref.accumulated[v]});
      fixed.push_back({ball.to_global(v), q.to_real(run.accumulated[v])});
    }
    const std::size_t eff_k = std::min(k, ball.num_nodes());
    precision.add(ppr::precision_at_k(ppr::top_k(truth, eff_k),
                                      ppr::top_k(fixed, eff_k), eff_k));
  }
  return precision.mean();
}

int run() {
  Rng rng = banner(
      "Ablation: fixed-point representation (Max = d*|G_L|, alpha = "
      "alpha_p/2^q)");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(20);

  TablePrinter table({"Graph", "d policy", "q", "Max", "top-k precision",
                      "loss vs float"});
  for (graph::PaperGraphId id : graph::small_paper_graphs()) {
    const auto& spec = graph::spec_for(id);
    graph::Graph g = build_graph(id, rng);

    std::vector<graph::Subgraph> balls;
    for (std::size_t i = 0; i < seeds; ++i) {
      balls.push_back(graph::extract_ball(
          g, graph::random_seed_node(g, rng), setup.l1));
    }

    for (hw::DChoice choice :
         {hw::DChoice::kAverageDegree, hw::DChoice::kHalfMaxDegree,
          hw::DChoice::kMaxDegree}) {
      const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
          setup.alpha, setup.q, choice, g.average_degree(), g.max_degree(),
          g.num_nodes());
      const double prec =
          fixed_point_precision(quant, balls, setup.k, setup);
      table.add_row({spec.label, to_string(choice),
                     std::to_string(setup.q),
                     std::to_string(quant.max_value()), fmt_percent(prec),
                     fmt_percent(1.0 - prec, 2)});
    }
    // q sweep at the shipping d choice.
    for (unsigned q : {4u, 8u, 12u}) {
      const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
          setup.alpha, q, hw::DChoice::kHalfMaxDegree, g.average_degree(),
          g.max_degree(), g.num_nodes());
      const double prec =
          fixed_point_precision(quant, balls, setup.k, setup);
      table.add_row({spec.label, "d=max_degree/2", std::to_string(q),
                     std::to_string(quant.max_value()), fmt_percent(prec),
                     fmt_percent(1.0 - prec, 2)});
    }
    table.add_separator();
  }
  std::cout << '\n' << table.ascii() << '\n'
            << "paper Sec. V-A: loss <4% for d=avg degree, <0.001% for "
               "d=max degree; shipping point d=max_degree/2, q=10.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
