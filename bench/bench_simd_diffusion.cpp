// SIMD diffusion A/B — the runtime-dispatched kernel family of
// ppr/diffusion_kernels against the scalar tier and the dense reference.
//
// Two questions, one per table:
//   1. Throughput: edge-ops/s of the blocked scalar kernels vs the AVX2
//      tier, per paper graph and ball radius, plus the fixed-point host
//      path (the quantized datapath CpuBackend runs when MelopprConfig
//      selects Numerics::kFixedPoint). The tentpole target is ≥2x on the
//      radius-2/3 balls the paper's stages diffuse over.
//   2. Exactness: float kernels must be BIT-identical (memcmp) to
//      diffuse_dense_reference on every tier, and the fixed-point host
//      kernels must match hw::Accelerator node-for-node (scores, residual,
//      edge_ops, saturation) at the shipping q=10 config.
//
//   --smoke     CI mode: smaller sweep, hard assertions — exits non-zero
//               on ANY bit difference or integer mismatch. Throughput is
//               printed but not gated (CI machines are noisy; the speedup
//               target is tracked by bench_micro_kernels locally).
//   --seed N    overrides MELOPPR_RNG_SEED
//   MELOPPR_SEEDS / MELOPPR_SCALE as usual.
#include <cstring>
#include <iostream>
#include <optional>
#include <vector>

#include "common.hpp"
#include "graph/bfs.hpp"
#include "ppr/diffusion.hpp"
#include "ppr/diffusion_kernels.hpp"

namespace meloppr::bench {
namespace {

using ppr::KernelTier;

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct BallSet {
  std::vector<graph::Subgraph> balls;
  std::uint64_t edges = 0;  ///< Σ ball edge counts, for sizing timing reps
};

BallSet extract_balls(const graph::Graph& g, unsigned radius,
                      std::size_t seeds, Rng& rng) {
  BallSet set;
  for (std::size_t i = 0; i < seeds; ++i) {
    set.balls.push_back(graph::extract_ball(
        g, graph::random_seed_node(g, rng), radius));
    set.edges += set.balls.back().num_edges();
  }
  return set;
}

/// Wall-clock edge-ops/s of float diffusion over the ball set on `tier`.
double float_throughput(const BallSet& set, unsigned length, double alpha,
                        std::uint64_t* edge_ops_out) {
  // Enough repetitions that the fastest tier still runs a few ms.
  const std::size_t reps =
      std::max<std::size_t>(1, 20'000'000 / std::max<std::uint64_t>(
                                               1, set.edges * length));
  std::uint64_t edge_ops = 0;
  Timer t;
  for (std::size_t r = 0; r < reps; ++r) {
    for (const graph::Subgraph& ball : set.balls) {
      edge_ops +=
          ppr::diffuse_from(ball, 0, 1.0, {alpha, length}).edge_ops;
    }
  }
  const double seconds = t.elapsed_seconds();
  if (edge_ops_out != nullptr) *edge_ops_out = edge_ops;
  return static_cast<double>(edge_ops) / std::max(seconds, 1e-12);
}

/// Same, for the fixed-point host kernels.
double fixed_throughput(const BallSet& set, unsigned length,
                        const hw::Quantizer& quant, KernelTier tier) {
  const std::size_t reps =
      std::max<std::size_t>(1, 20'000'000 / std::max<std::uint64_t>(
                                               1, set.edges * length));
  const std::uint32_t seed_mass = quant.to_fixed(1.0);
  std::uint64_t edge_ops = 0;
  Timer t;
  for (std::size_t r = 0; r < reps; ++r) {
    for (const graph::Subgraph& ball : set.balls) {
      edge_ops += ppr::diffuse_fixed_point(ball, seed_mass, length, quant,
                                           ppr::thread_workspace(), tier)
                      .edge_ops;
    }
  }
  const double seconds = t.elapsed_seconds();
  return static_cast<double>(edge_ops) / std::max(seconds, 1e-12);
}

/// Hard exactness gate: float bit-identity vs the dense reference on every
/// available tier, fixed-point integer identity vs the accelerator.
/// Returns the number of mismatches (0 = pass).
std::size_t verify_exactness(const BallSet& set, unsigned length,
                             double alpha, const hw::Quantizer& quant) {
  std::size_t mismatches = 0;
  hw::AcceleratorConfig cfg;
  hw::Accelerator accel(cfg, quant);
  for (const graph::Subgraph& ball : set.balls) {
    std::vector<double> s0(ball.num_nodes(), 0.0);
    s0[0] = 1.0;
    const ppr::DiffusionResult ref =
        ppr::diffuse_dense_reference(ball, s0, {alpha, length});
    const hw::AcceleratorRun hw_run =
        accel.diffuse(ball, quant.to_fixed(1.0), length);
    for (KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
      if (!ppr::kernel_tier_available(tier)) continue;
      ppr::set_kernel_tier_override(tier);
      const ppr::DiffusionResult got =
          ppr::diffuse(ball, s0, {alpha, length});
      if (!bits_equal(got.accumulated, ref.accumulated) ||
          !bits_equal(got.residual, ref.residual)) {
        std::cout << "FAIL: float tier " << ppr::to_string(tier)
                  << " differs from dense reference (ball root "
                  << ball.to_global(0) << ")\n";
        ++mismatches;
      }
      const ppr::FixedPointDiffusion host = ppr::diffuse_fixed_point(
          ball, quant.to_fixed(1.0), length, quant,
          ppr::thread_workspace(), tier);
      if (host.accumulated != hw_run.accumulated ||
          host.residual != hw_run.residual ||
          host.edge_ops != hw_run.edge_ops ||
          host.saturated != hw_run.saturated) {
        std::cout << "FAIL: fixed-point tier " << ppr::to_string(tier)
                  << " differs from hw::Accelerator (ball root "
                  << ball.to_global(0) << ")\n";
        ++mismatches;
      }
    }
    ppr::set_kernel_tier_override(std::nullopt);
  }
  return mismatches;
}

int run(int argc, char** argv) {
  const bool smoke = parse_bench_args(argc, argv);
  Rng rng = banner("SIMD diffusion kernels: scalar vs AVX2 vs fixed-point");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(smoke ? 12 : 32);

  std::cout << "dispatch: active tier = "
            << ppr::to_string(ppr::active_kernel_tier())
            << "  (avx2 available: "
            << (ppr::kernel_tier_available(KernelTier::kAvx2) ? "yes" : "no")
            << ")\n\n";

  const std::vector<graph::PaperGraphId> ids =
      smoke ? std::vector<graph::PaperGraphId>{graph::PaperGraphId::kG2Cora}
            : graph::small_paper_graphs();

  TablePrinter table({"Graph", "radius", "scalar Medge/s", "simd Medge/s",
                      "speedup", "fx scalar", "fx simd"});
  std::size_t mismatches = 0;
  for (graph::PaperGraphId id : ids) {
    graph::Graph g = build_graph(id, rng);
    const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        setup.alpha, setup.q, hw::DChoice::kHalfMaxDegree,
        g.average_degree(), g.max_degree(), g.num_nodes());
    for (unsigned radius : {2u, 3u}) {
      const BallSet set = extract_balls(g, radius, seeds, rng);
      mismatches += verify_exactness(set, radius, setup.alpha, quant);

      ppr::set_kernel_tier_override(KernelTier::kScalar);
      const double scalar =
          float_throughput(set, radius, setup.alpha, nullptr);
      const double fx_scalar =
          fixed_throughput(set, radius, quant, KernelTier::kScalar);
      double simd = scalar;
      double fx_simd = fx_scalar;
      if (ppr::kernel_tier_available(KernelTier::kAvx2)) {
        ppr::set_kernel_tier_override(KernelTier::kAvx2);
        simd = float_throughput(set, radius, setup.alpha, nullptr);
        fx_simd = fixed_throughput(set, radius, quant, KernelTier::kAvx2);
      }
      ppr::set_kernel_tier_override(std::nullopt);

      table.add_row({graph::spec_for(id).label, std::to_string(radius),
                     fmt_fixed(scalar / 1e6, 1), fmt_fixed(simd / 1e6, 1),
                     fmt_fixed(simd / scalar, 2) + "x",
                     fmt_fixed(fx_scalar / 1e6, 1),
                     fmt_fixed(fx_simd / 1e6, 1)});
    }
    table.add_separator();
  }
  std::cout << '\n' << table.ascii() << '\n';
  std::cout << "exactness: " << (mismatches == 0 ? "PASS" : "FAIL")
            << " — float tiers memcmp-identical to dense reference, "
               "fixed-point host identical to hw::Accelerator\n";
  if (smoke && mismatches != 0) {
    std::cout << "SMOKE FAIL: " << mismatches << " mismatches\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) { return meloppr::bench::run(argc, argv); }
