// Ablation (Sec. V-B claims) — global score table capacity c·k: the paper
// reports precision loss <0.2% for c > 8 and >3% for c < 4, and ships
// c = 10. The fixed table is what lets the FPGA avoid both an O(G_L) score
// vector and per-diffusion transfers back to the CPU.
#include <iostream>

#include "common.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng = banner("Ablation: global top-(c*k) score table capacity");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(10);
  const std::vector<std::size_t> c_values = {1, 2, 4, 8, 10, 16};

  TablePrinter table({"c", "capacity", "precision vs exact agg",
                      "loss", "evictions/query"});
  struct Acc {
    RunningStats precision;
    RunningStats evictions;
  };
  std::vector<Acc> acc(c_values.size());

  for (graph::PaperGraphId id : graph::small_paper_graphs()) {
    graph::Graph g = build_graph(id, rng);
    core::MelopprConfig cfg = default_config(setup.k);
    cfg.selection = core::Selection::top_ratio(0.05);
    core::Engine engine(g, cfg);

    for (std::size_t i = 0; i < seeds; ++i) {
      const graph::NodeId seed = graph::random_seed_node(g, rng);
      // Reference: same engine/selection, exact aggregation. This isolates
      // the table's effect from the selection ratio's.
      core::CpuBackend cpu(setup.alpha);
      core::ExactAggregator exact;
      core::QueryResult ref = engine.query(seed, cpu, exact);

      for (std::size_t ci = 0; ci < c_values.size(); ++ci) {
        core::CpuBackend backend(setup.alpha);
        core::TopCKAggregator table_agg(c_values[ci] * setup.k);
        core::QueryResult r = engine.query(seed, backend, table_agg);
        acc[ci].precision.add(
            ppr::precision_at_k(ref.top, r.top, setup.k));
        acc[ci].evictions.add(static_cast<double>(table_agg.evictions()));
      }
    }
  }

  for (std::size_t ci = 0; ci < c_values.size(); ++ci) {
    table.add_row({std::to_string(c_values[ci]),
                   std::to_string(c_values[ci] * setup.k),
                   fmt_percent(acc[ci].precision.mean()),
                   fmt_percent(1.0 - acc[ci].precision.mean(), 2),
                   fmt_fixed(acc[ci].evictions.mean(), 0)});
  }
  std::cout << '\n' << table.ascii() << '\n'
            << "paper Sec. V-B: loss <0.2% when c>8, >3% when c<4; "
               "shipping point c=10.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
