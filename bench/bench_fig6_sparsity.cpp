// Figure 6 — sparsity exploitation: (top) top-k precision as a function of
// the fraction of next-stage nodes selected for stage-2, averaged over
// G1/G2/G3; (bottom) the normalized stage-1 PPR score distribution in log
// scale that makes the selection ratio so cheap.
#include <iostream>

#include "common.hpp"
#include "graph/bfs.hpp"
#include "ppr/diffusion.hpp"

namespace meloppr::bench {
namespace {

int run() {
  Rng rng = banner(
      "Figure 6: precision vs next-stage selection ratio + PPR sparsity");
  const PaperSetup setup = paper_setup();
  const std::size_t seeds = bench_seed_count(12);
  const std::vector<double> ratios = {0.01, 0.02, 0.03, 0.046, 0.05,
                                      0.10, 0.20, 0.30};

  std::vector<graph::Graph> graphs;
  for (graph::PaperGraphId id : graph::small_paper_graphs()) {
    graphs.push_back(build_graph(id, rng));
  }
  std::cout << "averaging over " << seeds << " seeds per graph, k="
            << setup.k << "\n\n";

  // --- Bottom panel first: normalized stage-1 score distribution. ---
  LogHistogram hist(-6.0, 0.0, 12);
  double near_zero_fraction_sum = 0.0;
  std::size_t near_zero_samples = 0;
  for (const auto& g : graphs) {
    for (std::size_t i = 0; i < seeds; ++i) {
      const graph::NodeId seed = graph::random_seed_node(g, rng);
      const graph::Subgraph ball = graph::extract_ball(g, seed, setup.l1);
      const ppr::DiffusionResult diff =
          ppr::diffuse_from(ball, 0, 1.0, {setup.alpha, setup.l1});
      double peak = 0.0;
      for (double s : diff.accumulated) peak = std::max(peak, s);
      std::size_t near_zero = 0;
      for (double s : diff.accumulated) {
        const double normalized = peak > 0.0 ? s / peak : 0.0;
        hist.add(normalized);
        if (normalized < 1e-2) ++near_zero;
      }
      near_zero_fraction_sum += static_cast<double>(near_zero) /
                                static_cast<double>(ball.num_nodes());
      ++near_zero_samples;
    }
  }

  // --- Top panel: precision vs selection ratio. ---
  TablePrinter table({"selection ratio", "precision (avg G1-G3)",
                      "stage-2 diffusions (avg)"});
  for (double ratio : ratios) {
    RunningStats precision;
    RunningStats diffusions;
    for (const auto& g : graphs) {
      core::MelopprConfig cfg = default_config(setup.k);
      cfg.selection = core::Selection::top_ratio(ratio);
      core::Engine engine(g, cfg);
      Rng seed_rng = rng.fork(static_cast<std::uint64_t>(ratio * 1e4));
      for (std::size_t i = 0; i < seeds; ++i) {
        const graph::NodeId seed = graph::random_seed_node(g, seed_rng);
        ppr::LocalPprResult base =
            ppr::local_ppr(g, seed, {setup.alpha, setup.big_l, setup.k});
        core::QueryResult r = engine.query(seed);
        precision.add(ppr::precision_at_k(base.top, r.top, setup.k));
        diffusions.add(static_cast<double>(r.stats.stages[1].balls));
      }
    }
    table.add_row({fmt_percent(ratio, 1), fmt_percent(precision.mean()),
                   fmt_fixed(diffusions.mean(), 1)});
  }
  std::cout << table.ascii() << '\n';

  std::cout << "normalized stage-1 PPR score distribution (log10 bins, all "
               "graphs pooled):\n"
            << hist.ascii(48)
            << "fraction of in-ball nodes below 1e-2 of the peak score: "
            << fmt_percent(near_zero_fraction_sum /
                           static_cast<double>(near_zero_samples))
            << "\n\n"
            << "paper Fig. 6: >90% of nodes near zero; precision 73.8% at "
               "1% selected, 78.1% at 2%, 85.2% at 3%, 96.1% at 20%, 96.9% "
               "at 30%.\n";
  return 0;
}

}  // namespace
}  // namespace meloppr::bench

int main() { return meloppr::bench::run(); }
