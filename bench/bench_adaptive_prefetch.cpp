// Adaptive root-prefetch window + pinned prefetch handoff A/B — the
// self-tuning serving-stack knobs that replace PR 4's fixed window.
//
// PR 4's cross-query root prefetch had one fixed knob (window = 4) and one
// failure mode (a TinyLFU retention rejection throws away the prefetch
// BFS). This bench exercises both replacements:
//
//   * Adaptive window (PipelineConfig::adaptive_root_prefetch): the width
//     is derived per claim from the prefetch threads' smoothed idle
//     fraction and the EWMA of recently extracted ball bytes, bounded by
//     the (corrected) spare-budget throttle min(spare, budget/8). Idle
//     lookahead capacity widens the window toward max; saturation narrows
//     it to 1; a full cache stops speculation entirely.
//   * Pinned handoff (PipelineConfig::root_prefetch_pinning): every
//     root-prefetched ball is held in the cache's bounded pinned
//     side-table until its seed is claimed, so an admission rejection (or
//     an eviction racing the claim) can no longer force the claiming
//     worker to re-run the BFS.
//
// Two streams:
//
//   mixed skew  — hot head cycled for warmth, then an interleave of hot
//                 repeats and distinct cold seeds under a roomy always-
//                 admit cache: hit rate is decided by lookahead coverage
//                 alone. Root-prefetch off vs fixed window vs adaptive.
//   pressured   — the same interleave under a tight TinyLFU cache sized
//                 to ~1.5x the hot set: cold root prefetches lose their
//                 admission duels, the regime the pinned handoff exists
//                 for. Pinning off vs on.
//
// Scores are asserted bit-identical to the serial engine in every cell —
// lookahead and pinning change cache temperature, never numerics.
//
//   --smoke          CI mode: small sizes + hard assertions (exit 1 when
//                    the adaptive window's mixed-stream hit rate falls
//                    below the fixed window's, when any pinned
//                    configuration re-extracts a root-prefetched ball,
//                    or when any score diverges)
//   MELOPPR_SEEDS    cold seeds in the mixed stream (default 96; smoke 48)
//   MELOPPR_SCALE    graph-size multiplier          (default 1)
//   MELOPPR_THREADS  worker threads                 (default 4)
#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"

namespace meloppr::bench {
namespace {

constexpr std::size_t kShards = 8;
constexpr std::size_t kHot = 8;

struct WindowConfig {
  std::string name;
  std::size_t fixed_window = 0;  ///< 0 disables root lookahead
  bool adaptive = false;
  bool pinning = true;
};

core::PipelineConfig pipeline_config(const WindowConfig& wcfg,
                                     std::size_t threads) {
  core::PipelineConfig pcfg;
  pcfg.threads = threads;
  pcfg.work_stealing = true;
  pcfg.prefetch = true;
  // CPU backend: opt out of the backend-aware throttle so lookahead runs
  // (this harness's cores are otherwise idle; a production CPU-only
  // server keeps the default).
  pcfg.prefetch_throttle = false;
  pcfg.prefetch_threads = threads;  // ample lookahead capacity
  pcfg.root_prefetch_window = wcfg.fixed_window;
  pcfg.adaptive_root_prefetch = wcfg.adaptive;
  pcfg.root_prefetch_pinning = wcfg.pinning;
  return pcfg;
}

bool scores_match_serial(
    const std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>>&
        reference,
    std::span<const graph::NodeId> stream,
    const std::vector<core::QueryResult>& results) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& want = reference.at(stream[i]);
    if (want.size() != results[i].top.size()) return false;
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (want[j].node != results[i].top[j].node ||
          want[j].score != results[i].top[j].score) {
        return false;
      }
    }
  }
  return true;
}

struct StreamResult {
  double wall_seconds = 0.0;
  std::size_t mixed_hits = 0;      ///< demand hits over the mixed phase
  std::size_t mixed_accesses = 0;  ///< demand accesses over the mixed phase
  /// Stage-0 (query-root) fetch outcomes over the mixed phase — the slice
  /// root prefetch exists to warm; stages >= 1 are stage lookahead's job.
  std::size_t root_hits = 0;
  std::size_t root_accesses = 0;
  core::ShardedBallCache::Stats cache;
  core::QueryPipeline::BatchStats batch;  ///< the mixed phase's accounting
  std::size_t last_window = 0;
  double idle_fraction = 0.0;
  bool identical = true;
  [[nodiscard]] double mixed_hit_rate() const {
    return mixed_accesses == 0 ? 0.0
                               : static_cast<double>(mixed_hits) /
                                     static_cast<double>(mixed_accesses);
  }
};

int run(bool smoke) {
  Rng rng = banner("adaptive root-prefetch window + pinned handoff");
  graph::Graph g = build_graph(graph::PaperGraphId::kG3Pubmed, rng);

  core::MelopprConfig cfg = default_config(/*k=*/100);
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("MELOPPR_THREADS", 4)));

  // --- streams -----------------------------------------------------------
  // Hot head: kHot seeds cycled to warm the cache (and the sketch).
  std::vector<graph::NodeId> hot;
  std::unordered_set<graph::NodeId> taken;
  while (hot.size() < kHot) {
    const graph::NodeId s = graph::random_seed_node(g, rng);
    if (taken.insert(s).second) hot.push_back(s);
  }
  std::vector<graph::NodeId> warm;
  for (int cycle = 0; cycle < 3; ++cycle) {
    warm.insert(warm.end(), hot.begin(), hot.end());
  }
  // Mixed phase: distinct cold seeds interleaved 1:1 with hot repeats —
  // the cold half's hit rate is pure lookahead coverage.
  const std::size_t cold_count = bench_seed_count(smoke ? 48 : 96);
  std::vector<graph::NodeId> mixed;
  mixed.reserve(2 * cold_count);
  std::size_t cold_added = 0;
  while (cold_added < cold_count) {
    const graph::NodeId s = graph::random_seed_node(g, rng);
    if (!taken.insert(s).second) continue;
    mixed.push_back(s);
    mixed.push_back(hot[cold_added % hot.size()]);
    ++cold_added;
  }

  // --- serial references (the bit-identity contract) ---------------------
  std::unordered_map<graph::NodeId, std::vector<ppr::ScoredNode>> reference;
  const auto remember = [&](std::span<const graph::NodeId> stream) {
    for (graph::NodeId seed : stream) {
      if (reference.find(seed) == reference.end()) {
        reference.emplace(seed, engine.query(seed).top);
      }
    }
  };
  remember(warm);
  remember(mixed);

  // --- cache sizing ------------------------------------------------------
  std::size_t hot_bytes = 0;
  std::size_t all_bytes = 0;
  {
    core::ShardedBallCache probe(g, std::size_t{1} << 30, kShards);
    engine.set_shared_ball_cache(&probe);
    core::CpuBackend backend(cfg.alpha);
    core::QueryPipeline pipeline(
        engine, backend, pipeline_config({"probe", 0, false, false}, threads));
    pipeline.query_batch(warm);
    hot_bytes = probe.bytes();
    pipeline.query_batch(mixed);
    all_bytes = probe.bytes();
    engine.set_shared_ball_cache(nullptr);
  }
  // Roomy: everything fits (hit rate isolates lookahead coverage).
  const std::size_t roomy = 2 * all_bytes + (kShards << 16);
  // Tight: ~1.5x the hot set — cold admissions must duel hot residents.
  const std::size_t tight =
      std::max<std::size_t>(hot_bytes + hot_bytes / 2, kShards * (32u << 10));
  std::cout << "hot set " << (hot_bytes >> 10) << " KiB, full stream "
            << (all_bytes >> 10) << " KiB -> roomy budget " << (roomy >> 10)
            << " KiB, tight budget " << (tight >> 10) << " KiB (" << kShards
            << " shards)\n\n";

  // --- harness -----------------------------------------------------------
  const auto serve = [&](const WindowConfig& wcfg, std::size_t budget,
                         core::CacheAdmission admission) {
    StreamResult r;
    core::ShardedBallCache cache(g, budget, kShards, admission);
    engine.set_shared_ball_cache(&cache);
    core::CpuBackend backend(cfg.alpha);
    core::QueryPipeline pipeline(engine, backend,
                                 pipeline_config(wcfg, threads));
    Timer wall;
    core::QueryPipeline::BatchStats batch;
    const std::vector<core::QueryResult> warm_results =
        pipeline.query_batch(warm, &batch);
    r.identical = scores_match_serial(reference, warm, warm_results);

    const core::ShardedBallCache::Stats before = cache.stats();
    const std::vector<core::QueryResult> results =
        pipeline.query_batch(mixed, &batch);
    r.wall_seconds = wall.elapsed_seconds();
    const core::ShardedBallCache::Stats after = cache.stats();
    r.identical =
        r.identical && scores_match_serial(reference, mixed, results);
    r.mixed_hits = after.hits - before.hits;
    r.mixed_accesses = r.mixed_hits + (after.misses - before.misses);
    for (const core::QueryResult& qr : results) {
      r.root_hits += qr.stats.stages.front().cache_hits;
      r.root_accesses += qr.stats.stages.front().cache_hits +
                         qr.stats.stages.front().cache_misses;
    }
    r.batch = batch;  // the mixed phase's accounting (last assignment wins)
    r.cache = cache.stats();
    r.last_window = batch.last_root_prefetch_window;
    r.idle_fraction = batch.prefetch_idle_fraction;
    engine.set_shared_ball_cache(nullptr);
    return r;
  };

  // --- mixed skew stream: window policy A/B ------------------------------
  // Interleaved repetitions: whether a cold claim's root prefetch STARTED
  // before the claim is scheduler jitter worth a query or two per run, so
  // the fixed-vs-adaptive comparison aggregates hit COUNTS across kReps
  // alternating runs and the gate carries a one-query tolerance.
  const std::vector<WindowConfig> window_configs = {
      {"no root prefetch", 0, false, true},
      {"fixed window 4", 4, false, true},
      {"adaptive (max 32)", 4, true, true},
  };
  const std::size_t reps = smoke ? 5 : 3;
  TablePrinter mixed_table({"configuration", "wall (s)", "q/s",
                            "mixed hit rate", "root hit rate", "root pf",
                            "last window", "pf idle", "BFS hidden (s)"});
  std::vector<StreamResult> totals(window_configs.size());
  bool all_identical = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t cidx = 0; cidx < window_configs.size(); ++cidx) {
      if (cidx == 0 && rep > 0) continue;  // the baseline needs one run
      const StreamResult r =
          serve(window_configs[cidx], roomy, core::CacheAdmission::kAlways);
      all_identical = all_identical && r.identical;
      StreamResult& t = totals[cidx];
      t.mixed_hits += r.mixed_hits;
      t.mixed_accesses += r.mixed_accesses;
      t.root_hits += r.root_hits;
      t.root_accesses += r.root_accesses;
      t.wall_seconds += r.wall_seconds;
      t.batch.root_prefetch_issued += r.batch.root_prefetch_issued;
      t.batch.prefetch_hidden_seconds += r.batch.prefetch_hidden_seconds;
      t.last_window = r.last_window;
      t.idle_fraction = r.idle_fraction;
    }
  }
  for (std::size_t cidx = 0; cidx < window_configs.size(); ++cidx) {
    const StreamResult& t = totals[cidx];
    const std::size_t runs = cidx == 0 ? 1 : reps;
    mixed_table.add_row(
        {window_configs[cidx].name,
         fmt_fixed(t.wall_seconds / static_cast<double>(runs), 3),
         fmt_fixed(static_cast<double>(runs * mixed.size()) / t.wall_seconds,
                   1),
         fmt_percent(t.mixed_hit_rate()),
         fmt_percent(t.root_accesses == 0
                         ? 0.0
                         : static_cast<double>(t.root_hits) /
                               static_cast<double>(t.root_accesses)),
         std::to_string(t.batch.root_prefetch_issued / runs),
         std::to_string(t.last_window), fmt_percent(t.idle_fraction),
         fmt_fixed(t.batch.prefetch_hidden_seconds /
                       static_cast<double>(runs),
                   3)});
  }
  std::cout << "mixed skew stream (" << mixed.size() << " queries, "
            << "1:1 cold:hot, roomy always-admit cache, mean of " << reps
            << " interleaved reps):\n"
            << mixed_table.ascii() << '\n';
  const auto root_rate = [&](const StreamResult& t) {
    return t.root_accesses == 0 ? 0.0
                                : static_cast<double>(t.root_hits) /
                                      static_cast<double>(t.root_accesses);
  };
  const double baseline_root_rate = root_rate(totals[0]);
  const double fixed_root_rate = root_rate(totals[1]);
  const double adaptive_root_rate = root_rate(totals[2]);

  // --- pressured stream: pinned handoff A/B ------------------------------
  TablePrinter pin_table({"configuration", "wall (s)", "mixed hit rate",
                          "root pf", "rejected", "pins", "pin hits",
                          "re-extracted"});
  std::size_t pinned_reextractions = 0;
  std::size_t unpinned_reextractions = 0;
  std::size_t pinned_pin_hits = 0;
  const std::vector<WindowConfig> pin_configs = {
      {"adaptive, unpinned", 4, true, false},
      {"adaptive, pinned", 4, true, true},
  };
  for (const WindowConfig& wcfg : pin_configs) {
    const StreamResult r =
        serve(wcfg, tight, core::CacheAdmission::kTinyLFU);
    all_identical = all_identical && r.identical;
    if (wcfg.pinning) {
      pinned_reextractions = r.cache.root_reextractions;
      pinned_pin_hits = r.cache.pin_hits;
    } else {
      unpinned_reextractions = r.cache.root_reextractions;
    }
    pin_table.add_row({wcfg.name, fmt_fixed(r.wall_seconds, 3),
                       fmt_percent(r.mixed_hit_rate()),
                       std::to_string(r.batch.root_prefetch_issued),
                       std::to_string(r.cache.admission_rejects),
                       std::to_string(r.cache.pins_installed),
                       std::to_string(r.cache.pin_hits),
                       std::to_string(r.cache.root_reextractions)});
  }
  std::cout << "pressured stream (tight TinyLFU cache, ~1.5x hot set):\n"
            << pin_table.ascii() << '\n'
            << "reading: the adaptive window matches or beats the fixed "
               "knob without tuning (idle lookahead widens it, a full "
               "cache closes it); pinning makes every root-prefetch BFS "
               "serve its claim even when admission rejected retention — "
               "scores bit-identical throughout.\n";

  // --- loud checks (CI smoke gate) ---------------------------------------
  bool ok = true;
  const auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "CHECK FAILED: " << what << "\n";
      ok = false;
    }
  };
  // Invariants that hold at ANY parameters.
  check(all_identical,
        "scores bit-identical to serial Engine::query in every "
        "configuration and stream");
  check(pinned_reextractions == 0,
        "pinned handoff leaves zero root-prefetched balls re-extracted "
        "by claiming workers");
  if (smoke) {
    // Workload-shaped gates for the CI sizes. Root prefetch warms the
    // stage-0 balls, so the fixed-vs-adaptive gate compares stage-0 hit
    // counts (stages >= 1 belong to stage lookahead and only add noise),
    // summed over the interleaved reps with a one-query tolerance — the
    // granularity of a single scheduling coin flip (whether one cold
    // claim's prefetch had started).
    check(totals[2].root_hits + 1 >= totals[1].root_hits,
          "adaptive window stage-0 hit rate >= fixed window on the mixed "
          "skew stream (one-query tolerance over all reps)");
    check(adaptive_root_rate > baseline_root_rate,
          "adaptive root prefetch beats no root prefetch on stage-0 hit "
          "rate");
  }
  std::cout << (ok ? "OK" : "FAILED") << ": adaptive-prefetch checks ("
            << (smoke ? "smoke" : "full") << " mode), stage-0 hit rate "
            << fmt_percent(baseline_root_rate) << " (no root pf) vs "
            << fmt_percent(fixed_root_rate) << " (fixed) vs "
            << fmt_percent(adaptive_root_rate)
            << " (adaptive); re-extractions " << unpinned_reextractions
            << " (unpinned) vs " << pinned_reextractions << " (pinned, "
            << pinned_pin_hits << " pin hits)\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace meloppr::bench

int main(int argc, char** argv) {
  const bool smoke = meloppr::bench::parse_bench_args(argc, argv);
  if (smoke && meloppr::env_int("MELOPPR_SEEDS", 0) == 0) {
    // Smoke defaults sized for a CI container; env overrides still win.
    setenv("MELOPPR_SCALE", "0.25", /*overwrite=*/0);
  }
  return meloppr::bench::run(smoke);
}
