#include "ppr/reverse_push.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ppr/forward_push.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {
namespace {

using graph::Graph;

TEST(ReversePush, MassInvariant) {
  Rng rng(51);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  ReversePushResult r = reverse_push_ppr(g, 7, {0.85, 1e-8});
  // Reverse push conserves Σp + Σr = 1 only in the degree-weighted sense on
  // undirected graphs; what must hold unconditionally: residuals below
  // threshold and positive contributions.
  for (const auto& sn : r.contributions) EXPECT_GT(sn.score, 0.0);
  EXPECT_GT(r.pushes, 0u);
  EXPECT_GT(r.touched_nodes, 0u);
}

TEST(ReversePush, SymmetryWithForwardOnRegularGraph) {
  // On a d-regular graph, π_s(t) = π_t(s); reverse push toward t and
  // forward push from t must estimate the same vector.
  Graph g = graph::fixtures::cycle(40);  // 2-regular
  const graph::NodeId target = 5;
  ReversePushResult rev = reverse_push_ppr(g, target, {0.85, 1e-10});
  ForwardPushResult fwd = forward_push_ppr(g, target, {0.85, 1e-10, 40});

  std::unordered_map<graph::NodeId, double> fwd_scores;
  for (const auto& sn : fwd.scores) fwd_scores[sn.node] = sn.score;
  for (const auto& [node, score] : rev.contributions) {
    const auto it = fwd_scores.find(node);
    const double fwd_score = it == fwd_scores.end() ? 0.0 : it->second;
    EXPECT_NEAR(score, fwd_score, 1e-4) << "node " << node;
  }
}

TEST(ReversePush, TargetContributesMostToItself) {
  Rng rng(52);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  const graph::NodeId target = 11;
  ReversePushResult r = reverse_push_ppr(g, target, {0.85, 1e-8});
  double target_score = 0.0;
  double best_other = 0.0;
  for (const auto& [node, score] : r.contributions) {
    if (node == target) target_score = score;
    else best_other = std::max(best_other, score);
  }
  EXPECT_GT(target_score, best_other);
}

TEST(ReversePush, EpsilonControlsWorkAndResidual) {
  Rng rng(53);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  ReversePushResult coarse = reverse_push_ppr(g, 3, {0.85, 1e-3});
  ReversePushResult fine = reverse_push_ppr(g, 3, {0.85, 1e-7});
  EXPECT_LT(coarse.pushes, fine.pushes);
  EXPECT_GT(coarse.residual_mass, fine.residual_mass);
}

TEST(ReversePush, MaxPushesCap) {
  Rng rng(54);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  ReversePushResult r = reverse_push_ppr(g, 3, {0.85, 1e-12, 9});
  EXPECT_LE(r.pushes, 9u);
}

TEST(ReversePush, BadTargetThrows) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_THROW(reverse_push_ppr(g, 2, {}), std::invalid_argument);
  EXPECT_THROW(reverse_push_ppr(g, 7, {}), std::invalid_argument);
}

TEST(ReversePush, EstimatesMatchExactPprColumn) {
  // π_s(t) for each source s should track the exact (L=∞ approximated by
  // long-horizon) PPR of t as seen from s on a small graph. Use forward
  // push from each s as the oracle.
  Graph g = graph::fixtures::barbell(5);
  const graph::NodeId target = 2;
  ReversePushResult rev = reverse_push_ppr(g, target, {0.85, 1e-10});
  for (const auto& [source, estimate] : rev.contributions) {
    ForwardPushResult fwd =
        forward_push_ppr(g, source, {0.85, 1e-10, g.num_nodes()});
    double exact = 0.0;
    for (const auto& sn : fwd.scores) {
      if (sn.node == target) exact = sn.score;
    }
    EXPECT_NEAR(estimate, exact, 1e-3)
        << "source " << source << " target " << target;
  }
}

}  // namespace
}  // namespace meloppr::ppr
