// Property suite for the runtime-dispatched diffusion kernel family
// (ppr/diffusion_kernels) and the quantized host path.
//
// Three exactness contracts are enforced at zero tolerance:
//   1. Float mode: the CSR-blocked gather kernels (scalar AND AVX2) are
//      BIT-identical to diffuse_dense_reference — same doubles, same
//      memcmp bytes — across random balls, radii, alphas, and seed
//      vectors. SIMD is a pure speedup, never a numerics change.
//   2. Fixed point: the host kernels reproduce hw::Accelerator::diffuse
//      node-for-node in the integer domain (accumulated, residual,
//      edge_ops, saturation) for the paper's q=10 configuration.
//   3. Backend envelope: CpuBackend in fixed-point mode and FpgaBackend
//      over the same Quantizer return identical dequantized scores, so
//      host-vs-FPGA comparisons in the pipeline are exact, not approximate.
//
// Runs under the ASan/UBSan CI job and once with MELOPPR_FORCE_SCALAR=1.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/accelerator.hpp"
#include "hw/host.hpp"
#include "hw/quantizer.hpp"
#include "ppr/diffusion.hpp"
#include "ppr/diffusion_kernels.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Subgraph;
using ppr::DiffusionParams;
using ppr::DiffusionResult;
using ppr::KernelTier;

/// Bitwise equality of double vectors — distinguishes +0.0 from -0.0 and
/// would catch any reassociated sum the ULP-level EXPECT_EQ might mask.
::testing::AssertionResult bits_equal(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at local " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Restores the previous kernel-tier override on scope exit.
class TierGuard {
 public:
  explicit TierGuard(KernelTier tier) {
    ppr::set_kernel_tier_override(tier);
  }
  ~TierGuard() { ppr::set_kernel_tier_override(std::nullopt); }
};

Graph random_family_graph(std::size_t which, Rng& rng) {
  switch (which % 5) {
    case 0:
      return graph::barabasi_albert(250, std::size_t{2}, std::size_t{3}, rng);
    case 1:
      return graph::erdos_renyi(250, 700, rng);
    case 2:
      return graph::watts_strogatz(250, 6, 0.2, rng);
    case 3:
      // Dense enough (~16 arcs/node) to push the optimized tier onto its
      // hardware-gather row pass, which the sparse families never reach.
      return graph::erdos_renyi(200, 1600, rng);
    default:
      return graph::community_graph(250, 12, 4.0, 1.0, rng);
  }
}

/// A seed vector with mass at local 0 plus a sprinkle of other nonzero
/// entries — exercises the multi-source form stage-2 aggregation feeds in.
std::vector<double> random_seed_vector(std::size_t n, Rng& rng) {
  std::vector<double> s0(n, 0.0);
  s0[0] = 0.25 + 0.75 * rng.uniform();
  const std::size_t extras = rng.below(4);
  for (std::size_t i = 0; i < extras; ++i) {
    s0[rng.below(n)] = rng.uniform();
  }
  return s0;
}

TEST(SimdDiffusion, DispatchedDiffuseIsBitIdenticalToDenseReference) {
  Rng rng(test::test_seed());
  const std::size_t trials = test::stress_iters(24);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const Graph g = random_family_graph(trial, rng);
    const NodeId seed = graph::random_seed_node(g, rng);
    const unsigned radius = 2 + static_cast<unsigned>(trial % 2);
    const Subgraph ball = graph::extract_ball(g, seed, radius);
    const std::vector<double> s0 = random_seed_vector(ball.num_nodes(), rng);

    DiffusionParams params;
    params.alpha = 0.05 + 0.9 * rng.uniform();
    params.length = 1 + static_cast<unsigned>(rng.below(radius));

    const DiffusionResult ref =
        ppr::diffuse_dense_reference(ball, s0, params);
    const DiffusionResult got = ppr::diffuse(ball, s0, params);
    EXPECT_TRUE(bits_equal(got.accumulated, ref.accumulated))
        << "accumulated, trial " << trial << " alpha " << params.alpha
        << " length " << params.length;
    EXPECT_TRUE(bits_equal(got.residual, ref.residual))
        << "residual, trial " << trial;
    EXPECT_EQ(got.iterations, ref.iterations);
  }
}

TEST(SimdDiffusion, ScalarAndAvx2TiersAreBitIdentical) {
  if (!ppr::kernel_tier_available(KernelTier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier unavailable on this host/build";
  }
  Rng rng(test::test_seed() ^ 0xa5a5a5a5ULL);
  const std::size_t trials = test::stress_iters(24);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const Graph g = random_family_graph(trial, rng);
    const NodeId seed = graph::random_seed_node(g, rng);
    const unsigned radius = 3;
    const Subgraph ball = graph::extract_ball(g, seed, radius);
    const std::vector<double> s0 = random_seed_vector(ball.num_nodes(), rng);

    DiffusionParams params;
    params.alpha = 0.05 + 0.9 * rng.uniform();
    params.length = radius;

    DiffusionResult scalar;
    {
      TierGuard guard(KernelTier::kScalar);
      ASSERT_EQ(ppr::active_kernel_tier(), KernelTier::kScalar);
      scalar = ppr::diffuse(ball, s0, params);
    }
    DiffusionResult simd;
    {
      TierGuard guard(KernelTier::kAvx2);
      ASSERT_EQ(ppr::active_kernel_tier(), KernelTier::kAvx2);
      simd = ppr::diffuse(ball, s0, params);
    }
    EXPECT_TRUE(bits_equal(simd.accumulated, scalar.accumulated))
        << "trial " << trial;
    EXPECT_TRUE(bits_equal(simd.residual, scalar.residual))
        << "trial " << trial;
    EXPECT_EQ(simd.edge_ops, scalar.edge_ops);
  }
}

TEST(SimdDiffusion, TierOverrideRoundTrips) {
  const KernelTier ambient = ppr::active_kernel_tier();
  EXPECT_TRUE(ppr::kernel_tier_available(KernelTier::kScalar));
  {
    TierGuard guard(KernelTier::kScalar);
    EXPECT_EQ(ppr::active_kernel_tier(), KernelTier::kScalar);
  }
  EXPECT_EQ(ppr::active_kernel_tier(), ambient);
}

/// The optimized tier skips zero-mass sources, which is only bit-exact for
/// nonnegative seeds — so the kernel enforces the contract for every tier.
TEST(SimdDiffusion, NegativeSeedMassIsRejected) {
  const Graph g = graph::fixtures::binary_tree(63);
  const Subgraph ball = graph::extract_ball(g, 0, 3);
  std::vector<double> s0(ball.num_nodes(), 0.0);
  s0[0] = 1.0;
  s0[2] = -0.125;
  EXPECT_THROW((void)ppr::diffuse(ball, s0, {0.85, 2}), std::logic_error);
  s0[2] = std::numeric_limits<double>::quiet_NaN();  // fails s0 >= 0 too
  EXPECT_THROW((void)ppr::diffuse(ball, s0, {0.85, 2}), std::logic_error);
}

/// Every available tier reproduces hw::Accelerator's integer datapath
/// exactly: scores, residual, edge traversals, saturation flag.
TEST(SimdDiffusion, FixedPointHostMatchesAcceleratorExactly) {
  Rng rng(test::test_seed() ^ 0xf1f1f1f1ULL);
  const std::size_t trials = test::stress_iters(16);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const Graph g = random_family_graph(trial, rng);
    const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        0.85, 10, hw::DChoice::kHalfMaxDegree, g.average_degree(),
        g.max_degree(), g.num_nodes());
    hw::AcceleratorConfig cfg;
    hw::Accelerator accel(cfg, quant);

    const NodeId seed = graph::random_seed_node(g, rng);
    const unsigned radius = 2 + static_cast<unsigned>(trial % 2);
    const Subgraph ball = graph::extract_ball(g, seed, radius);
    const std::uint32_t seed_mass = quant.to_fixed(0.1 + 0.9 * rng.uniform());
    const unsigned length = radius;

    const hw::AcceleratorRun hw_run = accel.diffuse(ball, seed_mass, length);

    for (KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
      if (!ppr::kernel_tier_available(tier)) continue;
      const ppr::FixedPointDiffusion host = ppr::diffuse_fixed_point(
          ball, seed_mass, length, quant, ppr::thread_workspace(), tier);
      ASSERT_EQ(host.accumulated.size(), hw_run.accumulated.size());
      EXPECT_EQ(host.accumulated, hw_run.accumulated)
          << "tier " << ppr::to_string(tier) << ", trial " << trial;
      EXPECT_EQ(host.residual, hw_run.residual)
          << "tier " << ppr::to_string(tier) << ", trial " << trial;
      EXPECT_EQ(host.edge_ops, hw_run.edge_ops);
      EXPECT_EQ(host.saturated, hw_run.saturated);
    }
  }
}

TEST(SimdDiffusion, FixedPointDiffuseRequiresSeedAtLocalZeroOnly) {
  const Graph g = graph::fixtures::binary_tree(63);
  const Subgraph ball = graph::extract_ball(g, 0, 3);
  const hw::Quantizer quant(0.85, 10, 50'000'000);
  DiffusionParams params;
  params.length = 3;
  params.numerics = ppr::Numerics::kFixedPoint;
  params.quantizer = &quant;
  std::vector<double> s0(ball.num_nodes(), 0.0);
  s0[0] = 0.5;
  s0[1] = 0.25;  // off-root mass: the integer datapath cannot represent this
  EXPECT_THROW((void)ppr::diffuse(ball, s0, params), std::logic_error);
}

TEST(SimdDiffusion, CpuFixedBackendMatchesFpgaBackendScores) {
  Rng rng(test::test_seed() ^ 0x0b0b0b0bULL);
  const std::size_t trials = test::stress_iters(12);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const Graph g = random_family_graph(trial, rng);
    const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        0.85, 10, hw::DChoice::kHalfMaxDegree, g.average_degree(),
        g.max_degree(), g.num_nodes());
    core::CpuBackend cpu(0.85, quant);
    hw::AcceleratorConfig cfg;
    hw::FpgaBackend fpga{hw::Accelerator(cfg, quant)};

    const NodeId seed = graph::random_seed_node(g, rng);
    const Subgraph ball = graph::extract_ball(g, seed, 3);
    const double mass = 0.1 + 0.9 * rng.uniform();

    const core::BackendResult host = cpu.run(ball, mass, 3);
    const core::BackendResult device = fpga.run(ball, mass, 3);
    EXPECT_TRUE(bits_equal(host.accumulated, device.accumulated))
        << "trial " << trial;
    EXPECT_TRUE(bits_equal(host.inflight, device.inflight))
        << "trial " << trial;
    EXPECT_EQ(host.edge_ops, device.edge_ops);
  }
}

TEST(SimdDiffusion, CpuBackendFactoryHonorsNumericsConfig) {
  Rng rng(test::test_seed());
  const Graph g = graph::fixtures::barbell(20);

  core::MelopprConfig float_cfg;
  EXPECT_EQ(core::make_cpu_backend(g, float_cfg)->name(), "cpu");

  core::MelopprConfig fx_cfg;
  fx_cfg.numerics = ppr::Numerics::kFixedPoint;
  fx_cfg.fixed_point_q = 10;
  EXPECT_EQ(core::make_cpu_backend(g, fx_cfg)->name(), "cpu(fx q=10)");

  fx_cfg.fixed_point_q = 0;
  EXPECT_THROW(fx_cfg.validate(), std::invalid_argument);
  fx_cfg.fixed_point_q = 17;
  EXPECT_THROW(fx_cfg.validate(), std::invalid_argument);
}

/// End-to-end: an Engine configured for fixed-point numerics (convenience
/// CPU path) ranks exactly what the FPGA-backend path ranks.
TEST(SimdDiffusion, FixedPointEngineQueryMatchesFpgaQuery) {
  Rng rng(test::test_seed() ^ 0x7e7e7e7eULL);
  const Graph g = graph::barabasi_albert(250, std::size_t{2}, std::size_t{3},
                                         rng);

  core::MelopprConfig cfg;
  cfg.numerics = ppr::Numerics::kFixedPoint;
  cfg.fixed_point_q = 10;
  const core::Engine engine(g, cfg);

  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  hw::FpgaBackend fpga{hw::Accelerator(acfg, quant)};
  core::ExactAggregator aggregator;

  for (std::size_t trial = 0; trial < test::stress_iters(6); ++trial) {
    const NodeId seed = graph::random_seed_node(g, rng);
    const core::QueryResult host = engine.query(seed);
    const core::QueryResult device = engine.query(seed, fpga, aggregator);
    ASSERT_EQ(host.top.size(), device.top.size());
    for (std::size_t i = 0; i < host.top.size(); ++i) {
      EXPECT_EQ(host.top[i].node, device.top[i].node) << "rank " << i;
      EXPECT_EQ(host.top[i].score, device.top[i].score) << "rank " << i;
    }
  }
}

}  // namespace
}  // namespace meloppr

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
