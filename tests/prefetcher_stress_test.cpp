// BallPrefetcher lifecycle races, built for the ThreadSanitizer CI job:
// quiesce() racing enqueue(), the pause-gate poll loop racing both, and
// the in-flight drain invariant (no lost wakeups — quiesce() always
// returns, and afterwards no prefetch thread touches the cache).
#include "core/prefetcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/sharded_ball_cache.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

TEST(PrefetcherStress, QuiesceRacesEnqueueWithoutLostWakeups) {
  // A producer hammers enqueue() while another thread calls quiesce() in
  // a loop. Every quiesce() must return (in_flight_ drains to 0 — a lost
  // idle_ wakeup would hang this test), and the prefetcher must stay
  // usable afterwards.
  Graph g = graph::fixtures::cycle(600);
  ShardedBallCache cache(g, 1 << 20, 4);
  BallPrefetcher prefetcher(3);
  const std::size_t iters = meloppr::test::stress_iters(3000);
  std::atomic<bool> producing{true};

  std::thread producer([&] {
    Rng rng(meloppr::test::test_seed());
    for (std::size_t i = 0; i < iters; ++i) {
      prefetcher.enqueue(cache, static_cast<graph::NodeId>(rng.below(600)),
                         2);
      if (i % 64 == 0) std::this_thread::yield();
    }
    producing.store(false, std::memory_order_release);
  });
  std::thread quiescer([&] {
    while (producing.load(std::memory_order_acquire)) {
      prefetcher.quiesce();
      std::this_thread::yield();
    }
  });
  producer.join();
  quiescer.join();

  prefetcher.quiesce();
  EXPECT_LE(prefetcher.completed(), prefetcher.issued());
  // Still functional: a post-quiesce request is processed to completion.
  const std::size_t completed_before = prefetcher.completed();
  prefetcher.enqueue(cache, 0, 2);
  prefetcher.quiesce();
  // The request either completed or was dropped by quiesce() before a
  // worker picked it up — both legal; what may not happen is a hang or a
  // worker touching the cache after quiesce() returned.
  EXPECT_GE(prefetcher.completed(), completed_before);
}

TEST(PrefetcherStress, PauseGateRacesQuiesceAndEnqueue) {
  // The farm-wait meter's poll loop: while the gate is closed, workers
  // sleep-and-recheck without popping requests. Flipping the gate from
  // another thread while enqueue() and quiesce() hammer the queue must
  // neither deadlock (pause holds no in-flight work, so quiesce() cannot
  // wait on a paused worker) nor lose the drain signal.
  Graph g = graph::fixtures::cycle(600);
  ShardedBallCache cache(g, 1 << 20, 4);
  std::atomic<bool> paused{true};
  BallPrefetcher prefetcher(
      2, [&paused] { return paused.load(std::memory_order_relaxed); });
  const std::size_t iters = meloppr::test::stress_iters(1500);
  std::atomic<bool> producing{true};

  std::thread toggler([&] {
    while (producing.load(std::memory_order_acquire)) {
      paused.store(!paused.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      std::this_thread::yield();
    }
    paused.store(false, std::memory_order_relaxed);  // let the tail drain
  });
  std::thread producer([&] {
    Rng rng(meloppr::test::test_seed() + 1);
    for (std::size_t i = 0; i < iters; ++i) {
      prefetcher.enqueue(cache, static_cast<graph::NodeId>(rng.below(600)),
                         2);
      if (i % 32 == 0) std::this_thread::yield();
    }
    producing.store(false, std::memory_order_release);
  });
  std::thread quiescer([&] {
    while (producing.load(std::memory_order_acquire)) {
      prefetcher.quiesce();
      std::this_thread::yield();
    }
  });
  producer.join();
  quiescer.join();
  toggler.join();

  prefetcher.quiesce();  // must return: paused workers hold no in-flight
  EXPECT_LE(prefetcher.completed(), prefetcher.issued());
  EXPECT_LE(prefetcher.balls_fetched(), prefetcher.completed());
}

TEST(PrefetcherStress, StageLookaheadDrainsBeforeSpeculativeRoots) {
  // Two-class queue regression: a saturated root-prefetch window enqueued
  // FIRST must not delay a stage-lookahead request enqueued LAST. The
  // pause gate releases work one request at a time (the worker re-pauses
  // the moment completed() catches up with `allowed`), so the order in
  // which requests complete is observable deterministically.
  Graph g = graph::fixtures::cycle(600);
  ShardedBallCache cache(g, 1 << 20, 4);
  std::atomic<std::size_t> allowed{0};
  BallPrefetcher prefetcher(1, [&] {
    return prefetcher.completed() >= allowed.load(std::memory_order_relaxed);
  });

  // Saturate the root window while the worker is gated.
  const std::size_t roots = 8;
  for (std::size_t i = 0; i < roots; ++i) {
    prefetcher.enqueue(cache, static_cast<graph::NodeId>(i * 10), 2,
                       ShardedBallCache::FetchKind::kPinnedRootPrefetch,
                       /*claim_priority=*/i);
  }
  // The in-flight query's stage lookahead arrives after all of them.
  const graph::NodeId stage_root = 300;
  prefetcher.enqueue(cache, stage_root, 2);

  // Release exactly one request: it must be the stage lookahead.
  allowed.store(1, std::memory_order_relaxed);
  while (prefetcher.completed() < 1) std::this_thread::yield();
  EXPECT_TRUE(cache.fetch(stage_root, 2).hit)
      << "stage lookahead was not served first";
  EXPECT_EQ(cache.pinned_entries(), 0u)
      << "a speculative root jumped the stage queue";

  // Release the rest; the roots now drain and pin as usual.
  allowed.store(roots + 1, std::memory_order_relaxed);
  while (prefetcher.completed() < roots + 1) std::this_thread::yield();
  prefetcher.quiesce();
  EXPECT_GT(cache.pinned_entries(), 0u);
}

TEST(PrefetcherStress, WorkerSurvivesExtractorFaults) {
  // A prefetch is advisory: an extraction that throws must not kill the
  // worker thread. With a single worker, one uncaught exception would
  // orphan the queue and hang the completion spins below.
  Graph g = graph::fixtures::cycle(600);
  ShardedBallCache cache(g, 1 << 20, 4);
  meloppr::FaultPlan plan = meloppr::FaultPlan::parse("extractor=1");
  cache.set_extractor(meloppr::make_flaky_extractor(plan));
  BallPrefetcher prefetcher(1);

  const std::size_t faults = meloppr::test::stress_iters(40);
  for (std::size_t i = 0; i < faults; ++i) {
    const std::size_t before = prefetcher.completed();
    prefetcher.enqueue(cache, static_cast<graph::NodeId>(i % 600), 2);
    while (prefetcher.completed() == before) std::this_thread::yield();
  }
  EXPECT_EQ(prefetcher.failures(), faults);  // counted, not fatal
  EXPECT_EQ(prefetcher.balls_fetched(), 0u);
  EXPECT_EQ(cache.extraction_failures(), faults);

  // The same worker still serves once the extractor heals.
  cache.set_extractor({});
  prefetcher.enqueue(cache, 5, 2);
  prefetcher.quiesce();
  EXPECT_TRUE(cache.fetch(5, 2).hit) << "worker died on the faults above";
  EXPECT_EQ(prefetcher.failures(), faults);
}

}  // namespace
}  // namespace meloppr::core

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
