#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace meloppr::core {
namespace {

TEST(ExactAggregator, SumsContributions) {
  ExactAggregator agg;
  agg.add(1, 0.5);
  agg.add(1, 0.25);
  agg.add(2, 0.1);
  auto top = agg.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.75);
  EXPECT_EQ(agg.entries(), 2u);
}

TEST(ExactAggregator, NegativeCorrections) {
  // Eq. 8 subtracts α^l·residual before re-diffusing.
  ExactAggregator agg;
  agg.add(7, 0.4);
  agg.add(7, -0.4);
  agg.add(8, 0.1);
  auto top = agg.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].node, 8u);
}

TEST(ExactAggregator, ClearResets) {
  ExactAggregator agg;
  agg.add(1, 1.0);
  agg.clear();
  EXPECT_EQ(agg.entries(), 0u);
  EXPECT_TRUE(agg.top(5).empty());
}

TEST(ExactAggregator, BytesGrowWithEntries) {
  ExactAggregator agg;
  const std::size_t before = agg.bytes();
  for (graph::NodeId v = 0; v < 1000; ++v) agg.add(v, 0.001);
  EXPECT_GT(agg.bytes(), before + 1000 * 12);
}

TEST(TopCK, RejectsZeroCapacity) {
  EXPECT_THROW(TopCKAggregator(0), std::invalid_argument);
}

TEST(TopCK, LosslessUnderCapacity) {
  TopCKAggregator table(10);
  ExactAggregator exact;
  for (graph::NodeId v = 0; v < 8; ++v) {
    table.add(v, 0.1 * static_cast<double>(v + 1));
    exact.add(v, 0.1 * static_cast<double>(v + 1));
  }
  auto a = table.top(8);
  auto b = exact.top(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
  EXPECT_EQ(table.evictions(), 0u);
}

TEST(TopCK, EvictsMinimumWhenFull) {
  TopCKAggregator table(3);
  table.add(1, 0.1);
  table.add(2, 0.2);
  table.add(3, 0.3);
  table.add(4, 0.4);  // evicts node 1
  EXPECT_EQ(table.entries(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  auto top = table.top(3);
  for (const auto& sn : top) EXPECT_NE(sn.node, 1u);
}

TEST(TopCK, SmallContributionsAreDroppedWhenFull) {
  TopCKAggregator table(2);
  table.add(1, 0.5);
  table.add(2, 0.6);
  table.add(3, 0.1);  // below min — dropped, no eviction
  EXPECT_EQ(table.entries(), 2u);
  EXPECT_EQ(table.evictions(), 0u);
  auto top = table.top(2);
  EXPECT_EQ(top[0].node, 2u);
  EXPECT_EQ(top[1].node, 1u);
}

TEST(TopCK, InPlaceUpdateNeverEvicts) {
  TopCKAggregator table(2);
  table.add(1, 0.5);
  table.add(2, 0.6);
  table.add(1, 0.3);  // update in place → 0.8
  EXPECT_EQ(table.entries(), 2u);
  EXPECT_EQ(table.evictions(), 0u);
  auto top = table.top(1);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.8);
}

TEST(TopCK, EvictionLosesHistoryByDesign) {
  // The precision cost of small c: once evicted, earlier contributions are
  // forgotten even if the node comes back.
  TopCKAggregator table(2);
  table.add(1, 0.10);
  table.add(2, 0.20);
  table.add(3, 0.30);  // evicts 1
  table.add(1, 0.25);  // re-inserted with only the new mass → evicts 2
  auto top = table.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 3u);
  EXPECT_EQ(top[1].node, 1u);
  EXPECT_DOUBLE_EQ(top[1].score, 0.25);  // 0.10 history lost
}

TEST(TopCK, MatchesExactWhenCapacityIsAmple) {
  Rng rng(55);
  TopCKAggregator table(1000);
  ExactAggregator exact;
  for (int i = 0; i < 5000; ++i) {
    const auto node = static_cast<graph::NodeId>(rng.below(500));
    const double delta = rng.uniform(0.0, 0.01);
    table.add(node, delta);
    exact.add(node, delta);
  }
  auto a = table.top(20);
  auto b = exact.top(20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "rank " << i;
    EXPECT_NEAR(a[i].score, b[i].score, 1e-12);
  }
}

TEST(TopCK, BytesAreCapacityBased) {
  TopCKAggregator table(2000);
  EXPECT_EQ(table.bytes(), 2000u * 8u);
  table.add(1, 0.5);
  EXPECT_EQ(table.bytes(), 2000u * 8u);  // fixed BRAM footprint
}

TEST(TopCK, ClearResetsEvictions) {
  TopCKAggregator table(1);
  table.add(1, 0.1);
  table.add(2, 0.2);
  EXPECT_EQ(table.evictions(), 1u);
  table.clear();
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.entries(), 0u);
}

TEST(TopCK, RejectsNegativeMargin) {
  EXPECT_THROW(TopCKAggregator(4, -0.1), std::invalid_argument);
}

TEST(TopCK, AdmissionMarginDropsNearBoundaryChallengers) {
  // ε hysteresis (MelopprConfig::topck_epsilon): a full table evicts only
  // when the challenger beats the minimum by more than ε·|min| — closer
  // scores are dropped, but still feed the eviction-bound certificate.
  TopCKAggregator strict(4);
  TopCKAggregator margin(4, 0.5);
  for (graph::NodeId v = 0; v < 4; ++v) {
    strict.add(v, 1.0 + static_cast<double>(v));  // scores 1..4
    margin.add(v, 1.0 + static_cast<double>(v));
  }
  strict.add(10, 1.2);  // beats min 1.0 → strict eviction
  margin.add(10, 1.2);  // inside 1.0·(1+ε) = 1.5 → dropped
  EXPECT_EQ(strict.evictions(), 1u);
  EXPECT_EQ(margin.evictions(), 0u);
  EXPECT_EQ(margin.margin_drops(), 1u);
  EXPECT_GE(margin.eviction_bound(), 1.2);  // the drop is on the record
  margin.add(11, 1.6);  // decisively better → evicts even with margin
  EXPECT_EQ(margin.evictions(), 1u);
  EXPECT_EQ(margin.margin_drops(), 1u);
  margin.clear();
  EXPECT_EQ(margin.margin_drops(), 0u);
}

TEST(TopCK, AdmissionMarginCutsAlternatingBoundaryChurn) {
  // The churn scenario the hysteresis exists for: a stream of challengers
  // within floating-point noise of the minimum evicts on every add with
  // ε = 0 but never with a small ε — at identical top-1 results.
  TopCKAggregator strict(2);
  TopCKAggregator margin(2, 0.1);
  for (TopCKAggregator* table : {&strict, &margin}) {
    table->add(1, 1.0);
    table->add(2, 2.0);
  }
  for (int i = 0; i < 10; ++i) {
    const double noisy = 1.0 + 1e-9 * static_cast<double>(i + 1);
    strict.add(static_cast<graph::NodeId>(100 + i), noisy);
    margin.add(static_cast<graph::NodeId>(100 + i), noisy);
  }
  EXPECT_EQ(strict.evictions(), 10u);   // every noisy add displaced the min
  EXPECT_EQ(margin.evictions(), 0u);    // hysteresis absorbed the churn
  EXPECT_EQ(margin.margin_drops(), 10u);
  const auto strict_top = strict.top(1);
  const auto margin_top = margin.top(1);
  ASSERT_EQ(strict_top.size(), 1u);
  EXPECT_EQ(strict_top[0].node, margin_top[0].node);  // winner unaffected
}

TEST(TopCK, ZeroMarginIsBitIdenticalToLegacyEviction) {
  // ε = 0 must reproduce the strict table's admissions operation for
  // operation — the serial bit-identity contract of bounded batches.
  Rng rng(515);
  TopCKAggregator legacy(16);
  TopCKAggregator zero_margin(16, 0.0);
  for (int i = 0; i < 2000; ++i) {
    const auto node = static_cast<graph::NodeId>(rng.below(64));
    const double delta =
        (rng.uniform() - 0.2) * (rng.chance(0.5) ? 1.0 : 1e-6);
    legacy.add(node, delta);
    zero_margin.add(node, delta);
  }
  const auto a = legacy.top(16);
  const auto b = zero_margin.top(16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].score, b[i].score);  // bit-identical, not merely near
  }
  EXPECT_EQ(legacy.evictions(), zero_margin.evictions());
  EXPECT_EQ(zero_margin.margin_drops(), 0u);
}

}  // namespace
}  // namespace meloppr::core
