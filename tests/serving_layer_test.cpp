// The concurrent serving layer on top of the QueryPipeline: sharded cache
// integration, stage-lookahead prefetch equivalence, work-stealing batch
// scheduling (bit-identical scores, skew behavior), and aggregator pooling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/generators.hpp"
#include "hw/farm.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

MelopprConfig small_config() {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(12);
  return cfg;
}

void expect_bit_identical(const QueryResult& want, const QueryResult& got) {
  ASSERT_EQ(want.top.size(), got.top.size());
  for (std::size_t i = 0; i < want.top.size(); ++i) {
    EXPECT_EQ(want.top[i].node, got.top[i].node) << "rank " << i;
    // EXPECT_EQ on doubles: bit-identical is the contract, not "near".
    EXPECT_EQ(want.top[i].score, got.top[i].score) << "rank " << i;
  }
}

TEST(ServingLayer, SharedCacheAcceptedInParallelMode) {
  Rng rng(91);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 64u << 20);
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);
  EXPECT_NO_THROW(pipeline.query(5));          // no single-thread prohibition
  EXPECT_GT(cache.hits() + cache.misses(), 0u);  // extractions went through
  engine.set_shared_ball_cache(nullptr);
}

TEST(ServingLayer, StealingBatchBitIdenticalToSerialEngine) {
  Rng rng(92);
  Graph g = graph::barabasi_albert(1200, 2, 3, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 128u << 20);
  engine.set_shared_ball_cache(&cache);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 24; ++s) seeds.push_back(s * 49 % 1200);

  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  pcfg.prefetch = true;
  QueryPipeline pipeline(engine, backend, pcfg);
  const std::vector<QueryResult> results = pipeline.query_batch(seeds);
  engine.set_shared_ball_cache(nullptr);

  ASSERT_EQ(results.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult want = engine.query(seeds[i]);
    expect_bit_identical(want, results[i]);
    // Stage accounting survives out-of-order execution: the DFS-order
    // reduction must reproduce the serial ball counts exactly.
    EXPECT_EQ(results[i].stats.total_balls(), want.stats.total_balls());
  }
}

TEST(ServingLayer, PrefetchOnOffScoresIdentical) {
  Rng rng(93);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  Engine engine(g, small_config());
  std::vector<graph::NodeId> seeds{7, 7, 123, 400, 7, 881, 123};

  const auto run = [&](bool prefetch, bool stealing) {
    CpuBackend backend(0.85);
    ShardedBallCache cache(g, 128u << 20);
    engine.set_shared_ball_cache(&cache);
    PipelineConfig pcfg;
    pcfg.threads = 4;
    pcfg.prefetch = prefetch;
    // Un-throttled so the CPU backend actually exercises lookahead (the
    // equivalence under test is prefetch-on vs prefetch-off numerics).
    pcfg.prefetch_throttle = false;
    pcfg.work_stealing = stealing;
    QueryPipeline pipeline(engine, backend, pcfg);
    auto results = pipeline.query_batch(seeds);
    engine.set_shared_ball_cache(nullptr);
    return results;
  };

  const auto off = run(false, true);
  const auto on = run(true, true);
  const auto pinned = run(true, false);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    expect_bit_identical(off[i], on[i]);
    expect_bit_identical(off[i], pinned[i]);
  }
}

TEST(ServingLayer, StageParallelQueryPrefetchesLookahead) {
  Rng rng(94);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  MelopprConfig cfg = small_config();
  cfg.selection = Selection::top_count(24);
  Engine engine(g, cfg);
  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 128u << 20);
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;
  pcfg.threads = 2;
  pcfg.prefetch = true;
  pcfg.prefetch_threads = 2;
  // CPU backend: the backend-aware throttle would keep lookahead off; this
  // test measures the lookahead mechanism itself, so force it on.
  pcfg.prefetch_throttle = false;
  QueryPipeline pipeline(engine, backend, pcfg);
  // Lazy: prefetch threads spawn on the first query that sees the cache.
  EXPECT_EQ(pipeline.prefetcher(), nullptr);

  const QueryResult with_prefetch = pipeline.query(11);
  ASSERT_NE(pipeline.prefetcher(), nullptr);
  // Every stage-2 child was announced to the prefetcher as soon as its
  // parent task finished.
  EXPECT_EQ(pipeline.prefetcher()->issued(),
            with_prefetch.stats.stages[1].balls);
  // Scores are identical to a prefetch-free pipeline at the same thread
  // count (deterministic reduction; prefetch never changes task order).
  PipelineConfig no_pf = pcfg;
  no_pf.prefetch = false;
  ShardedBallCache cold(g, 128u << 20);
  engine.set_shared_ball_cache(&cold);
  QueryPipeline plain(engine, backend, no_pf);
  expect_bit_identical(plain.query(11), with_prefetch);
  engine.set_shared_ball_cache(nullptr);
}

TEST(ServingLayer, PrefetchThrottleKeepsCpuBackendUnoversubscribed) {
  // ROADMAP "Prefetch throttling": on a CPU-only backend the workers
  // compute on the host's own cores, so lookahead threads would only
  // oversubscribe. With the default backend-aware throttle the pipeline
  // must never spawn them — the regression this test pins down.
  Rng rng(98);
  Graph g = graph::barabasi_albert(700, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 64u << 20);
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;  // prefetch on, prefetch_throttle on (defaults)
  pcfg.threads = 4;
  ASSERT_TRUE(pcfg.prefetch);
  ASSERT_TRUE(pcfg.prefetch_throttle);
  QueryPipeline pipeline(engine, backend, pcfg);

  const QueryResult single = pipeline.query(9);
  QueryPipeline::BatchStats batch;
  const std::vector<graph::NodeId> seeds{9, 42, 9, 300};
  const auto results = pipeline.query_batch(seeds, &batch);
  engine.set_shared_ball_cache(nullptr);

  // No extraction threads were ever spawned, and no lookahead was issued:
  // every core stays with the demand path.
  EXPECT_EQ(pipeline.prefetcher(), nullptr);
  EXPECT_EQ(batch.prefetch_issued, 0u);
  EXPECT_EQ(single.stats.prefetch_hidden_seconds, 0.0);
  // Scores are unaffected — the throttle changes scheduling only.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bit_identical(engine.query(seeds[i]), results[i]);
  }
}

TEST(ServingLayer, PrefetchThrottleAdmitsOffloadingBackend) {
  // The same default configuration against a device farm must prefetch:
  // dispatchers block on busy devices, which is exactly the window the
  // lookahead threads fill with host BFS.
  Rng rng(99);
  Graph g = graph::barabasi_albert(700, 2, 2, rng);
  MelopprConfig cfg = small_config();
  cfg.selection = Selection::top_count(16);
  Engine engine(g, cfg);
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  hw::FpgaFarm farm(2, acfg, hw::Quantizer(0.85, 10, 50'000'000));
  ASSERT_TRUE(farm.offloads_compute());
  ASSERT_FALSE(CpuBackend(0.85).offloads_compute());
  ShardedBallCache cache(g, 64u << 20);
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;  // defaults again — only the backend differs
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, farm, pcfg);
  const QueryResult r = pipeline.query(9);
  engine.set_shared_ball_cache(nullptr);

  ASSERT_NE(pipeline.prefetcher(), nullptr);
  EXPECT_EQ(pipeline.prefetcher()->issued(), r.stats.stages[1].balls);
}

TEST(ServingLayer, CrossQueryRootPrefetchWarmsUpcomingSeeds) {
  // ROADMAP "Cross-query root prefetch": the stealing batch knows every
  // upcoming seed; their stage-0 balls must reach the prefetcher (bounded
  // by the window), and scores must stay bit-identical — root lookahead
  // changes cache temperature only.
  Rng rng(101);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  Engine engine(g, small_config());
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 12; ++s) seeds.push_back(s * 71 % 900);

  const auto serve = [&](std::size_t window) {
    CpuBackend backend(0.85);
    ShardedBallCache cache(g, 128u << 20);
    engine.set_shared_ball_cache(&cache);
    PipelineConfig pcfg;
    pcfg.threads = 4;
    pcfg.prefetch = true;
    pcfg.prefetch_throttle = false;  // CPU backend; exercise the mechanism
    pcfg.work_stealing = true;
    pcfg.root_prefetch_window = window;
    QueryPipeline pipeline(engine, backend, pcfg);
    QueryPipeline::BatchStats batch;
    const auto results = pipeline.query_batch(seeds, &batch);
    engine.set_shared_ball_cache(nullptr);
    return std::pair{results, batch};
  };

  const auto [with_roots, batch] = serve(4);
  // The pre-batch warm-up alone issues the first window, and every seed is
  // issued at most once however many workers claim concurrently.
  EXPECT_GT(batch.root_prefetch_issued, 0u);
  EXPECT_LE(batch.root_prefetch_issued, seeds.size());
  EXPECT_GE(batch.prefetch_issued, batch.root_prefetch_issued);

  const auto [without, batch_off] = serve(0);
  EXPECT_EQ(batch_off.root_prefetch_issued, 0u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bit_identical(engine.query(seeds[i]), with_roots[i]);
    expect_bit_identical(without[i], with_roots[i]);
  }
}

TEST(ServingLayer, SaturatedCacheIssuesNoRootPrefetches) {
  // The corrected spare-budget throttle (min(spare, budget/8), not max):
  // a cache with no spare capacity must not speculate at all. The old
  // inversion kept a FULL cache prefetching at 1/8-budget rate, churning
  // exactly the small caches the throttle exists to protect. Every ball
  // the batch touches is pre-filled, so byte accounting is constant for
  // the whole run and the assertion is deterministic.
  Graph g = graph::fixtures::cycle(600);
  Engine engine(g, small_config());
  // All radius-3 cycle balls have identical footprints; probe one.
  std::size_t ball;
  {
    ShardedBallCache probe(g, 1 << 20, 1);
    probe.get(0, 3);
    ball = probe.bytes();
  }
  ASSERT_GT(ball, 0u);

  // Seeds spaced ≥ 7 apart: each query touches exactly the radius-3 balls
  // rooted in [seed-3, seed+3] (stage-1 children stay inside the stage-0
  // ball on a cycle), so the working set is 7 balls per seed.
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 10; ++s) seeds.push_back(50 + s * 40);

  for (const bool adaptive : {true, false}) {
    CpuBackend backend(0.85);
    // Budget = working set + half a ball: everything resident, spare
    // pinned under one ball for the entire batch.
    ShardedBallCache cache(g, 70 * ball + ball / 2, 1);
    for (graph::NodeId seed : seeds) {
      for (graph::NodeId d = 0; d < 7; ++d) cache.get(seed - 3 + d, 3);
    }
    ASSERT_EQ(cache.entries(), 70u);
    ASSERT_LT(cache.byte_budget() - cache.bytes(), ball);
    ASSERT_GT(cache.ewma_ball_bytes(), 0u);

    engine.set_shared_ball_cache(&cache);
    PipelineConfig pcfg;
    pcfg.threads = 4;
    pcfg.prefetch = true;
    pcfg.prefetch_throttle = false;  // CPU backend; exercise the mechanism
    pcfg.work_stealing = true;
    pcfg.adaptive_root_prefetch = adaptive;
    pcfg.root_prefetch_window = 4;
    QueryPipeline pipeline(engine, backend, pcfg);
    QueryPipeline::BatchStats batch;
    pipeline.query_batch(seeds, &batch);
    engine.set_shared_ball_cache(nullptr);

    EXPECT_EQ(batch.root_prefetch_issued, 0u) << "adaptive=" << adaptive;
    EXPECT_GT(batch.prefetch_issued, 0u);  // stage lookahead is unaffected
    EXPECT_EQ(batch.cache_misses, 0u);     // the working set stayed warm
  }
}

TEST(ServingLayer, AdaptiveRootPrefetchReportsWindowAndKeepsScores) {
  // The adaptive controller replaces the fixed window: lookahead still
  // reaches the prefetcher (bounded by max_window), telemetry lands in
  // BatchStats, and scores never move — the controller only changes cache
  // temperature.
  Rng rng(103);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  Engine engine(g, small_config());
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 16; ++s) seeds.push_back(s * 53 % 900);

  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 128u << 20);
  engine.set_shared_ball_cache(&cache);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.prefetch = true;
  pcfg.prefetch_throttle = false;
  pcfg.work_stealing = true;
  pcfg.adaptive_root_prefetch = true;
  pcfg.root_prefetch_max_window = 8;
  QueryPipeline pipeline(engine, backend, pcfg);
  QueryPipeline::BatchStats batch;
  const auto results = pipeline.query_batch(seeds, &batch);
  engine.set_shared_ball_cache(nullptr);

  ASSERT_NE(pipeline.window_controller(), nullptr);
  EXPECT_GT(batch.root_prefetch_issued, 0u);
  EXPECT_LE(batch.root_prefetch_issued, seeds.size());
  EXPECT_GE(batch.last_root_prefetch_window, 1u);
  EXPECT_LE(batch.last_root_prefetch_window, 8u);
  EXPECT_GE(batch.prefetch_idle_fraction, 0.0);
  EXPECT_LE(batch.prefetch_idle_fraction, 1.0);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bit_identical(engine.query(seeds[i]), results[i]);
  }
}

TEST(ServingLayer, PinnedHandoffNeverReextractsAndKeepsScores) {
  // Pinned prefetch handoff under admission pressure: with pinning on,
  // zero root-prefetched balls may be re-extracted by claiming workers —
  // the feature's hard guarantee while the pin table has capacity — and
  // pin accounting stays consistent. Scores are bit-identical throughout.
  Rng rng(104);
  Graph g = graph::barabasi_albert(1000, 2, 2, rng);
  Engine engine(g, small_config());
  // Mixed stream: a popular head (stays hot in the sketch) + a cold tail.
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 24; ++s) {
    seeds.push_back(s % 3 == 0 ? 7 : (s * 97 % 1000));
  }

  CpuBackend backend(0.85);
  // Tight TinyLFU cache: cold root prefetches can lose their duels.
  ShardedBallCache cache(g, 512u << 10, 4, CacheAdmission::kTinyLFU);
  engine.set_shared_ball_cache(&cache);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.prefetch = true;
  pcfg.prefetch_throttle = false;
  pcfg.work_stealing = true;
  pcfg.root_prefetch_pinning = true;
  QueryPipeline pipeline(engine, backend, pcfg);
  QueryPipeline::BatchStats batch;
  const auto results = pipeline.query_batch(seeds, &batch);

  EXPECT_EQ(batch.root_reextractions, 0u);
  EXPECT_GE(cache.pins_installed(), cache.pin_hits());
  EXPECT_EQ(cache.pinned_entries(), 0u);  // all pins consumed or expired
  engine.set_shared_ball_cache(nullptr);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bit_identical(engine.query(seeds[i]), results[i]);
  }
}

TEST(ServingLayer, PrefetcherPauseGateHoldsAndReleasesWork) {
  // The farm-wait meter's mechanism in isolation: while the pause gate is
  // closed, queued requests are not touched; opening it drains them.
  Rng rng(102);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  ShardedBallCache cache(g, 64u << 20, 4);
  std::atomic<bool> paused{true};
  BallPrefetcher prefetcher(2, [&paused] { return paused.load(); });
  prefetcher.enqueue(cache, 3, 2);
  prefetcher.enqueue(cache, 99, 2);
  EXPECT_EQ(prefetcher.issued(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(prefetcher.completed(), 0u);  // gate closed: nothing ran
  EXPECT_EQ(cache.entries(), 0u);
  paused.store(false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (prefetcher.completed() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(prefetcher.completed(), 2u);  // gate open: queue drained
  EXPECT_EQ(prefetcher.balls_fetched(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ServingLayer, FarmWaitMeterKeepsScoresIdentical) {
  // Integration: the default farm-wait meter (prefetch_wait_meter) against
  // a real farm — lookahead pauses and resumes with farm occupancy, and
  // none of it may touch numerics.
  Rng rng(103);
  Graph g = graph::barabasi_albert(700, 2, 2, rng);
  MelopprConfig cfg = small_config();
  cfg.selection = Selection::top_count(16);
  Engine engine(g, cfg);
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  hw::FpgaFarm farm(2, acfg, hw::Quantizer(0.85, 10, 50'000'000));
  EXPECT_EQ(farm.active_dispatches(), 0u);  // idle farm reports zero
  ShardedBallCache cache(g, 64u << 20);
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;  // prefetch, throttle, and wait meter all default-on
  pcfg.threads = 4;
  ASSERT_TRUE(pcfg.prefetch_wait_meter);
  QueryPipeline pipeline(engine, farm, pcfg);
  const std::vector<graph::NodeId> seeds{9, 42, 9, 300};
  const auto results = pipeline.query_batch(seeds);
  engine.set_shared_ball_cache(nullptr);
  EXPECT_EQ(farm.active_dispatches(), 0u);  // gauge returns to idle

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::unique_ptr<ScoreAggregator> agg =
        make_serial_aggregator(cfg.aggregation, cfg.k, cfg.topck_c);
    // Reference through the same farm numerics (FPGA quantization differs
    // from CPU): serial engine + a fresh farm clone.
    const auto clone = farm.clone();
    expect_bit_identical(engine.query(seeds[i], *clone, *agg), results[i]);
  }
}

TEST(ServingLayer, WorkStealingSpreadsHeavyQuery) {
  Rng rng(95);
  Graph g = graph::barabasi_albert(2500, 2, 3, rng);
  MelopprConfig cfg = small_config();
  // Ratio selection: the hub's big ball yields many stage-2 tasks, a
  // periphery ball few — the skew the stealing scheduler exists for.
  cfg.selection = Selection::top_ratio(0.08);
  Engine engine(g, cfg);

  // Heaviest seed: the max-degree hub.
  graph::NodeId hub = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  ASSERT_GT(engine.query(hub).stats.stages[1].balls, 16u);

  // Light seeds: low-degree periphery nodes.
  std::vector<graph::NodeId> seeds{hub};
  for (graph::NodeId v = 0; v < g.num_nodes() && seeds.size() < 4; ++v) {
    if (g.degree(v) <= 2) seeds.push_back(v);
  }
  ASSERT_EQ(seeds.size(), 4u);

  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  pcfg.prefetch = false;
  QueryPipeline pipeline(engine, backend, pcfg);
  QueryPipeline::BatchStats batch;
  const std::vector<QueryResult> results =
      pipeline.query_batch(seeds, &batch);

  // The three light workers drain their queries and must steal from the
  // heavy one's deque — the heavy query ends up executed by several
  // workers instead of idling them.
  EXPECT_GT(batch.stolen_tasks, 0u);
  EXPECT_GT(results[0].stats.stolen_tasks, 0u);
  EXPECT_GE(results[0].stats.threads_used, 2u);
  // Scores unaffected by who ran what.
  expect_bit_identical(engine.query(hub), results[0]);

  // Query-pinned scheduling, by contrast, keeps every query on one worker.
  PipelineConfig pinned = pcfg;
  pinned.work_stealing = false;
  QueryPipeline pinned_pipeline(engine, backend, pinned);
  QueryPipeline::BatchStats pinned_batch;
  const auto pinned_results = pinned_pipeline.query_batch(seeds, &pinned_batch);
  EXPECT_EQ(pinned_batch.stolen_tasks, 0u);
  EXPECT_EQ(pinned_results[0].stats.threads_used, 1u);
}

TEST(ServingLayer, BatchStatsAreCoherent) {
  Rng rng(96);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  ShardedBallCache cache(g, 64u << 20);
  engine.set_shared_ball_cache(&cache);

  // Popular-seed skew: repeats must show up as cache hits.
  std::vector<graph::NodeId> seeds;
  for (int rep = 0; rep < 4; ++rep) {
    for (graph::NodeId s : {5u, 77u, 300u}) seeds.push_back(s);
  }

  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);
  QueryPipeline::BatchStats batch;
  const auto results = pipeline.query_batch(seeds, &batch);
  engine.set_shared_ball_cache(nullptr);

  EXPECT_EQ(batch.queries, seeds.size());
  EXPECT_GT(batch.wall_seconds, 0.0);
  std::size_t balls = 0;
  for (const auto& r : results) balls += r.stats.total_balls();
  EXPECT_EQ(batch.executed_tasks, balls);
  // Every extraction went through the cache: hits + misses == balls.
  EXPECT_EQ(batch.cache_hits + batch.cache_misses, balls);
  EXPECT_GT(batch.cache_hits, 0u);  // repeated seeds share balls
  EXPECT_GT(batch.cache_hit_rate(), 0.0);
  // Per-query stats expose the same counters.
  std::size_t per_query_hits = 0;
  for (const auto& r : results) per_query_hits += r.stats.cache_hits();
  EXPECT_EQ(per_query_hits, batch.cache_hits);

  // A long-lived server reuses one BatchStats across batches: each call
  // must overwrite, never accumulate.
  engine.set_shared_ball_cache(&cache);
  pipeline.query_batch(seeds, &batch);
  engine.set_shared_ball_cache(nullptr);
  EXPECT_EQ(batch.queries, seeds.size());
  EXPECT_EQ(batch.executed_tasks, balls);
}

TEST(AggregatorPool, LeasesPreferSlotAndReuseArenas) {
  AggregatorPool pool(3);
  EXPECT_THROW(AggregatorPool(0), std::invalid_argument);
  {
    AggregatorPool::Lease lease = pool.acquire(1);
    lease->add(7, 0.5);
    EXPECT_EQ(lease->entries(), 1u);
  }
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  {
    // Same preferred slot: the arena comes back cleared (warm buckets,
    // empty content).
    AggregatorPool::Lease lease = pool.acquire(1);
    EXPECT_EQ(lease->entries(), 0u);
  }
  EXPECT_EQ(pool.reuses(), 1u);
  {
    // Distinct concurrent leases never alias.
    AggregatorPool::Lease a = pool.acquire(0);
    AggregatorPool::Lease b = pool.acquire(0);  // slot 0 busy → falls back
    a->add(1, 1.0);
    EXPECT_EQ(b->entries(), 0u);
    EXPECT_NE(&*a, &*b);
  }
}

TEST(AggregatorPool, ConcurrentAcquireReleaseIsSafe) {
  AggregatorPool pool(4);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        AggregatorPool::Lease lease =
            pool.acquire(static_cast<std::size_t>(t));
        lease->add(static_cast<graph::NodeId>(i), 1.0);
        ASSERT_GE(lease->entries(), 1u);  // exclusive: only our own adds
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.acquires(), static_cast<std::size_t>(kThreads * kIters));
  EXPECT_GE(pool.reuses(), pool.acquires() - 4);
}

TEST(ServingLayer, PooledAndUnpooledBatchesMatch) {
  Rng rng(97);
  Graph g = graph::barabasi_albert(600, 2, 2, rng);
  Engine engine(g, small_config());
  std::vector<graph::NodeId> seeds{3, 99, 250, 3, 99, 512};

  const auto run = [&](bool pooled) {
    CpuBackend backend(0.85);
    PipelineConfig pcfg;
    pcfg.threads = 2;
    pcfg.pool_aggregators = pooled;
    pcfg.prefetch = false;
    QueryPipeline pipeline(engine, backend, pcfg);
    return pipeline.query_batch(seeds);
  };
  const auto with_pool = run(true);
  const auto without = run(false);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bit_identical(without[i], with_pool[i]);
  }
}

}  // namespace
}  // namespace meloppr::core
