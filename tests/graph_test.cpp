// Graph + GraphBuilder structural tests.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace meloppr::graph {
namespace {

TEST(GraphBuilder, BuildsSortedSymmetricCsr) {
  GraphBuilder b(4);
  b.add_edge(2, 0);
  b.add_edge(0, 1);
  b.add_edge(3, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  ASSERT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, DropsSelfLoopsSilently) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, RejectsOutOfRangeIds) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(5, 0), std::invalid_argument);
}

TEST(GraphBuilder, RejectsZeroNodes) {
  EXPECT_THROW(GraphBuilder(0), std::invalid_argument);
}

TEST(GraphBuilder, AddEdgesBulk) {
  GraphBuilder b(4);
  b.add_edges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(b.pending_edges(), 3u);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, HasEdgeBothDirections) {
  Graph g = fixtures::path(3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DegreeStatistics) {
  Graph g = fixtures::star(5);  // center 0 + 4 leaves
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
  EXPECT_EQ(g.size(), 5u + 4u);
}

TEST(Graph, IsolatedCount) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.isolated_count(), 3u);
}

TEST(Graph, BytesCoverBothArrays) {
  Graph g = fixtures::complete(10);  // 45 edges, 90 arcs
  EXPECT_GE(g.bytes(), (10 + 1) * sizeof(std::uint64_t) +
                           90 * sizeof(NodeId));
}

TEST(Graph, SummaryMentionsCounts) {
  Graph g = fixtures::cycle(6);
  const std::string s = g.summary();
  EXPECT_NE(s.find("|V|=6"), std::string::npos);
  EXPECT_NE(s.find("|E|=6"), std::string::npos);
}

TEST(Graph, ConstructorRejectsBadOffsets) {
  // offsets.back() disagrees with targets size.
  EXPECT_THROW(Graph({0, 2}, {1}), InvariantViolation);
  // non-monotone offsets.
  EXPECT_THROW(Graph({0, 2, 1}, {1, 0}), InvariantViolation);
}

TEST(Fixtures, Fig1GraphMatchesPaperExample) {
  // Fig. 1 works on a 4-node graph where the seed v1 has degree 3 and
  // W·S0 = [0, 1/3, 1/3, 1/3].
  Graph g = fixtures::fig1_graph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Fixtures, BarbellIsTwoCliquesWithBridge) {
  Graph g = fixtures::barbell(4);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 2u * 6u + 1u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 7));
}

TEST(Fixtures, BinaryTreeParentLinks) {
  Graph g = fixtures::binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 6));
}

}  // namespace
}  // namespace meloppr::graph
