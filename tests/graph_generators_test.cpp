// Generator and paper-graph factory tests, including parameterized sweeps
// over all six calibrated specs.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/paper_graphs.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  Rng rng(1);
  Graph g = erdos_renyi(100, 250, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_NO_THROW(g.validate());
}

TEST(ErdosRenyi, RejectsTooManyEdges) {
  Rng rng(1);
  EXPECT_THROW(erdos_renyi(4, 7, rng), std::invalid_argument);
  EXPECT_NO_THROW(erdos_renyi(4, 6, rng));
}

TEST(BarabasiAlbert, ConnectedAndHeavyTailed) {
  Rng rng(2);
  Graph g = barabasi_albert(2000, 2, 2, rng);
  EXPECT_EQ(g.num_nodes(), 2000u);
  EXPECT_EQ(g.isolated_count(), 0u);
  // One connected component: BFS from 0 reaches everyone.
  EXPECT_EQ(bfs_nodes(g, 0, 1u << 20).size(), 2000u);
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(g.max_degree(), 10 * static_cast<std::size_t>(
                                     g.average_degree()));
}

TEST(BarabasiAlbert, FractionalMeanDegreeIsRespected) {
  Rng rng(3);
  const double m_avg = 1.4;
  Graph g = barabasi_albert(5000, m_avg, rng);
  const double achieved =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_NEAR(achieved, m_avg, 0.15);
}

TEST(BarabasiAlbert, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert(10, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 3, 2, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(1, 1, 1, rng), std::invalid_argument);
}

TEST(WattsStrogatz, RingDegreeAndRewiring) {
  Rng rng(4);
  Graph ring = watts_strogatz(100, 4, 0.0, rng);
  // beta = 0: everyone keeps exactly the ring degree.
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(ring.degree(v), 4u);

  Graph rewired = watts_strogatz(100, 4, 0.5, rng);
  EXPECT_EQ(rewired.num_nodes(), 100u);
  // Edge count is preserved up to collisions that give up rewiring.
  EXPECT_NEAR(static_cast<double>(rewired.num_edges()), 200.0, 10.0);
}

TEST(WattsStrogatz, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, rng), std::invalid_argument);
}

TEST(Rmat, ProducesRequestedScaleAndSkew) {
  Rng rng(5);
  Graph g = rmat(10, 4000, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_GT(g.num_edges(), 3000u);
  EXPECT_LE(g.num_edges(), 4000u);
  // R-MAT with skewed quadrants produces hubs.
  EXPECT_GT(g.max_degree(), 30u);
}

TEST(Rmat, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(rmat(0, 10, 0.5, 0.2, 0.2, rng), std::invalid_argument);
  EXPECT_THROW(rmat(4, 10, 0.6, 0.3, 0.3, rng), std::invalid_argument);
}

TEST(CommunityGraph, SizesAndLocality) {
  Rng rng(6);
  Graph g = community_graph(1000, 50, 4.0, 1.0, rng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_EQ(g.isolated_count(), 0u);  // intra path keeps blocks connected
  const double avg_deg = g.average_degree();
  EXPECT_GT(avg_deg, 2.5);
  EXPECT_LT(avg_deg, 7.0);
}

TEST(CommunityGraph, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(community_graph(3, 1, 2.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(community_graph(100, 0, 2.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(community_graph(100, 200, 2.0, 1.0, rng),
               std::invalid_argument);
}

TEST(PaperGraphs, SpecTableMatchesPaper) {
  const auto& specs = paper_graph_specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "citeseer");
  EXPECT_EQ(specs[0].vertices, 3327u);
  EXPECT_EQ(specs[0].edges, 4676u);
  EXPECT_EQ(specs[5].name, "com-youtube");
  EXPECT_EQ(specs[5].vertices, 1134890u);
  EXPECT_EQ(specs[5].edges, 2987624u);
  EXPECT_EQ(spec_for(PaperGraphId::kG3Pubmed).label, "G3");
  EXPECT_EQ(small_paper_graphs().size(), 3u);
  EXPECT_EQ(all_paper_graphs().size(), 6u);
}

TEST(PaperGraphs, ScaleValidation) {
  Rng rng(1);
  EXPECT_THROW(make_paper_graph(PaperGraphId::kG1Citeseer, rng, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_paper_graph(PaperGraphId::kG1Citeseer, rng, 1.5),
               std::invalid_argument);
}

TEST(PaperGraphs, RandomSeedNodeSkipsIsolated) {
  GraphBuilder b(10);
  b.add_edge(3, 7);
  Graph g = b.build();
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const NodeId s = random_seed_node(g, rng);
    EXPECT_TRUE(s == 3 || s == 7);
  }
}

/// Full-size G1–G3 plus miniature G4–G6 calibration checks.
class PaperGraphCalibration
    : public ::testing::TestWithParam<PaperGraphId> {};

TEST_P(PaperGraphCalibration, MatchesSpecAtScale) {
  const PaperGraphSpec& spec = spec_for(GetParam());
  // Small citation graphs run at full scale; the SNAP-size ones at 2%.
  const bool small = spec.vertices < 100'000;
  const double scale = small ? 1.0 : 0.02;
  Rng rng(42);
  Graph g = make_paper_graph(GetParam(), rng, scale);

  const auto expected_nodes = static_cast<double>(spec.vertices) * scale;
  EXPECT_NEAR(static_cast<double>(g.num_nodes()), expected_nodes,
              expected_nodes * 0.01 + 1.0);
  const double expected_density = spec.edge_density();
  const double achieved_density =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_NEAR(achieved_density, expected_density, expected_density * 0.25);
  EXPECT_LT(g.isolated_count(), g.num_nodes() / 100 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, PaperGraphCalibration,
    ::testing::ValuesIn(all_paper_graphs()),
    [](const ::testing::TestParamInfo<PaperGraphId>& info) {
      return spec_for(info.param).label;
    });

}  // namespace
}  // namespace meloppr::graph
