#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/assert.hpp"

namespace meloppr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), InvariantViolation);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == child2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGeneratorShape) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  // Must be usable with <algorithm> shuffles.
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace meloppr
