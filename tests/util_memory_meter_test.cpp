#include "util/memory_meter.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace meloppr {
namespace {

TEST(MemoryMeter, TracksCurrentAndPeak) {
  MemoryMeter m;
  m.allocate("a", 100);
  m.allocate("b", 50);
  EXPECT_EQ(m.current_bytes(), 150u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.release("a", 100);
  EXPECT_EQ(m.current_bytes(), 50u);
  EXPECT_EQ(m.peak_bytes(), 150u);  // peak is sticky
  m.allocate("a", 40);
  EXPECT_EQ(m.current_bytes(), 90u);
  EXPECT_EQ(m.peak_bytes(), 150u);
}

TEST(MemoryMeter, PeakIsOfTheSumNotPerCategory) {
  // Two categories that never overlap at 100 bytes each must yield a total
  // peak of 100, not 200 — exactly the "one ball at a time" property the
  // engine relies on.
  MemoryMeter m;
  m.allocate("ball", 100);
  m.release("ball", 100);
  m.allocate("ball", 100);
  m.release("ball", 100);
  EXPECT_EQ(m.peak_bytes(), 100u);
  EXPECT_EQ(m.peak_bytes("ball"), 100u);
}

TEST(MemoryMeter, PerCategoryAccounting) {
  MemoryMeter m;
  m.allocate("x", 10);
  m.allocate("y", 20);
  EXPECT_EQ(m.current_bytes("x"), 10u);
  EXPECT_EQ(m.current_bytes("y"), 20u);
  EXPECT_EQ(m.current_bytes("z"), 0u);
  EXPECT_EQ(m.peak_bytes("z"), 0u);
  EXPECT_EQ(m.categories().size(), 2u);
}

TEST(MemoryMeter, OverReleaseThrows) {
  MemoryMeter m;
  m.allocate("x", 10);
  EXPECT_THROW(m.release("x", 11), InvariantViolation);
  EXPECT_THROW(m.release("never-seen", 1), InvariantViolation);
}

TEST(MemoryMeter, SetMovesFootprintUpAndDown) {
  MemoryMeter m;
  m.set("agg", 100);
  EXPECT_EQ(m.current_bytes("agg"), 100u);
  m.set("agg", 250);
  EXPECT_EQ(m.current_bytes("agg"), 250u);
  m.set("agg", 50);
  EXPECT_EQ(m.current_bytes("agg"), 50u);
  EXPECT_EQ(m.peak_bytes("agg"), 250u);
}

TEST(MemoryMeter, ResetForgetsEverything) {
  MemoryMeter m;
  m.allocate("x", 10);
  m.reset();
  EXPECT_EQ(m.current_bytes(), 0u);
  EXPECT_EQ(m.peak_bytes(), 0u);
  EXPECT_TRUE(m.categories().empty());
}

TEST(MemoryMeter, ReportMentionsCategories) {
  MemoryMeter m;
  m.allocate("ball", 1024 * 1024);
  const std::string r = m.report();
  EXPECT_NE(r.find("ball"), std::string::npos);
  EXPECT_NE(r.find("1.000 MB"), std::string::npos);
}

TEST(ScopedAllocation, ReleasesOnDestruction) {
  MemoryMeter m;
  {
    ScopedAllocation s(m, "scoped", 64);
    EXPECT_EQ(m.current_bytes(), 64u);
    s.grow(36);
    EXPECT_EQ(m.current_bytes(), 100u);
  }
  EXPECT_EQ(m.current_bytes(), 0u);
  EXPECT_EQ(m.peak_bytes(), 100u);
}

TEST(VectorBytes, UsesCapacity) {
  std::vector<std::uint64_t> v;
  v.reserve(10);
  EXPECT_EQ(vector_bytes(v), 80u);
}

TEST(FormatMb, Format) {
  EXPECT_EQ(format_mb(1024 * 1024), "1.000 MB");
  EXPECT_EQ(format_mb(0), "0.000 MB");
}

}  // namespace
}  // namespace meloppr
