// The contract of the iterative stage scheduler: it is a re-expression of
// the original recursive engine, not a reinterpretation. A faithful
// recursive reference lives in this file; the serial engine must reproduce
// it bit-for-bit (same DFS aggregation order), and the stage-parallel
// pipeline must match within 1e-12 (same sums, frontier reduction order).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "graph/bfs.hpp"
#include "graph/paper_graphs.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

/// The pre-scheduler engine, verbatim: blind recursion, aggregating in DFS
/// order with the Eq. 8 subtraction applied immediately before each child.
void reference_recurse(const Graph& g, const MelopprConfig& cfg,
                       DiffusionBackend& backend, ScoreAggregator& agg,
                       graph::NodeId root, double mass, std::size_t stage) {
  const unsigned length = cfg.stage_lengths[stage];
  const graph::Subgraph ball = graph::extract_ball(g, root, length);
  const BackendResult diff = backend.run(ball, mass, length);
  for (graph::NodeId local = 0; local < ball.num_nodes(); ++local) {
    if (diff.accumulated[local] != 0.0) {
      agg.add(ball.to_global(local), diff.accumulated[local]);
    }
  }
  if (stage + 1 >= cfg.num_stages()) return;
  const std::vector<SelectedNode> selected =
      select_next_stage(diff.inflight, cfg.selection);
  std::vector<std::pair<graph::NodeId, double>> children;
  children.reserve(selected.size());
  for (const SelectedNode& sn : selected) {
    children.emplace_back(ball.to_global(sn.local), sn.residual);
  }
  for (const auto& [child, r] : children) {
    agg.add(child, -r);
    reference_recurse(g, cfg, backend, agg, child, r, stage + 1);
  }
}

std::map<graph::NodeId, double> reference_scores(const Graph& g,
                                                 const MelopprConfig& cfg,
                                                 graph::NodeId seed) {
  CpuBackend backend(cfg.alpha);
  ExactAggregator agg;
  reference_recurse(g, cfg, backend, agg, seed, 1.0, 0);
  return {agg.scores().begin(), agg.scores().end()};
}

MelopprConfig two_stage_config(Selection selection, std::size_t k = 50) {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = k;
  cfg.selection = selection;
  return cfg;
}

/// Top list → map, missing nodes read as 0.
std::map<graph::NodeId, double> as_map(
    const std::vector<ppr::ScoredNode>& top) {
  std::map<graph::NodeId, double> out;
  for (const auto& sn : top) out.emplace(sn.node, sn.score);
  return out;
}

class SchedulerEquivalence : public ::testing::Test {
 protected:
  static const Graph& paper_graph(int which) {
    static Rng rng(123);
    static const Graph g1 =
        graph::make_paper_graph(graph::PaperGraphId::kG1Citeseer, rng);
    static const Graph g2 =
        graph::make_paper_graph(graph::PaperGraphId::kG2Cora, rng);
    return which == 0 ? g1 : g2;
  }
};

TEST_F(SchedulerEquivalence, IterativeMatchesRecursiveBitwise) {
  // The 1-thread scheduler must reproduce the recursion's floating-point
  // operation order exactly — not approximately.
  for (int which : {0, 1}) {
    const Graph& g = paper_graph(which);
    const MelopprConfig cfg = two_stage_config(Selection::top_ratio(0.05));
    Engine engine(g, cfg);
    CpuBackend backend(cfg.alpha);
    ExactAggregator agg;
    engine.query(17, backend, agg);
    const auto reference = reference_scores(g, cfg, 17);
    ASSERT_EQ(agg.scores().size(), reference.size());
    for (const auto& [node, score] : agg.scores()) {
      const auto it = reference.find(node);
      ASSERT_TRUE(it != reference.end()) << "node " << node;
      EXPECT_DOUBLE_EQ(score, it->second) << "node " << node;
    }
  }
}

TEST_F(SchedulerEquivalence, IterativeMatchesRecursiveInExactMode) {
  const Graph& g = paper_graph(0);
  const MelopprConfig cfg = two_stage_config(Selection::all(), 100);
  Engine engine(g, cfg);
  CpuBackend backend(cfg.alpha);
  ExactAggregator agg;
  engine.query(3, backend, agg);
  const auto reference = reference_scores(g, cfg, 3);
  ASSERT_EQ(agg.scores().size(), reference.size());
  for (const auto& [node, score] : agg.scores()) {
    EXPECT_DOUBLE_EQ(score, reference.at(node)) << "node " << node;
  }
}

TEST_F(SchedulerEquivalence, StageParallelMatchesSerialWithin1e12) {
  // The acceptance bar: N≥4 worker threads, deterministic frontier
  // reduction, scores within 1e-12 of the serial engine on paper graphs.
  for (int which : {0, 1}) {
    const Graph& g = paper_graph(which);
    MelopprConfig cfg = two_stage_config(Selection::top_ratio(0.05));
    cfg.k = g.num_nodes();  // expose every aggregated node for comparison
    Engine engine(g, cfg);

    const QueryResult serial = engine.query(29);

    CpuBackend backend(cfg.alpha);
    PipelineConfig pcfg;
    pcfg.threads = 4;
    QueryPipeline pipeline(engine, backend, pcfg);
    const QueryResult parallel = pipeline.query(29);

    const auto want = as_map(serial.top);
    const auto got = as_map(parallel.top);
    for (const auto& [node, score] : want) {
      const auto it = got.find(node);
      const double parallel_score = it == got.end() ? 0.0 : it->second;
      EXPECT_NEAR(parallel_score, score, 1e-12) << "node " << node;
    }
    for (const auto& [node, score] : got) {
      if (want.find(node) == want.end()) {
        EXPECT_NEAR(score, 0.0, 1e-12) << "extra node " << node;
      }
    }
  }
}

TEST_F(SchedulerEquivalence, DeterministicReductionIsThreadCountInvariant) {
  // With deterministic reduction the parallel scores must be *identical*
  // for any pool size, not merely close.
  const Graph& g = paper_graph(1);
  const MelopprConfig cfg = two_stage_config(Selection::top_ratio(0.08));
  Engine engine(g, cfg);
  CpuBackend backend(cfg.alpha);

  std::vector<QueryResult> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    PipelineConfig pcfg;
    pcfg.threads = threads;
    QueryPipeline pipeline(engine, backend, pcfg);
    results.push_back(pipeline.query(41));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].top.size(), results[0].top.size());
    for (std::size_t r = 0; r < results[0].top.size(); ++r) {
      EXPECT_EQ(results[i].top[r].node, results[0].top[r].node);
      EXPECT_DOUBLE_EQ(results[i].top[r].score, results[0].top[r].score);
    }
  }
}

TEST_F(SchedulerEquivalence, StripedReductionWithin1e12) {
  const Graph& g = paper_graph(0);
  MelopprConfig cfg = two_stage_config(Selection::top_ratio(0.05));
  cfg.k = g.num_nodes();
  Engine engine(g, cfg);
  const QueryResult serial = engine.query(55);

  CpuBackend backend(cfg.alpha);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.deterministic_reduction = false;
  QueryPipeline pipeline(engine, backend, pcfg);
  const QueryResult parallel = pipeline.query(55);

  const auto want = as_map(serial.top);
  for (const auto& [node, score] : as_map(parallel.top)) {
    const auto it = want.find(node);
    const double serial_score = it == want.end() ? 0.0 : it->second;
    EXPECT_NEAR(score, serial_score, 1e-12) << "node " << node;
  }
}

TEST_F(SchedulerEquivalence, BatchMatchesSerialBitwise) {
  // query_batch keeps the serial DFS schedule per query, so scores are
  // bit-identical to Engine::query — parallelism is across queries only.
  const Graph& g = paper_graph(1);
  const MelopprConfig cfg = two_stage_config(Selection::top_ratio(0.05), 30);
  Engine engine(g, cfg);
  CpuBackend backend(cfg.alpha);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);

  const std::vector<graph::NodeId> seeds{3, 17, 29, 41, 55, 67, 79, 91};
  const std::vector<QueryResult> batch = pipeline.query_batch(seeds);
  ASSERT_EQ(batch.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const QueryResult serial = engine.query(seeds[i]);
    ASSERT_EQ(batch[i].top.size(), serial.top.size()) << "seed " << seeds[i];
    for (std::size_t r = 0; r < serial.top.size(); ++r) {
      EXPECT_EQ(batch[i].top[r].node, serial.top[r].node);
      EXPECT_DOUBLE_EQ(batch[i].top[r].score, serial.top[r].score);
    }
  }
}

TEST_F(SchedulerEquivalence, SerialStatsUnchangedShape) {
  // The scheduler reports the same per-stage accounting the recursion did.
  const Graph& g = paper_graph(0);
  MelopprConfig cfg = two_stage_config(Selection::top_count(5), 10);
  Engine engine(g, cfg);
  const QueryResult r = engine.query(9);
  ASSERT_EQ(r.stats.stages.size(), 2u);
  EXPECT_EQ(r.stats.stages[0].balls, 1u);
  EXPECT_EQ(r.stats.stages[0].selected, 5u);
  EXPECT_EQ(r.stats.stages[1].balls, 5u);
  EXPECT_EQ(r.stats.total_balls(), 6u);
  EXPECT_EQ(r.stats.threads_used, 1u);
  EXPECT_DOUBLE_EQ(r.stats.diffusion_makespan_seconds,
                   r.stats.diffusion_serial_seconds);
  EXPECT_DOUBLE_EQ(r.stats.parallel_speedup(), 1.0);
}

}  // namespace
}  // namespace meloppr::core
