// The continuous-ingest scheduler (QueryPipeline::query_stream) and the
// SLO-aware serving front end built on it: mid-batch injection stays
// bit-identical to Engine::query, latency attribution is arrival-stamped,
// overload degrades into typed counted sheds, batches are cut by latency
// budget, and tenants cannot starve each other. Custom main: the stream
// hammer scales under MELOPPR_STRESS_ITERS for the sanitizer jobs.
#include "core/serving.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

MelopprConfig small_config() {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(12);
  return cfg;
}

const Graph& test_graph() {
  static Rng rng(test::test_seed());
  static const Graph g = graph::barabasi_albert(500, 2, 2, rng);
  return g;
}

void expect_bit_identical(const QueryResult& got, const QueryResult& want,
                          graph::NodeId seed) {
  ASSERT_EQ(got.top.size(), want.top.size()) << "seed " << seed;
  for (std::size_t r = 0; r < want.top.size(); ++r) {
    EXPECT_EQ(got.top[r].node, want.top[r].node) << "seed " << seed;
    EXPECT_DOUBLE_EQ(got.top[r].score, want.top[r].score) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// query_stream: the continuous-ingest scheduler itself.

TEST(QueryStream, MidBatchInjectionBitIdenticalAtEveryThreadCount) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 16; ++s) seeds.push_back((s * 31 + 7) % 500);
  std::vector<QueryResult> want;
  want.reserve(seeds.size());
  for (graph::NodeId s : seeds) want.push_back(engine.query(s));

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    PipelineConfig pcfg;
    pcfg.threads = threads;
    QueryPipeline pipeline(engine, backend, pcfg);

    SeedStream stream;
    // Two seeds are present at start; the rest are injected WHILE the
    // batch runs, from another thread, with pauses long enough that
    // workers actually go idle and must be woken event-driven.
    stream.push(seeds[0]);
    stream.push(seeds[1]);
    std::thread pusher([&] {
      for (std::size_t i = 2; i < seeds.size(); ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        stream.push(seeds[i]);
      }
      stream.close();
    });

    std::vector<QueryResult> got(seeds.size());
    pipeline.query_stream(stream, [&](std::size_t index, QueryResult&& r) {
      got[index] = std::move(r);
    });
    pusher.join();

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      expect_bit_identical(got[i], want[i], seeds[i]);
      // Popcount semantics under streaming too.
      EXPECT_GE(got[i].stats.threads_used, 1u);
      EXPECT_LE(got[i].stats.threads_used, threads);
    }
  }
}

TEST(QueryStream, ResponseTimesMonotoneOnOneWorker) {
  // K same-arrival queries on a single worker finish in claim order, so
  // arrival-stamped response times must be monotone — the headline bug was
  // exactly this: claim-clocked totals made the last query of a backlog
  // look as cheap as the first.
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 1;
  QueryPipeline pipeline(engine, backend, pcfg);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 8; ++s) seeds.push_back((s * 17 + 3) % 500);

  // Stream path.
  SeedStream stream;
  stream.push_all(seeds);
  stream.close();
  std::vector<QueryResult> got(seeds.size());
  pipeline.query_stream(stream, [&](std::size_t index, QueryResult&& r) {
    got[index] = std::move(r);
  });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_LE(got[i].stats.queue_seconds, got[i].stats.total_seconds + 1e-12);
    EXPECT_GT(got[i].stats.service_seconds(), 0.0);
    if (i > 0) {
      EXPECT_GE(got[i].stats.total_seconds + 1e-9,
                got[i - 1].stats.total_seconds)
          << "query " << i << " reported a response time shorter than the "
          << "one serviced before it — claim-clocked attribution is back";
      EXPECT_GE(got[i].stats.queue_seconds + 1e-9,
                got[i - 1].stats.queue_seconds);
    }
  }

  // Pinned path (work_stealing off): same contract, same clock fix.
  PipelineConfig pinned_cfg;
  pinned_cfg.threads = 1;
  pinned_cfg.work_stealing = false;
  QueryPipeline pinned(engine, backend, pinned_cfg);
  const std::vector<QueryResult> batch = pinned.query_batch(seeds);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(batch[i].stats.total_seconds + 1e-9,
              batch[i - 1].stats.total_seconds);
    EXPECT_GE(batch[i].stats.queue_seconds + 1e-9,
              batch[i - 1].stats.queue_seconds);
  }
}

TEST(QueryStream, BatchWallExcludesActivationAndPercentilesCohere) {
  // Two equal batches back to back: the second must not be charged for
  // one-time setup the first already paid (wall starts after
  // activate_lookahead), so equal work stays within a generous factor.
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 12; ++s) seeds.push_back((s * 13 + 1) % 500);

  QueryPipeline::BatchStats first;
  QueryPipeline::BatchStats second;
  (void)pipeline.query_batch(seeds, &first);
  (void)pipeline.query_batch(seeds, &second);

  EXPECT_GT(first.wall_seconds, 0.0);
  EXPECT_GT(second.wall_seconds, 0.0);
  // Generous: scheduler jitter is real, an unmetered activation bias is
  // 100x-scale when a cache warms lazily inside the "batch" window.
  EXPECT_LT(first.wall_seconds, second.wall_seconds * 100.0);
  EXPECT_LT(second.wall_seconds, first.wall_seconds * 100.0);

  for (const QueryPipeline::BatchStats* bs : {&first, &second}) {
    EXPECT_EQ(bs->queries, seeds.size());
    EXPECT_GT(bs->response_p50_seconds, 0.0);
    EXPECT_LE(bs->response_p50_seconds, bs->response_p99_seconds + 1e-12);
    EXPECT_LE(bs->response_p99_seconds, bs->response_p999_seconds + 1e-12);
    EXPECT_LE(bs->response_p999_seconds, bs->max_response_seconds + 1e-12);
    EXPECT_GE(bs->mean_queue_seconds, 0.0);
    EXPECT_LE(bs->mean_queue_seconds, bs->max_response_seconds + 1e-12);
  }
}

TEST(QueryStream, PushAfterCloseThrowsAndStreamIsSingleUse) {
  SeedStream stream;
  EXPECT_EQ(stream.push(1), 0u);
  EXPECT_EQ(stream.push(2), 1u);
  stream.close();
  EXPECT_TRUE(stream.closed());
  EXPECT_THROW(stream.push(3), std::logic_error);
  EXPECT_EQ(stream.size(), 2u);
}

// ---------------------------------------------------------------------------
// ServingFrontEnd: admission, shedding, deadlines, fairness.

ServingConfig frozen_config() {
  ServingConfig cfg;
  cfg.service_estimate_ewma = 0.0;  // deterministic batch formation
  return cfg;
}

TEST(ServingFrontEnd, ServesBitIdenticalAndConservesCounts) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingFrontEnd fe(pipeline, ServingConfig{});
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 24; ++s) seeds.push_back((s * 19 + 5) % 500);
  for (graph::NodeId s : seeds) {
    const Admission a = fe.submit(s);
    EXPECT_TRUE(a.admitted);
    EXPECT_EQ(a.reason, RejectReason::kNone);
    EXPECT_GT(a.ticket, 0u);
  }

  const std::vector<ServedQuery> served = fe.drain();
  ASSERT_EQ(served.size(), seeds.size());
  for (const ServedQuery& sq : served) {
    EXPECT_EQ(sq.status, ServeStatus::kOk);
    EXPECT_TRUE(sq.deadline_met);  // no deadline was set
    EXPECT_GE(sq.response_seconds, 0.0);
    EXPECT_LE(sq.queue_seconds, sq.response_seconds + 1e-12);
    expect_bit_identical(sq.result, engine.query(sq.seed), sq.seed);
  }

  const ServingStats s = fe.stats();
  EXPECT_EQ(s.submitted, seeds.size());
  EXPECT_EQ(s.admitted, seeds.size());
  EXPECT_EQ(s.completed, seeds.size());
  EXPECT_EQ(s.submitted, s.admitted + s.rejected_queue_full +
                             s.rejected_deadline + s.rejected_shutdown);
  EXPECT_EQ(s.admitted,
            s.completed + s.shed_deadline + s.in_flight + s.queued);
  EXPECT_LE(s.response_p50_seconds, s.response_p99_seconds + 1e-12);
  EXPECT_LE(s.response_p99_seconds, s.response_p999_seconds + 1e-12);
  fe.shutdown();
}

TEST(ServingFrontEnd, OverloadShedsWithTypedRejectsNeverHangs) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingConfig scfg = frozen_config();
  scfg.queue_capacity = 4;
  scfg.max_in_flight = 2;
  scfg.max_batch = 2;
  ServingFrontEnd fe(pipeline, scfg);

  // Submission is instant, service is not: with a 4-deep queue and 2 in
  // flight, a burst of 200 must hit kQueueFull — typed, counted, and
  // without ever blocking the submitter.
  std::size_t admitted = 0;
  std::size_t queue_full = 0;
  for (int i = 0; i < 200; ++i) {
    const Admission a = fe.submit(static_cast<graph::NodeId>(i % 500));
    if (a.admitted) {
      ++admitted;
    } else {
      EXPECT_EQ(a.reason, RejectReason::kQueueFull);
      ++queue_full;
    }
  }
  EXPECT_GT(queue_full, 0u) << "a 4-slot queue absorbed a 200-burst";
  EXPECT_GT(admitted, 0u);

  const std::vector<ServedQuery> served = fe.drain();
  EXPECT_EQ(served.size(), admitted);  // nothing lost, nothing invented
  const ServingStats s = fe.stats();
  EXPECT_EQ(s.submitted, 200u);
  EXPECT_EQ(s.admitted, admitted);
  EXPECT_EQ(s.rejected_queue_full, queue_full);
  EXPECT_EQ(s.admitted, s.completed + s.shed_deadline);

  fe.shutdown();
  // Past shutdown: still typed, still instant.
  const Admission late = fe.submit(1);
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, RejectReason::kShuttingDown);
}

TEST(ServingFrontEnd, ImpossibleDeadlineIsRejectedNotExecuted) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingConfig scfg = frozen_config();
  scfg.initial_service_estimate_seconds = 0.5;  // frozen: never learns down
  ServingFrontEnd fe(pipeline, scfg);

  const Admission a = fe.submit(7, 0, 0.001);  // 1ms budget vs 500ms service
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(a.reason, RejectReason::kDeadlineImpossible);
  // Deadline 0 = none, negative = config default (also none here).
  EXPECT_TRUE(fe.submit(7, 0, 0.0).admitted);
  EXPECT_TRUE(fe.submit(7).admitted);
  EXPECT_THROW(fe.submit(7, /*tenant=*/5), std::invalid_argument);
  (void)fe.drain();
  const ServingStats s = fe.stats();
  EXPECT_EQ(s.rejected_deadline, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ServingFrontEnd, BatchFormationCutsByLatencyBudgetNotCount) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingConfig scfg = frozen_config();
  scfg.initial_service_estimate_seconds = 0.01;
  scfg.batch_budget_seconds = 0.03;  // frozen estimate → at most 3 per batch
  scfg.max_batch = 64;               // the count cap would allow far more
  scfg.queue_capacity = 512;
  ServingFrontEnd fe(pipeline, scfg);

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(fe.submit(static_cast<graph::NodeId>((i * 11) % 500)).admitted);
  }
  (void)fe.drain();
  const ServingStats s = fe.stats();
  EXPECT_EQ(s.completed, 60u);
  EXPECT_GE(s.max_batch_size, 1u);
  EXPECT_LE(s.max_batch_size, 3u)
      << "the budget cut must bound batches at budget/estimate, not max_batch";
  EXPECT_GE(s.batches_formed, 60u / 3u);
  fe.shutdown();
}

TEST(ServingFrontEnd, FairQueueingKeepsFloodedTenantFromStarvingOthers) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingConfig scfg = frozen_config();
  scfg.tenants = 2;
  scfg.queue_capacity = 512;
  scfg.max_in_flight = 2;  // force a standing queue so formation order shows
  scfg.max_batch = 2;
  ServingFrontEnd fe(pipeline, scfg);

  // Tenant 0 floods 60 queries, tenant 1 trickles 6 — all submitted before
  // the backlog drains, so without round-robin tenant 1 would wait behind
  // the entire flood.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(fe.submit(static_cast<graph::NodeId>((i * 7) % 500), 0)
                    .admitted);
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fe.submit(static_cast<graph::NodeId>((i * 29 + 1) % 500), 1)
                    .admitted);
  }

  const std::vector<ServedQuery> served = fe.drain();
  ASSERT_EQ(served.size(), 66u);
  double max_wait_t1 = 0.0;
  double max_wait_t0 = 0.0;
  for (const ServedQuery& sq : served) {
    (sq.tenant == 1 ? max_wait_t1 : max_wait_t0) =
        std::max(sq.tenant == 1 ? max_wait_t1 : max_wait_t0,
                 sq.queue_seconds);
  }
  // Round-robin dispatches tenant 1's 6 queries within the first ~12
  // slots; tenant 0's tail waits behind its own flood. Strictly less —
  // with a 10x queue-depth gap the margin is enormous.
  EXPECT_LT(max_wait_t1, max_wait_t0)
      << "the flooded tenant's tail must wait longer than the trickle's";
  const ServingStats s = fe.stats();
  ASSERT_EQ(s.tenant_completed.size(), 2u);
  EXPECT_EQ(s.tenant_completed[0], 60u);
  EXPECT_EQ(s.tenant_completed[1], 6u);
  fe.shutdown();
}

TEST(ServingFrontEnd, PipelineErrorSurfacesThroughDrainNotAHang) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingFrontEnd fe(pipeline, frozen_config());
  ASSERT_TRUE(fe.submit(5'000'000).admitted);  // out-of-range: worker throws
  EXPECT_ANY_THROW(fe.drain());
  // Post-mortem: intake rejects typed, shutdown is clean (the error was
  // already delivered once, so it is not thrown again).
  EXPECT_EQ(fe.submit(1).reason, RejectReason::kShuttingDown);
  EXPECT_NO_THROW(fe.shutdown());
}

TEST(ServingFrontEnd, ConfigValidationRejectsNonsense) {
  ServingConfig cfg;
  cfg.tenants = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServingConfig{};
  cfg.queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServingConfig{};
  cfg.service_estimate_ewma = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ServingConfig{};
  cfg.initial_service_estimate_seconds = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ServingConfig{}.validate());
}

// ---------------------------------------------------------------------------
// Stress: many producers hammering the stream path under the sanitizers.

TEST(ServingFrontEnd, ConcurrentProducerHammerConservesEverything) {
  const Graph& g = test_graph();
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);

  ServingConfig scfg;
  scfg.tenants = 3;
  scfg.queue_capacity = 64;
  scfg.default_deadline_seconds = 0.0;
  ServingFrontEnd fe(pipeline, scfg);

  const std::size_t per_producer = test::stress_iters(120);
  constexpr std::size_t kProducers = 3;
  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        const auto seed = static_cast<graph::NodeId>((i * 13 + t * 101) % 500);
        // A third of the traffic carries a deadline loose enough to pass
        // admission but tight enough that overload sheds some of it.
        const double deadline = (i % 3 == 0) ? 0.25 : 0.0;
        const Admission a = fe.submit(seed, t % scfg.tenants, deadline);
        if (a.admitted) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_NE(a.reason, RejectReason::kNone);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& p : producers) p.join();

  const std::vector<ServedQuery> served = fe.drain();
  EXPECT_EQ(served.size(), admitted.load());
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (const ServedQuery& sq : served) {
    if (sq.status == ServeStatus::kOk) {
      ++ok;
      EXPECT_FALSE(sq.result.top.empty());
    } else {
      ++shed;
      EXPECT_GT(sq.deadline_seconds, 0.0);  // only deadlined work sheds
    }
  }
  const ServingStats s = fe.stats();
  EXPECT_EQ(s.submitted, kProducers * per_producer);
  EXPECT_EQ(s.admitted, admitted.load());
  EXPECT_EQ(s.rejected_queue_full + s.rejected_deadline + s.rejected_shutdown,
            rejected.load());
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.shed_deadline, shed);
  EXPECT_EQ(s.admitted, s.completed + s.shed_deadline);
  fe.shutdown();

  // The stream-wide pipeline accounting is live after shutdown.
  EXPECT_EQ(fe.pipeline_stats().queries, ok);
}

}  // namespace
}  // namespace meloppr::core

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
