#include "core/selector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace meloppr::core {
namespace {

TEST(Selection, FactoriesAndDescribe) {
  EXPECT_EQ(Selection::all().mode, Selection::Mode::kAll);
  EXPECT_EQ(Selection::top_ratio(0.1).ratio, 0.1);
  EXPECT_EQ(Selection::top_count(5).count, 5u);
  EXPECT_EQ(Selection::above(0.01).threshold, 0.01);
  EXPECT_NE(Selection::top_ratio(0.05).describe().find("5%"),
            std::string::npos);
  EXPECT_EQ(Selection::all().describe(), "all");
}

TEST(Selection, ValidationRejectsBadParams) {
  EXPECT_THROW(Selection::top_ratio(0.0).validate(), std::invalid_argument);
  EXPECT_THROW(Selection::top_ratio(1.5).validate(), std::invalid_argument);
  EXPECT_THROW(Selection::top_count(0).validate(), std::invalid_argument);
  EXPECT_THROW(Selection::above(-1.0).validate(), std::invalid_argument);
  EXPECT_NO_THROW(Selection::all().validate());
}

TEST(SelectNextStage, AllModeTakesEveryNonzero) {
  const std::vector<double> residual = {0.0, 0.5, 0.0, 0.2, 0.3};
  auto sel = select_next_stage(residual, Selection::all());
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0].local, 1u);  // 0.5
  EXPECT_EQ(sel[1].local, 4u);  // 0.3
  EXPECT_EQ(sel[2].local, 3u);  // 0.2
}

TEST(SelectNextStage, CountMode) {
  const std::vector<double> residual = {0.1, 0.5, 0.4, 0.2};
  auto sel = select_next_stage(residual, Selection::top_count(2));
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].local, 1u);
  EXPECT_EQ(sel[1].local, 2u);
}

TEST(SelectNextStage, CountLargerThanSupportIsClamped) {
  const std::vector<double> residual = {0.0, 0.5};
  auto sel = select_next_stage(residual, Selection::top_count(10));
  EXPECT_EQ(sel.size(), 1u);
}

TEST(SelectNextStage, RatioIsRelativeToBallSizeNotSupport) {
  // 10 nodes, ratio 0.2 → ⌈2⌉ nodes even though 5 have non-zero residual.
  const std::vector<double> residual = {0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.0, 0.0, 0.0, 0.0, 0.0};
  auto sel = select_next_stage(residual, Selection::top_ratio(0.2));
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].local, 4u);
  EXPECT_EQ(sel[1].local, 3u);
}

TEST(SelectNextStage, RatioCeilsToAtLeastOne) {
  const std::vector<double> residual = {0.1, 0.2, 0.3};
  auto sel = select_next_stage(residual, Selection::top_ratio(0.01));
  EXPECT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].local, 2u);
}

TEST(SelectNextStage, ThresholdMode) {
  const std::vector<double> residual = {0.05, 0.5, 0.01, 0.2};
  auto sel = select_next_stage(residual, Selection::above(0.04));
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0].local, 1u);
  EXPECT_EQ(sel[1].local, 3u);
  EXPECT_EQ(sel[2].local, 0u);
}

TEST(SelectNextStage, ThresholdIsStrict) {
  const std::vector<double> residual = {0.1, 0.1};
  EXPECT_TRUE(select_next_stage(residual, Selection::above(0.1)).empty());
}

TEST(SelectNextStage, TiesBrokenByLocalId) {
  const std::vector<double> residual = {0.5, 0.5, 0.5};
  auto sel = select_next_stage(residual, Selection::top_count(2));
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].local, 0u);
  EXPECT_EQ(sel[1].local, 1u);
}

TEST(SelectNextStage, EmptyResidualGivesEmptySelection) {
  const std::vector<double> residual(8, 0.0);
  EXPECT_TRUE(select_next_stage(residual, Selection::all()).empty());
  EXPECT_TRUE(
      select_next_stage(residual, Selection::top_ratio(0.5)).empty());
}

TEST(SelectNextStage, NegativeResidualIsAnInvariantViolation) {
  const std::vector<double> residual = {0.1, -0.2};
  EXPECT_THROW(select_next_stage(residual, Selection::all()),
               InvariantViolation);
}

TEST(SelectNextStage, DenormalResidualsAreFilteredNotSelected) {
  // A denormal residual would become a zero-progress stage task (one
  // α-scaling step underflows it to nothing); the selector filters it so
  // the engine never has to abort on a non-positive mass.
  const std::vector<double> residual = {0.5,
                                        std::numeric_limits<double>::denorm_min(),
                                        1e-320,  // subnormal
                                        0.0, 0.25};
  const auto sel = select_next_stage(residual, Selection::all());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].local, 0u);
  EXPECT_EQ(sel[1].local, 4u);
  for (const auto& sn : sel) {
    EXPECT_TRUE(std::isnormal(sn.residual));
    EXPECT_GT(sn.residual, 0.0);
  }
}

TEST(SelectNextStage, NonFiniteResidualIsAnInvariantViolation) {
  const std::vector<double> residual = {
      0.1, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(select_next_stage(residual, Selection::all()),
               InvariantViolation);
}

TEST(SelectNextStage, ResidualValuesAreCarried) {
  const std::vector<double> residual = {0.25, 0.75};
  auto sel = select_next_stage(residual, Selection::all());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_DOUBLE_EQ(sel[0].residual, 0.75);
  EXPECT_DOUBLE_EQ(sel[1].residual, 0.25);
}

}  // namespace
}  // namespace meloppr::core
