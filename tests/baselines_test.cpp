// Baseline algorithms: single-stage local PPR (the paper's comparison
// baseline / ground truth), Monte-Carlo α-RW, and forward push.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ppr/forward_push.hpp"
#include "ppr/local_ppr.hpp"
#include "ppr/monte_carlo.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {
namespace {

using graph::Graph;

TEST(LocalPpr, SeedRanksFirst) {
  Rng rng(31);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  LocalPprResult r = local_ppr(g, 5, {0.85, 6, 10});
  ASSERT_FALSE(r.top.empty());
  // With (1−α) restart mass parked at the seed every iteration, the seed
  // dominates its neighborhood.
  EXPECT_EQ(r.top[0].node, 5u);
}

TEST(LocalPpr, ScoresSumToOne) {
  Rng rng(32);
  Graph g = graph::erdos_renyi(200, 500, rng);
  graph::NodeId seed = 0;
  while (g.degree(seed) == 0) ++seed;
  LocalPprResult r = local_ppr(g, seed, {0.85, 4, 20});
  double total = 0.0;
  for (const auto& sn : r.scores) total += sn.score;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LocalPpr, RecordsWorkloadAccounting) {
  Graph g = graph::fixtures::complete(12);
  LocalPprResult r = local_ppr(g, 0, {0.85, 2, 5});
  EXPECT_EQ(r.ball_nodes, 12u);
  EXPECT_EQ(r.ball_edges, 66u);
  EXPECT_GT(r.peak_bytes, 0u);
  EXPECT_GT(r.edge_ops, 0u);
  EXPECT_GE(r.bfs_seconds, 0.0);
  EXPECT_GE(r.diffusion_seconds, 0.0);
}

TEST(LocalPpr, MeterBalancesToZero) {
  Graph g = graph::fixtures::cycle(30);
  MemoryMeter meter;
  local_ppr(g, 3, {0.85, 3, 5}, &meter);
  EXPECT_EQ(meter.current_bytes(), 0u);
  EXPECT_GT(meter.peak_bytes(), 0u);
  EXPECT_GT(meter.peak_bytes("baseline/ball"), 0u);
}

TEST(LocalPpr, TopKRespectsK) {
  Graph g = graph::fixtures::complete(20);
  LocalPprResult r = local_ppr(g, 0, {0.85, 2, 7});
  EXPECT_EQ(r.top.size(), 7u);
}

TEST(MonteCarlo, ApproachesExactScoresWithManyWalks) {
  Rng rng(33);
  Graph g = graph::barabasi_albert(150, 2, 2, rng);
  const graph::NodeId seed = 4;
  LocalPprResult exact = local_ppr(g, seed, {0.85, 6, 150});
  Rng walk_rng(7);
  MonteCarloResult mc =
      monte_carlo_ppr(g, seed, {0.85, 6, 200000, 150}, walk_rng);
  // Compare the seed's own score (largest, lowest relative error).
  double exact_seed = 0.0;
  for (const auto& sn : exact.scores) {
    if (sn.node == seed) exact_seed = sn.score;
  }
  double mc_seed = 0.0;
  for (const auto& sn : mc.scores) {
    if (sn.node == seed) mc_seed = sn.score;
  }
  EXPECT_NEAR(mc_seed, exact_seed, 0.01);
}

TEST(MonteCarlo, FrequenciesSumToOne) {
  Rng rng(34);
  Graph g = graph::fixtures::complete(8);
  MonteCarloResult mc = monte_carlo_ppr(g, 0, {0.85, 6, 5000, 8}, rng);
  double total = 0.0;
  for (const auto& sn : mc.scores) total += sn.score;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MonteCarlo, StepsBoundedByLengthTimesWalks) {
  Rng rng(35);
  Graph g = graph::fixtures::cycle(20);
  MonteCarloParams params{0.85, 6, 1000, 5};
  MonteCarloResult mc = monte_carlo_ppr(g, 0, params, rng);
  EXPECT_LE(mc.steps_taken, params.max_length * params.num_walks);
  EXPECT_GT(mc.steps_taken, 0u);
}

TEST(MonteCarlo, BadSeedThrows) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g = b.build();
  Rng rng(1);
  EXPECT_THROW(monte_carlo_ppr(g, 2, {}, rng), std::invalid_argument);
  EXPECT_THROW(monte_carlo_ppr(g, 9, {}, rng), std::invalid_argument);
}

TEST(ForwardPush, InvariantMassIsConserved) {
  // p-mass + residual mass = 1 at every point of the computation; at
  // termination the residual bound is ε·Σdeg at most.
  Rng rng(36);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  ForwardPushResult r = forward_push_ppr(g, 3, {0.85, 1e-7, 20, 1u << 30});
  double p_mass = 0.0;
  for (const auto& sn : r.scores) p_mass += sn.score;
  EXPECT_NEAR(p_mass + r.residual_mass, 1.0, 1e-9);
  EXPECT_LT(r.residual_mass, 0.05);
}

TEST(ForwardPush, AgreesWithExactOnTopNodes) {
  Rng rng(37);
  Graph g = graph::barabasi_albert(150, 2, 2, rng);
  const graph::NodeId seed = 9;
  LocalPprResult exact = local_ppr(g, seed, {0.85, 6, 10});
  ForwardPushResult push = forward_push_ppr(g, seed, {0.85, 1e-9, 10});
  // Forward push approximates untruncated PPR vs our L=6 truncation, so
  // expect strong but not perfect top-k agreement.
  const double prec = precision_at_k(exact.top, push.top, 10);
  EXPECT_GE(prec, 0.7);
}

TEST(ForwardPush, EpsilonControlsWork) {
  Rng rng(38);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  ForwardPushResult coarse = forward_push_ppr(g, 3, {0.85, 1e-3, 10});
  ForwardPushResult fine = forward_push_ppr(g, 3, {0.85, 1e-8, 10});
  EXPECT_LT(coarse.pushes, fine.pushes);
  EXPECT_GT(fine.residual_mass, 0.0);
  EXPECT_LT(fine.residual_mass, coarse.residual_mass);
}

TEST(ForwardPush, MaxPushesCapIsHonored) {
  Rng rng(39);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  ForwardPushResult r = forward_push_ppr(g, 3, {0.85, 1e-12, 10, 5});
  EXPECT_LE(r.pushes, 5u);
}

TEST(ForwardPush, BadSeedThrows) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_THROW(forward_push_ppr(g, 2, {}), std::invalid_argument);
}

}  // namespace
}  // namespace meloppr::ppr
