// End-to-end integration on calibrated paper graphs: baseline vs
// MeLoPPR-CPU vs MeLoPPR-FPGA across the full public API, exercising the
// same pipeline the benchmark harnesses run (at reduced size).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/memory_model.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/host.hpp"
#include "hw/resource_model.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr {
namespace {

using core::Engine;
using core::MelopprConfig;
using core::Selection;
using graph::Graph;
using graph::NodeId;
using graph::PaperGraphId;

struct Pipeline {
  Graph g;
  MelopprConfig cfg;

  static Pipeline make(PaperGraphId id, double scale, double ratio) {
    Rng rng(1234);
    Pipeline p{graph::make_paper_graph(id, rng, scale), {}};
    p.cfg.stage_lengths = {3, 3};
    p.cfg.k = 50;
    p.cfg.selection =
        ratio >= 1.0 ? Selection::all() : Selection::top_ratio(ratio);
    return p;
  }
};

TEST(Integration, CiteseerFullPipelinePrecisionLadder) {
  Pipeline p = Pipeline::make(PaperGraphId::kG1Citeseer, 1.0, 1.0);
  Rng rng(7);
  double prec_small = 0.0;
  double prec_large = 0.0;
  const int seeds = 5;
  for (int i = 0; i < seeds; ++i) {
    const NodeId seed = graph::random_seed_node(p.g, rng);
    ppr::LocalPprResult base = ppr::local_ppr(p.g, seed, {0.85, 6, p.cfg.k});

    p.cfg.selection = Selection::top_ratio(0.01);
    core::QueryResult small = Engine(p.g, p.cfg).query(seed);
    p.cfg.selection = Selection::top_ratio(0.30);
    core::QueryResult large = Engine(p.g, p.cfg).query(seed);

    prec_small += ppr::precision_at_k(base.top, small.top, p.cfg.k);
    prec_large += ppr::precision_at_k(base.top, large.top, p.cfg.k);
  }
  prec_small /= seeds;
  prec_large /= seeds;
  // Fig. 6 shape: more next-stage nodes → higher precision, and 30% is
  // already close to exact.
  EXPECT_LE(prec_small, prec_large + 1e-9);
  EXPECT_GE(prec_large, 0.85);
}

TEST(Integration, MemorySavingsOnAllSmallGraphs) {
  // Structural memory claims that must hold on *every* query: the largest
  // MeLoPPR ball is smaller than the baseline's depth-L ball, and the FPGA
  // BRAM footprint is far below the CPU footprint. The full CPU peak
  // (ball + exact aggregation map) wins only on average — the paper's own
  // Table II reports per-seed worst cases down to 0.55× — so the total-peak
  // claim is asserted as a geometric mean over seeds.
  Rng rng(8);
  for (PaperGraphId id : graph::small_paper_graphs()) {
    Pipeline p = Pipeline::make(id, 1.0, 0.05);
    Engine engine(p.g, p.cfg);
    double log_reduction_sum = 0.0;
    const int seeds = 5;
    for (int i = 0; i < seeds; ++i) {
      const NodeId seed = graph::random_seed_node(p.g, rng);
      ppr::LocalPprResult base =
          ppr::local_ppr(p.g, seed, {0.85, 6, p.cfg.k});
      core::QueryResult r = engine.query(seed);
      log_reduction_sum += std::log(static_cast<double>(base.peak_bytes) /
                                    static_cast<double>(r.stats.peak_bytes));
      const std::size_t ball_bytes = core::cpu_ball_bytes(
          r.stats.stages[0].max_ball_nodes,
          2 * r.stats.stages[0].max_ball_edges);
      EXPECT_LT(ball_bytes, base.peak_bytes) << graph::spec_for(id).name;
      const std::size_t bram = core::fpga_bram_bytes(
          r.stats.stages[0].max_ball_nodes, r.stats.stages[0].max_ball_edges);
      EXPECT_LT(bram * 5, base.peak_bytes) << graph::spec_for(id).name;
    }
    const double geomean_reduction = std::exp(log_reduction_sum / seeds);
    EXPECT_GT(geomean_reduction, 0.8) << graph::spec_for(id).name;
  }
}

TEST(Integration, HybridFpgaPipelineOnCora) {
  Pipeline p = Pipeline::make(PaperGraphId::kG2Cora, 1.0, 0.10);
  Rng rng(9);
  const NodeId seed = graph::random_seed_node(p.g, rng);

  hw::AcceleratorConfig acfg;
  acfg.parallelism = 16;
  hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      0.85, 10, hw::DChoice::kHalfMaxDegree, p.g.average_degree(),
      p.g.max_degree(), p.g.num_nodes());
  hw::FpgaBackend fpga{hw::Accelerator(acfg, quant)};
  core::TopCKAggregator table(10 * p.cfg.k);

  Engine engine(p.g, p.cfg);
  core::QueryResult r = engine.query(seed, fpga, table);

  ppr::LocalPprResult base = ppr::local_ppr(p.g, seed, {0.85, 6, p.cfg.k});
  const double prec = ppr::precision_at_k(base.top, r.top, p.cfg.k);
  EXPECT_GE(prec, 0.35);
  EXPECT_GT(fpga.runs(), 1u);
  EXPECT_GT(fpga.total_cycles().total(), 0u);
}

TEST(Integration, ResourceModelAdmitsTheShippedDesign) {
  // The P=16 configuration the paper evaluates must fit the KC705.
  hw::ResourceModel model;
  EXPECT_TRUE(model.estimate(16).fits);
}

TEST(Integration, ScaledDownBigGraphsWork) {
  // G4–G6 at 1% scale: the full pipeline holds together on the community
  // and social families too.
  Rng rng(10);
  for (PaperGraphId id :
       {PaperGraphId::kG4Amazon, PaperGraphId::kG5Dblp,
        PaperGraphId::kG6Youtube}) {
    Pipeline p = Pipeline::make(id, 0.01, 0.05);
    const NodeId seed = graph::random_seed_node(p.g, rng);
    Engine engine(p.g, p.cfg);
    core::QueryResult r = engine.query(seed);
    EXPECT_FALSE(r.top.empty()) << graph::spec_for(id).name;
    EXPECT_EQ(r.top[0].node, seed) << graph::spec_for(id).name;
  }
}

TEST(Integration, QueriesFromManySeedsNeverThrow) {
  Pipeline p = Pipeline::make(PaperGraphId::kG1Citeseer, 0.5, 0.05);
  Engine engine(p.g, p.cfg);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const NodeId seed = graph::random_seed_node(p.g, rng);
    EXPECT_NO_THROW((void)engine.query(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace meloppr
