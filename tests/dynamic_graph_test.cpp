// The dynamic-graph path: delta-overlay correctness, surgical cache
// invalidation, and the headline equivalence property — after any number
// of incremental updates, query scores are bit-identical to a from-scratch
// rebuild of the graph at the same version, across every generator family
// and thread count.
#include "graph/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/update_streams.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {
namespace {

using core::Engine;
using core::MelopprConfig;
using core::PipelineConfig;
using core::QueryPipeline;
using core::QueryResult;
using core::ShardedBallCache;

// Small stages + small k keep the equivalence sweep fast; kFloat64 is
// required here — the fixed-point quantizer derives its scale from the
// graph's max degree, which updates change, so the dynamic stack documents
// float64 as the dynamic-serving numerics.
MelopprConfig small_config() {
  MelopprConfig cfg;
  cfg.stage_lengths = {2, 2};
  cfg.k = 50;
  return cfg;
}

/// Field-by-field Subgraph equality — the bit-identical claim, not just
/// isomorphism.
void expect_same_ball(const Subgraph& a, const Subgraph& b,
                      const std::string& context) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context;
  ASSERT_EQ(a.num_arcs(), b.num_arcs()) << context;
  for (NodeId local = 0; local < a.num_nodes(); ++local) {
    ASSERT_EQ(a.to_global(local), b.to_global(local)) << context;
    ASSERT_EQ(a.depth(local), b.depth(local)) << context;
    ASSERT_EQ(a.global_degree(local), b.global_degree(local)) << context;
    const auto na = a.neighbors(local);
    const auto nb = b.neighbors(local);
    ASSERT_EQ(na.size(), nb.size()) << context;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << context << " local=" << local;
    }
  }
}

void expect_same_top(const QueryResult& got, const QueryResult& want,
                     const std::string& context) {
  ASSERT_EQ(got.top.size(), want.top.size()) << context;
  for (std::size_t i = 0; i < got.top.size(); ++i) {
    ASSERT_EQ(got.top[i].node, want.top[i].node) << context << " rank " << i;
    // Bit-identical, not approximately equal: the merged-overlay BFS must
    // reproduce the rebuilt CSR's discovery order exactly, and both
    // schedulers replay the serial depth-first reduction order.
    ASSERT_EQ(got.top[i].score, want.top[i].score) << context << " rank " << i;
  }
}

TEST(DynamicGraph, ApplyValidatesAndVersionIsMonotone) {
  DynamicGraph dyn(fixtures::path(6));
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(dyn.num_edges(), 5u);

  EXPECT_THROW(dyn.apply({2, 2, true}), std::invalid_argument);   // self-loop
  EXPECT_THROW(dyn.apply({0, 99, true}), std::invalid_argument);  // range
  EXPECT_THROW(dyn.apply({0, 1, true}), std::invalid_argument);   // present
  EXPECT_THROW(dyn.apply({0, 5, false}), std::invalid_argument);  // absent
  EXPECT_EQ(dyn.version(), 0u) << "failed updates must not burn a version";

  EXPECT_EQ(dyn.apply({0, 5, true}), 1u);
  EXPECT_EQ(dyn.apply({0, 1, false}), 2u);
  EXPECT_EQ(dyn.version(), 2u);
  EXPECT_TRUE(dyn.has_edge(0, 5));
  EXPECT_FALSE(dyn.has_edge(0, 1));
  EXPECT_EQ(dyn.num_edges(), 5u);
  EXPECT_EQ(dyn.degree(0), 1u);  // lost 1, gained 5

  // Insert-after-delete and delete-after-insert cancel in the overlay.
  EXPECT_EQ(dyn.apply({0, 1, true}), 3u);
  EXPECT_EQ(dyn.apply({0, 5, false}), 4u);
  EXPECT_EQ(dyn.delta_edges(), 0u);
  EXPECT_TRUE(dyn.has_edge(0, 1));
}

TEST(DynamicGraph, MergedExtractionMatchesRebuild) {
  Rng rng(test::test_seed() ^ 0xba11);
  const Graph base = community_graph(400, 8, 6.0, 1.5, rng);
  DynamicGraph dyn(base);

  UpdateStreamConfig scfg;
  scfg.count = 80;
  Rng srng = rng.fork(1);
  const std::vector<EdgeUpdate> stream =
      make_update_stream(base, UpdateWorkload::kRecommenderChurn, scfg, srng);

  std::size_t applied = 0;
  for (const EdgeUpdate& u : stream) {
    dyn.apply(u);
    if (++applied % 16 != 0) continue;
    const Graph rebuilt = dyn.materialize();
    ASSERT_EQ(rebuilt.num_edges(), dyn.num_edges());
    for (int probe = 0; probe < 6; ++probe) {
      const NodeId root = u.u;  // roots near the churn see the overlay
      for (unsigned radius : {1u, 2u, 3u}) {
        std::uint64_t seen = 0;
        const Subgraph got = dyn.extract_ball(root, radius, &seen);
        EXPECT_EQ(seen, dyn.version());
        const Subgraph want = extract_ball(rebuilt, root, radius);
        expect_same_ball(got, want,
                         "root=" + std::to_string(root) +
                             " radius=" + std::to_string(radius) +
                             " after=" + std::to_string(applied));
      }
    }
  }
}

TEST(DynamicGraph, CompactionPreservesContentAndVersion) {
  Rng rng(test::test_seed() ^ 0xc0de);
  const Graph base = erdos_renyi(300, 900, rng);
  DynamicGraphConfig dcfg;
  dcfg.compaction_fraction = 0.01;  // force frequent folds
  DynamicGraph dyn(base, dcfg);

  UpdateStreamConfig scfg;
  scfg.count = 120;
  Rng srng = rng.fork(2);
  const std::vector<EdgeUpdate> stream =
      make_update_stream(base, UpdateWorkload::kRecommenderChurn, scfg, srng);
  for (const EdgeUpdate& u : stream) dyn.apply(u);

  EXPECT_GT(dyn.compactions(), 0u);
  EXPECT_EQ(dyn.version(), stream.size())
      << "compaction changes representation, never the version";

  const Graph rebuilt = dyn.materialize();
  EXPECT_EQ(rebuilt.num_edges(), dyn.num_edges());
  for (NodeId root = 0; root < 20; ++root) {
    if (dyn.degree(root) == 0) continue;
    expect_same_ball(dyn.extract_ball(root, 2), extract_ball(rebuilt, root, 2),
                     "post-compaction root=" + std::to_string(root));
  }
}

TEST(DynamicGraph, TouchedSinceProbes) {
  DynamicGraph dyn(fixtures::path(100));
  std::uint64_t v0 = 0;
  const Subgraph ball = dyn.extract_ball(0, 2, &v0);  // {0, 1, 2}
  EXPECT_EQ(v0, 0u);

  dyn.apply({50, 60, true});  // far from the ball
  std::uint64_t checked = 0;
  EXPECT_FALSE(dyn.touched_since(ball, v0, &checked));
  EXPECT_EQ(checked, 1u);

  dyn.apply({2, 4, true});  // endpoint 2 is a ball member
  EXPECT_TRUE(dyn.touched_since(ball, v0));
  EXPECT_FALSE(dyn.touched_since(ball, dyn.version()));

  // Past the history window the probe must answer conservatively.
  DynamicGraphConfig tiny;
  tiny.history_capacity = 4;
  DynamicGraph short_mem(fixtures::path(100), tiny);
  const Subgraph far_ball = short_mem.extract_ball(0, 1, nullptr);
  for (NodeId i = 10; i < 20; ++i) short_mem.apply({i, i + 20, true});
  EXPECT_TRUE(short_mem.touched_since(far_ball, 0))
      << "probe beyond the retained history must claim staleness";
}

TEST(UpdateStreams, ValidAcrossFamiliesAndWorkloads) {
  Rng rng(test::test_seed() ^ 0x57125);
  const std::vector<std::pair<std::string, Graph>> families = [&] {
    std::vector<std::pair<std::string, Graph>> out;
    Rng g = rng.fork(10);
    out.emplace_back("er", erdos_renyi(300, 900, g));
    out.emplace_back("ba", barabasi_albert(300, 2.0, g));
    out.emplace_back("ws", watts_strogatz(300, 6, 0.1, g));
    out.emplace_back("rmat", rmat(9, 1200, 0.45, 0.22, 0.22, g));
    out.emplace_back("comm", community_graph(300, 6, 5.0, 1.0, g));
    return out;
  }();

  for (const auto& [name, base] : families) {
    for (const UpdateWorkload wl :
         {UpdateWorkload::kRecommenderChurn, UpdateWorkload::kCitationGrowth}) {
      UpdateStreamConfig scfg;
      scfg.count = 150;
      Rng srng = rng.fork(wl == UpdateWorkload::kCitationGrowth ? 20 : 21);
      const std::vector<EdgeUpdate> stream =
          make_update_stream(base, wl, scfg, srng);
      EXPECT_FALSE(stream.empty()) << name;

      DynamicGraph dyn(base);
      for (const EdgeUpdate& u : stream) {
        if (wl == UpdateWorkload::kCitationGrowth) {
          EXPECT_TRUE(u.insert) << name << ": citation growth is insert-only";
        }
        ASSERT_NO_THROW(dyn.apply(u)) << name;
        if (!u.insert) {
          // The no-isolation guarantee concurrent queries rely on.
          EXPECT_GE(dyn.degree(u.u), 1u) << name;
          EXPECT_GE(dyn.degree(u.v), 1u) << name;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The tentpole property: incremental == rebuild, bit-identical, across all
// five generator families, three update checkpoints, and 1/2/4/8 threads.
// Stack under test: DynamicGraph + bind_dynamic_graph cache + versioned
// engine + work-stealing pipeline, with the cache kept WARM across updates
// so surgical invalidation (not clear()) is what preserves correctness.
// ---------------------------------------------------------------------------
TEST(DynamicGraph, IncrementalEqualsRebuildAcrossFamilies) {
  Rng rng(test::test_seed() ^ 0xeb01);
  const MelopprConfig mcfg = small_config();
  constexpr std::size_t kChunks = 3;
  constexpr std::size_t kChunkSize = 40;
  constexpr std::size_t kSeedsPerCheckpoint = 5;

  struct Family {
    std::string name;
    Graph base;
  };
  std::vector<Family> families;
  {
    Rng g = rng.fork(1);
    families.push_back({"er", erdos_renyi(700, 2100, g)});
    families.push_back({"ba", barabasi_albert(700, 2.0, g)});
    families.push_back({"ws", watts_strogatz(700, 6, 0.1, g)});
    families.push_back({"rmat", rmat(10, 2800, 0.45, 0.22, 0.22, g)});
    families.push_back({"comm", community_graph(700, 10, 6.0, 1.5, g)});
  }

  for (const Family& fam : families) {
    UpdateStreamConfig scfg;
    scfg.count = kChunks * kChunkSize;
    Rng srng = rng.fork(2);
    const std::vector<EdgeUpdate> stream = make_update_stream(
        fam.base, UpdateWorkload::kRecommenderChurn, scfg, srng);
    ASSERT_GE(stream.size(), kChunks) << fam.name;
    const std::size_t chunk = stream.size() / kChunks;

    // Seeds with base degree > 0 stay valid forever: churn deletes never
    // isolate a vertex.
    std::vector<NodeId> seeds;
    Rng seed_rng = rng.fork(3);
    while (seeds.size() < kSeedsPerCheckpoint) {
      const NodeId s =
          static_cast<NodeId>(seed_rng.below(fam.base.num_nodes()));
      if (fam.base.degree(s) > 0) seeds.push_back(s);
    }

    // Reference pass: one DynamicGraph advanced chunk by chunk; at each
    // checkpoint the graph is rebuilt from scratch and queried serially.
    std::vector<std::vector<QueryResult>> reference(kChunks);
    {
      DynamicGraph ref_dyn(fam.base);
      for (std::size_t c = 0; c < kChunks; ++c) {
        const std::size_t end = c + 1 == kChunks ? stream.size()
                                                 : (c + 1) * chunk;
        for (std::size_t i = c * chunk; i < end; ++i) {
          ref_dyn.apply(stream[i]);
        }
        const Graph rebuilt = ref_dyn.materialize();
        Engine ref_engine(rebuilt, mcfg);
        for (const NodeId s : seeds) {
          reference[c].push_back(ref_engine.query(s));
        }
      }
    }

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      DynamicGraph dyn(fam.base);
      ShardedBallCache cache(fam.base, 8u << 20, 4);
      cache.bind_dynamic_graph(dyn);
      Engine engine(fam.base, mcfg);
      engine.set_shared_ball_cache(&cache);
      engine.set_dynamic_graph(&dyn);
      const auto backend = core::make_cpu_backend(fam.base, mcfg);
      PipelineConfig pcfg;
      pcfg.threads = threads;
      QueryPipeline pipeline(engine, *backend, pcfg);

      // Warm the cache before any update so the checkpoints exercise
      // invalidation of genuinely resident balls.
      (void)pipeline.query_batch(seeds);

      for (std::size_t c = 0; c < kChunks; ++c) {
        const std::size_t end = c + 1 == kChunks ? stream.size()
                                                 : (c + 1) * chunk;
        for (std::size_t i = c * chunk; i < end; ++i) {
          dyn.apply(stream[i]);
        }
        const std::vector<QueryResult> got = pipeline.query_batch(seeds);
        ASSERT_EQ(got.size(), seeds.size());
        for (std::size_t i = 0; i < seeds.size(); ++i) {
          expect_same_top(got[i], reference[c][i],
                          fam.name + " threads=" + std::to_string(threads) +
                              " checkpoint=" + std::to_string(c) +
                              " seed=" + std::to_string(seeds[i]));
          EXPECT_EQ(got[i].stats.graph_version, dyn.version())
              << fam.name << " admission stamp";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invalidation precision: one edge update invalidates exactly the resident
// balls containing an endpoint — counted against a brute-force membership
// scan — and every untouched ball is still a hit afterwards.
// ---------------------------------------------------------------------------
TEST(DynamicGraph, InvalidationIsSurgical) {
  Rng rng(test::test_seed() ^ 0x5039);
  const Graph base = community_graph(500, 10, 6.0, 1.5, rng);
  DynamicGraph dyn(base);
  ShardedBallCache cache(base, 32u << 20, 4);
  cache.bind_dynamic_graph(dyn);

  // Warm: demand-fetch balls for a spread of roots.
  std::vector<NodeId> roots;
  for (NodeId r = 0; r < base.num_nodes() && roots.size() < 120; r += 4) {
    if (base.degree(r) == 0) continue;
    roots.push_back(r);
    (void)cache.fetch(r, 2);
  }
  const auto resident_before = cache.resident_keys();
  ASSERT_FALSE(resident_before.empty());
  EXPECT_GT(cache.reverse_index_entries(), 0u);

  // Choose an insert whose endpoints sit inside cached balls: the first
  // non-adjacent pair of warmed roots (roots are ball centers, so each is
  // trivially a member of its own resident ball).
  EdgeUpdate update{kInvalidNode, kInvalidNode, true};
  for (std::size_t i = 0; i < roots.size() && update.u == kInvalidNode; ++i) {
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      if (!dyn.has_edge(roots[i], roots[j])) {
        update.u = roots[i];
        update.v = roots[j];
        break;
      }
    }
  }
  ASSERT_NE(update.u, kInvalidNode) << "no non-adjacent warm root pair";

  // Brute-force expectation: which resident balls contain an endpoint?
  std::size_t expected = 0;
  std::vector<core::BallKey> survivors;
  for (const core::BallKey& key : resident_before) {
    const auto ball = cache.peek(key);
    ASSERT_NE(ball, nullptr);
    if (ball->contains(update.u) || ball->contains(update.v)) {
      ++expected;
    } else {
      survivors.push_back(key);
    }
  }
  ASSERT_GT(expected, 0u) << "update must touch at least one cached ball";
  ASSERT_FALSE(survivors.empty());

  const auto before = cache.stats();
  dyn.apply(update);
  const auto after = cache.stats();
  EXPECT_EQ(after.invalidations - before.invalidations, expected)
      << "invalidation must match the brute-force membership scan exactly";

  // Victims are gone; survivors still resident and serveable as pure hits.
  for (const core::BallKey& key : survivors) {
    EXPECT_NE(cache.peek(key), nullptr);
  }
  const auto pre_hits = cache.stats();
  for (const core::BallKey& key : survivors) {
    const auto f = cache.fetch(key.root, key.radius,
                               ShardedBallCache::FetchKind::kDemand,
                               ShardedBallCache::kNoClaimPriority,
                               dyn.version());
    EXPECT_TRUE(f.hit) << "untouched ball must survive the update";
  }
  const auto post_hits = cache.stats();
  EXPECT_EQ(post_hits.misses, pre_hits.misses)
      << "surgical invalidation must not evict untouched balls";

  // Reverse-index gauge stays consistent: recount from residents.
  std::size_t recount = 0;
  for (const core::BallKey& key : cache.resident_keys()) {
    recount += cache.peek(key)->num_nodes();
  }
  EXPECT_EQ(cache.reverse_index_entries(), recount);
}

TEST(DynamicGraph, ClearResetsDynamicCountersAndIndex) {
  Rng rng(test::test_seed() ^ 0xc1ea6);
  const Graph base = erdos_renyi(300, 1200, rng);
  DynamicGraph dyn(base);
  ShardedBallCache cache(base, 32u << 20, 2);
  cache.bind_dynamic_graph(dyn);

  for (NodeId r = 0; r < 60; ++r) {
    if (base.degree(r) > 0) (void)cache.fetch(r, 2);
  }
  UpdateStreamConfig scfg;
  scfg.count = 30;
  Rng srng = rng.fork(1);
  for (const EdgeUpdate& u : make_update_stream(
           base, UpdateWorkload::kRecommenderChurn, scfg, srng)) {
    dyn.apply(u);
  }
  ASSERT_GT(cache.stats().invalidations, 0u);

  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.invalidations, 0u);
  EXPECT_EQ(s.stale_rejects, 0u);
  EXPECT_EQ(s.reverse_index_entries, 0u)
      << "clear drops every resident, so the gauge must read empty";
  EXPECT_EQ(cache.resident_keys().size(), 0u);

  // The cache must keep working (and re-indexing) after the reset.
  NodeId r = 0;
  while (base.degree(r) == 0) ++r;
  (void)cache.fetch(r, 2, ShardedBallCache::FetchKind::kDemand,
                    ShardedBallCache::kNoClaimPriority, dyn.version());
  EXPECT_GT(cache.reverse_index_entries(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (the TSan target): producers apply churn updates while
// the serving front end admits and executes queries. Asserts no torn
// versions (every result's admission stamp is a version that existed),
// counter conservation, and a consistent reverse index after quiesce.
// ---------------------------------------------------------------------------
TEST(DynamicGraph, ConcurrentUpdatesVersusServing) {
  Rng rng(test::test_seed() ^ 0x4a33e5);
  const Graph base = community_graph(600, 10, 6.0, 1.5, rng);
  DynamicGraph dyn(base);
  ShardedBallCache cache(base, 16u << 20, 4);
  cache.bind_dynamic_graph(dyn);
  const MelopprConfig mcfg = small_config();
  Engine engine(base, mcfg);
  engine.set_shared_ball_cache(&cache);
  engine.set_dynamic_graph(&dyn);
  const auto backend = core::make_cpu_backend(base, mcfg);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, *backend, pcfg);

  const std::size_t updates =
      test::stress_iters(400);  // TSan caps via MELOPPR_STRESS_ITERS
  UpdateStreamConfig scfg;
  scfg.count = updates;
  Rng srng = rng.fork(1);
  const std::vector<EdgeUpdate> stream = make_update_stream(
      base, UpdateWorkload::kRecommenderChurn, scfg, srng);

  std::vector<NodeId> seeds;
  Rng seed_rng = rng.fork(2);
  while (seeds.size() < 60) {
    const NodeId s = static_cast<NodeId>(seed_rng.below(base.num_nodes()));
    if (base.degree(s) > 0) seeds.push_back(s);
  }

  core::SeedStream seed_stream;
  std::atomic<std::size_t> results_seen{0};
  std::atomic<bool> version_ok{true};
  std::thread producer([&] {
    for (const EdgeUpdate& u : stream) {
      dyn.apply(u);
      if ((dyn.version() & 7) == 0) std::this_thread::yield();
    }
  });
  std::thread feeder([&] {
    for (const NodeId s : seeds) {
      seed_stream.push(s);
      if ((s & 3) == 0) std::this_thread::yield();
    }
    seed_stream.close();
  });

  pipeline.query_stream(seed_stream, [&](std::size_t, QueryResult&& r) {
    results_seen.fetch_add(1, std::memory_order_relaxed);
    // Admission stamps must be real versions: in [0, final] — read after
    // join below re-checks the upper bound against the true final count.
    if (r.stats.graph_version > stream.size()) {
      version_ok.store(false, std::memory_order_relaxed);
    }
    if (r.top.empty()) version_ok.store(false, std::memory_order_relaxed);
  });
  producer.join();
  feeder.join();

  EXPECT_TRUE(version_ok.load());
  EXPECT_EQ(results_seen.load(), seeds.size())
      << "every admitted query must deliver a result";
  EXPECT_EQ(dyn.version(), stream.size());

  // Counter conservation after quiesce.
  const auto s = cache.stats();
  EXPECT_GE(s.hits + s.misses, seeds.size());
  std::size_t recount = 0;
  for (const core::BallKey& key : cache.resident_keys()) {
    const auto ball = cache.peek(key);
    ASSERT_NE(ball, nullptr);
    recount += ball->num_nodes();
  }
  EXPECT_EQ(s.reverse_index_entries, recount)
      << "reverse index must exactly cover the resident set after quiesce";

  // Post-quiesce serving is bit-identical to a rebuild at the final
  // version (query_batch replays the serial depth-first reduction order,
  // so the comparison is exact, not approximate).
  const Graph rebuilt = dyn.materialize();
  Engine ref_engine(rebuilt, mcfg);
  const std::vector<NodeId> probe(seeds.begin(), seeds.begin() + 5);
  const std::vector<QueryResult> got = pipeline.query_batch(probe);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    expect_same_top(got[i], ref_engine.query(probe[i]),
                    "post-quiesce seed=" + std::to_string(probe[i]));
  }
}

// Interleaved update + query traffic through the serving front end: the
// stats surface reports the applied-update count and a graph version that
// is never older than what any completed query observed.
TEST(DynamicGraph, ServingFrontEndInterleavesUpdatesAndQueries) {
  Rng rng(test::test_seed() ^ 0xf203);
  const Graph base = community_graph(500, 8, 6.0, 1.5, rng);
  DynamicGraph dyn(base);
  ShardedBallCache cache(base, 16u << 20, 4);
  cache.bind_dynamic_graph(dyn);
  const MelopprConfig mcfg = small_config();
  Engine engine(base, mcfg);
  engine.set_shared_ball_cache(&cache);
  engine.set_dynamic_graph(&dyn);
  const auto backend = core::make_cpu_backend(base, mcfg);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, *backend, pcfg);

  core::ServingConfig scfg;
  scfg.tenants = 2;
  scfg.queue_capacity = 256;
  core::ServingFrontEnd fe(pipeline, scfg);
  fe.set_dynamic_graph(&dyn);

  UpdateStreamConfig ucfg;
  ucfg.count = 60;
  Rng urng = rng.fork(1);
  const std::vector<EdgeUpdate> stream = make_update_stream(
      base, UpdateWorkload::kCitationGrowth, ucfg, urng);

  Rng seed_rng = rng.fork(2);
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint64_t v = fe.submit_update(stream[i]);
    EXPECT_EQ(v, i + 1);
    NodeId s = static_cast<NodeId>(seed_rng.below(base.num_nodes()));
    while (base.degree(s) == 0) {
      s = static_cast<NodeId>(seed_rng.below(base.num_nodes()));
    }
    if (fe.submit(s, i % 2).admitted) ++admitted;
  }
  const std::vector<core::ServedQuery> served = fe.drain();
  fe.shutdown();

  const core::ServingStats stats = fe.stats();
  EXPECT_EQ(stats.updates_applied, stream.size());
  EXPECT_EQ(stats.graph_version, dyn.version());
  std::size_t ok = 0;
  for (const core::ServedQuery& q : served) {
    if (q.status != core::ServeStatus::kOk) continue;
    ++ok;
    EXPECT_LE(q.result.stats.graph_version, dyn.version());
  }
  EXPECT_EQ(ok, admitted);
}

}  // namespace
}  // namespace meloppr::graph

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
