// FpgaFarm (parallel next-stage computation — the paper's future work).
#include "hw/farm.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace meloppr::hw {
namespace {

using graph::Graph;

FpgaFarm make_farm(std::size_t devices, unsigned p = 4) {
  AcceleratorConfig cfg;
  cfg.parallelism = p;
  return FpgaFarm(devices, cfg, Quantizer(0.85, 10, 50'000'000));
}

TEST(FpgaFarm, RejectsZeroDevices) {
  AcceleratorConfig cfg;
  EXPECT_THROW(FpgaFarm(0, cfg, Quantizer(0.85, 10, 1000)),
               std::invalid_argument);
}

TEST(FpgaFarm, NameAndCounts) {
  FpgaFarm farm = make_farm(4, 8);
  EXPECT_EQ(farm.device_count(), 4u);
  EXPECT_EQ(farm.name(), "farm(4x fpga(P=8))");
}

TEST(FpgaFarm, ActiveDispatchGaugeIdlesAtRestAndAfterRuns) {
  // The farm-wait prefetch meter keys on this gauge: 0 exactly when no
  // caller is inside run(). A generic backend without a live signal
  // reports "unknown" (max), which the meter treats as never-pause.
  Rng rng(75);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  FpgaFarm farm = make_farm(2);
  EXPECT_EQ(farm.active_dispatches(), 0u);
  const graph::Subgraph ball = graph::extract_ball(g, 3, 2);
  farm.run(ball, 1.0, 2);
  EXPECT_EQ(farm.active_dispatches(), 0u);  // returns to idle after runs
  core::CpuBackend cpu(0.85);
  EXPECT_EQ(cpu.active_dispatches(),
            std::numeric_limits<std::size_t>::max());
}

TEST(FpgaFarm, NumericsMatchSingleBackend) {
  Rng rng(71);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 7, 3);

  FpgaFarm farm = make_farm(3);
  AcceleratorConfig cfg;
  cfg.parallelism = 4;
  FpgaBackend single{Accelerator(cfg, Quantizer(0.85, 10, 50'000'000))};

  core::BackendResult a = farm.run(ball, 1.0, 3);
  core::BackendResult b = single.run(ball, 1.0, 3);
  ASSERT_EQ(a.accumulated.size(), b.accumulated.size());
  for (std::size_t v = 0; v < a.accumulated.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.accumulated[v], b.accumulated[v]);
    EXPECT_DOUBLE_EQ(a.inflight[v], b.inflight[v]);
  }
}

TEST(FpgaFarm, MakespanShrinksWithDevices) {
  Rng rng(72);
  Graph g = graph::barabasi_albert(1000, 2, 2, rng);
  std::vector<graph::Subgraph> balls;
  for (graph::NodeId seed : {3u, 17u, 44u, 99u, 250u, 500u, 750u, 999u}) {
    balls.push_back(graph::extract_ball(g, seed, 3));
  }
  double prev_makespan = 1e9;
  for (std::size_t devices : {1u, 2u, 4u}) {
    FpgaFarm farm = make_farm(devices);
    for (const auto& ball : balls) farm.run(ball, 1.0, 3);
    EXPECT_LT(farm.makespan_seconds(), prev_makespan)
        << devices << " devices";
    EXPECT_GE(farm.imbalance(), 1.0 - 1e-9);
    prev_makespan = farm.makespan_seconds();
  }
}

TEST(FpgaFarm, SerialTimeIsDeviceIndependent) {
  Rng rng(73);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaFarm one = make_farm(1);
  FpgaFarm four = make_farm(4);
  for (int i = 0; i < 8; ++i) {
    one.run(ball, 1.0, 3);
    four.run(ball, 1.0, 3);
  }
  // Note: per-device DMA double-buffering means a device's 2nd+ run hides
  // its transfer; with 4 devices each runs fewer times, so serial sums can
  // differ slightly by the extra cold transfers. Compare loosely.
  EXPECT_NEAR(four.serial_seconds(), one.serial_seconds(),
              0.25 * one.serial_seconds());
}

TEST(FpgaFarm, SingleDeviceMakespanEqualsSerial) {
  Rng rng(74);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaFarm farm = make_farm(1);
  farm.run(ball, 1.0, 3);
  farm.run(ball, 1.0, 3);
  EXPECT_DOUBLE_EQ(farm.makespan_seconds(), farm.serial_seconds());
  EXPECT_DOUBLE_EQ(farm.imbalance(), 1.0);
}

TEST(FpgaFarm, ResetClearsLoad) {
  Rng rng(75);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaFarm farm = make_farm(2);
  farm.run(ball, 1.0, 3);
  farm.reset();
  EXPECT_DOUBLE_EQ(farm.makespan_seconds(), 0.0);
  EXPECT_EQ(farm.runs(), 0u);
}

TEST(FpgaFarm, BusyAccountingSurvivesParallelDispatch) {
  // Hammer the farm from more threads than devices: every dispatched second
  // must land in exactly one device's busy total, the makespan must stay
  // the max-device view, and imbalance() must stay ≥ 1.
  Rng rng(80);
  Graph g = graph::barabasi_albert(1200, 2, 2, rng);
  std::vector<graph::Subgraph> balls;
  for (graph::NodeId seed : {3u, 17u, 44u, 99u, 250u, 500u, 750u, 999u}) {
    balls.push_back(graph::extract_ball(g, seed, 3));
  }

  FpgaFarm farm = make_farm(3);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRunsPerThread = 6;
  std::mutex mu;
  double dispatched_seconds = 0.0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double mine = 0.0;
      for (std::size_t i = 0; i < kRunsPerThread; ++i) {
        const core::BackendResult r =
            farm.run(balls[(t + i) % balls.size()], 1.0, 3);
        EXPECT_FALSE(r.accumulated.empty());
        mine += r.compute_seconds + r.transfer_seconds;
      }
      std::lock_guard<std::mutex> lock(mu);
      dispatched_seconds += mine;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(farm.runs(), kThreads * kRunsPerThread);
  // Conservation: Σ device busy time == Σ seconds handed to callers.
  EXPECT_NEAR(farm.serial_seconds(), dispatched_seconds,
              1e-9 * dispatched_seconds + 1e-15);
  EXPECT_GE(farm.imbalance(), 1.0 - 1e-9);
  EXPECT_LE(farm.makespan_seconds(), farm.serial_seconds() + 1e-15);
  // 48 runs over 3 devices: every device must have been exercised.
  EXPECT_GE(farm.makespan_seconds(), farm.serial_seconds() / 3.0 - 1e-15);
}

TEST(FpgaFarm, CloneSharesNoLoad) {
  Rng rng(81);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaFarm farm = make_farm(2);
  farm.run(ball, 1.0, 3);
  auto clone = farm.clone();
  EXPECT_EQ(clone->name(), farm.name());
  EXPECT_TRUE(clone->thread_safe());
  auto* fresh = dynamic_cast<FpgaFarm*>(clone.get());
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->runs(), 0u);
  EXPECT_DOUBLE_EQ(fresh->makespan_seconds(), 0.0);
  EXPECT_EQ(farm.runs(), 1u);  // original untouched
}

TEST(FpgaFarm, WorksAsEngineBackend) {
  Rng rng(76);
  Graph g = graph::barabasi_albert(600, 2, 2, rng);
  core::MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = core::Selection::top_count(12);
  core::Engine engine(g, cfg);

  FpgaFarm farm = make_farm(4);
  core::TopCKAggregator table(200);
  core::QueryResult r = engine.query(9, farm, table);
  EXPECT_FALSE(r.top.empty());
  EXPECT_EQ(farm.runs(), r.stats.total_balls());
  // Parallel completion beats the serial sum once there are many children.
  EXPECT_LT(farm.makespan_seconds(), farm.serial_seconds());
}

}  // namespace
}  // namespace meloppr::hw
