// Graph-diffusion kernel tests: Eq. 1 closed forms, mass conservation,
// linearity, ball sufficiency, and agreement with the dense reference.
#include "ppr/diffusion.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {
namespace {

using graph::extract_ball;
using graph::Graph;
using graph::Subgraph;

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Diffusion, LengthZeroIsIdentity) {
  Graph g = graph::fixtures::path(5);
  Subgraph ball = extract_ball(g, 2, 2);
  DiffusionResult r = diffuse_from(ball, 0, 1.0, {0.85, 0});
  EXPECT_DOUBLE_EQ(r.accumulated[0], 1.0);
  EXPECT_DOUBLE_EQ(r.residual[0], 1.0);
  EXPECT_DOUBLE_EQ(sum(r.accumulated), 1.0);
  EXPECT_EQ(r.edge_ops, 0u);
}

TEST(Diffusion, OneStepClosedFormOnPath) {
  // Path 0-1-2, seed the middle. W·S0 = [1/2, 0, 1/2];
  // S1 = (1−α)·S0 + α·W·S0.
  Graph g = graph::fixtures::path(3);
  Subgraph ball = extract_ball(g, 1, 1);
  const double alpha = 0.85;
  DiffusionResult r = diffuse_from(ball, 0, 1.0, {alpha, 1});
  // Local 0 is the seed (global 1).
  EXPECT_NEAR(r.accumulated[0], 1.0 - alpha, 1e-12);
  EXPECT_NEAR(r.residual[0], 0.0, 1e-12);
  const graph::NodeId l0 = ball.to_local(0);
  const graph::NodeId l2 = ball.to_local(2);
  EXPECT_NEAR(r.accumulated[l0], alpha / 2.0, 1e-12);
  EXPECT_NEAR(r.accumulated[l2], alpha / 2.0, 1e-12);
  EXPECT_NEAR(r.residual[l0], 0.5, 1e-12);
  EXPECT_NEAR(r.residual[l2], 0.5, 1e-12);
}

TEST(Diffusion, Fig1FirstPropagation) {
  // Fig. 1: seed v1 with degree 3; W·S0 = [0, 1/3, 1/3, 1/3].
  Graph g = graph::fixtures::fig1_graph();
  Subgraph ball = extract_ball(g, 0, 1);
  DiffusionResult r = diffuse_from(ball, 0, 1.0, {0.85, 1});
  for (graph::NodeId global = 1; global <= 3; ++global) {
    EXPECT_NEAR(r.residual[ball.to_local(global)], 1.0 / 3.0, 1e-12);
  }
  EXPECT_NEAR(r.residual[0], 0.0, 1e-12);
}

TEST(Diffusion, MassIsConserved) {
  // Σ S_l = (1−α)·Σ_{k<l} α^k + α^l = 1 and Σ residual = 1 whenever the
  // ball radius covers the diffusion length (no frontier leakage).
  Rng rng(21);
  Graph g = graph::barabasi_albert(300, 2, 3, rng);
  Subgraph ball = extract_ball(g, 7, 4);
  for (unsigned l : {1u, 2u, 3u, 4u}) {
    DiffusionResult r = diffuse_from(ball, 0, 1.0, {0.85, l});
    EXPECT_NEAR(sum(r.accumulated), 1.0, 1e-9) << "l=" << l;
    EXPECT_NEAR(sum(r.residual), 1.0, 1e-9) << "l=" << l;
  }
}

TEST(Diffusion, LinearInInputMass) {
  Rng rng(22);
  Graph g = graph::erdos_renyi(100, 300, rng);
  if (g.degree(3) == 0) GTEST_SKIP();
  Subgraph ball = extract_ball(g, 3, 3);
  DiffusionResult unit = diffuse_from(ball, 0, 1.0, {0.85, 3});
  DiffusionResult scaled = diffuse_from(ball, 0, 0.25, {0.85, 3});
  for (std::size_t v = 0; v < ball.num_nodes(); ++v) {
    EXPECT_NEAR(scaled.accumulated[v], 0.25 * unit.accumulated[v], 1e-12);
    EXPECT_NEAR(scaled.residual[v], 0.25 * unit.residual[v], 1e-12);
  }
}

TEST(Diffusion, AdditiveInInputVector) {
  // GD(S0 + S0') = GD(S0) + GD(S0') — the linearity that Eq. 7 exploits.
  Graph g = graph::fixtures::complete(6);
  Subgraph ball = extract_ball(g, 0, 2);
  std::vector<double> a(ball.num_nodes(), 0.0);
  std::vector<double> b(ball.num_nodes(), 0.0);
  a[0] = 0.7;
  b[2] = 0.3;
  std::vector<double> both(ball.num_nodes(), 0.0);
  both[0] = 0.7;
  both[2] = 0.3;
  DiffusionResult ra = diffuse(ball, a, {0.85, 2});
  DiffusionResult rb = diffuse(ball, b, {0.85, 2});
  DiffusionResult rboth = diffuse(ball, both, {0.85, 2});
  for (std::size_t v = 0; v < ball.num_nodes(); ++v) {
    EXPECT_NEAR(rboth.accumulated[v], ra.accumulated[v] + rb.accumulated[v],
                1e-12);
    EXPECT_NEAR(rboth.residual[v], ra.residual[v] + rb.residual[v], 1e-12);
  }
}

TEST(Diffusion, MatchesDenseReference) {
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::erdos_renyi(60, 150, rng);
    graph::NodeId seed = 0;
    while (g.degree(seed) == 0) ++seed;
    Subgraph ball = extract_ball(g, seed, 3);
    std::vector<double> s0(ball.num_nodes(), 0.0);
    s0[0] = 1.0;
    DiffusionResult fast = diffuse(ball, s0, {0.8, 3});
    DiffusionResult ref = diffuse_dense_reference(ball, s0, {0.8, 3});
    for (std::size_t v = 0; v < ball.num_nodes(); ++v) {
      EXPECT_NEAR(fast.accumulated[v], ref.accumulated[v], 1e-10);
      EXPECT_NEAR(fast.residual[v], ref.residual[v], 1e-10);
    }
  }
}

TEST(Diffusion, BallSufficiency) {
  // GD_l on the radius-l ball equals GD_l on a much larger ball, node for
  // node (DESIGN.md invariant 2). This is what justifies MeLoPPR computing
  // on small balls at all.
  Rng rng(24);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  const graph::NodeId seed = 13;
  const unsigned l = 3;
  Subgraph tight = extract_ball(g, seed, l);
  Subgraph loose = extract_ball(g, seed, l + 2);
  DiffusionResult rt = diffuse_from(tight, 0, 1.0, {0.85, l});
  DiffusionResult rl = diffuse_from(loose, 0, 1.0, {0.85, l});
  for (graph::NodeId local = 0; local < tight.num_nodes(); ++local) {
    const graph::NodeId global = tight.to_global(local);
    const graph::NodeId loose_local = loose.to_local(global);
    ASSERT_NE(loose_local, graph::kInvalidNode);
    EXPECT_NEAR(rt.accumulated[local], rl.accumulated[loose_local], 1e-12);
    EXPECT_NEAR(rt.residual[local], rl.residual[loose_local], 1e-12);
  }
  // Nodes beyond the tight ball must have received nothing in the loose run.
  for (graph::NodeId local = 0; local < loose.num_nodes(); ++local) {
    if (!tight.contains(loose.to_global(local))) {
      EXPECT_DOUBLE_EQ(rl.accumulated[local], 0.0);
    }
  }
}

TEST(Diffusion, LengthBeyondRadiusIsRejected) {
  Graph g = graph::fixtures::path(9);
  Subgraph ball = extract_ball(g, 4, 2);
  EXPECT_THROW(diffuse_from(ball, 0, 1.0, {0.85, 3}), InvariantViolation);
}

TEST(Diffusion, RejectsBadAlphaAndShape) {
  Graph g = graph::fixtures::path(5);
  Subgraph ball = extract_ball(g, 2, 1);
  EXPECT_THROW(diffuse_from(ball, 0, 1.0, {0.0, 1}), InvariantViolation);
  EXPECT_THROW(diffuse_from(ball, 0, 1.0, {1.0, 1}), InvariantViolation);
  std::vector<double> wrong_size(ball.num_nodes() + 1, 0.0);
  EXPECT_THROW(diffuse(ball, wrong_size, {0.85, 1}), InvariantViolation);
}

TEST(Diffusion, EdgeOpsCountPropagationWork) {
  Graph g = graph::fixtures::star(5);  // center 0, leaves 1-4
  Subgraph ball = extract_ball(g, 0, 2);
  // Iter 1: center pushes along 4 edges. Iter 2: leaves each push along 1.
  DiffusionResult r = diffuse_from(ball, 0, 1.0, {0.85, 2});
  EXPECT_EQ(r.edge_ops, 4u + 4u);
  EXPECT_EQ(r.iterations, 2u);
}

TEST(Diffusion, ScoresDecayWithDistanceOnPathPerParity) {
  // On a bipartite graph (a path), mass returns to a node only every other
  // step, so scores are NOT monotone in distance across parities (a
  // neighbor can outscore the seed thanks to the α^L in-flight tail). They
  // are monotone within each parity class.
  Graph g = graph::fixtures::path(13);
  Subgraph ball = extract_ball(g, 6, 5);
  DiffusionResult r = diffuse_from(ball, 0, 1.0, {0.85, 5});
  for (graph::NodeId start : {6u, 7u}) {  // even / odd distance classes
    double prev = r.accumulated[ball.to_local(start)];
    for (graph::NodeId global = start + 2; global <= 11;
         global = global + 2) {
      const double cur = r.accumulated[ball.to_local(global)];
      EXPECT_LT(cur, prev) << "at global " << global;
      prev = cur;
    }
  }
  // And symmetric around the seed.
  EXPECT_NEAR(r.accumulated[ball.to_local(4)],
              r.accumulated[ball.to_local(8)], 1e-12);
}

}  // namespace
}  // namespace meloppr::ppr
