#include "ppr/global_pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {
namespace {

using graph::Graph;

TEST(GlobalPageRank, ScoresSumToOne) {
  Rng rng(41);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  GlobalPageRankResult r = global_pagerank(g, {});
  const double total =
      std::accumulate(r.scores.begin(), r.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_delta, 1e-9);
}

TEST(GlobalPageRank, UniformOnRegularGraph) {
  // On a vertex-transitive graph (cycle), PageRank is exactly uniform.
  Graph g = graph::fixtures::cycle(20);
  GlobalPageRankResult r = global_pagerank(g, {});
  for (double s : r.scores) EXPECT_NEAR(s, 1.0 / 20.0, 1e-9);
}

TEST(GlobalPageRank, HubOutranksLeaves) {
  Graph g = graph::fixtures::star(30);
  GlobalPageRankResult r = global_pagerank(g, {});
  ASSERT_FALSE(r.top.empty());
  EXPECT_EQ(r.top[0].node, 0u);
  EXPECT_GT(r.scores[0], 5.0 * r.scores[1]);
}

TEST(GlobalPageRank, DanglingMassIsRedistributed) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);  // nodes 2, 3 isolated (dangling)
  Graph g = b.build();
  GlobalPageRankResult r = global_pagerank(g, {});
  const double total =
      std::accumulate(r.scores.begin(), r.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(r.scores[2], 0.0);
}

TEST(GlobalPageRank, IterationCapIsHonored) {
  Rng rng(43);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  GlobalPageRankParams params;
  params.tolerance = 1e-300;  // unreachable
  params.max_iterations = 7;
  GlobalPageRankResult r = global_pagerank(g, params);
  EXPECT_EQ(r.iterations, 7u);
  EXPECT_FALSE(r.converged);
}

TEST(GlobalPageRank, ParameterValidation) {
  Graph g = graph::fixtures::path(3);
  GlobalPageRankParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(global_pagerank(g, bad), InvariantViolation);
}

TEST(GlobalPageRank, AgreesWithDegreeHeuristicOnLargeBa) {
  // On undirected graphs PageRank correlates strongly with degree; the
  // top-1 node should be (near) the max-degree hub.
  Rng rng(44);
  Graph g = graph::barabasi_albert(2000, 2, 2, rng);
  GlobalPageRankResult r = global_pagerank(g, {});
  ASSERT_FALSE(r.top.empty());
  EXPECT_GE(g.degree(r.top[0].node), g.max_degree() / 2);
}

}  // namespace
}  // namespace meloppr::ppr
